"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package can be installed in
environments without the ``wheel`` package (``python setup.py develop``).
"""

from setuptools import setup

setup()
