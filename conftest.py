"""Pytest bootstrap: make ``src/`` importable without installation.

The library is normally installed with ``pip install -e .`` (or
``python setup.py develop`` in offline environments without the ``wheel``
package); this shim keeps the test and benchmark suites runnable straight
from a source checkout either way.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
