"""Domain scenario: a grouped sales report over uncertain data, end to end.

Daily order records carry two kinds of uncertainty: some order values were
OCR'd from scanned receipts (ranges instead of points), and one order's
*category* is ambiguous after entity resolution (it may belong to either of
two categories).  The example builds the report a conventional system cannot
give you:

1. filter to orders above a value threshold (``select``),
2. attach the category dimension (``join`` — the ambiguous key exercises
   possible matches),
3. aggregate per category (``groupby_aggregate``: revenue bounds, order
   counts, peak order), and
4. add a rolling revenue window across adjacent categories (``window``),

running the whole plan once on the tuple-at-a-time backend and once as a
:class:`~repro.columnar.plan.ColumnarPlan` chain that stays columnar through
the grouped aggregation — the results are bit-identical, and the report
distinguishes *certain* from merely *possible* group facts.

Run with::

    python examples/groupby_report.py
"""

from repro import AURelation, RangeValue, WindowSpec
from repro.columnar.plan import ColumnarPlan
from repro.core.expressions import attr, const
from repro.core.operators import groupby_aggregate, join, select
from repro.window.native import window_native

THRESHOLD = 10

AGGREGATES = [("sum", "v", "revenue"), ("count", "*", "orders"), ("max", "v", "peak")]

ROLLING = WindowSpec(
    function="sum", attribute="revenue", output="rolling", order_by=("g",), frame=(-1, 0)
)


def build_orders() -> AURelation:
    """Order records ``(o, g, v)``: id, category, value (some uncertain)."""
    return AURelation.from_rows(
        ["o", "g", "v"],
        [
            ((1, 0, 25), (1, 1, 1)),
            ((2, 0, RangeValue(12, 14, 19)), (1, 1, 1)),  # OCR'd value: a range
            ((3, RangeValue(0, 1, 1), 40), (1, 1, 1)),  # ambiguous category 0-or-1
            ((4, 1, 8), (1, 1, 1)),  # filtered out by the threshold
            ((5, 1, 31), (0, 1, 1)),  # possibly a duplicate record
            ((6, 2, 17), (1, 1, 1)),
        ],
    )


def build_categories() -> AURelation:
    return AURelation.from_rows(
        ["g", "label"], [((0, "food"), 1), ((1, "tools"), 1), ((2, "books"), 1)]
    )


def python_report(orders: AURelation, categories: AURelation) -> AURelation:
    """The reference plan: row-major relations between every stage."""
    filtered = select(orders, attr("v").ge(const(THRESHOLD)))
    joined = join(filtered, categories, on=["g"])
    grouped = groupby_aggregate(joined, ["g"], AGGREGATES)
    return window_native(grouped, ROLLING)


def columnar_report(orders: AURelation, categories: AURelation) -> AURelation:
    """The identical plan, columnar from ingest to the ``.to_rows()`` boundary."""
    return (
        ColumnarPlan(orders)
        .select(attr("v").ge(const(THRESHOLD)))
        .join(ColumnarPlan(categories), on=["g"])
        .groupby_aggregate(["g"], AGGREGATES)
        .window(ROLLING)
        .to_rows()
    )


def main() -> None:
    orders = build_orders()
    categories = build_categories()

    print("Order records (ranges = OCR/entity-resolution uncertainty):")
    print(orders.to_table())

    report = columnar_report(orders, categories)
    reference = python_report(orders, categories)
    assert report.schema == reference.schema and report._rows == reference._rows
    print("\nPer-category report (columnar plan, bit-identical to the python chain):")
    print(report.to_table())

    print("\nReading the annotations:")
    for tup, mult in report:
        g = tup.value("g")
        revenue = tup.value("revenue")
        orders_range = tup.value("orders")
        kind = "certain" if mult.lb > 0 else "possible"
        print(
            f"  category {g} is a {kind} group: revenue in "
            f"[{revenue.lb}, {revenue.ub}] (best guess {revenue.sg}), "
            f"{orders_range.lb}-{orders_range.ub} orders"
        )
    print(
        "\nThe ambiguous order #3 widens *both* candidate categories' bounds;"
        "\na deterministic report would silently pick one and understate the other."
    )


if __name__ == "__main__":
    main()
