"""Domain scenario: a window-then-filter-then-window plan, fully columnar.

A store monitors order flow for sustained spikes.  The pipeline is the
composed RA⁺ setting this repository's plan layer was refactored for — the
query *continues past* its first window stage:

1. filter to orders above a value threshold (``select``),
2. attach the category dimension (``join``),
3. compute a trailing revenue sum per order (``window``: the spike signal),
4. keep only windows whose rolling sum possibly clears the spike level
   (``select`` *on the aggregate*), and
5. compute the running peak of the surviving spike signal (a second
   ``window`` — over the first window's output attribute).

Because the sort/window kernels emit columnar output, the whole plan runs
as one :class:`~repro.columnar.plan.ColumnarPlan` chain with a single
row-major conversion at ``.to_rows()`` — no round trip between the two
window stages.  The script runs the identical plan on the tuple-at-a-time
backend, asserts the results are bit-identical, and reads the ``N³``
annotations back as monitoring statements ("the spike at order 6 is
*certain*; the one at order 8 may be an artifact of an OCR'd amount").

Run with::

    python examples/multiwindow_report.py
"""

from repro import AURelation, RangeValue, WindowSpec
from repro.columnar.plan import ColumnarPlan
from repro.core.expressions import attr, const
from repro.core.operators import join, select
from repro.window.native import window_native

THRESHOLD = 10
SPIKE_LEVEL = 60

ROLLING = WindowSpec(
    function="sum", attribute="v", output="w_sum", order_by=("o",), frame=(-1, 0)
)

PEAK = WindowSpec(
    function="max", attribute="w_sum", output="w_peak", order_by=("o",), frame=(-2, 0)
)


def build_orders() -> AURelation:
    """Order records ``(o, g, v)``: id, category, value (some uncertain)."""
    return AURelation.from_rows(
        ["o", "g", "v"],
        [
            ((1, 0, 20), (1, 1, 1)),
            ((2, 0, 45), (1, 1, 1)),
            ((3, 1, 8), (1, 1, 1)),  # filtered out by the threshold
            ((4, 1, 25), (1, 1, 1)),
            ((5, 0, RangeValue(18, 22, 60)), (1, 1, 1)),  # OCR'd amount
            ((6, 1, 50), (1, 1, 1)),
            ((7, 1, 30), (0, 1, 1)),  # possibly a duplicate record
            ((8, 0, RangeValue(12, 16, 55)), (1, 1, 1)),  # OCR'd amount
        ],
    )


def build_categories() -> AURelation:
    return AURelation.from_rows(["g", "label"], [((0, "web"), 1), ((1, "store"), 1)])


def python_report(orders: AURelation, categories: AURelation) -> AURelation:
    """The reference plan: row-major relations between every stage."""
    filtered = select(orders, attr("v").ge(const(THRESHOLD)))
    joined = join(filtered, categories, on=["g"])
    first = window_native(joined, ROLLING)
    spiky = select(first, attr("w_sum").ge(const(SPIKE_LEVEL)))
    return window_native(spiky, PEAK)


def columnar_report(orders: AURelation, categories: AURelation) -> AURelation:
    """The identical plan as one columnar chain — both windows stay columnar."""
    return (
        ColumnarPlan(orders)
        .select(attr("v").ge(const(THRESHOLD)))
        .join(ColumnarPlan(categories), on=["g"])
        .window(ROLLING)
        .select(attr("w_sum").ge(const(SPIKE_LEVEL)))
        .window(PEAK)
        .to_rows()
    )


def main() -> None:
    orders = build_orders()
    categories = build_categories()

    print("Order records (ranges = OCR uncertainty, triples = dedup uncertainty):")
    print(orders.to_table())

    report = columnar_report(orders, categories)
    reference = python_report(orders, categories)
    assert report.schema == reference.schema and report._rows == reference._rows
    print("\nSpike report (one columnar chain, bit-identical to the python chain):")
    print(report.to_table())

    print("\nReading the annotations:")
    for tup, mult in report:
        o = tup.value("o")
        w_sum = tup.value("w_sum")
        certainty = "certain spike" if mult.lb > 0 and w_sum.lb >= SPIKE_LEVEL else "possible spike"
        print(
            f"  order {o}: rolling sum in [{w_sum.lb}, {w_sum.ub}] "
            f"(best guess {w_sum.sg}) -> {certainty}"
        )
    print(
        "\nThe second window ran directly on the first window's columnar output;"
        "\nthe plan never materialised a row-major relation until .to_rows()."
    )


if __name__ == "__main__":
    main()
