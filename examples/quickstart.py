"""Quickstart: uncertain top-k and windowed aggregation over an AU-DB.

Builds a small sales table with uncertain values (ranges), asks for the two
highest-selling terms, and computes a rolling sum — printing, for every
answer, the range of values and the answer class (certain vs possible).

Run with::

    python examples/quickstart.py
"""

from repro import AURelation, RangeValue, WindowSpec, topk, window_native


def main() -> None:
    # A sales table with attribute-level uncertainty: each value is either a
    # plain scalar (certain) or a [lower / selected-guess / upper] range.
    sales = AURelation.from_rows(
        ["term", "sales"],
        [
            ((1, RangeValue(2, 2, 3)), (1, 1, 1)),
            ((2, RangeValue(2, 3, 3)), (1, 1, 1)),
            ((RangeValue(3, 3, 5), RangeValue(4, 7, 7)), (1, 1, 1)),
            ((4, RangeValue(4, 4, 7)), (1, 1, 1)),
        ],
    )
    print("Input AU-DB relation:")
    print(sales.to_table())

    # Top-2 terms by sales (descending).  The result's multiplicity triples
    # classify answers: lower bound 1 -> certain, upper bound 1 with lower
    # bound 0 -> merely possible.
    best = topk(sales, ["sales"], k=2, descending=True)
    print("\nTop-2 by sales (pos = possible rank range):")
    print(best.to_table())
    for tup, mult in best:
        kind = "certain" if mult.lb > 0 else "possible"
        print(f"  term {tup.value('term')} is a {kind} top-2 answer")

    # Rolling sum over the current and next term (CURRENT ROW AND 1 FOLLOWING).
    spec = WindowSpec(
        function="sum",
        attribute="sales",
        output="rolling",
        order_by=("term",),
        frame=(0, 1),
    )
    rolling = window_native(sales, spec)
    print("\nRolling sum of sales over [current term, next term]:")
    print(rolling.to_table())


if __name__ == "__main__":
    main()
