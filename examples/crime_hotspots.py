"""Domain scenario: ranking crime hotspots from dirty incident counts.

Incident reports are aggregated per district, but entity resolution over the
raw reports is ambiguous: some incidents may belong to either of two
districts, so the per-district counts are ranges.  The example asks for the
top-3 districts by incident count and contrasts three answers:

* the deterministic answer over the "best guess" counts (what a conventional
  system reports),
* the AU-DB answer, which also says which districts are *certainly* in the
  top-3 and which are only *possibly* there, and
* the MCDB sampling estimate, which can miss possible answers.

Run with::

    python examples/crime_hotspots.py
"""

import random

from repro import UncertainRelation, lift_xtuples, topk
from repro.baselines.det import det_topk
from repro.baselines.mcdb import mcdb_sort_bounds


def build_counts(*, districts: int = 12, seed: int = 3) -> UncertainRelation:
    """Per-district incident counts ``(rid, district, incidents)`` with ranges."""
    rng = random.Random(seed)
    counts = UncertainRelation(["rid", "district", "incidents"])
    for rid in range(districts):
        base = rng.randint(40, 400)
        name = f"district-{rid:02d}"
        if rng.random() < 0.4:
            ambiguous = rng.randint(5, 60)
            counts.add_alternatives(
                [
                    (rid, name, base - ambiguous),
                    (rid, name, base),
                    (rid, name, base + ambiguous),
                ],
                [0.2, 0.6, 0.2],
                sg_index=1,
            )
        else:
            counts.add_certain((rid, name, base))
    return counts


def main() -> None:
    counts = build_counts()
    audb = lift_xtuples(counts)

    print("Deterministic top-3 over the best-guess counts:")
    for row, _mult in sorted(det_topk(counts, ["incidents"], 3, descending=True)):
        print(f"  {row[1]:<13} incidents={row[2]}")

    print("\nAU-DB top-3 (certain vs possible hotspots):")
    ranked = topk(audb, ["incidents"], k=3, descending=True)
    for tup, mult in sorted(ranked, key=lambda pair: pair[0].value("pos").sg):
        kind = "certain" if mult.lb > 0 else "possible"
        print(
            f"  {tup.value('district').sg:<13} incidents={tup.value('incidents')} "
            f"rank={tup.value('pos')}  [{kind}]"
        )

    print("\nMCDB (10 samples) rank estimates, for comparison:")
    estimates = mcdb_sort_bounds(
        counts, ["incidents"], key_attribute="rid", samples=10, seed=0, descending=True
    )
    possibly_top3 = {rid for rid, (low, _high) in estimates.items() if low < 3}
    print(f"  districts estimated as possibly top-3: {sorted(possibly_top3)}")
    audb_possible = {
        tup.value("rid").sg for tup, mult in ranked if mult.possibly_exists
    }
    missed = audb_possible - possibly_top3
    if missed:
        print(f"  note: sampling missed possible hotspots with rid {sorted(missed)}")


if __name__ == "__main__":
    main()
