"""Domain scenario: rolling aggregates over imputed sensor readings.

A temperature sensor occasionally drops readings; a cleaning step imputes the
missing values, producing *ranges* instead of a single guess.  The example
lifts the cleaned data into an AU-DB, computes a rolling 3-reading average
band, and flags the time steps whose rolling maximum possibly exceeds an
alarm threshold — distinguishing alarms that are *certain* from ones that are
merely *possible* given the imputation uncertainty.

Run with::

    python examples/sensor_cleaning.py
"""

import random

from repro import WindowSpec, lift_xtuples, UncertainRelation
from repro.core.expressions import attr
from repro.core.operators.select import select
from repro.window.native import window_native

ALARM_THRESHOLD = 28.0


def build_readings(*, steps: int = 40, seed: int = 7) -> UncertainRelation:
    """Simulated sensor table ``(t, temp)`` with imputed (range-valued) gaps."""
    rng = random.Random(seed)
    readings = UncertainRelation(["t", "temp"])
    temperature = 21.0
    for step in range(steps):
        temperature += rng.uniform(-0.8, 1.0)
        if rng.random() < 0.15:
            # Dropped reading: the cleaning step imputes a range around the
            # neighbouring values instead of a single number.
            low = round(temperature - 1.5, 2)
            high = round(temperature + 1.5, 2)
            guess = round(temperature, 2)
            readings.add_alternatives(
                [(step, low), (step, guess), (step, high)],
                [0.2, 0.6, 0.2],
                sg_index=1,
            )
        else:
            readings.add_certain((step, round(temperature, 2)))
    return readings


def main() -> None:
    readings = build_readings()
    audb = lift_xtuples(readings)
    print(f"{len(audb)} readings, {readings.uncertain_count} of them imputed as ranges")

    spec = WindowSpec(
        function="max",
        attribute="temp",
        output="rolling_max",
        order_by=("t",),
        frame=(-2, 0),
    )
    rolling = window_native(audb, spec)

    alarms = select(rolling, attr("rolling_max").gt(ALARM_THRESHOLD))
    print(f"\nTime steps whose rolling 3-reading maximum may exceed {ALARM_THRESHOLD}°C:")
    certain = 0
    possible = 0
    for tup, mult in sorted(alarms, key=lambda pair: pair[0].value("t").sg):
        kind = "CERTAIN " if mult.lb > 0 else "possible"
        if mult.lb > 0:
            certain += 1
        else:
            possible += 1
        print(
            f"  t={tup.value('t').sg:>3}  rolling max {tup.value('rolling_max')}  -> {kind} alarm"
        )
    print(f"\n{certain} certain alarms, {possible} additional possible alarms")


if __name__ == "__main__":
    main()
