"""The paper's running example (Figure 1), end to end.

Shows how the competing top-k semantics from related work (U-Top, U-Rank,
PT-k certain/possible answers) disagree on the uncertain sales database, and
how the AU-DB top-2 and windowed-aggregation results bound every possible
world — reproducing Figures 1b-1g.

Run with::

    python examples/running_example.py
"""

from repro.baselines.rank_semantics import (
    certain_answers,
    possible_answers,
    u_rank,
    u_top,
)
from repro.ranking.topk import topk
from repro.relational.sort import topk as det_topk
from repro.window.native import window_native
from repro.window.spec import WindowSpec
from repro.workloads.examples import sales_audb, sales_worlds


def main() -> None:
    worlds = sales_worlds()
    audb = sales_audb()

    print("Possible worlds (Fig. 1a):")
    for i, (world, probability) in enumerate(worlds, start=1):
        print(f"  D{i} (p={probability:.1f}):", sorted(world.rows()))

    # --- Alternative semantics from related work (Fig. 1b-1e) -------------
    # Answers are identified by "term", as in the paper's figures.
    print("\nU-Top top-2 (most probable ranking):")
    print(" ", [row[0] for row in u_top(worlds, ["sales"], 2, descending=True, project=["term"])])
    print("U-Rank top-2 (most probable term per rank):")
    print(" ", [row[0] for row in u_rank(worlds, ["sales"], 2, descending=True, project=["term"])])
    print("PT(0) possible answers:")
    print(
        " ",
        sorted(
            row[0]
            for row in possible_answers(worlds, ["sales"], 2, descending=True, project=["term"])
        ),
    )
    print("PT(1) certain answers:")
    print(
        " ",
        sorted(
            row[0]
            for row in certain_answers(worlds, ["sales"], 2, descending=True, project=["term"])
        ),
    )

    # --- AU-DB top-2 (Fig. 1f) ---------------------------------------------
    result = topk(audb, ["sales"], k=2, descending=True)
    print("\nAU-DB top-2 (bounds certain AND possible answers):")
    print(result.to_table())

    # Every term that is in some world's top-2 is covered by the term range of
    # some possible answer tuple.
    possible_ranges = [tup.value("term") for tup, mult in result if mult.possibly_exists]
    for world in worlds.worlds:
        for row, _mult in det_topk(world, ["sales"], 2, descending=True):
            assert any(r.contains(row[0]) for r in possible_ranges), f"missed answer {row[0]}"
    print("(every world's top-2 terms are covered by the possible answers)")

    # --- AU-DB windowed aggregation (Fig. 1g) --------------------------------
    spec = WindowSpec(
        function="sum",
        attribute="sales",
        output="sum",
        order_by=("term",),
        frame=(0, 1),
    )
    window_result = window_native(audb, spec)
    print("\nAU-DB rolling sum over [current term, 1 following] (Fig. 1g):")
    print(window_result.to_table())


if __name__ == "__main__":
    main()
