"""Unit tests for relation schemas (repro.core.schema)."""

import pytest

from repro.core.schema import Schema
from repro.errors import SchemaError


class TestConstruction:
    def test_basic(self):
        schema = Schema(["a", "b", "c"])
        assert len(schema) == 3
        assert list(schema) == ["a", "b", "c"]
        assert "b" in schema and "z" not in schema

    def test_duplicates_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_empty_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", ""])

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a", "b"]) != Schema(["b", "a"])
        assert hash(Schema(["a"])) == hash(Schema(["a"]))


class TestLookups:
    def test_index_of(self):
        schema = Schema(["a", "b"])
        assert schema.index_of("b") == 1
        with pytest.raises(SchemaError):
            schema.index_of("missing")

    def test_indexes_of_preserves_order(self):
        assert Schema(["a", "b", "c"]).indexes_of(["c", "a"]) == (2, 0)

    def test_require(self):
        Schema(["a", "b"]).require(["a"])
        with pytest.raises(SchemaError):
            Schema(["a"]).require(["b"])


class TestDerivation:
    def test_project_reorders(self):
        assert Schema(["a", "b", "c"]).project(["c", "a"]) == Schema(["c", "a"])

    def test_extend(self):
        assert Schema(["a"]).extend("b", "c") == Schema(["a", "b", "c"])

    def test_rename(self):
        assert Schema(["a", "b"]).rename({"a": "x"}) == Schema(["x", "b"])

    def test_concat_disambiguates(self):
        combined = Schema(["a", "b"]).concat(Schema(["b", "c"]), disambiguate=True)
        assert combined == Schema(["a", "b", "b_r", "c"])

    def test_concat_clash_without_disambiguation_fails(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).concat(Schema(["a"]))

    def test_concat_suffix_never_captures_a_right_attribute(self):
        """A suffixed clash must not steal the name of another right column.

        ``(a) x (a, a_r)``: the right ``a`` clashes and ``a_r`` is taken by an
        original right attribute, so the rename skips ahead to ``a_r_r`` and
        the original ``a_r`` keeps its own name.
        """
        combined = Schema(["a"]).concat(Schema(["a", "a_r"]), disambiguate=True)
        assert combined == Schema(["a", "a_r_r", "a_r"])

    def test_concat_suffix_skips_left_suffix_collisions(self):
        combined = Schema(["a", "a_r"]).concat(Schema(["a"]), disambiguate=True)
        assert combined == Schema(["a", "a_r", "a_r_r"])

    def test_concat_clash_error_names_both_schemas(self):
        with pytest.raises(SchemaError, match=r"cannot concatenate schemas"):
            Schema(["a"]).concat(Schema(["a"]))

    def test_drop(self):
        assert Schema(["a", "b", "c"]).drop(["b"]) == Schema(["a", "c"])
        with pytest.raises(SchemaError):
            Schema(["a"]).drop(["z"])
