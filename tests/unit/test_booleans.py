"""Unit tests for Boolean bounding triples (repro.core.booleans)."""

import pytest

from repro.core.booleans import CERTAIN_FALSE, CERTAIN_TRUE, UNKNOWN, RangeBool
from repro.errors import InvalidRangeError


class TestConstruction:
    def test_certain_constants(self):
        assert CERTAIN_TRUE.certainly_true and CERTAIN_TRUE.is_certain
        assert CERTAIN_FALSE.certainly_false and CERTAIN_FALSE.is_certain
        assert not UNKNOWN.is_certain

    def test_invalid_triples_rejected(self):
        with pytest.raises(InvalidRangeError):
            RangeBool(True, False, True)
        with pytest.raises(InvalidRangeError):
            RangeBool(True, True, False)
        with pytest.raises(InvalidRangeError):
            RangeBool(False, True, False)

    def test_certain_factory(self):
        assert RangeBool.certain(True) == CERTAIN_TRUE
        assert RangeBool.certain(False) == CERTAIN_FALSE


class TestConnectives:
    def test_and(self):
        assert (CERTAIN_TRUE & UNKNOWN) == UNKNOWN
        assert (CERTAIN_FALSE & UNKNOWN) == CERTAIN_FALSE
        assert (CERTAIN_TRUE & CERTAIN_TRUE) == CERTAIN_TRUE

    def test_or(self):
        assert (CERTAIN_TRUE | UNKNOWN) == CERTAIN_TRUE
        assert (CERTAIN_FALSE | UNKNOWN) == UNKNOWN

    def test_not(self):
        assert ~CERTAIN_TRUE == CERTAIN_FALSE
        assert ~UNKNOWN == RangeBool(False, True, True)
        assert ~~UNKNOWN == UNKNOWN

    def test_bounds(self):
        assert UNKNOWN.bounds(True) and UNKNOWN.bounds(False)
        assert CERTAIN_TRUE.bounds(True) and not CERTAIN_TRUE.bounds(False)

    def test_connectives_bound_pointwise_semantics(self):
        triples = [CERTAIN_TRUE, CERTAIN_FALSE, UNKNOWN, RangeBool(False, True, True)]
        for a in triples:
            for b in triples:
                for x in (True, False):
                    for y in (True, False):
                        if a.bounds(x) and b.bounds(y):
                            assert a.and_(b).bounds(x and y)
                            assert a.or_(b).bounds(x or y)
                            assert a.not_().bounds(not x)
