"""Unit tests for window aggregate bound computation (repro.window.bounds)."""

import pytest

from repro.core.ranges import RangeValue
from repro.errors import OperatorError
from repro.window.bounds import WindowMember, aggregate_bounds


def member(lb, ub=None, count=1):
    return WindowMember(lb, lb if ub is None else ub, count)


class TestSumBounds:
    def test_certain_members_only(self):
        result = aggregate_bounds(
            "sum",
            self_member=member(5),
            certain=[member(2), member(3)],
            possible=[],
            frame_size=3,
        )
        assert result == RangeValue(10, 10, 10)

    def test_possible_positive_members_raise_upper_only(self):
        result = aggregate_bounds(
            "sum",
            self_member=member(5),
            certain=[],
            possible=[member(4), member(7)],
            frame_size=3,
        )
        assert result.lb == 5 and result.ub == 16

    def test_possible_members_limited_by_frame_slots(self):
        result = aggregate_bounds(
            "sum",
            self_member=member(0),
            certain=[],
            possible=[member(10), member(9), member(8)],
            frame_size=3,
        )
        assert result.ub == 19  # only two slots remain next to the current row

    def test_negative_possible_members_lower_bound(self):
        result = aggregate_bounds(
            "sum",
            self_member=member(1),
            certain=[],
            possible=[member(-5, -5), member(-2, -2), member(3, 3)],
            frame_size=3,
        )
        assert result.lb == 1 - 5 - 2
        assert result.ub == 1 + 3

    def test_uncertain_values_use_their_bounds(self):
        result = aggregate_bounds(
            "sum",
            self_member=WindowMember(2, 5),
            certain=[WindowMember(1, 4)],
            possible=[],
            frame_size=2,
        )
        assert result == RangeValue(3, 3, 9)

    def test_sg_value_clamped(self):
        result = aggregate_bounds(
            "sum", self_member=member(1), certain=[], possible=[], frame_size=1, sg_value=99
        )
        assert result.sg == result.ub == 1


class TestCountBounds:
    def test_count(self):
        result = aggregate_bounds(
            "count",
            self_member=member(1),
            certain=[member(1)],
            possible=[member(1), member(1)],
            frame_size=3,
        )
        assert result.lb == 2 and result.ub == 3

    def test_count_capped_by_frame(self):
        result = aggregate_bounds(
            "count",
            self_member=member(1),
            certain=[],
            possible=[member(1)] * 10,
            frame_size=4,
        )
        assert result.ub == 4


class TestMinMaxAvg:
    def test_min(self):
        result = aggregate_bounds(
            "min",
            self_member=WindowMember(5, 6),
            certain=[WindowMember(3, 8)],
            possible=[WindowMember(-1, 2)],
            frame_size=3,
        )
        assert result.lb == -1  # a possible member could push the minimum down
        assert result.ub == 6  # but it can never exceed a certain member's upper bound

    def test_min_without_any_member(self):
        assert aggregate_bounds(
            "min", self_member=None, certain=[], possible=[], frame_size=2
        ) == RangeValue.certain(None)

    def test_max(self):
        result = aggregate_bounds(
            "max",
            self_member=WindowMember(5, 6),
            certain=[WindowMember(3, 8)],
            possible=[WindowMember(10, 20)],
            frame_size=3,
        )
        assert result.ub == 20 and result.lb == 5

    def test_avg_envelope(self):
        result = aggregate_bounds(
            "avg",
            self_member=WindowMember(4, 4),
            certain=[WindowMember(2, 2)],
            possible=[WindowMember(0, 10)],
            frame_size=3,
        )
        assert result.lb == 0 and result.ub == 10

    def test_unknown_function(self):
        with pytest.raises(OperatorError):
            aggregate_bounds("median", self_member=None, certain=[], possible=[], frame_size=1)
