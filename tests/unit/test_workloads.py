"""Unit tests for workload generators (synthetic, real-world, running example)."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.examples import SALES_SCHEMA, sales_audb, sales_worlds
from repro.workloads.realworld import (
    REAL_WORLD_DATASETS,
    crimes_dataset,
    healthcare_dataset,
    iceberg_dataset,
)
from repro.workloads.synthetic import SyntheticConfig, as_audb, generate_sort_table, generate_window_table


class TestSyntheticConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            SyntheticConfig(rows=-1)
        with pytest.raises(WorkloadError):
            SyntheticConfig(uncertainty=1.5)
        with pytest.raises(WorkloadError):
            SyntheticConfig(domain=0)


class TestSortTable:
    def test_shape(self):
        config = SyntheticConfig(rows=100, uncertainty=0.1, attribute_range=50, seed=1)
        relation = generate_sort_table(config)
        assert len(relation) == 100
        assert relation.uncertain_count == 10
        assert list(relation.schema) == ["rid", "a", "b"]

    def test_deterministic_given_seed(self):
        config = SyntheticConfig(rows=30, uncertainty=0.2, seed=7)
        first = generate_sort_table(config)
        second = generate_sort_table(config)
        assert [xt.alternatives for xt in first.xtuples] == [xt.alternatives for xt in second.xtuples]

    def test_zero_uncertainty(self):
        relation = generate_sort_table(SyntheticConfig(rows=20, uncertainty=0.0))
        assert relation.uncertain_count == 0

    def test_rid_certain_across_alternatives(self):
        relation = generate_sort_table(SyntheticConfig(rows=50, uncertainty=0.3, seed=2))
        for xt in relation.xtuples:
            assert len({alt[0] for alt in xt.alternatives}) == 1

    def test_range_respected(self):
        config = SyntheticConfig(rows=60, uncertainty=0.5, attribute_range=10, seed=3)
        audb = as_audb(generate_sort_table(config))
        for tup, _m in audb:
            assert tup.value("a").ub - tup.value("a").lb <= 10


class TestWindowTable:
    def test_shape(self):
        config = SyntheticConfig(rows=80, uncertainty=0.1, attribute_range=20, seed=5)
        relation = generate_window_table(config, partitions=3)
        assert list(relation.schema) == ["rid", "o", "g", "v"]
        assert relation.uncertain_count == 8
        groups = {alt[2] for xt in relation.xtuples for alt in xt.alternatives}
        assert groups <= {0, 1, 2}

    def test_single_partition(self):
        relation = generate_window_table(SyntheticConfig(rows=10, seed=1), partitions=1)
        assert {alt[2] for xt in relation.xtuples for alt in xt.alternatives} == {0}


class TestRealWorldDatasets:
    def test_bundles(self):
        bundles = REAL_WORLD_DATASETS(scale=0.05, seed=0)
        assert [b.name for b in bundles] == ["iceberg", "crimes", "healthcare"]
        for bundle in bundles:
            assert bundle.rank_query.k > 0
            assert bundle.window_query.output not in ("",)
            assert len(bundle.rank_table) > 0
            assert len(bundle.window_table) > 0

    def test_scale_must_be_positive(self):
        with pytest.raises(WorkloadError):
            REAL_WORLD_DATASETS(scale=0)

    def test_iceberg_window_is_following_sum(self):
        bundle = iceberg_dataset(rows=50, seed=1)
        assert bundle.window_query.function == "sum"
        assert bundle.window_query.frame == (0, 3)

    def test_crimes_window_is_two_sided_min(self):
        bundle = crimes_dataset(rows=50, seed=1)
        assert bundle.window_query.function == "min"
        assert bundle.window_query.frame == (-1, 1)

    def test_healthcare_rank_query_ascending(self):
        bundle = healthcare_dataset(rows=50, seed=1)
        assert bundle.rank_query.descending is False
        assert bundle.window_query.descending is True

    def test_uncertainty_rates_match_paper(self):
        assert iceberg_dataset(rows=100).uncertainty == pytest.approx(0.011)
        assert crimes_dataset(rows=100).uncertainty == pytest.approx(0.001)
        assert healthcare_dataset(rows=100).uncertainty == pytest.approx(0.01)


class TestRunningExample:
    def test_worlds(self):
        worlds = sales_worlds()
        assert len(worlds) == 3
        assert worlds.probabilities == pytest.approx((0.4, 0.3, 0.3))
        assert worlds.schema == SALES_SCHEMA

    def test_audb_bounds_all_worlds(self):
        from repro.core.bounding import bounds_worlds, sg_world_matches

        worlds = sales_worlds()
        audb = sales_audb()
        assert bounds_worlds(audb, worlds)
        assert sg_world_matches(audb, worlds)
