"""Unit tests for the uncertain sort operators (rewrite and native)."""

import pytest

from repro.core.multiplicity import Multiplicity
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.errors import OperatorError
from repro.ranking.native import sort_native
from repro.ranking.semantics import sort_rewrite, split_duplicates
from repro.ranking.topk import sort
from repro.workloads.synthetic import SyntheticConfig, as_audb, generate_sort_table


def example6_relation() -> AURelation:
    return AURelation.from_rows(
        ["A", "B"],
        [
            ((1, RangeValue(1, 1, 3)), (1, 1, 2)),
            ((RangeValue(2, 3, 3), 15), (0, 1, 1)),
            ((RangeValue(1, 1, 2), 2), (1, 1, 1)),
        ],
    )


def result_as_set(relation: AURelation) -> set:
    return {
        (tup.values, (mult.lb, mult.sg, mult.ub)) for tup, mult in relation
    }


class TestSplitDuplicates:
    def test_case_split_of_fig4(self):
        pieces = split_duplicates(RangeValue(0, 1, 2), Multiplicity(1, 2, 3))
        assert pieces[0] == (RangeValue(0, 1, 2), Multiplicity(1, 1, 1))
        assert pieces[1] == (RangeValue(1, 2, 3), Multiplicity(0, 1, 1))
        assert pieces[2] == (RangeValue(2, 3, 4), Multiplicity(0, 0, 1))

    def test_zero_possible_multiplicity_yields_nothing(self):
        assert split_duplicates(RangeValue.certain(0), Multiplicity(0, 0, 0)) == []


class TestRewriteSort:
    def test_example6_output(self):
        result = sort_rewrite(example6_relation(), ["A", "B"])
        expected = {
            ((RangeValue.certain(1), RangeValue(1, 1, 3), RangeValue(0, 0, 1)), (1, 1, 1)),
            ((RangeValue.certain(1), RangeValue(1, 1, 3), RangeValue(1, 1, 2)), (0, 0, 1)),
            ((RangeValue(1, 1, 2), RangeValue.certain(2), RangeValue(0, 1, 2)), (1, 1, 1)),
            ((RangeValue(2, 3, 3), RangeValue.certain(15), RangeValue(2, 2, 3)), (0, 1, 1)),
        }
        assert result_as_set(result) == expected

    def test_position_attribute_name(self):
        result = sort_rewrite(example6_relation(), ["A"], position_attribute="rank")
        assert "rank" in result.schema

    def test_requires_order_by(self):
        with pytest.raises(OperatorError):
            sort_rewrite(example6_relation(), [])

    def test_certain_input_matches_deterministic_sort(self):
        relation = AURelation.from_rows(["A"], [((5,), 1), ((1,), 1), ((3,), 1)])
        result = sort_rewrite(relation, ["A"])
        positions = {tup.value("A").sg: tup.value("pos") for tup, _m in result}
        assert positions == {
            1: RangeValue.certain(0),
            3: RangeValue.certain(1),
            5: RangeValue.certain(2),
        }


class TestNativeSort:
    def test_matches_rewrite_on_example6(self):
        relation = example6_relation()
        assert result_as_set(sort_native(relation, ["A", "B"])) == result_as_set(
            sort_rewrite(relation, ["A", "B"])
        )

    def test_matches_rewrite_on_synthetic_workloads(self):
        for seed in range(4):
            config = SyntheticConfig(rows=60, uncertainty=0.2, attribute_range=40, domain=300, seed=seed)
            audb = as_audb(generate_sort_table(config))
            native = result_as_set(sort_native(audb, ["a"]))
            rewrite = result_as_set(sort_rewrite(audb, ["a"]))
            assert native == rewrite

    def test_descending_matches_rewrite(self):
        config = SyntheticConfig(rows=40, uncertainty=0.25, attribute_range=30, domain=200, seed=9)
        audb = as_audb(generate_sort_table(config))
        assert result_as_set(sort_native(audb, ["a"], descending=True)) == result_as_set(
            sort_rewrite(audb, ["a"], descending=True)
        )

    def test_empty_relation(self):
        relation = AURelation.from_rows(["A"], [])
        assert len(sort_native(relation, ["A"])) == 0

    def test_requires_order_by(self):
        with pytest.raises(OperatorError):
            sort_native(example6_relation(), [])

    def test_early_termination_keeps_possible_topk_tuples(self):
        config = SyntheticConfig(rows=80, uncertainty=0.2, attribute_range=60, domain=400, seed=2)
        audb = as_audb(generate_sort_table(config))
        full = sort_native(audb, ["a"])
        limited = sort_native(audb, ["a"], k=5)
        possible_full = {
            tup.value("rid").sg
            for tup, _m in full
            if tup.value("pos").lb < 5
        }
        possible_limited = {tup.value("rid").sg for tup, _m in limited}
        assert possible_full <= possible_limited


class TestSortDispatcher:
    def test_method_selection(self):
        relation = example6_relation()
        assert result_as_set(sort(relation, ["A", "B"], method="native")) == result_as_set(
            sort(relation, ["A", "B"], method="rewrite")
        )

    def test_unknown_method(self):
        with pytest.raises(OperatorError):
            sort(example6_relation(), ["A"], method="magic")
