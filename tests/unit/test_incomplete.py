"""Unit tests for the incomplete-database substrate (repro.incomplete)."""

import random

import pytest

from repro.errors import EnumerationLimitError, WorkloadError
from repro.incomplete.lift import lift_worlds, lift_xtuples
from repro.incomplete.worlds import PossibleWorlds
from repro.incomplete.xtuples import UncertainRelation, XTuple
from repro.relational.relation import Relation


def two_worlds() -> PossibleWorlds:
    return PossibleWorlds.from_rows(
        ["a", "b"],
        [
            [(1, 10), (2, 20)],
            [(1, 10), (3, 30), (3, 30)],
        ],
        [0.6, 0.4],
    )


class TestPossibleWorlds:
    def test_requires_worlds(self):
        with pytest.raises(WorkloadError):
            PossibleWorlds([])

    def test_probabilities_normalised(self):
        worlds = PossibleWorlds.from_rows(["a"], [[(1,)], [(2,)]], [2.0, 2.0])
        assert worlds.probabilities == (0.5, 0.5)

    def test_certain_and_possible_multiplicity(self):
        worlds = two_worlds()
        assert worlds.certain_multiplicity((1, 10)) == 1
        assert worlds.certain_multiplicity((2, 20)) == 0
        assert worlds.possible_multiplicity((3, 30)) == 2

    def test_certain_and_possible_rows(self):
        worlds = two_worlds()
        assert worlds.certain_rows() == [(1, 10)]
        assert set(worlds.possible_rows()) == {(1, 10), (2, 20), (3, 30)}

    def test_tuple_probability(self):
        assert two_worlds().tuple_probability((2, 20)) == pytest.approx(0.6)

    def test_map_applies_query_per_world(self):
        worlds = two_worlds().map(lambda world: world)
        assert len(worlds) == 2

    def test_selected_guess_default_first(self):
        assert two_worlds().selected_guess.multiplicity((2, 20)) == 1

    def test_most_likely(self):
        assert two_worlds().most_likely.multiplicity((2, 20)) == 1


class TestXTuple:
    def test_certain_xtuple(self):
        xt = XTuple.certain((1, 2))
        assert xt.is_certain and not xt.maybe_absent

    def test_probability_validation(self):
        with pytest.raises(WorkloadError):
            XTuple(((1,),), (1.5,))
        with pytest.raises(WorkloadError):
            XTuple(((1,), (2,)), (0.5,))
        with pytest.raises(WorkloadError):
            XTuple((), ())

    def test_default_uniform_probabilities(self):
        xt = XTuple(((1,), (2,)))
        assert xt.probabilities == (0.5, 0.5)

    def test_absence(self):
        xt = XTuple(((1,),), (0.7,), sg_index=0)
        assert xt.maybe_absent
        assert xt.absence_probability == pytest.approx(0.3)
        assert len(xt.options()) == 2

    def test_selected_guess_row(self):
        xt = XTuple(((1,), (2,)), (0.5, 0.5), sg_index=1)
        assert xt.selected_guess_row() == (2,)
        assert XTuple(((1,),), (0.5,), sg_index=None).selected_guess_row() is None

    def test_sample_respects_support(self):
        xt = XTuple(((1,), (2,)), (0.5, 0.5))
        rng = random.Random(0)
        assert all(xt.sample(rng) in {(1,), (2,)} for _ in range(20))


class TestUncertainRelation:
    def build(self) -> UncertainRelation:
        relation = UncertainRelation(["a"])
        relation.add_certain((1,))
        relation.add_alternatives([(2,), (3,)], [0.5, 0.5], sg_index=0)
        return relation

    def test_world_count(self):
        assert self.build().world_count == 2

    def test_uncertain_count(self):
        assert self.build().uncertain_count == 1

    def test_arity_checked(self):
        with pytest.raises(WorkloadError):
            UncertainRelation(["a"]).add_certain((1, 2))

    def test_selected_guess_world(self):
        world = self.build().selected_guess_world()
        assert world.multiplicity((1,)) == 1 and world.multiplicity((2,)) == 1

    def test_iter_worlds_probabilities_sum_to_one(self):
        total = sum(p for _w, p in self.build().iter_worlds())
        assert total == pytest.approx(1.0)

    def test_enumeration_limit(self):
        relation = UncertainRelation(["a"])
        for i in range(12):
            relation.add_alternatives([(i,), (i + 100,)])
        with pytest.raises(EnumerationLimitError):
            list(relation.iter_worlds(limit=100))

    def test_sample_worlds_deterministic_with_seed(self):
        relation = self.build()
        first = [sorted(w.rows()) for w in relation.sample_worlds(5, seed=1)]
        second = [sorted(w.rows()) for w in relation.sample_worlds(5, seed=1)]
        assert first == second

    def test_to_possible_worlds_contains_sg(self):
        worlds = self.build().to_possible_worlds()
        assert worlds.selected_guess == self.build().selected_guess_world()


class TestLift:
    def test_lift_xtuples_builds_hulls(self):
        relation = UncertainRelation(["a", "b"])
        relation.add_alternatives([(1, 5), (3, 5)], [0.5, 0.5], sg_index=1)
        audb = lift_xtuples(relation)
        tup, mult = next(iter(audb))
        assert (tup.value("a").lb, tup.value("a").sg, tup.value("a").ub) == (1, 3, 3)
        assert mult.lb == 1 and mult.ub == 1

    def test_lift_xtuples_absent_tuple_is_uncertain(self):
        relation = UncertainRelation(["a"])
        relation.add(XTuple(((1,),), (0.5,), sg_index=0))
        audb = lift_xtuples(relation)
        _tup, mult = next(iter(audb))
        assert mult.lb == 0 and mult.ub == 1

    def test_lift_worlds_tuple_level(self):
        audb = lift_worlds(two_worlds())
        row_mults = {tup.sg_row(): mult for tup, mult in audb}
        assert row_mults[(1, 10)].lb == 1
        assert row_mults[(2, 20)].lb == 0 and row_mults[(2, 20)].ub == 1
        assert row_mults[(3, 30)].ub == 2

    def test_lift_bounds_every_world(self):
        from repro.core.bounding import bounds_world

        worlds = two_worlds()
        audb = lift_worlds(worlds)
        assert all(bounds_world(audb, world) for world in worlds.worlds)
