"""Unit tests for the experiment harness (adapters, reporting, CLI wiring)."""

import pytest

from repro.harness.adapters import (
    audb_from_workload,
    audb_sort_bounds,
    audb_window_bounds,
    extract_bounds,
)
from repro.harness.cli import main
from repro.harness.figures import ALL_EXPERIMENTS, heap_table
from repro.harness.report import ExperimentResult, format_table
from repro.harness.runner import timed, timed_ms
from repro.window.spec import WindowSpec
from repro.workloads.synthetic import SyntheticConfig, generate_sort_table, generate_window_table


class TestRunner:
    def test_timed_returns_result_and_duration(self):
        result, seconds = timed(lambda: 41 + 1)
        assert result == 42 and seconds >= 0

    def test_timed_ms(self):
        _result, ms = timed_ms(lambda: None)
        assert ms >= 0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["col", "value"], [["a", 1.23456], ["bb", 2]])
        lines = text.splitlines()
        assert lines[0].startswith("col")
        assert "1.235" in text

    def test_experiment_result_add_and_text(self):
        result = ExperimentResult("exp", "a description", ["x", "y"])
        result.add(1, 2)
        text = result.to_text()
        assert "exp" in text and "a description" in text and "1" in text


class TestAdapters:
    def test_sort_bounds_cover_selected_guess_positions(self):
        workload = generate_sort_table(SyntheticConfig(rows=30, uncertainty=0.2, attribute_range=20, domain=200, seed=4))
        audb = audb_from_workload(workload)
        bounds = audb_sort_bounds(audb, ["a"], key_attribute="rid")
        assert set(bounds) == set(range(30))
        for low, high in bounds.values():
            assert 0 <= low <= high <= 30

    def test_window_bounds_keys(self):
        workload = generate_window_table(
            SyntheticConfig(rows=20, uncertainty=0.2, attribute_range=10, domain=100, seed=4),
            partitions=1,
        )
        audb = audb_from_workload(workload)
        spec = WindowSpec("sum", "v", "s", order_by=("o",), frame=(-1, 0))
        for method in ("native", "rewrite"):
            bounds = audb_window_bounds(audb, spec, key_attribute="rid", method=method)
            assert set(bounds) == set(range(20))

    def test_extract_bounds_hulls_duplicates(self):
        from repro.core.relation import AURelation
        from repro.core.ranges import RangeValue

        relation = AURelation.from_rows(
            ["rid", "x"],
            [((1, RangeValue(0, 1, 2)), 1), ((1, RangeValue(5, 6, 7)), 1)],
        )
        bounds = extract_bounds(relation, "rid", "x")
        assert bounds == {1: (0.0, 7.0)}


class TestExperimentsRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "heap_table",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "fig19",
            "pipeline",
            "groupby",
            "multiwindow",
            "equijoin",
        }
        assert expected == set(ALL_EXPERIMENTS)

    def test_heap_table_runs_small(self):
        result = heap_table(items=200, seed=1)
        assert len(result.rows) == 6
        assert all(len(row) == 5 for row in result.rows)

    def test_groupby_pipeline_driver_runs_small(self):
        pytest.importorskip("numpy", reason="the columnar backend requires NumPy")
        from repro.harness.figures import groupby_pipeline_scaling

        result = groupby_pipeline_scaling(sizes=(16, 32), seed=1)
        assert len(result.rows) == 2
        assert all(len(row) == 4 for row in result.rows)

    def test_equijoin_driver_runs_small_and_caps_quadratic_kernels(self):
        pytest.importorskip("numpy", reason="the columnar backend requires NumPy")
        from repro.harness.figures import equijoin_scaling

        result = equijoin_scaling(sizes=(16, 64), quadratic_ceiling=16, seed=1)
        assert len(result.rows) == 2
        small, large = result.rows
        assert small[1] != "-" and small[2] != "-"
        assert large[1] == "-" and large[2] == "-" and large[3] != "-"

    def test_cli_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])
