"""Unit tests for the experiment harness (adapters, reporting, CLI wiring)."""

import os

import pytest

from repro.harness.adapters import (
    audb_from_workload,
    audb_sort_bounds,
    audb_window_bounds,
    extract_bounds,
)
from repro.harness.cli import main
from repro.harness.figures import ALL_EXPERIMENTS, heap_table
from repro.harness.report import ExperimentResult, format_table
from repro.harness.runner import timed, timed_ms
from repro.window.spec import WindowSpec
from repro.workloads.synthetic import SyntheticConfig, generate_sort_table, generate_window_table


class TestRunner:
    def test_timed_returns_result_and_duration(self):
        result, seconds = timed(lambda: 41 + 1)
        assert result == 42 and seconds >= 0

    def test_timed_ms(self):
        _result, ms = timed_ms(lambda: None)
        assert ms >= 0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["col", "value"], [["a", 1.23456], ["bb", 2]])
        lines = text.splitlines()
        assert lines[0].startswith("col")
        assert "1.235" in text

    def test_experiment_result_add_and_text(self):
        result = ExperimentResult("exp", "a description", ["x", "y"])
        result.add(1, 2)
        text = result.to_text()
        assert "exp" in text and "a description" in text and "1" in text


class TestAdapters:
    def test_sort_bounds_cover_selected_guess_positions(self):
        workload = generate_sort_table(SyntheticConfig(rows=30, uncertainty=0.2, attribute_range=20, domain=200, seed=4))
        audb = audb_from_workload(workload)
        bounds = audb_sort_bounds(audb, ["a"], key_attribute="rid")
        assert set(bounds) == set(range(30))
        for low, high in bounds.values():
            assert 0 <= low <= high <= 30

    def test_window_bounds_keys(self):
        workload = generate_window_table(
            SyntheticConfig(rows=20, uncertainty=0.2, attribute_range=10, domain=100, seed=4),
            partitions=1,
        )
        audb = audb_from_workload(workload)
        spec = WindowSpec("sum", "v", "s", order_by=("o",), frame=(-1, 0))
        for method in ("native", "rewrite"):
            bounds = audb_window_bounds(audb, spec, key_attribute="rid", method=method)
            assert set(bounds) == set(range(20))

    def test_extract_bounds_hulls_duplicates(self):
        from repro.core.relation import AURelation
        from repro.core.ranges import RangeValue

        relation = AURelation.from_rows(
            ["rid", "x"],
            [((1, RangeValue(0, 1, 2)), 1), ((1, RangeValue(5, 6, 7)), 1)],
        )
        bounds = extract_bounds(relation, "rid", "x")
        assert bounds == {1: (0.0, 7.0)}


class TestExperimentsRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "heap_table",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "fig19",
            "pipeline",
            "groupby",
            "multiwindow",
            "equijoin",
            "rangejoin",
            "factjoin",
            "serve",
            "sql",
        }
        assert expected == set(ALL_EXPERIMENTS)

    def test_heap_table_runs_small(self):
        result = heap_table(items=200, seed=1)
        assert len(result.rows) == 6
        assert all(len(row) == 5 for row in result.rows)

    def test_groupby_pipeline_driver_runs_small(self):
        pytest.importorskip("numpy", reason="the columnar backend requires NumPy")
        from repro.harness.figures import groupby_pipeline_scaling

        result = groupby_pipeline_scaling(sizes=(16, 32), seed=1)
        assert len(result.rows) == 2
        assert all(len(row) == 4 for row in result.rows)

    def test_equijoin_driver_runs_small_and_caps_quadratic_kernels(self):
        pytest.importorskip("numpy", reason="the columnar backend requires NumPy")
        from repro.harness.figures import equijoin_scaling

        result = equijoin_scaling(sizes=(16, 64), quadratic_ceiling=16, seed=1)
        assert len(result.rows) == 2
        small, large = result.rows
        assert small[1] != "-" and small[2] != "-"
        assert large[1] == "-" and large[2] == "-" and large[3] != "-"

    def test_rangejoin_driver_runs_small_and_caps_quadratic_kernels(self):
        pytest.importorskip("numpy", reason="the columnar backend requires NumPy")
        from repro.harness.figures import rangejoin_scaling

        result = rangejoin_scaling(sizes=(16, 64), quadratic_ceiling=16, seed=1)
        assert len(result.rows) == 2
        small, large = result.rows
        assert small[1] != "-" and small[2] != "-"
        assert large[1] == "-" and large[2] == "-" and large[3] != "-"

    def test_cli_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])


class TestCliFlags:
    """Validation and env plumbing of ``--backend`` / ``--workers``."""

    @pytest.mark.parametrize("bad", ["0", "-2", "two", "2.5"])
    def test_rejects_bad_worker_counts(self, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["heap_table", "--workers", bad])
        assert excinfo.value.code == 2  # argparse usage error
        assert "positive integer" in capsys.readouterr().err

    def test_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["heap_table", "--backend", "rust"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_flags_set_env_for_the_run_and_restore_it(self, monkeypatch, capsys):
        from repro.harness import cli

        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_WORKERS", "7")
        seen = {}

        class FakeResult:
            def to_text(self):
                return "fake"

        def fake_experiment():
            seen["backend"] = os.environ.get("REPRO_BACKEND")
            seen["workers"] = os.environ.get("REPRO_WORKERS")
            return FakeResult()

        monkeypatch.setattr(cli, "ALL_EXPERIMENTS", {"fake": fake_experiment})
        assert main(["fake", "--backend", "columnar", "--workers", "2"]) == 0
        assert seen == {"backend": "columnar", "workers": "2"}
        # The overrides are scoped to the run: the unset variable is unset
        # again, the pre-existing one is back to its previous value.
        assert "REPRO_BACKEND" not in os.environ
        assert os.environ["REPRO_WORKERS"] == "7"
        assert "fake" in capsys.readouterr().out

    def test_backend_enabled_rejects_unknown_env_value(self, monkeypatch):
        from repro.errors import ReproError
        from repro.harness.figures import backend_enabled

        monkeypatch.setenv("REPRO_BACKEND", "rust")
        with pytest.raises(ReproError, match="REPRO_BACKEND must be one of"):
            backend_enabled("columnar")

    def test_backend_enabled_filters_the_named_backend(self, monkeypatch):
        from repro.harness.figures import backend_enabled

        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert backend_enabled("python") and backend_enabled("columnar")
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert backend_enabled("python") and not backend_enabled("columnar")
