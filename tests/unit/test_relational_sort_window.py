"""Unit tests for the deterministic sort and window operators (Section 4)."""

import pytest

from repro.errors import OperatorError, WindowSpecError
from repro.relational.relation import Relation
from repro.relational.sort import (
    make_total_order_key,
    sort_operator,
    topk,
    total_order_key,
)
from repro.relational.window import window_aggregate


class TestSortOperator:
    def test_paper_example_4(self):
        """Example 4: duplicates get distinct positions, ties broken on B."""
        r = Relation(["A", "B"])
        r.add((3, 15), 1)
        r.add((1, 1), 2)
        result = sort_operator(r, ["A"])
        assert result.multiplicity((1, 1, 0)) == 1
        assert result.multiplicity((1, 1, 1)) == 1
        assert result.multiplicity((3, 15, 2)) == 1

    def test_descending(self):
        r = Relation.from_rows(["A"], [(1,), (3,), (2,)])
        result = sort_operator(r, ["A"], descending=True)
        assert result.multiplicity((3, 0)) == 1
        assert result.multiplicity((1, 2)) == 1

    def test_requires_order_by(self):
        with pytest.raises(OperatorError):
            sort_operator(Relation(["A"]), [])

    def test_total_order_key_handles_none(self):
        key_none = total_order_key(Relation(["A"]).schema, ["A"], (None,))
        key_val = total_order_key(Relation(["A"]).schema, ["A"], (1,))
        assert key_none < key_val

    def test_custom_position_attribute(self):
        r = Relation.from_rows(["A"], [(2,), (1,)])
        result = sort_operator(r, ["A"], position_attribute="rank")
        assert "rank" in result.schema

    def test_make_total_order_key_matches_per_row_helper(self):
        schema = Relation(["A", "B", "C"]).schema
        key = make_total_order_key(schema, ["B"])
        for row in ((1, 2, 3), (None, 0, "x"), (True, None, 1.5)):
            assert key(row) == total_order_key(schema, ["B"], row)

    def test_mixed_type_column_raises_clear_operator_error(self):
        r = Relation.from_rows(["A", "B"], [(1, "x"), (1, 3)])
        with pytest.raises(OperatorError, match="incomparable"):
            sort_operator(r, ["A"])  # tiebreak column B is the broken one

    def test_mixed_type_order_column_raises_clear_operator_error(self):
        pytest.importorskip("numpy", reason="exercises the columnar backend too")
        r = Relation.from_rows(["A"], [("x",), (1,)])
        for backend in ("python", "columnar"):
            with pytest.raises(OperatorError, match="incomparable"):
                sort_operator(r, ["A"], backend=backend)

    def test_none_mixed_with_ints_still_sorts(self):
        pytest.importorskip("numpy", reason="exercises the columnar backend too")
        r = Relation.from_rows(["A"], [(3,), (None,), (1,)])
        for backend in ("python", "columnar"):
            result = sort_operator(r, ["A"], backend=backend)
            assert result.multiplicity((None, 0)) == 1
            assert result.multiplicity((3, 2)) == 1

    def test_window_mixed_type_order_column_raises_clear_operator_error(self):
        r = Relation.from_rows(["A", "V"], [("x", 1), (2, 3)])
        with pytest.raises(OperatorError, match="incomparable"):
            window_aggregate(
                r, function="sum", attribute="V", output="w", order_by=["A"], frame=(-1, 0)
            )

    def test_columnar_backend_matches_python(self):
        pytest.importorskip("numpy", reason="exercises the columnar backend")
        r = Relation(["A", "B"])
        r.add((3, 15), 1)
        r.add((1, 1), 2)
        r.add((1, 0), 1)
        for descending in (False, True):
            python = sort_operator(r, ["A"], descending=descending)
            columnar = sort_operator(r, ["A"], descending=descending, backend="columnar")
            assert python._rows == columnar._rows


class TestTopK:
    def test_topk_keeps_k_rows(self):
        r = Relation.from_rows(["A"], [(5,), (1,), (3,), (4,)])
        result = topk(r, ["A"], 2)
        assert sorted(result.rows()) == [(1,), (3,)]

    def test_topk_keep_position(self):
        r = Relation.from_rows(["A"], [(5,), (1,)])
        result = topk(r, ["A"], 1, keep_position=True)
        assert result.rows() == [(1, 0)]

    def test_topk_negative_k_rejected(self):
        with pytest.raises(OperatorError):
            topk(Relation(["A"]), ["A"], -1)

    def test_topk_descending(self):
        r = Relation.from_rows(["A"], [(5,), (1,), (3,)])
        result = topk(r, ["A"], 1, descending=True)
        assert result.rows() == [(5,)]


class TestWindowAggregate:
    def test_paper_example_5(self):
        """Example 5: sum(B) over window [-2, 0] ordered by A with duplicates."""
        r = Relation(["A", "B", "C"])
        r.add(("a", 5, 3), 3)
        r.add(("b", 3, 1), 1)
        r.add(("b", 3, 4), 1)
        result = window_aggregate(
            r, function="sum", attribute="B", output="s", order_by=["A"], frame=(-2, 0)
        )
        sums = sorted(row[3] for row, _m in result for _ in range(_m))
        assert sums == [5, 10, 11, 13, 15]

    def test_rolling_sum(self):
        r = Relation.from_rows(["t", "v"], [(1, 10), (2, 20), (3, 30)])
        result = window_aggregate(
            r, function="sum", attribute="v", output="s", order_by=["t"], frame=(-1, 0)
        )
        values = {row[0]: row[2] for row, _m in result}
        assert values == {1: 10, 2: 30, 3: 50}

    def test_following_frame(self):
        r = Relation.from_rows(["t", "v"], [(1, 10), (2, 20), (3, 30)])
        result = window_aggregate(
            r, function="sum", attribute="v", output="s", order_by=["t"], frame=(0, 1)
        )
        values = {row[0]: row[2] for row, _m in result}
        assert values == {1: 30, 2: 50, 3: 30}

    def test_partition_by(self):
        r = Relation.from_rows(["g", "t", "v"], [("x", 1, 1), ("x", 2, 2), ("y", 1, 5)])
        result = window_aggregate(
            r,
            function="sum",
            attribute="v",
            output="s",
            order_by=["t"],
            partition_by=["g"],
            frame=(-10, 0),
        )
        values = {(row[0], row[1]): row[3] for row, _m in result}
        assert values == {("x", 1): 1, ("x", 2): 3, ("y", 1): 5}

    def test_count_min_max_avg(self):
        r = Relation.from_rows(["t", "v"], [(1, 10), (2, 20), (3, 30)])
        for function, expected_at_3 in (("count", 2), ("min", 20), ("max", 30), ("avg", 25)):
            result = window_aggregate(
                r,
                function=function,
                attribute=None if function == "count" else "v",
                output="x",
                order_by=["t"],
                frame=(-1, 0),
            )
            values = {row[0]: row[2] for row, _m in result}
            assert values[3] == expected_at_3

    def test_invalid_frame(self):
        with pytest.raises(WindowSpecError):
            window_aggregate(
                Relation(["t"]), function="count", attribute=None, output="c",
                order_by=["t"], frame=(1, 0),
            )

    def test_missing_order_by(self):
        with pytest.raises(WindowSpecError):
            window_aggregate(
                Relation(["t"]), function="count", attribute=None, output="c",
                order_by=[], frame=(0, 0),
            )
