"""Unit tests for the morsel-driven worker pool (:mod:`repro.columnar.parallel`).

The differential property suite (``tests/property/test_parallel_differential``)
pins *what* the sharded stages compute; this file pins the executor machinery
itself — the ``workers`` knob's validation, the shard layout, result
ordering, and above all the failure modes: a shard worker that raises must
surface the **original** exception in the parent (not a hang, not a wrapped
pool error), and a worker that dies without reporting must raise
:class:`~repro.errors.ParallelError` instead of deadlocking.
"""

from __future__ import annotations

import os

import pytest

pytest.importorskip("numpy", reason="the parallel executor backs the columnar kernels")
import numpy as np

from repro.columnar.parallel import (
    MORSELS_PER_WORKER,
    WORKERS_ENV,
    fork_capable,
    morsel_count,
    parallel_map,
    resolve_workers,
    shard_ranges,
    shared_arrays,
)
from repro.errors import ParallelError, ReproError

needs_fork = pytest.mark.skipif(
    not fork_capable(), reason="the worker pool requires fork-started processes"
)


class TestResolveWorkers:
    def test_explicit_counts_pass_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4

    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_non_positive_counts_rejected(self, bad):
        with pytest.raises(ParallelError, match=">= 1"):
            resolve_workers(bad)

    @pytest.mark.parametrize("bad", [2.5, "2", True, False, [2]])
    def test_non_integers_rejected(self, bad):
        with pytest.raises(ParallelError, match="positive integer"):
            resolve_workers(bad)

    def test_parallel_error_is_a_repro_error(self):
        with pytest.raises(ReproError):
            resolve_workers(0)

    def test_default_without_env_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1
        assert resolve_workers() == 1

    def test_blank_env_is_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "   ")
        assert resolve_workers(None) == 1

    def test_env_value_is_read(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(None) == 3

    @pytest.mark.parametrize("raw", ["zero", "2.5", "0", "-2"])
    def test_bad_env_values_rejected(self, monkeypatch, raw):
        monkeypatch.setenv(WORKERS_ENV, raw)
        with pytest.raises(ParallelError, match=WORKERS_ENV):
            resolve_workers(None)

    def test_explicit_workers_ignore_the_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert resolve_workers(2) == 2

    @pytest.fixture
    def fresh_warning_flag(self, monkeypatch):
        """Reset the once-per-process oversubscription warning dedup flag."""
        from repro.columnar import parallel

        monkeypatch.setattr(parallel, "_warned_oversubscription", False)

    def test_oversubscription_warns_but_honours_the_count(
        self, monkeypatch, fresh_warning_flag
    ):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        with pytest.warns(RuntimeWarning, match="exceeds os.cpu_count"):
            assert resolve_workers(3) == 3

    def test_oversubscribed_env_value_warns(self, monkeypatch, fresh_warning_flag):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        monkeypatch.setenv(WORKERS_ENV, "4")
        with pytest.warns(RuntimeWarning, match="oversubscribe"):
            assert resolve_workers(None) == 4

    def test_oversubscription_warns_once_per_process(
        self, monkeypatch, fresh_warning_flag
    ):
        """Repeated oversubscribed calls warn exactly once (regression).

        The serving loop resolves the worker knob on every cached-view
        build; before the dedup flag, each call repeated the warning.
        """
        import warnings

        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        with pytest.warns(RuntimeWarning, match="exceeds os.cpu_count"):
            assert resolve_workers(5) == 5
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_workers(5) == 5  # deduped: silent, still honoured
            assert resolve_workers(8) == 8

    def test_fitting_counts_stay_silent(self, monkeypatch, fresh_warning_flag):
        import warnings

        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_workers(4) == 4
            assert resolve_workers(1) == 1


class TestShardRanges:
    def test_even_split(self):
        assert shard_ranges(10, 2) == [(0, 5), (5, 10)]

    def test_remainder_spreads_over_leading_shards(self):
        assert shard_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_empty_input_has_no_shards(self):
        assert shard_ranges(0, 4) == []
        assert shard_ranges(-3, 4) == []

    def test_more_shards_than_elements_caps_at_singletons(self):
        assert shard_ranges(3, 8) == [(0, 1), (1, 2), (2, 3)]

    @pytest.mark.parametrize("n", [1, 2, 5, 17, 64])
    @pytest.mark.parametrize("shards", [1, 2, 3, 7, 100])
    def test_contiguous_non_empty_and_balanced(self, n, shards):
        ranges = shard_ranges(n, shards)
        assert ranges[0][0] == 0 and ranges[-1][1] == n
        sizes = [stop - start for start, stop in ranges]
        assert all(size > 0 for size in sizes)
        assert max(sizes) - min(sizes) <= 1
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start

    def test_morsel_count_scales_with_workers(self):
        assert morsel_count(1) == MORSELS_PER_WORKER
        assert morsel_count(3) == 3 * MORSELS_PER_WORKER


class TestParallelMap:
    def test_serial_path_is_a_plain_map(self):
        assert parallel_map(lambda x: x * x, [1, 2, 3], workers=1) == [1, 4, 9]
        assert parallel_map(lambda x: x + 1, [], workers=4) == []
        assert parallel_map(lambda x: x + 1, [41], workers=4) == [42]

    @needs_fork
    def test_results_come_back_in_task_order(self):
        import time

        def skewed(task):
            index, delay = task
            time.sleep(delay)
            return index

        tasks = [(0, 0.05), (1, 0.0), (2, 0.02), (3, 0.0), (4, 0.01)]
        assert parallel_map(skewed, tasks, workers=2) == [0, 1, 2, 3, 4]

    @needs_fork
    def test_closures_reach_workers_without_pickling(self):
        shift = 100
        assert parallel_map(lambda x: x + shift, [1, 2, 3], workers=2) == [101, 102, 103]

    @needs_fork
    def test_worker_exception_reraises_the_original(self):
        """An injected shard fault must surface as-is in the parent — the
        pool tears down instead of hanging on the missing result."""

        def faulty(task):
            if task == 2:
                raise ValueError("injected shard fault on task 2")
            return task

        with pytest.raises(ValueError, match="injected shard fault on task 2"):
            parallel_map(faulty, [0, 1, 2, 3], workers=2)

    @needs_fork
    def test_dead_worker_raises_parallel_error_not_deadlock(self):
        """A worker dying without reporting (``os._exit``) is detected by the
        liveness poll; the parent raises instead of waiting forever."""

        def dying(task):
            if task == 1:
                os._exit(17)
            return task

        with pytest.raises(ParallelError, match="exited without reporting"):
            parallel_map(dying, [0, 1, 2, 3], workers=2)

    @needs_fork
    def test_unpicklable_results_fail_loudly(self):
        """A result that cannot be pickled ships the pickling error to the
        parent (eager worker-side pickling) instead of dying silently in the
        queue's feeder thread and hanging the pool."""
        with pytest.raises(Exception, match="[Pp]ickle"):
            parallel_map(lambda task: lambda: task, [0, 1], workers=2)


class TestSharedArrays:
    def test_specs_become_writable_typed_arrays(self):
        float_buf, int_buf = shared_arrays((5, np.float64), (3, np.int64))
        assert float_buf.shape == (5,) and float_buf.dtype == np.float64
        assert int_buf.shape == (3,) and int_buf.dtype == np.int64
        float_buf[:] = 1.5
        int_buf[:] = -2
        assert float_buf.tolist() == [1.5] * 5
        assert int_buf.tolist() == [-2] * 3

    def test_zero_length_spec_is_allowed(self):
        (empty,) = shared_arrays((0, np.float64))
        assert empty.shape == (0,)

    @needs_fork
    def test_worker_writes_are_visible_to_the_parent(self):
        """The anonymous mapping is MAP_SHARED: forked workers fill the
        parent's array in place (no result-queue round trip)."""
        (buffer,) = shared_arrays((6, np.int64))
        buffer[:] = -1

        def fill(block):
            start, stop = block
            buffer[start:stop] = np.arange(start, stop) * 10
            return None

        parallel_map(fill, shard_ranges(6, 3), workers=2)
        assert buffer.tolist() == [0, 10, 20, 30, 40, 50]
