"""Parser goldens per clause family, plus positioned SqlError carets.

The statement-AST dataclasses carry their source positions as
``field(compare=False)``, so golden comparisons here are purely structural —
equality checks spell out the expected tree without pinning every
line/column.  Error tests assert the rendered message ends with the
``at line L, column C`` suffix and a caret under the offending token.
"""

from __future__ import annotations

import pytest

from repro.errors import SqlError
from repro.sql import parse, tokenize
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    JoinClause,
    Literal,
    NotExpr,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
    WindowClause,
)


def ref(name, table=None):
    return ColumnRef(table, name)


# -- tokenizer ----------------------------------------------------------------


def test_tokenizer_positions_and_kinds():
    kinds = [(t.type, t.value) for t in tokenize("SELECT a1 <> 2.5 -- trailing\n")]
    assert kinds == [
        ("KEYWORD", "SELECT"),
        ("IDENT", "a1"),
        ("OP", "<>"),
        ("NUMBER", 2.5),
        ("EOF", None),
    ]
    token = tokenize("SELECT\n  foo")[1]
    assert (token.line, token.column) == (2, 3)


def test_tokenizer_string_literals_and_unterminated():
    assert tokenize("'it''s'")[0].value == "it's"
    with pytest.raises(SqlError, match="unterminated string"):
        tokenize("SELECT 'oops FROM t")


# -- goldens per clause family ------------------------------------------------


def test_select_list_aliases_and_bare_columns():
    assert parse("SELECT a, b AS beta, t.c gamma FROM t") == SelectStatement(
        items=(
            SelectItem(ref("a")),
            SelectItem(ref("b"), "beta"),
            SelectItem(ref("c", "t"), "gamma"),
        ),
        source=TableRef("t"),
    )


def test_expression_precedence_and_normalisation():
    stmt = parse("SELECT a + 2 * 3 AS e FROM t WHERE NOT a < 5 AND b <> 1 OR c = 0")
    # * binds tighter than +; <> normalises to !=; OR is the loosest.
    assert stmt.items[0].expression == BinaryOp(
        "+", ref("a"), BinaryOp("*", Literal(2), Literal(3))
    )
    assert stmt.where == BinaryOp(
        "OR",
        BinaryOp(
            "AND",
            NotExpr(BinaryOp("<", ref("a"), Literal(5))),
            BinaryOp("!=", ref("b"), Literal(1)),
        ),
        BinaryOp("=", ref("c"), Literal(0)),
    )


def test_unary_minus_folds_into_literals_only():
    stmt = parse("SELECT -3 AS m FROM t WHERE a > -b")
    assert stmt.items[0].expression == Literal(-3)
    assert stmt.where == BinaryOp(">", ref("a"), BinaryOp("*", Literal(-1), ref("b")))


def test_join_clauses_left_deep():
    stmt = parse("SELECT x FROM t a INNER JOIN s ON a.k = s.k JOIN u ON u.j = s.j")
    assert stmt.source == TableRef("t", "a")
    assert stmt.joins == (
        JoinClause(TableRef("s"), BinaryOp("=", ref("k", "a"), ref("k", "s"))),
        JoinClause(TableRef("u"), BinaryOp("=", ref("j", "u"), ref("j", "s"))),
    )


def test_group_order_limit():
    stmt = parse("SELECT g, SUM(v) AS s FROM t GROUP BY g, h ORDER BY s DESC LIMIT 3")
    assert stmt.items[1] == SelectItem(FuncCall("sum", ref("v")), "s")
    assert stmt.group_by == (ref("g"), ref("h"))
    assert stmt.order_by == (OrderItem(ref("s"), descending=True),)
    assert stmt.limit == 3


def test_count_star():
    stmt = parse("SELECT COUNT(*) AS n FROM t")
    assert stmt.items[0].expression == FuncCall("count", None, star=True)


def test_window_clause_frames():
    stmt = parse(
        "SELECT SUM(v) OVER (PARTITION BY g ORDER BY a "
        "ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) AS w FROM t"
    )
    assert stmt.items[0].expression == FuncCall(
        "sum",
        ref("v"),
        window=WindowClause((ref("g"),), (OrderItem(ref("a")),), (-2, 0)),
    )
    # omitted frame parses as None (the engine defaults it to (0, 0))
    stmt = parse("SELECT COUNT(*) OVER (ORDER BY a DESC) AS n FROM t")
    assert stmt.items[0].expression.window == WindowClause(
        (), (OrderItem(ref("a"), descending=True),), None
    )


def test_following_only_frame():
    stmt = parse(
        "SELECT MAX(v) OVER (ORDER BY a ROWS BETWEEN CURRENT ROW AND 3 FOLLOWING) AS m FROM t"
    )
    assert stmt.items[0].expression.window.frame == (0, 3)


# -- positioned errors --------------------------------------------------------


def assert_caret(excinfo, needle: str, line: int, column: int):
    message = str(excinfo.value)
    assert needle in message
    assert f"at line {line}, column {column}" in message
    source_line, caret_line = message.splitlines()[-2:]
    assert caret_line.strip() == "^"
    assert len(caret_line) - len(caret_line.rstrip("^").rstrip()) >= 0
    assert caret_line.index("^") - source_line.index(source_line.strip()[0]) == column - 1


def test_missing_expression_caret():
    with pytest.raises(SqlError) as excinfo:
        parse("SELECT FROM t")
    assert_caret(excinfo, "expected an expression, found 'FROM'", 1, 8)


def test_trailing_garbage_caret():
    with pytest.raises(SqlError) as excinfo:
        parse("SELECT a FROM t LIMIT 2 2")
    assert_caret(excinfo, "unexpected", 1, 25)


def test_unbounded_frame_rejected():
    with pytest.raises(SqlError) as excinfo:
        parse(
            "SELECT SUM(v) OVER (ORDER BY a "
            "ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) AS w FROM t"
        )
    assert "UNBOUNDED frames are not supported" in str(excinfo.value)


def test_malformed_frame_bound():
    with pytest.raises(SqlError, match="expected PRECEDING or FOLLOWING"):
        parse("SELECT SUM(v) OVER (ORDER BY a ROWS BETWEEN 2 AND 3 FOLLOWING) AS w FROM t")


def test_limit_requires_integer():
    with pytest.raises(SqlError, match="LIMIT expects a non-negative integer"):
        parse("SELECT a FROM t ORDER BY a LIMIT 2.5")


def test_multiline_caret_points_into_the_right_line():
    with pytest.raises(SqlError) as excinfo:
        parse("SELECT a\nFROM t\nWHERE AND")
    error = excinfo.value
    assert (error.line, error.column) == (3, 7)
    assert str(error).splitlines()[-2] == "  WHERE AND"
