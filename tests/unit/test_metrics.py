"""Unit tests for bound-quality metrics (repro.metrics.quality)."""

import pytest

from repro.metrics.quality import (
    QualityReport,
    bound_accuracy,
    bound_overlap,
    bound_recall,
    compare_bounds,
    estimated_range_ratio,
)


class TestPairwiseMetrics:
    def test_overlap(self):
        assert bound_overlap((0, 10), (5, 20)) == 5
        assert bound_overlap((0, 1), (2, 3)) == 0

    def test_recall_of_over_approximation_is_one(self):
        assert bound_recall((0, 20), (5, 10)) == 1.0

    def test_recall_of_under_approximation(self):
        assert bound_recall((6, 8), (5, 10)) == pytest.approx(0.4)

    def test_accuracy_of_under_approximation_is_one(self):
        assert bound_accuracy((6, 8), (5, 10)) == 1.0

    def test_accuracy_of_over_approximation(self):
        assert bound_accuracy((0, 20), (5, 10)) == pytest.approx(0.25)

    def test_point_bounds(self):
        assert bound_recall((1, 5), (3, 3)) == 1.0
        assert bound_recall((1, 2), (3, 3)) == 0.0
        assert bound_accuracy((3, 3), (1, 5)) == 1.0
        assert bound_accuracy((9, 9), (1, 5)) == 0.0

    def test_range_ratio(self):
        assert estimated_range_ratio((0, 20), (5, 10)) == pytest.approx(4.0)
        assert estimated_range_ratio((6, 8), (5, 10)) == pytest.approx(0.4)
        assert estimated_range_ratio((1, 1), (2, 2)) == 1.0
        assert estimated_range_ratio((0, 2), (3, 3)) == float("inf")


class TestCompareBounds:
    def test_averages(self):
        truths = {"a": (0.0, 10.0), "b": (0.0, 4.0)}
        estimates = {"a": (0.0, 10.0), "b": (0.0, 2.0)}
        report = compare_bounds(estimates, truths)
        assert isinstance(report, QualityReport)
        assert report.tuples == 2
        assert report.recall == pytest.approx((1.0 + 0.5) / 2)
        assert report.accuracy == 1.0
        assert report.range_ratio == pytest.approx((1.0 + 0.5) / 2)

    def test_missing_estimates_hurt_recall(self):
        report = compare_bounds({}, {"a": (0.0, 10.0)})
        assert report.recall == 0.0 and report.accuracy == 1.0

    def test_point_only_pairs_do_not_dilute_ratio(self):
        truths = {"a": (1.0, 1.0), "b": (0.0, 4.0)}
        estimates = {"a": (1.0, 1.0), "b": (0.0, 8.0)}
        report = compare_bounds(estimates, truths)
        assert report.range_ratio == pytest.approx(2.0)

    def test_empty_truths(self):
        report = compare_bounds({}, {})
        assert report == QualityReport(1.0, 1.0, 1.0, 0)
