"""Unit tests for the AU-DB relational operators (repro.core.operators)."""

import pytest

from repro.core.expressions import attr
from repro.core.multiplicity import Multiplicity
from repro.core.operators import (
    cross,
    distinct,
    extend,
    groupby_aggregate,
    join,
    project,
    rename,
    select,
    union,
)
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.core.tuples import AUTuple
from repro.errors import OperatorError, SchemaError


def people() -> AURelation:
    return AURelation.from_rows(
        ["name", "age", "dept"],
        [
            (("ann", RangeValue(30, 32, 35), "eng"), (1, 1, 1)),
            (("bob", 40, "eng"), (0, 1, 1)),
            (("cat", RangeValue(20, 25, 45), "hr"), (1, 1, 1)),
        ],
    )


class TestSelect:
    def test_certain_condition_keeps_certain_multiplicity(self):
        result = select(people(), attr("age").ge(30))
        mult = {tup.value("name").sg: m for tup, m in result}
        assert mult["ann"] == Multiplicity(1, 1, 1)
        assert mult["bob"] == Multiplicity(0, 1, 1)

    def test_uncertain_condition_degrades_to_possible(self):
        result = select(people(), attr("age").ge(40))
        mult = {tup.value("name").sg: m for tup, m in result}
        assert "ann" not in mult  # certainly fails
        assert mult["cat"] == Multiplicity(0, 0, 1)  # possibly passes

    def test_callable_predicate(self):
        result = select(people(), lambda tup: tup.value("dept").eq(RangeValue.certain("hr")))
        assert len(result) == 1


class TestProjectExtendRename:
    def test_project_merges(self):
        result = project(people(), ["dept"])
        mult = {tup.value("dept").sg: m for tup, m in result}
        assert mult["eng"] == Multiplicity(1, 2, 2)

    def test_extend_computes_ranges(self):
        result = extend(people(), "age2", attr("age") + attr("age"))
        ages = {tup.value("name").sg: tup.value("age2") for tup, _m in result}
        assert ages["ann"] == RangeValue(60, 64, 70)

    def test_rename(self):
        result = rename(people(), {"age": "years"})
        assert "years" in result.schema and "age" not in result.schema


class TestUnionJoinCrossDistinct:
    def test_union_adds_annotations(self):
        result = union(people(), people())
        mult = {tup.value("name").sg: m for tup, m in result}
        assert mult["ann"] == Multiplicity(2, 2, 2)

    def test_union_schema_mismatch(self):
        with pytest.raises(SchemaError):
            union(people(), AURelation.from_rows(["x"], []))

    def test_cross_multiplies_annotations(self):
        left = AURelation.from_rows(["a"], [((1,), (1, 1, 2))])
        right = AURelation.from_rows(["b"], [((2,), (0, 1, 3))])
        result = cross(left, right)
        _tup, mult = next(iter(result))
        assert mult == Multiplicity(0, 1, 6)

    def test_equi_join_on_uncertain_attribute(self):
        left = AURelation.from_rows(["k", "x"], [((RangeValue(1, 1, 2), "l"), (1, 1, 1))])
        right = AURelation.from_rows(["k", "y"], [((2, "r"), (1, 1, 1))])
        result = join(left, right, on=["k"])
        assert len(result) == 1
        _tup, mult = next(iter(result))
        # The join is possible (ranges overlap) but not certain.
        assert mult == Multiplicity(0, 0, 1)

    def test_join_requires_condition(self):
        with pytest.raises(OperatorError):
            join(people(), people())

    def test_theta_join_predicate(self):
        left = AURelation.from_rows(["a"], [((1,), 1), ((9,), 1)])
        right = AURelation.from_rows(["b"], [((5,), 1)])
        result = join(left, right, attr("a").lt(attr("b")))
        values = {tup.value("a").sg for tup, _m in result}
        assert values == {1}

    def test_distinct_caps_multiplicities(self):
        relation = AURelation.from_rows(["a"], [((1,), (2, 3, 4))])
        result = distinct(relation)
        _tup, mult = next(iter(result))
        assert mult == Multiplicity(1, 1, 1)


class TestGroupByAggregate:
    def test_count_and_sum_with_certain_groups(self):
        relation = AURelation.from_rows(
            ["g", "v"],
            [
                (("x", RangeValue(1, 2, 3)), (1, 1, 1)),
                (("x", 10), (0, 1, 1)),
                (("y", 5), (1, 1, 1)),
            ],
        )
        result = groupby_aggregate(relation, ["g"], [("count", "*", "ct"), ("sum", "v", "total")])
        rows = {tup.value("g").sg: tup for tup, _m in result}
        assert rows["x"].value("ct") == RangeValue(1, 2, 2)
        assert rows["x"].value("total") == RangeValue(1, 12, 13)
        assert rows["y"].value("ct") == RangeValue.certain(1)

    def test_min_max(self):
        relation = AURelation.from_rows(
            ["g", "v"],
            [(("x", RangeValue(1, 2, 3)), (1, 1, 1)), (("x", RangeValue(5, 6, 9)), (0, 0, 1))],
        )
        result = groupby_aggregate(relation, ["g"], [("min", "v", "lo"), ("max", "v", "hi")])
        tup = result.tuples()[0]
        assert tup.value("lo").lb == 1 and tup.value("lo").ub == 3
        assert tup.value("hi").ub == 9 and tup.value("hi").lb == 1

    def test_group_multiplicity_reflects_certainty(self):
        relation = AURelation.from_rows(
            ["g", "v"], [(("x", 1), (0, 1, 1))]
        )
        result = groupby_aggregate(relation, ["g"], [("count", "*", "ct")])
        _tup, mult = next(iter(result))
        assert mult == Multiplicity(0, 1, 1)

    def test_uncertain_group_attribute_widens_key_range(self):
        relation = AURelation.from_rows(
            ["g", "v"], [((RangeValue(1, 1, 2), 10), (1, 1, 1))]
        )
        result = groupby_aggregate(relation, ["g"], [("sum", "v", "total")])
        tup = result.tuples()[0]
        assert tup.value("g") == RangeValue(1, 1, 2)

    def test_unsupported_aggregate(self):
        with pytest.raises(OperatorError):
            groupby_aggregate(people(), ["dept"], [("median", "age", "m")])

    def test_bound_preservation_with_certain_groups(self):
        from repro.core.bounding import bounds_world
        from repro.relational.operators import groupby_aggregate as det_groupby
        from repro.relational.relation import Relation

        relation = AURelation.from_rows(
            ["g", "v"],
            [
                (("x", RangeValue(1, 2, 3)), (1, 1, 1)),
                (("x", 10), (0, 1, 1)),
                (("y", RangeValue(4, 5, 6)), (1, 1, 1)),
            ],
        )
        result = groupby_aggregate(relation, ["g"], [("sum", "v", "total"), ("count", "*", "ct")])
        # Enumerate a few worlds consistent with the AU-DB and check bounding.
        for v1 in (1, 3):
            for include_second in (0, 1):
                for v3 in (4, 6):
                    world = Relation(["g", "v"])
                    world.add(("x", v1))
                    if include_second:
                        world.add(("x", 10))
                    world.add(("y", v3))
                    det = det_groupby(world, ["g"], [("sum", "v", "total"), ("count", "*", "ct")])
                    assert bounds_world(result, det)
