"""Unit tests for the factorised AU-relation layer.

Structural checks the differential property suites cannot express: group
layout after each pushdown operator, the pair-row allocation counter, error
parity with the eager kernels, and the plan-level guarantee that a
``select -> join -> select -> window`` chain never expands mid-chain.
"""

import pytest

pytest.importorskip("numpy", reason="the columnar backend requires NumPy")

import numpy as np

from repro.columnar import factorised as fx
from repro.columnar import operators as col_ops
from repro.columnar.factorised import (
    FactorisedAURelation,
    as_factorised,
    pair_rows_materialised,
    reset_pair_rows,
)
from repro.columnar.plan import ColumnarPlan
from repro.columnar.relation import ColumnarAURelation
from repro.columnar.sort import sort_stage
from repro.columnar.window import window_stage
from repro.core.expressions import attr, const
from repro.core.operators import join, select
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.errors import OperatorError, WindowSpecError
from repro.window.spec import WindowSpec


def left_table():
    """Certain integer keys, uncertain payload — qualifies for searchsorted."""
    return AURelation.from_rows(
        ["k", "a"],
        [
            ((0, 10), (1, 1, 1)),
            ((1, RangeValue(1, 2, 5)), (0, 1, 2)),
            ((1, 30), (1, 1, 2)),
            ((2, RangeValue(-3, 0, 0)), (1, 2, 2)),
        ],
    )


def right_table():
    return AURelation.from_rows(
        ["k", "b"],
        [
            ((1, 7), (1, 1, 1)),
            ((1, RangeValue(0, 4, 4)), (1, 1, 3)),
            ((2, -2), (0, 0, 1)),
            ((5, 9), (1, 1, 1)),
        ],
    )


def factorise(relation):
    return as_factorised(ColumnarAURelation.from_relation(relation))


def assert_same(expected: AURelation, actual: AURelation) -> None:
    assert expected.schema == actual.schema
    assert expected._rows == actual._rows


class TestRepresentation:
    def test_wrap_and_expand_roundtrip(self):
        fact = factorise(left_table())
        assert len(fact.groups) == 1
        assert fact.groups[0].is_simple
        assert len(fact) == 4
        assert_same(left_table(), fact.to_relation())

    def test_as_factorised_is_idempotent(self):
        fact = factorise(left_table())
        assert as_factorised(fact) is fact

    def test_expand_of_simple_group_is_zero_copy(self):
        columnar = ColumnarAURelation.from_relation(left_table())
        fact = FactorisedAURelation.from_columnar(columnar)
        assert fact.expand() is columnar

    def test_pair_rows_counter_resets_and_accumulates(self):
        reset_pair_rows()
        assert pair_rows_materialised() == 0
        fact = fx.fact_join(factorise(left_table()), factorise(right_table()), on=["k"])
        assert isinstance(fact, FactorisedAURelation)
        after_join = pair_rows_materialised()
        assert after_join > 0
        fact.expand()
        assert pair_rows_materialised() > after_join


class TestJoinLayout:
    def test_join_keeps_pair_index_layout(self):
        fact = fx.fact_join(factorise(left_table()), factorise(right_table()), on=["k"])
        assert isinstance(fact, FactorisedAURelation)
        assert len(fact.groups) == 1
        group = fact.groups[0]
        assert not group.is_simple
        # Both sides' fragments survive unexpanded behind int64 pair indices.
        assert len(group.fragments) == 2
        assert all(index.dtype == np.int64 for index in group.indices)
        assert_same(
            join(left_table(), right_table(), on=["k"]), fact.to_relation()
        )

    def test_join_uncertain_keys_stays_factorised_via_sweep(self):
        """Neither side certain on the key: the range×range sweep keeps pairs."""
        uncertain_left = AURelation.from_rows(
            ["k", "a"], [((RangeValue(0, 1, 2), 10), (1, 1, 1))]
        )
        uncertain_right = AURelation.from_rows(
            ["k", "b"], [((RangeValue(1, 1, 3), 7), (1, 1, 1))]
        )
        result = fx.fact_join(
            factorise(uncertain_left), factorise(uncertain_right), on=["k"]
        )
        assert isinstance(result, FactorisedAURelation)
        assert_same(
            join(uncertain_left, uncertain_right, on=["k"]), result.to_relation()
        )

    def test_join_object_keys_fall_back_to_columnar(self):
        """Non-vectorizable (object-dtype) keys: automatic expand-and-join."""
        obj_left = AURelation.from_rows(["k", "a"], [(("x", 10), (1, 1, 1))])
        obj_right = AURelation.from_rows(["k", "b"], [(("x", 7), (1, 1, 1))])
        result = fx.fact_join(factorise(obj_left), factorise(obj_right), on=["k"])
        assert isinstance(result, ColumnarAURelation)
        assert_same(join(obj_left, obj_right, on=["k"]), result.to_relation())

    def test_cross_concatenates_groups(self):
        fact = fx.fact_cross(factorise(left_table()), factorise(right_table()))
        assert len(fact.groups) == 2
        assert len(fact) == len(left_table()) * len(right_table())


class TestPushdown:
    def test_select_on_simple_group_filters_the_fragment(self):
        fact = fx.fact_select(factorise(left_table()), attr("a").ge(const(5)))
        assert isinstance(fact, FactorisedAURelation)
        assert fact.groups[0].is_simple
        assert len(fact.groups[0].fragments[0]) < len(left_table())
        assert_same(select(left_table(), attr("a").ge(const(5))), fact.to_relation())

    def test_select_after_join_keeps_pair_layout(self):
        joined = fx.fact_join(
            factorise(left_table()), factorise(right_table()), on=["k"]
        )
        fact = fx.fact_select(joined, attr("b").ge(const(0)))
        assert isinstance(fact, FactorisedAURelation)
        assert not fact.groups[0].is_simple
        eager = select(
            join(left_table(), right_table(), on=["k"]), attr("b").ge(const(0))
        )
        assert_same(eager, fact.to_relation())

    def test_project_gathers_only_kept_columns(self):
        joined = fx.fact_join(
            factorise(left_table()), factorise(right_table()), on=["k"]
        )
        reset_pair_rows()
        projected = fx.fact_project(joined, ["a", "b"])
        # Two kept columns (three arrays each) plus the multiplicity triple:
        # the dropped key columns never materialise at pair length.
        assert pair_rows_materialised() <= 9 * len(joined)
        assert isinstance(projected, ColumnarAURelation)

    def test_sort_and_window_reattach_untouched_fragments(self):
        joined = fx.fact_join(
            factorise(left_table()), factorise(right_table()), on=["k"]
        )
        expanded = joined.expand()
        sorted_fact = fx.fact_sort(joined, ["a"])
        assert isinstance(sorted_fact, FactorisedAURelation)
        assert_same(
            sort_stage(expanded, ["a"]).to_relation(), sorted_fact.to_relation()
        )
        spec = WindowSpec(
            function="sum", attribute="b", output="w", order_by=("a",), frame=(-1, 0)
        )
        windowed = fx.fact_window(joined, spec)
        assert_same(
            window_stage(expanded, spec).to_relation(), windowed.to_relation()
        )


class TestErrorParity:
    def test_join_requires_predicate_or_on(self):
        fact = factorise(left_table())
        with pytest.raises(OperatorError, match="predicate or an `on`"):
            fx.fact_join(fact, factorise(right_table()))
        with pytest.raises(OperatorError, match="predicate or an `on`"):
            col_ops.join(
                ColumnarAURelation.from_relation(left_table()),
                ColumnarAURelation.from_relation(right_table()),
            )

    def test_join_rejects_unknown_method(self):
        with pytest.raises(OperatorError, match="unknown join method"):
            fx.fact_join(
                factorise(left_table()),
                factorise(right_table()),
                on=["k"],
                method="hash",
            )

    def test_searchsorted_requires_on(self):
        with pytest.raises(OperatorError, match="requires an `on`"):
            fx.fact_join(
                factorise(left_table()),
                factorise(right_table()),
                attr("a").lt(attr("b")),
                method="searchsorted",
            )

    def test_sort_requires_order_by(self):
        with pytest.raises(OperatorError, match="at least one order-by"):
            fx.fact_sort(factorise(left_table()), [])

    def test_window_rejects_output_collision(self):
        spec = WindowSpec(
            function="sum", attribute="a", output="a", order_by=("a",), frame=(-1, 0)
        )
        with pytest.raises(WindowSpecError, match="already exists"):
            fx.fact_window(factorise(left_table()), spec)


class TestPlanIntegration:
    def chain(self, plan, right):
        return (
            plan.select(attr("a").ge(const(0)))
            .join(right, on=["k"])
            .select(attr("b").ge(const(0)))
        )

    def test_factorised_accessor_and_no_midchain_expansion(self):
        left = ColumnarAURelation.from_relation(left_table())
        right = ColumnarAURelation.from_relation(right_table())
        plan = self.chain(ColumnarPlan(left), right)
        fact = plan.factorised()
        assert isinstance(fact, FactorisedAURelation)
        assert not fact.groups[0].is_simple  # still pairs, not a product table

    def test_chain_matches_python_backend(self):
        spec = WindowSpec(
            function="sum", attribute="b", output="w", order_by=("a",), frame=(-1, 0)
        )
        from repro.window.native import window_native

        python_result = window_native(
            select(
                join(
                    select(left_table(), attr("a").ge(const(0))),
                    right_table(),
                    on=["k"],
                ),
                attr("b").ge(const(0)),
            ),
            spec,
        )
        right = ColumnarAURelation.from_relation(right_table())
        plan = self.chain(
            ColumnarPlan(ColumnarAURelation.from_relation(left_table())), right
        ).window(spec)
        assert_same(python_result, plan.to_rows())

    def test_stage_guard_names_factorised_layout(self):
        from repro.columnar.plan import _STAGE_NAMES

        assert "factorised" in _STAGE_NAMES
