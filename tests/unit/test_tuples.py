"""Unit tests for range-annotated tuples (repro.core.tuples)."""

import pytest

from repro.core.ranges import RangeValue
from repro.core.schema import Schema
from repro.core.tuples import AUTuple
from repro.errors import SchemaError

SCHEMA = Schema(["a", "b"])


class TestConstruction:
    def test_from_values_lifts_scalars(self):
        tup = AUTuple.from_values(SCHEMA, [1, RangeValue(2, 3, 4)])
        assert tup.value("a") == RangeValue.certain(1)
        assert tup.value("b") == RangeValue(2, 3, 4)

    def test_from_mapping(self):
        tup = AUTuple.from_mapping(SCHEMA, {"b": 5, "a": 1})
        assert tup.values == (RangeValue.certain(1), RangeValue.certain(5))

    def test_certain(self):
        tup = AUTuple.certain(SCHEMA, (1, 2))
        assert tup.is_certain

    def test_arity_mismatch(self):
        with pytest.raises(SchemaError):
            AUTuple.from_values(SCHEMA, [1])

    def test_getitem(self):
        tup = AUTuple.certain(SCHEMA, (1, 2))
        assert tup["b"] == RangeValue.certain(2)


class TestProjections:
    def test_rows(self):
        tup = AUTuple.from_values(SCHEMA, [RangeValue(1, 2, 3), 5])
        assert tup.lower_row() == (1, 5)
        assert tup.sg_row() == (2, 5)
        assert tup.upper_row() == (3, 5)

    def test_bounds_row(self):
        tup = AUTuple.from_values(SCHEMA, [RangeValue(1, 2, 3), 5])
        assert tup.bounds_row((2, 5))
        assert tup.bounds_row((1, 5)) and tup.bounds_row((3, 5))
        assert not tup.bounds_row((4, 5))
        assert not tup.bounds_row((2, 6))
        assert not tup.bounds_row((2,))


class TestStructuralOps:
    def test_project(self):
        tup = AUTuple.certain(SCHEMA, (1, 2))
        assert tup.project(["b"]).values == (RangeValue.certain(2),)

    def test_extend_and_replace(self):
        tup = AUTuple.certain(SCHEMA, (1, 2)).extend("c", RangeValue(0, 1, 2))
        assert tup.schema == Schema(["a", "b", "c"])
        replaced = tup.replace("a", 9)
        assert replaced.value("a") == RangeValue.certain(9)

    def test_extend_many(self):
        tup = AUTuple.certain(SCHEMA, (1, 2)).extend_many([("c", 3), ("d", 4)])
        assert tup.schema == Schema(["a", "b", "c", "d"])

    def test_concat(self):
        left = AUTuple.certain(SCHEMA, (1, 2))
        right = AUTuple.certain(Schema(["c"]), (3,))
        assert left.concat(right).schema == Schema(["a", "b", "c"])

    def test_as_dict(self):
        tup = AUTuple.certain(SCHEMA, (1, 2))
        assert tup.as_dict() == {"a": RangeValue.certain(1), "b": RangeValue.certain(2)}


class TestUncertainComparison:
    def test_certainly_less(self):
        t1 = AUTuple.from_values(SCHEMA, [RangeValue(1, 1, 2), 0])
        t2 = AUTuple.from_values(SCHEMA, [RangeValue(3, 4, 5), 0])
        triple = t1.compare_lt(t2, ["a"])
        assert triple.lb and triple.sg and triple.ub

    def test_possibly_less_only(self):
        t1 = AUTuple.from_values(SCHEMA, [RangeValue(1, 3, 5), 0])
        t2 = AUTuple.from_values(SCHEMA, [RangeValue(2, 2, 4), 0])
        triple = t1.compare_lt(t2, ["a"])
        assert not triple.lb and triple.ub

    def test_lexicographic_second_attribute(self):
        t1 = AUTuple.from_values(SCHEMA, [1, 2])
        t2 = AUTuple.from_values(SCHEMA, [1, 5])
        triple = t1.compare_lt(t2, ["a", "b"])
        assert triple.lb

    def test_incomparable(self):
        t1 = AUTuple.from_values(SCHEMA, [5, 0])
        t2 = AUTuple.from_values(SCHEMA, [1, 0])
        triple = t1.compare_lt(t2, ["a"])
        assert not triple.ub
