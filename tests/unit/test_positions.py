"""Unit tests for uncertain sort-position bounds (repro.ranking.positions)."""

from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.core.tuples import AUTuple
from repro.ranking.positions import (
    Desc,
    certainly_before,
    order_key_earliest,
    order_key_latest,
    order_key_sg,
    position_bounds,
    possibly_before,
    sg_before,
)


def example6_relation() -> AURelation:
    """The input relation of the paper's Example 6."""
    return AURelation.from_rows(
        ["A", "B"],
        [
            ((1, RangeValue(1, 1, 3)), (1, 1, 2)),
            ((RangeValue(2, 3, 3), 15), (0, 1, 1)),
            ((RangeValue(1, 1, 2), 2), (1, 1, 1)),
        ],
    )


def tup(relation, index):
    return relation.tuples()[index]


class TestOrderKeys:
    def test_ascending_keys(self):
        relation = example6_relation()
        t = tup(relation, 0)
        assert order_key_earliest(t, ["A", "B"]) < order_key_latest(t, ["A", "B"])

    def test_descending_swaps_roles(self):
        relation = example6_relation()
        t = tup(relation, 2)  # A in [1, 2]
        earliest = order_key_earliest(t, ["A"], descending=True)
        latest = order_key_latest(t, ["A"], descending=True)
        assert earliest <= latest
        assert isinstance(earliest[0], Desc)

    def test_desc_wrapper_inverts_order(self):
        assert Desc(5) < Desc(3)
        assert Desc(3) == Desc(3)
        assert sorted([Desc(1), Desc(9), Desc(4)]) == [Desc(9), Desc(4), Desc(1)]


class TestComparisons:
    def test_certainly_before(self):
        relation = example6_relation()
        t1, t2 = tup(relation, 0), tup(relation, 1)
        assert certainly_before(t1, t2, ["A", "B"])
        assert not certainly_before(t2, t1, ["A", "B"])

    def test_possibly_before_with_overlap(self):
        relation = example6_relation()
        t1, t3 = tup(relation, 0), tup(relation, 2)
        assert possibly_before(t1, t3, ["A", "B"])
        assert possibly_before(t3, t1, ["A", "B"])

    def test_sg_before_uses_tiebreakers(self):
        schema = ["A", "B"]
        relation = AURelation.from_rows(schema, [((1, 5), 1), ((1, 2), 1)])
        first, second = relation.tuples()
        assert sg_before(second, first, ["A"], first_seq=1, second_seq=0)
        assert not sg_before(first, second, ["A"], first_seq=0, second_seq=1)

    def test_sg_before_sequence_tiebreak_for_identical_tuples(self):
        relation = AURelation.from_rows(["A"], [((1,), 1)])
        t = relation.tuples()[0]
        assert sg_before(t, t, ["A"], first_seq=0, second_seq=1)
        assert not sg_before(t, t, ["A"], first_seq=1, second_seq=0)

    def test_descending_comparison(self):
        relation = AURelation.from_rows(["A"], [((1,), 1), ((5,), 1)])
        low, high = relation.tuples()
        assert certainly_before(high, low, ["A"], descending=True)
        assert not certainly_before(low, high, ["A"], descending=True)


class TestPositionBounds:
    def test_example6_positions(self):
        relation = example6_relation()
        order = ["A", "B"]
        t1, t2, t3 = relation.tuples()
        assert position_bounds(relation, order, t1, 0) == RangeValue(0, 0, 1)
        assert position_bounds(relation, order, t1, 1) == RangeValue(1, 1, 2)
        assert position_bounds(relation, order, t3, 0) == RangeValue(0, 1, 2)
        assert position_bounds(relation, order, t2, 0) == RangeValue(2, 2, 3)

    def test_certain_relation_positions_are_exact(self):
        relation = AURelation.from_rows(["A"], [((3,), 1), ((1,), 1), ((2,), 1)])
        order = ["A"]
        values = {
            tup.value("A").sg: position_bounds(relation, order, tup) for tup in relation.tuples()
        }
        assert values[1] == RangeValue(0, 0, 0)
        assert values[2] == RangeValue(1, 1, 1)
        assert values[3] == RangeValue(2, 2, 2)

    def test_duplicate_offsets(self):
        relation = AURelation.from_rows(["A"], [((1,), 3)])
        t = relation.tuples()[0]
        assert position_bounds(relation, ["A"], t, 2) == RangeValue(2, 2, 2)
