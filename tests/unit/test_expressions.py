"""Unit tests for the expression language (repro.core.expressions)."""

import pytest

from repro.core.booleans import RangeBool
from repro.core.expressions import Constant, IfThenElse, attr, const
from repro.core.ranges import RangeValue
from repro.core.schema import Schema
from repro.core.tuples import AUTuple
from repro.errors import ExpressionError

SCHEMA = Schema(["a", "b"])
TUPLE = AUTuple.from_values(SCHEMA, [RangeValue(1, 2, 3), 10])
ROW = {"a": 2, "b": 10}


class TestScalarExpressions:
    def test_attribute_lookup(self):
        assert attr("a").eval_range(TUPLE) == RangeValue(1, 2, 3)
        assert attr("a").eval_det(ROW) == 2

    def test_missing_attribute(self):
        with pytest.raises(ExpressionError):
            attr("z").eval_det(ROW)

    def test_constant(self):
        assert const(7).eval_range(TUPLE) == RangeValue.certain(7)
        assert const(7).eval_det(ROW) == 7

    def test_arithmetic(self):
        expr = attr("a") + const(1)
        assert expr.eval_range(TUPLE) == RangeValue(2, 3, 4)
        assert expr.eval_det(ROW) == 3

    def test_subtraction_and_multiplication(self):
        assert (attr("b") - attr("a")).eval_range(TUPLE) == RangeValue(7, 8, 9)
        assert (attr("a") * const(2)).eval_det(ROW) == 4

    def test_nested_expression(self):
        expr = (attr("a") + attr("b")) * const(2)
        assert expr.eval_det(ROW) == 24


class TestPredicates:
    def test_comparison_triple(self):
        expr = attr("a").lt(2)
        assert expr.eval_range(TUPLE) == RangeBool(False, False, True)
        assert expr.eval_det(ROW) is False

    def test_equality(self):
        assert attr("b").eq(10).eval_range(TUPLE).certainly_true

    def test_boolean_connectives(self):
        expr = attr("a").ge(1).and_(attr("b").eq(10))
        assert expr.eval_range(TUPLE).certainly_true
        assert expr.eval_det(ROW) is True
        assert expr.not_().eval_det(ROW) is False

    def test_or(self):
        expr = attr("a").gt(100).or_(attr("b").eq(10))
        assert expr.eval_det(ROW) is True

    def test_type_mismatch_detected(self):
        with pytest.raises(ExpressionError):
            (attr("a").lt(2) + const(1)).eval_range(TUPLE)  # predicate used as scalar
        with pytest.raises(ExpressionError):
            attr("a").and_(attr("b")).eval_range(TUPLE)  # scalar used as predicate


class TestIfThenElse:
    def test_certain_condition(self):
        expr = IfThenElse(attr("b").eq(10), const(1), const(2))
        assert expr.eval_range(TUPLE) == RangeValue.certain(1)
        assert expr.eval_det(ROW) == 1

    def test_uncertain_condition_hulls_branches(self):
        expr = IfThenElse(attr("a").lt(2), const(1), const(5))
        result = expr.eval_range(TUPLE)
        assert result.lb == 1 and result.ub == 5


class TestBoundPreservation:
    """If t ⊑ t̄ then deterministic evaluation is bounded by range evaluation."""

    def test_scalar_bound_preservation(self):
        expr = (attr("a") * const(3)) - attr("b")
        result = expr.eval_range(TUPLE)
        for a in range(1, 4):
            value = expr.eval_det({"a": a, "b": 10})
            assert result.contains(value)

    def test_predicate_bound_preservation(self):
        expr = (attr("a") + attr("b")).gt(12)
        triple = expr.eval_range(TUPLE)
        for a in range(1, 4):
            assert triple.bounds(expr.eval_det({"a": a, "b": 10}))

    def test_unsupported_operators_rejected(self):
        with pytest.raises(ExpressionError):
            Constant(1).__class__  # no-op; placeholder for API stability
            from repro.core.expressions import Comparison

            Comparison("<>", const(1), const(2))
