"""Unit tests for N³ multiplicity triples (repro.core.multiplicity)."""

import pytest

from repro.core.booleans import CERTAIN_FALSE, CERTAIN_TRUE, UNKNOWN
from repro.core.multiplicity import ONE, ZERO, Multiplicity
from repro.errors import InvalidMultiplicityError


class TestConstruction:
    def test_constants(self):
        assert ZERO == Multiplicity(0, 0, 0)
        assert ONE == Multiplicity(1, 1, 1)

    def test_certain(self):
        assert Multiplicity.certain(3) == Multiplicity(3, 3, 3)

    def test_possible(self):
        assert Multiplicity.possible(2) == Multiplicity(0, 0, 2)
        assert Multiplicity.possible(2, sg=1) == Multiplicity(0, 1, 2)

    def test_validation(self):
        with pytest.raises(InvalidMultiplicityError):
            Multiplicity(-1, 0, 0)
        with pytest.raises(InvalidMultiplicityError):
            Multiplicity(2, 1, 3)
        with pytest.raises(InvalidMultiplicityError):
            Multiplicity(0, 2, 1)


class TestSemiring:
    def test_add(self):
        assert Multiplicity(1, 2, 3) + Multiplicity(0, 1, 2) == Multiplicity(1, 3, 5)

    def test_mul(self):
        assert Multiplicity(1, 2, 3) * Multiplicity(2, 2, 2) == Multiplicity(2, 4, 6)

    def test_mul_zero_annihilates(self):
        assert Multiplicity(1, 2, 3) * ZERO == ZERO

    def test_scale(self):
        assert Multiplicity(1, 1, 2).scale(3) == Multiplicity(3, 3, 6)
        with pytest.raises(InvalidMultiplicityError):
            Multiplicity(1, 1, 1).scale(-1)


class TestFilter:
    def test_filter_certain_true_keeps_all(self):
        assert Multiplicity(1, 2, 3).filter(CERTAIN_TRUE) == Multiplicity(1, 2, 3)

    def test_filter_certain_false_drops_all(self):
        assert Multiplicity(1, 2, 3).filter(CERTAIN_FALSE) == ZERO

    def test_filter_unknown_keeps_only_possible(self):
        assert Multiplicity(1, 2, 3).filter(UNKNOWN) == Multiplicity(0, 0, 3)


class TestMonus:
    def test_monus_truncates_at_zero(self):
        assert Multiplicity(1, 1, 1).monus(Multiplicity(2, 2, 2)) == ZERO

    def test_monus_swaps_bounds(self):
        result = Multiplicity(2, 3, 4).monus(Multiplicity(1, 1, 3))
        # certain output removes the largest possible amount, possible output
        # removes only what must exist
        assert result == Multiplicity(0, 2, 3)


class TestPredicates:
    def test_flags(self):
        m = Multiplicity(0, 1, 2)
        assert not m.certainly_exists and m.possibly_exists and not m.is_certain

    def test_bounds(self):
        m = Multiplicity(1, 2, 3)
        assert m.bounds(1) and m.bounds(3) and not m.bounds(0) and not m.bounds(4)
