"""Unit tests for range-annotated values (repro.core.ranges)."""

import pytest

from repro.core.ranges import RangeValue, as_range
from repro.errors import InvalidRangeError


class TestConstruction:
    def test_certain_value(self):
        value = RangeValue.certain(5)
        assert value.lb == value.sg == value.ub == 5
        assert value.is_certain

    def test_ordering_enforced(self):
        with pytest.raises(InvalidRangeError):
            RangeValue(3, 2, 5)
        with pytest.raises(InvalidRangeError):
            RangeValue(1, 4, 3)

    def test_from_bounds_defaults_sg_to_lower(self):
        value = RangeValue.from_bounds(1, 9)
        assert value.sg == 1

    def test_hull(self):
        value = RangeValue.hull([5, 2, 9, 3])
        assert (value.lb, value.sg, value.ub) == (2, 5, 9)

    def test_hull_empty_rejected(self):
        with pytest.raises(InvalidRangeError):
            RangeValue.hull([])

    def test_hull_with_explicit_sg(self):
        value = RangeValue.hull([5, 2, 9], sg=9)
        assert value.sg == 9

    def test_as_range_passthrough_and_lift(self):
        value = RangeValue(1, 2, 3)
        assert as_range(value) is value
        assert as_range(7) == RangeValue.certain(7)

    def test_none_sorts_before_everything(self):
        value = RangeValue(None, 3, 5)
        assert value.contains(None)
        assert value.contains(4)


class TestPredicates:
    def test_contains(self):
        value = RangeValue(2, 4, 8)
        assert value.contains(2) and value.contains(8) and value.contains(5)
        assert not value.contains(1) and not value.contains(9)

    def test_contains_range_and_overlaps(self):
        outer = RangeValue(0, 5, 10)
        inner = RangeValue(2, 3, 4)
        assert outer.contains_range(inner)
        assert not inner.contains_range(outer)
        assert outer.overlaps(inner)
        assert not RangeValue(0, 0, 1).overlaps(RangeValue(2, 2, 3))

    def test_width(self):
        assert RangeValue(2, 3, 7).width == 5
        assert RangeValue.certain("x").width == 0.0


class TestComparisons:
    def test_lt_triple(self):
        result = RangeValue(1, 1, 3).lt(RangeValue.certain(2))
        assert (result.lb, result.sg, result.ub) == (False, True, True)

    def test_lt_certain_true(self):
        assert RangeValue(1, 1, 1).lt(RangeValue(2, 2, 2)).certainly_true

    def test_lt_certain_false(self):
        assert RangeValue(5, 6, 7).lt(RangeValue(1, 2, 3)).certainly_false

    def test_eq_overlap_is_possible(self):
        result = RangeValue(1, 2, 5).eq(RangeValue(4, 4, 9))
        assert not result.lb and result.ub

    def test_eq_certain(self):
        assert RangeValue.certain(3).eq(RangeValue.certain(3)).certainly_true

    def test_ne_is_negation_of_eq(self):
        a, b = RangeValue(1, 2, 5), RangeValue(4, 4, 9)
        assert a.ne(b) == a.eq(b).not_()

    def test_ge_le_consistency(self):
        a, b = RangeValue(1, 2, 3), RangeValue(2, 3, 4)
        assert a.le(b).sg == (not b.lt(a).sg)


class TestArithmetic:
    def test_add(self):
        assert RangeValue(1, 2, 3).add(RangeValue(10, 20, 30)) == RangeValue(11, 22, 33)

    def test_sub(self):
        assert RangeValue(1, 2, 3).sub(RangeValue(1, 1, 2)) == RangeValue(-1, 1, 2)

    def test_mul_with_negative_bounds(self):
        result = RangeValue(-2, 1, 3).mul(RangeValue(-1, 2, 4))
        assert result.lb == -8 and result.ub == 12 and result.sg == 2

    def test_neg(self):
        assert (-RangeValue(1, 2, 3)) == RangeValue(-3, -2, -1)

    def test_scale(self):
        assert RangeValue(1, 2, 3).scale(2) == RangeValue(2, 4, 6)
        with pytest.raises(InvalidRangeError):
            RangeValue(1, 2, 3).scale(-1)

    def test_arithmetic_requires_numbers(self):
        with pytest.raises(InvalidRangeError):
            RangeValue.certain("a").add(RangeValue.certain("b"))

    def test_min_max_with(self):
        a, b = RangeValue(1, 5, 9), RangeValue(3, 4, 6)
        assert a.min_with(b) == RangeValue(1, 4, 6)
        assert a.max_with(b) == RangeValue(3, 5, 9)

    def test_union_hull(self):
        assert RangeValue(1, 2, 3).union_hull(RangeValue(0, 5, 9)) == RangeValue(0, 2, 9)


class TestBoundPreservation:
    """The containment property behind the expression semantics (Sec. 3.2)."""

    def test_add_bounds_every_pointwise_sum(self):
        a, b = RangeValue(1, 3, 5), RangeValue(-2, 0, 2)
        result = a.add(b)
        for x in range(a.lb, a.ub + 1):
            for y in range(b.lb, b.ub + 1):
                assert result.contains(x + y)

    def test_mul_bounds_every_pointwise_product(self):
        a, b = RangeValue(-2, 0, 3), RangeValue(-1, 2, 4)
        result = a.mul(b)
        for x in range(a.lb, a.ub + 1):
            for y in range(b.lb, b.ub + 1):
                assert result.contains(x * y)

    def test_lt_bounds_every_pointwise_comparison(self):
        a, b = RangeValue(1, 2, 4), RangeValue(3, 3, 5)
        triple = a.lt(b)
        for x in range(a.lb, a.ub + 1):
            for y in range(b.lb, b.ub + 1):
                assert triple.bounds(x < y)
