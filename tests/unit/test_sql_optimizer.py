"""Each optimizer rewrite pinned individually, plus kernel-steering checks.

The rewrites are pure functions from logical plan to logical plan, so each
test hand-builds a small plan, runs one rule, and asserts the exact output
tree.  The kernel tests then compile real SQL and assert the optimized
joins resolve to searchsorted / sweep / band — never the quadratic grid —
whenever a certain-key side (or a band predicate) makes that possible.
"""

from __future__ import annotations

import pytest

from repro.core.expressions import attr, const
from repro.core.multiplicity import Multiplicity
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.core.schema import Schema
from repro.errors import SqlError
from repro.sql import ast as L
from repro.sql.optimizer import (
    expression_attributes,
    optimize_plan,
    prefer_kernel_joins,
    prune_columns,
    push_down_predicates,
)

pytest.importorskip("numpy", reason="kernel steering inspects columnar layouts")

from repro.sql import compile_sql, run_sql  # noqa: E402

T = L.Scan("t", Schema(["k", "v", "junk"]))
S = L.Scan("s", Schema(["k", "w", "pad"]))


def test_expression_attributes():
    predicate = attr("a").lt(const(3)).and_(attr("b").eq(attr("c")))
    assert expression_attributes(predicate) == frozenset({"a", "b", "c"})


# -- predicate pushdown -------------------------------------------------------


def test_pushdown_splits_conjuncts_per_side():
    join = L.Join(T, S, on=("k",))
    predicate = attr("v").gt(const(1)).and_(attr("w").lt(const(2)))
    rewritten = push_down_predicates(L.Filter(join, predicate))
    assert rewritten == L.Join(
        L.Filter(T, attr("v").gt(const(1))),
        L.Filter(S, attr("w").lt(const(2))),
        on=("k",),
    )


def test_pushdown_maps_disambiguated_names_back_to_the_right_input():
    # post-join name k_r refers to s.k; the pushed filter must use "k" again
    join = L.Join(T, S, on=("k",))
    rewritten = push_down_predicates(L.Filter(join, attr("k_r").ge(const(0))))
    assert rewritten == L.Join(T, L.Filter(S, attr("k").ge(const(0))), on=("k",))


def test_pushdown_keeps_straddling_conjuncts_above_the_join():
    join = L.Join(T, S, on=("k",))
    straddle = attr("v").lt(attr("w"))
    pushable = attr("v").gt(const(1))
    rewritten = push_down_predicates(L.Filter(join, straddle.and_(pushable)))
    assert rewritten == L.Filter(
        L.Join(L.Filter(T, pushable), S, on=("k",)), straddle
    )


def test_pushdown_descends_left_deep_join_trees():
    U = L.Scan("u", Schema(["j", "x"]))
    plan = L.Filter(L.Join(L.Join(T, S, on=("k",)), U, on=None,
                           predicate=attr("v").eq(attr("x"))),
                    attr("w").lt(const(9)))
    rewritten = push_down_predicates(plan)
    inner = rewritten.left
    assert isinstance(inner, L.Join)
    assert inner.right == L.Filter(S, attr("w").lt(const(9)))


# -- projection pruning -------------------------------------------------------


def test_prune_narrows_scans_to_referenced_columns():
    plan = L.Project(L.Filter(L.Join(T, S, on=("k",)), attr("v").gt(const(0))), ("v", "w"))
    pruned = prune_columns(plan)
    assert pruned == L.Project(
        L.Filter(
            L.Join(L.Narrow(T, ("k", "v")), L.Narrow(S, ("k", "w")), on=("k",)),
            attr("v").gt(const(0)),
        ),
        ("v", "w"),
    )


def test_prune_never_reaches_through_ranked_stages():
    # sort ties break on every remaining column, so nothing below may drop
    plan = L.Project(L.Sort(T, ("v",), "pos"), ("v", "pos"))
    assert prune_columns(plan) == plan


def test_prune_inserts_narrow_below_aggregates():
    plan = L.Aggregate(T, ("k",), (("sum", "v", "s"),))
    assert prune_columns(plan) == L.Aggregate(
        L.Narrow(T, ("k", "v")), ("k",), (("sum", "v", "s"),)
    )


def test_prune_reverts_when_narrowing_would_shift_join_suffixes():
    # right already has (k, k_r): narrowing it to (k,) alone would reassign
    # the post-join suffix of the kept column, so both children stay whole
    right = L.Scan("r", Schema(["k", "k_r"]))
    plan = L.Project(L.Join(T, right, on=("k",)), ("v", "k_r"))
    pruned = prune_columns(plan)
    join = pruned.child
    assert join.right == right  # not narrowed
    assert plan_unchanged_names(pruned) == ("v", "k_r")


def plan_unchanged_names(plan):
    return L.plan_schema(plan).attributes


# -- kernel preference --------------------------------------------------------


def certain_relation(rows):
    relation = AURelation(Schema(["c", "u", "v"]))
    for c, u, v in rows:
        relation.add_values(
            [RangeValue(c, c, c), RangeValue(u, u + 1, u + 2), RangeValue(v, v, v)],
            Multiplicity(1, 1, 1),
        )
    return relation


def test_prefer_kernel_joins_flips_method_and_anchors_certain_keys():
    left = certain_relation([(0, 1, 2), (3, 4, 5)])
    right = certain_relation([(0, 2, 2), (3, 3, 5)])
    plan = L.Join(
        L.Scan("l", Schema(["c", "u", "v"])),
        L.Scan("r", Schema(["c", "u", "v"])),
        on=("u", "c"),
    )
    rewritten = prefer_kernel_joins(plan, {"l": left, "r": right})
    assert rewritten.method == "auto"
    assert rewritten.on == ("c", "u")  # certain key anchors first


def test_optimize_plan_composes_all_rules():
    plan = L.Project(
        L.Filter(L.Join(T, S, on=("k",)), attr("v").gt(const(0))), ("v",)
    )
    optimized = optimize_plan(plan)
    join = optimized.child
    assert isinstance(join, L.Join)
    assert join.method == "auto"
    assert isinstance(join.left, L.Filter)  # pushdown happened
    assert isinstance(join.left.child, L.Narrow)  # pruning happened


# -- end-to-end kernel assertions --------------------------------------------


def sample_catalog():
    t = AURelation(Schema(["k", "v"]))
    s = AURelation(Schema(["k", "w"]))
    for i in range(8):
        t.add_values([RangeValue(i, i, i), RangeValue(i, i + 1, i + 2)], Multiplicity(1, 1, 1))
        s.add_values([RangeValue(i, i, i), RangeValue(2 * i, 2 * i, 2 * i)], Multiplicity(1, 1, 1))
    return {"t": t, "s": s}


def uncertain_keys_catalog():
    t = AURelation(Schema(["k", "v"]))
    s = AURelation(Schema(["k", "w"]))
    for i in range(8):
        t.add_values([RangeValue(i, i + 1, i + 2), RangeValue(i, i, i)], Multiplicity(1, 1, 1))
        s.add_values([RangeValue(i, i + 2, i + 3), RangeValue(i, i, i)], Multiplicity(1, 1, 1))
    return {"t": t, "s": s}


def run_and_kernels(query, catalog):
    compiled = compile_sql(query, catalog)
    compiled.run()
    return compiled.join_kernels


def test_certain_equi_join_never_uses_the_grid():
    kernels = run_and_kernels("SELECT t.v AS v FROM t JOIN s ON t.k = s.k", sample_catalog())
    assert kernels == ("searchsorted",)


def test_uncertain_keys_fall_back_to_the_sweep_not_the_grid():
    kernels = run_and_kernels(
        "SELECT t.v AS v FROM t JOIN s ON t.k = s.k", uncertain_keys_catalog()
    )
    assert kernels == ("sweep",)


def test_band_predicate_resolves_to_the_band_kernel():
    kernels = run_and_kernels(
        "SELECT t.v AS v FROM t JOIN s ON t.k <= s.k + 2 AND s.k <= t.k + 2",
        sample_catalog(),
    )
    assert kernels == ("band",)


def test_unoptimized_compile_keeps_grid_joins():
    compiled = compile_sql(
        "SELECT t.v AS v FROM t JOIN s ON t.k = s.k", sample_catalog(), optimize=False
    )
    compiled.run()
    assert compiled.join_kernels == ("grid",)


# -- resolution errors (lowering-time SqlError carets) ------------------------


def test_unknown_column_caret():
    with pytest.raises(SqlError) as excinfo:
        compile_sql("SELECT zz FROM t", sample_catalog())
    message = str(excinfo.value)
    assert "unknown column 'zz' at line 1, column 8" in message
    assert message.splitlines()[-1].index("^") == 9  # two-space indent + column 8


def test_unknown_table_lists_the_catalog():
    with pytest.raises(SqlError, match="unknown table 'nope'"):
        compile_sql("SELECT v FROM nope", sample_catalog())


def test_ambiguous_column_requires_qualification():
    with pytest.raises(SqlError, match="ambiguous column 'k'"):
        compile_sql("SELECT k FROM t JOIN s ON t.k = s.k", sample_catalog())


def test_limit_without_order_by_is_rejected():
    with pytest.raises(SqlError, match="LIMIT requires ORDER BY"):
        compile_sql("SELECT v FROM t LIMIT 2", sample_catalog())


def test_invalid_frame_wraps_window_spec_error():
    with pytest.raises(SqlError, match="invalid window"):
        run_sql(
            "SELECT SUM(v) OVER (ORDER BY k ROWS BETWEEN 1 FOLLOWING AND 1 PRECEDING) "
            "AS w FROM t",
            sample_catalog(),
        )
