"""Unit tests for the baseline methods (Det, MCDB, Symb, PT-k, rank semantics)."""

import pytest

from repro.baselines.det import det_sort, det_topk, det_window, selected_guess_relation
from repro.baselines.mcdb import mcdb_sort_bounds, mcdb_window_bounds
from repro.baselines.ptk import (
    certain_topk_answers,
    possible_topk_answers,
    ptk_query,
    topk_probabilities_exact,
    topk_probabilities_montecarlo,
)
from repro.baselines.rank_semantics import (
    certain_answers,
    expected_rank_topk,
    expected_ranks,
    global_topk,
    possible_answers,
    u_rank,
    u_top,
)
from repro.baselines.symb import symb_sort_bounds, symb_window_bounds
from repro.errors import WorkloadError
from repro.incomplete.xtuples import UncertainRelation, XTuple
from repro.window.spec import WindowSpec
from repro.workloads.examples import sales_audb, sales_worlds


def small_workload() -> UncertainRelation:
    relation = UncertainRelation(["rid", "a"])
    relation.add_certain((0, 10))
    relation.add_alternatives([(1, 5), (1, 25)], [0.5, 0.5], sg_index=0)
    relation.add_certain((2, 20))
    return relation


class TestDet:
    def test_selected_guess_relation_sources(self):
        workload = small_workload()
        from_workload = selected_guess_relation(workload)
        from_audb = selected_guess_relation(sales_audb())
        assert from_workload.multiplicity((1, 5)) == 1
        assert from_audb.cardinality == 4
        assert selected_guess_relation(from_workload) is from_workload

    def test_det_sort_and_topk(self):
        ranked = det_sort(small_workload(), ["a"])
        assert ranked.multiplicity((1, 5, 0)) == 1
        top = det_topk(small_workload(), ["a"], 1)
        assert top.rows() == [(1, 5)]

    def test_det_window(self):
        spec = WindowSpec("sum", "a", "s", order_by=("a",), frame=(-1, 0))
        result = det_window(small_workload(), spec)
        assert ("s" in result.schema) and result.cardinality == 3


class TestMCDBAndSymb:
    def test_symb_bounds_are_exact(self):
        bounds = symb_sort_bounds(small_workload(), ["a"], key_attribute="rid")
        assert bounds[1] == (0.0, 2.0)  # rid 1 can be first (a=5) or last (a=25)
        assert bounds[0] == (0.0, 1.0)
        assert bounds[2] == (1.0, 2.0)

    def test_mcdb_bounds_contained_in_exact(self):
        exact = symb_sort_bounds(small_workload(), ["a"], key_attribute="rid")
        sampled = mcdb_sort_bounds(small_workload(), ["a"], key_attribute="rid", samples=5, seed=0)
        for rid, (low, high) in sampled.items():
            assert exact[rid][0] <= low <= high <= exact[rid][1]

    def test_mcdb_requires_key(self):
        with pytest.raises(WorkloadError):
            mcdb_sort_bounds(small_workload(), ["a"], key_attribute="missing")

    def test_symb_window_bounds(self):
        spec = WindowSpec("sum", "a", "s", order_by=("a",), frame=(-1, 0))
        bounds = symb_window_bounds(small_workload(), spec, key_attribute="rid")
        assert set(bounds) == {0, 1, 2}
        mcdb = mcdb_window_bounds(small_workload(), spec, key_attribute="rid", samples=4, seed=1)
        for rid, (low, high) in mcdb.items():
            assert bounds[rid][0] <= low <= high <= bounds[rid][1]


class TestPTk:
    def tuple_independent(self) -> UncertainRelation:
        relation = UncertainRelation(["rid", "score"])
        relation.add(XTuple(((0, 90),), (1.0,), 0))
        relation.add_alternatives([(1, 80)], [0.5], sg_index=0)
        relation.add_alternatives([(2, 70)], [0.8], sg_index=0)
        return relation

    def test_exact_probabilities(self):
        probs = topk_probabilities_exact(
            self.tuple_independent(), "score", k=1, key_attribute="rid", descending=True
        )
        assert probs[0] == pytest.approx(1.0)
        assert probs[1] == pytest.approx(0.0)  # tuple 0 always wins
        assert probs[2] == pytest.approx(0.0)

    def test_exact_probabilities_k2(self):
        probs = topk_probabilities_exact(
            self.tuple_independent(), "score", k=2, key_attribute="rid", descending=True
        )
        assert probs[0] == pytest.approx(1.0)
        assert probs[1] == pytest.approx(0.5)
        assert probs[2] == pytest.approx(0.8 * 0.5)

    def test_exact_requires_tuple_independence(self):
        with pytest.raises(WorkloadError):
            topk_probabilities_exact(small_workload(), "a", k=1, key_attribute="rid")

    def test_threshold_queries(self):
        probs = {0: 1.0, 1: 0.5, 2: 0.05}
        assert ptk_query(probs, 0.4) == [0, 1]
        assert certain_topk_answers(probs) == [0]
        assert set(possible_topk_answers(probs)) == {0, 1, 2}

    def test_montecarlo_agrees_with_exact_shape(self):
        probs = topk_probabilities_montecarlo(
            small_workload(), ["a"], k=1, key_attribute="rid", samples=300, seed=0, descending=False
        )
        # rid 1 takes value 5 (winning) half the time; rid 0 wins otherwise.
        assert probs[1] == pytest.approx(0.5, abs=0.1)
        assert probs[0] == pytest.approx(0.5, abs=0.1)
        assert probs[2] == pytest.approx(0.0, abs=0.05)


class TestRankSemantics:
    """The running example answers of Fig. 1b-1e."""

    def test_u_rank_matches_paper(self):
        ranks = u_rank(sales_worlds(), ["sales"], 2, descending=True, project=["term"])
        assert [row[0] for row in ranks] == [4, 4]

    def test_u_top_is_most_probable_list(self):
        best = u_top(sales_worlds(), ["sales"], 2, descending=True, project=["term"])
        assert [row[0] for row in best] == [3, 4]

    def test_pt0_and_pt1(self):
        possible = possible_answers(sales_worlds(), ["sales"], 2, descending=True, project=["term"])
        certain = certain_answers(sales_worlds(), ["sales"], 2, descending=True, project=["term"])
        assert sorted(row[0] for row in possible) == [3, 4, 5]
        assert [row[0] for row in certain] == [4]

    def test_global_topk(self):
        rows = global_topk(sales_worlds(), ["sales"], 2, descending=True, project=["term"])
        assert {row[0] for row in rows} == {3, 4}

    def test_expected_ranks(self):
        ranks = expected_ranks(sales_worlds(), ["sales"], descending=True, project=["term"])
        assert ranks[(4,)] < ranks[(1,)]
        top = expected_rank_topk(sales_worlds(), ["sales"], 2, descending=True, project=["term"])
        assert (4,) in top
