"""Documentation tests: doctests on the documented modules, link/TOC checks.

The CI docs job runs the same checks standalone (``python -m doctest`` +
``tools/check_docs.py``); running them inside tier-1 too means a broken
docstring example or a dead link in ``docs/ARCHITECTURE.md`` fails the
ordinary test run, not just the docs job.
"""

from __future__ import annotations

import doctest
import importlib
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

#: Modules whose docstring examples must stay runnable (the CI docs job runs
#: ``python -m doctest`` over the same list — keep it in sync with ci.yml).
DOCTEST_MODULES = [
    "repro.core.operators.aggregate",
    "repro.core.operators.distinct",
    "repro.core.operators.join",
    "repro.core.operators.select",
    "repro.harness.report",
    "repro.sql.tokenizer",
    "repro.sql.parser",
    "repro.sql.ast",
]

#: Modules needing NumPy (skipped, not failed, when it is unavailable).
DOCTEST_MODULES_NUMPY = [
    "repro.columnar.relation",
    "repro.columnar.parallel",
    "repro.columnar.plan",
    "repro.columnar.factorised",
    "repro.columnar.sort",
    "repro.columnar.window",
    "repro.columnar.incremental",
    "repro.serving.cache",
    "repro.serving.server",
    "repro.sql.compiler",
]

DOCUMENTS = [
    "docs/ARCHITECTURE.md",
    "docs/PLAN_GUIDE.md",
    "docs/SQL_GUIDE.md",
    "benchmarks/README.md",
    "examples/README.md",
]

#: Markdown files whose fenced examples are executable doctests (the CI docs
#: job runs ``python -m doctest`` over the same list — keep in sync).
DOCTEST_DOCUMENTS = ["docs/PLAN_GUIDE.md", "docs/SQL_GUIDE.md"]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module)
    assert results.failed == 0
    assert results.attempted > 0, f"{module_name} lost its doctest examples"


@pytest.mark.parametrize("module_name", DOCTEST_MODULES_NUMPY)
def test_columnar_module_doctests(module_name):
    pytest.importorskip("numpy", reason="the columnar backend requires NumPy")
    module = importlib.import_module(module_name)
    results = doctest.testmod(module)
    assert results.failed == 0
    assert results.attempted > 0, f"{module_name} lost its doctest examples"


@pytest.mark.parametrize("document", DOCTEST_DOCUMENTS)
def test_markdown_doctests(document):
    pytest.importorskip("numpy", reason="the plan guide exercises the columnar backend")
    results = doctest.testfile(
        str(REPO_ROOT / document), module_relative=False, verbose=False
    )
    assert results.failed == 0
    assert results.attempted > 0, f"{document} lost its doctest examples"


@pytest.mark.parametrize("document", DOCUMENTS)
def test_markdown_links_and_toc(document):
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        check_docs = importlib.import_module("check_docs")
    finally:
        sys.path.pop(0)
    errors = check_docs.check_document(REPO_ROOT / document)
    assert errors == [], "\n".join(errors)


def test_architecture_doc_covers_the_subsystems():
    text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    for needle in (
        "ColumnarPlan",
        "_dispatch",
        "groupby_aggregate",
        "searchsorted",
        "Parallel execution",
        "Module map",
        "bounding",
        "IncrementalView",
        "shape_key",
        "SQL frontend",
        "SqlError",
    ):
        assert needle in text, f"ARCHITECTURE.md no longer mentions {needle}"
