"""Unit tests for AU-DB relations and their flat encoding."""

import pytest

from repro.core.encoding import decode, encode, encoded_schema
from repro.core.multiplicity import Multiplicity
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.core.schema import Schema
from repro.core.tuples import AUTuple
from repro.errors import SchemaError


def sample() -> AURelation:
    return AURelation.from_rows(
        ["a", "b"],
        [
            ((1, RangeValue(1, 1, 3)), (1, 1, 2)),
            ((RangeValue(2, 3, 3), 15), (0, 1, 1)),
        ],
    )


class TestAURelation:
    def test_from_rows_and_lookup(self):
        relation = sample()
        assert len(relation) == 2
        tup = AUTuple.from_values(relation.schema, [1, RangeValue(1, 1, 3)])
        assert relation.multiplicity(tup) == Multiplicity(1, 1, 2)

    def test_identical_tuples_merge(self):
        relation = AURelation(Schema(["a"]))
        relation.add_values([1], 1)
        relation.add_values([1], (0, 1, 2))
        assert relation.multiplicity(AUTuple.certain(relation.schema, (1,))) == Multiplicity(1, 2, 3)

    def test_zero_multiplicity_ignored(self):
        relation = AURelation(Schema(["a"]))
        relation.add_values([1], (0, 0, 0))
        assert relation.is_empty()

    def test_schema_mismatch_rejected(self):
        relation = AURelation(Schema(["a"]))
        with pytest.raises(SchemaError):
            relation.add(AUTuple.certain(Schema(["b"]), (1,)), Multiplicity.certain(1))

    def test_totals(self):
        relation = sample()
        assert relation.total_certain == 1
        assert relation.total_sg == 2
        assert relation.total_possible == 3

    def test_selected_guess_rows(self):
        rows = sample().selected_guess_rows()
        assert rows == {(1, 1): 1, (3, 15): 1}

    def test_certain_from_rows(self):
        relation = AURelation.certain_from_rows(["a"], [(1,), (2,)])
        assert relation.total_certain == 2

    def test_copy_is_independent(self):
        relation = sample()
        clone = relation.copy()
        clone.add_values([9, 9])
        assert len(relation) == 2 and len(clone) == 3

    def test_map_tuples(self):
        relation = sample()
        doubled = relation.map_tuples(
            relation.schema, lambda tup, mult: (tup, mult.add(mult))
        )
        assert doubled.total_possible == 2 * relation.total_possible

    def test_to_table_contains_headers(self):
        text = sample().to_table()
        assert "a" in text and "N3" in text


class TestEncoding:
    def test_encoded_schema(self):
        schema = encoded_schema(Schema(["a", "b"]))
        assert schema.attributes[:3] == ("a__lb", "a__sg", "a__ub")
        assert schema.attributes[-3:] == ("__mult_lb", "__mult_sg", "__mult_ub")

    def test_roundtrip(self):
        relation = sample()
        flat = encode(relation)
        back = decode(flat, relation.schema)
        for tup, mult in relation:
            assert back.multiplicity(tup) == mult

    def test_decode_rejects_wrong_schema(self):
        with pytest.raises(SchemaError):
            decode(encode(sample()), Schema(["a", "b", "c"]))
