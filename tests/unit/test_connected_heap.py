"""Unit tests for the connected heap data structure (Section 8.2)."""

import random

import pytest

from repro.algorithms.connected_heap import ConnectedHeap, NaiveMultiHeap
from repro.errors import OperatorError

KEYS = (lambda r: r[0], lambda r: r[1], lambda r: -r[2])


class TestConnectedHeap:
    def test_requires_at_least_one_heap(self):
        with pytest.raises(OperatorError):
            ConnectedHeap(())

    def test_insert_and_len(self):
        heap = ConnectedHeap(KEYS)
        for i in range(5):
            heap.insert((i, 5 - i, i * 2))
        assert len(heap) == 5 and not heap.is_empty()

    def test_peek_per_component(self):
        heap = ConnectedHeap(KEYS)
        heap.insert((3, 10, 1))
        heap.insert((1, 20, 9))
        assert heap.peek(0) == (1, 20, 9)  # smallest first key
        assert heap.peek(1) == (3, 10, 1)  # smallest second key
        assert heap.peek(2) == (1, 20, 9)  # largest third key

    def test_peek_key(self):
        heap = ConnectedHeap(KEYS)
        heap.insert((3, 10, 1))
        assert heap.peek_key(0) == 3 and heap.peek_key(2) == -1

    def test_pop_removes_from_all_components(self):
        heap = ConnectedHeap(KEYS)
        heap.insert((1, 100, 5))
        heap.insert((2, 1, 7))
        popped = heap.pop(1)  # smallest on the second component
        assert popped == (2, 1, 7)
        assert len(heap) == 1
        # The popped record must be gone from every component heap.
        assert heap.peek(0) == (1, 100, 5)
        assert heap.peek(2) == (1, 100, 5)

    def test_pop_empty_raises(self):
        with pytest.raises(OperatorError):
            ConnectedHeap(KEYS).pop()

    def test_pop_while(self):
        heap = ConnectedHeap([lambda r: r])
        for value in (5, 1, 3, 9):
            heap.insert(value)
        popped = heap.pop_while(0, lambda value: value < 4)
        assert popped == [1, 3]
        assert len(heap) == 2

    def test_items_returns_live_payloads(self):
        heap = ConnectedHeap(KEYS)
        heap.insert((1, 2, 3))
        heap.insert((4, 5, 6))
        heap.pop(0)
        assert heap.items() == [(4, 5, 6)]


class TestAgainstNaiveModel:
    """The connected heap must behave exactly like the naive multi-heap."""

    @pytest.mark.parametrize("seed", range(5))
    def test_randomised_pop_sequences_match(self, seed):
        rng = random.Random(seed)
        connected = ConnectedHeap(KEYS)
        naive = NaiveMultiHeap(KEYS)
        live = []
        for step in range(200):
            if live and rng.random() < 0.4:
                component = rng.randrange(3)
                a = connected.pop(component)
                b = naive.pop(component)
                assert a == b
                live.remove(a)
            else:
                # Float keys make ties (whose pop order is unspecified) vanishingly unlikely.
                record = (rng.random(), rng.random(), rng.random(), step)
                connected.insert(record)
                naive.insert(record)
                live.append(record)
            assert len(connected) == len(naive) == len(live)
        # Drain both heaps and compare the full pop order.
        while len(connected):
            assert connected.pop(0) == naive.pop(0)

    def test_sorted_drain(self):
        heap = ConnectedHeap([lambda r: r])
        values = random.Random(3).sample(range(1000), 100)
        for value in values:
            heap.insert(value)
        drained = [heap.pop(0) for _ in range(len(values))]
        assert drained == sorted(values)


class TestNaiveMultiHeap:
    def test_basic_operations(self):
        heap = NaiveMultiHeap(KEYS)
        heap.insert((1, 9, 0))
        heap.insert((2, 0, 5))
        assert heap.peek(1) == (2, 0, 5)
        assert heap.pop(1) == (2, 0, 5)
        assert len(heap) == 1
        assert heap.items() == [(1, 9, 0)]

    def test_empty_errors(self):
        heap = NaiveMultiHeap(KEYS)
        with pytest.raises(OperatorError):
            heap.peek()
        with pytest.raises(OperatorError):
            heap.pop()
