"""Unit tests for window specifications (repro.window.spec)."""

import pytest

from repro.errors import WindowSpecError
from repro.window.spec import WindowSpec


class TestValidation:
    def test_basic_spec(self):
        spec = WindowSpec("sum", "v", "s", order_by=["o"], frame=(-2, 0))
        assert spec.frame_size == 3
        assert spec.includes_current_row and spec.preceding_only

    def test_unknown_aggregate(self):
        with pytest.raises(WindowSpecError):
            WindowSpec("median", "v", "s", order_by=["o"])

    def test_missing_attribute_for_sum(self):
        with pytest.raises(WindowSpecError):
            WindowSpec("sum", None, "s", order_by=["o"])

    def test_count_star_allowed(self):
        spec = WindowSpec("count", None, "c", order_by=["o"])
        assert spec.attribute is None

    def test_requires_order_by(self):
        with pytest.raises(WindowSpecError):
            WindowSpec("sum", "v", "s", order_by=[])

    def test_invalid_frame(self):
        with pytest.raises(WindowSpecError):
            WindowSpec("sum", "v", "s", order_by=["o"], frame=(1, 0))


class TestDerivedProperties:
    def test_following_only(self):
        spec = WindowSpec("sum", "v", "s", order_by=["o"], frame=(0, 3))
        assert spec.following_only and not spec.preceding_only
        assert spec.frame_size == 4

    def test_excludes_current_row(self):
        spec = WindowSpec("sum", "v", "s", order_by=["o"], frame=(-3, -1))
        assert not spec.includes_current_row

    def test_mirrored_swaps_frame_and_direction(self):
        spec = WindowSpec("sum", "v", "s", order_by=["o"], frame=(0, 3), descending=False)
        mirrored = spec.mirrored()
        assert mirrored.frame == (-3, 0)
        assert mirrored.descending is True
        assert mirrored.mirrored() == spec

    def test_spec_is_hashable_value_object(self):
        a = WindowSpec("sum", "v", "s", order_by=["o"], frame=(-1, 0))
        b = WindowSpec("sum", "v", "s", order_by=("o",), frame=(-1, 0))
        assert a == b and hash(a) == hash(b)
