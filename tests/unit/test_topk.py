"""Unit tests for uncertain top-k queries (repro.ranking.topk)."""

import pytest

from repro.core.ranges import RangeValue
from repro.errors import OperatorError
from repro.ranking.topk import topk
from repro.workloads.examples import sales_audb


class TestFigure1TopK:
    """Top-2 terms by sales over the running example (Fig. 1f)."""

    def test_possible_answers_cover_all_worlds(self):
        result = topk(sales_audb(), ["sales"], k=2, descending=True)
        # Terms 3/5 (one hypercube) and 4 are possible answers; terms 1 and 2
        # are filtered out because they are certainly not in the top-2.
        terms = {tup.value("term") for tup, mult in result if mult.possibly_exists}
        assert RangeValue(3, 3, 5) in terms
        assert RangeValue.certain(4) in terms
        assert RangeValue.certain(1) not in terms
        assert RangeValue.certain(2) not in terms

    def test_both_answers_are_certain(self):
        result = topk(sales_audb(), ["sales"], k=2, descending=True)
        assert all(mult.lb == 1 for _tup, mult in result)

    def test_position_ranges_match_paper(self):
        result = topk(sales_audb(), ["sales"], k=2, descending=True)
        by_term = {tup.value("term").sg: tup.value("pos") for tup, _m in result}
        assert by_term[3] == RangeValue(0, 0, 1)
        assert by_term[4] == RangeValue(0, 1, 1)

    def test_methods_agree(self):
        native = topk(sales_audb(), ["sales"], k=2, descending=True, method="native")
        rewrite = topk(sales_audb(), ["sales"], k=2, descending=True, method="rewrite")
        assert {t.values for t, _ in native} == {t.values for t, _ in rewrite}


class TestTopKBehaviour:
    def test_k_zero_returns_nothing(self):
        assert len(topk(sales_audb(), ["sales"], k=0)) == 0

    def test_negative_k_rejected(self):
        with pytest.raises(OperatorError):
            topk(sales_audb(), ["sales"], k=-1)

    def test_keep_position_false_drops_pos(self):
        result = topk(sales_audb(), ["sales"], k=2, keep_position=False)
        assert "pos" not in result.schema

    def test_large_k_keeps_everything(self):
        result = topk(sales_audb(), ["sales"], k=100)
        assert len(result.tuples()) == 4

    def test_ascending_topk(self):
        result = topk(sales_audb(), ["sales"], k=1, descending=False)
        terms = {tup.value("term").sg for tup, _m in result}
        # Term 1 has the smallest possible sales; terms 2 and the 3/5 hypercube
        # may tie or undercut it in some world.
        assert 1 in terms
