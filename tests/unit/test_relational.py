"""Unit tests for the deterministic bag-relational substrate (repro.relational)."""

import pytest

from repro.core.expressions import attr
from repro.core.schema import Schema
from repro.errors import OperatorError, SchemaError
from repro.relational import (
    Relation,
    cross,
    difference,
    extend,
    groupby_aggregate,
    join,
    project,
    rename,
    select,
    union,
)


def sample_relation() -> Relation:
    r = Relation(["name", "dept", "salary"])
    r.add(("ann", "eng", 100))
    r.add(("bob", "eng", 80))
    r.add(("cat", "hr", 90))
    r.add(("bob", "eng", 80))  # duplicate -> multiplicity 2
    return r


class TestRelation:
    def test_multiplicities_merge(self):
        r = sample_relation()
        assert r.multiplicity(("bob", "eng", 80)) == 2
        assert len(r) == 3
        assert r.cardinality == 4

    def test_expanded_rows(self):
        assert len(sample_relation().expanded_rows()) == 4

    def test_add_validation(self):
        r = Relation(["a"])
        with pytest.raises(SchemaError):
            r.add((1, 2))
        with pytest.raises(SchemaError):
            r.add((1,), -1)

    def test_zero_multiplicity_ignored(self):
        r = Relation(["a"])
        r.add((1,), 0)
        assert r.is_empty()

    def test_from_dicts(self):
        r = Relation.from_dicts(["a", "b"], [{"a": 1, "b": 2}])
        assert r.multiplicity((1, 2)) == 1

    def test_values(self):
        assert sorted(sample_relation().values("salary")) == [80, 80, 90, 100]

    def test_equality(self):
        assert sample_relation() == sample_relation()


class TestOperators:
    def test_select(self):
        result = select(sample_relation(), attr("salary").ge(90))
        assert result.cardinality == 2

    def test_select_with_callable(self):
        result = select(sample_relation(), lambda row: row["dept"] == "eng")
        assert result.cardinality == 3

    def test_project_merges_duplicates(self):
        result = project(sample_relation(), ["dept"])
        assert result.multiplicity(("eng",)) == 3

    def test_extend(self):
        result = extend(sample_relation(), "bonus", attr("salary") * 2)
        assert result.multiplicity(("ann", "eng", 100, 200)) == 1

    def test_rename(self):
        result = rename(sample_relation(), {"salary": "pay"})
        assert "pay" in result.schema and "salary" not in result.schema

    def test_union(self):
        result = union(sample_relation(), sample_relation())
        assert result.multiplicity(("bob", "eng", 80)) == 4

    def test_union_schema_mismatch(self):
        with pytest.raises(SchemaError):
            union(sample_relation(), Relation(["x"]))

    def test_difference(self):
        other = Relation(["name", "dept", "salary"])
        other.add(("bob", "eng", 80))
        result = difference(sample_relation(), other)
        assert result.multiplicity(("bob", "eng", 80)) == 1

    def test_cross_multiplies(self):
        left = Relation(["a"])
        left.add((1,), 2)
        right = Relation(["b"])
        right.add((10,), 3)
        assert cross(left, right).multiplicity((1, 10)) == 6

    def test_equi_join(self):
        depts = Relation(["dept", "floor"])
        depts.add(("eng", 3))
        depts.add(("hr", 1))
        result = join(sample_relation(), depts, on=["dept"])
        assert result.multiplicity(("ann", "eng", 100, "eng", 3)) == 1
        assert result.cardinality == 4

    def test_theta_join(self):
        left = Relation(["a"])
        left.add((1,))
        left.add((5,))
        right = Relation(["b"])
        right.add((3,))
        result = join(left, right, attr("a").lt(attr("b")))
        assert result.rows() == [(1, 3)]

    def test_join_requires_predicate_or_on(self):
        with pytest.raises(OperatorError):
            join(Relation(["a"]), Relation(["b"]))


class TestGroupByAggregate:
    def test_sum_and_count(self):
        result = groupby_aggregate(
            sample_relation(),
            ["dept"],
            [("sum", "salary", "total"), ("count", "*", "ct")],
        )
        assert result.multiplicity(("eng", 260, 3)) == 1
        assert result.multiplicity(("hr", 90, 1)) == 1

    def test_min_max_avg(self):
        result = groupby_aggregate(
            sample_relation(),
            ["dept"],
            [("min", "salary", "lo"), ("max", "salary", "hi"), ("avg", "salary", "mean")],
        )
        rows = {row[0]: row[1:] for row, _m in result}
        assert rows["eng"] == (80, 100, pytest.approx(260 / 3))

    def test_scalar_aggregation_on_empty_input(self):
        result = groupby_aggregate(Relation(["x"]), [], [("count", "*", "ct")])
        assert result.rows() == [(0,)]
