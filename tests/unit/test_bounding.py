"""Unit tests for the bounding / tuple-matching oracle (repro.core.bounding)."""

import pytest

from repro.core.bounding import (
    assert_bounds_world,
    bounds_world,
    bounds_worlds,
    sg_world_matches,
)
from repro.core.multiplicity import Multiplicity
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.core.schema import Schema
from repro.core.tuples import AUTuple
from repro.errors import BoundViolationError
from repro.incomplete.worlds import PossibleWorlds
from repro.relational.relation import Relation

SCHEMA = Schema(["a"])


def audb(rows):
    relation = AURelation(SCHEMA)
    for values, mult in rows:
        relation.add(AUTuple.from_values(SCHEMA, values), Multiplicity(*mult))
    return relation


def world(rows):
    relation = Relation(SCHEMA)
    for row, mult in rows:
        relation.add(row, mult)
    return relation


class TestBoundsWorld:
    def test_simple_containment(self):
        assert bounds_world(
            audb([((RangeValue(1, 2, 3),), (1, 1, 1))]),
            world([((2,), 1)]),
        )

    def test_value_outside_range(self):
        assert not bounds_world(
            audb([((RangeValue(1, 2, 3),), (1, 1, 1))]),
            world([((5,), 1)]),
        )

    def test_multiplicity_upper_bound_enforced(self):
        assert not bounds_world(
            audb([((RangeValue(1, 2, 3),), (1, 1, 1))]),
            world([((2,), 2)]),
        )

    def test_multiplicity_lower_bound_enforced(self):
        assert not bounds_world(
            audb([((RangeValue(1, 2, 3),), (1, 1, 1))]),
            world([]),
        )

    def test_possible_tuple_may_be_absent(self):
        assert bounds_world(
            audb([((RangeValue(1, 2, 3),), (0, 1, 1))]),
            world([]),
        )

    def test_world_tuple_split_across_au_tuples(self):
        relation = audb(
            [
                ((RangeValue(1, 1, 5),), (0, 0, 1)),
                ((RangeValue(3, 3, 8),), (0, 1, 1)),
            ]
        )
        assert bounds_world(relation, world([((4,), 2)]))
        assert not bounds_world(relation, world([((4,), 3)]))

    def test_lower_bounds_require_distinct_rows(self):
        relation = audb(
            [
                ((RangeValue(1, 1, 2),), (1, 1, 1)),
                ((RangeValue(1, 1, 2),), (1, 1, 1)),
            ]
        )
        assert bounds_world(relation, world([((1,), 1), ((2,), 1)]))
        assert not bounds_world(relation, world([((1,), 1)]))

    def test_empty_audb_bounds_only_empty_world(self):
        empty = AURelation(SCHEMA)
        assert bounds_world(empty, world([]))
        assert not bounds_world(empty, world([((1,), 1)]))

    def test_arity_mismatch(self):
        assert not bounds_world(audb([]), Relation(["a", "b"]))


class TestWorldsAndAssertions:
    def test_bounds_worlds_and_sg(self):
        worlds = PossibleWorlds.from_rows(SCHEMA, [[(1,)], [(2,)]])
        relation = audb([((RangeValue(1, 1, 2),), (1, 1, 1))])
        assert bounds_worlds(relation, worlds)
        assert sg_world_matches(relation, worlds)
        assert bounds_worlds(relation, worlds, check_sg=True)

    def test_sg_world_mismatch(self):
        worlds = PossibleWorlds.from_rows(SCHEMA, [[(1,)], [(2,)]])
        relation = audb([((RangeValue(1, 3, 3),), (1, 1, 1))])
        assert not sg_world_matches(relation, worlds)

    def test_assert_raises_with_context(self):
        relation = audb([((RangeValue(1, 1, 1),), (1, 1, 1))])
        with pytest.raises(BoundViolationError, match="my-context"):
            assert_bounds_world(relation, world([((9,), 1)]), context="my-context")
