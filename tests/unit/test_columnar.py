"""Unit tests for the columnar backend (repro.columnar)."""

import pytest

np = pytest.importorskip("numpy", reason="the columnar backend requires NumPy")

from repro.columnar.kernels import (
    dense_rank_codes,
    emission_schedule,
    lex_rank_pairs,
    order_code_matrices,
    sort_position_bounds,
)
from repro.columnar.relation import ColumnarAURelation, as_columnar, column_array
from repro.columnar.sort import sort_columnar
from repro.core.multiplicity import Multiplicity
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.errors import OperatorError
from repro.ranking.positions import position_bounds
from repro.ranking.semantics import sort_rewrite
from repro.workloads.examples import sales_audb


def mixed_relation() -> AURelation:
    """A relation exercising every column dtype path: int, float, str, None, bool."""
    return AURelation.from_rows(
        ["i", "f", "s", "n", "flag"],
        [
            ((1, 1.5, "x", None, True), (1, 1, 1)),
            ((RangeValue(0, 2, 5), RangeValue(0.25, 0.5, 0.75), RangeValue("a", "b", "c"), 3, False), (0, 1, 2)),
            ((-7, 2.0, "", RangeValue(None, None, 4), True), (2, 2, 3)),
        ],
    )


class TestColumnArray:
    def test_int_columns_use_int64(self):
        assert column_array([1, 2, 3]).dtype == np.int64

    def test_float_columns_use_float64(self):
        assert column_array([1.0, 2.5]).dtype == np.float64

    def test_mixed_and_string_columns_fall_back_to_object(self):
        for values in ([1, 2.5], ["a", "b"], [None, 1], [True, False], []):
            assert column_array(values).dtype == object

    def test_huge_ints_fall_back_to_object(self):
        arr = column_array([2**70, 1])
        assert arr.dtype == object
        assert arr[0] == 2**70


class TestConversionRoundTrip:
    def test_round_trip_is_lossless(self):
        relation = mixed_relation()
        columnar = ColumnarAURelation.from_relation(relation)
        back = columnar.to_relation()
        assert back.schema == relation.schema
        assert back._rows == relation._rows

    def test_round_trip_preserves_scalar_types(self):
        relation = mixed_relation()
        back = ColumnarAURelation.from_relation(relation).to_relation()
        for (values, _), (expected, _) in zip(back, relation):
            for got, want in zip(values.values, expected.values):
                assert type(got.lb) is type(want.lb)
                assert type(got.ub) is type(want.ub)

    def test_round_trip_without_value_cache(self):
        columnar = ColumnarAURelation.from_relation(mixed_relation())
        columnar._values = None  # force reconstruction from the arrays
        assert columnar.to_relation()._rows == mixed_relation()._rows

    def test_empty_relation(self):
        columnar = ColumnarAURelation.from_relation(AURelation.from_rows(["a"], []))
        assert len(columnar) == 0
        assert columnar.to_relation().is_empty()
        assert columnar.total_possible == columnar.total_certain == columnar.total_sg == 0

    def test_totals_match_row_major(self):
        relation = mixed_relation()
        columnar = ColumnarAURelation.from_relation(relation)
        assert columnar.total_possible == relation.total_possible
        assert columnar.total_certain == relation.total_certain
        assert columnar.total_sg == relation.total_sg

    def test_as_columnar_passthrough(self):
        columnar = ColumnarAURelation.from_relation(mixed_relation())
        assert as_columnar(columnar) is columnar


class TestKernels:
    def test_dense_rank_codes_order_none_first(self):
        codes = dense_rank_codes([3, None, 1, 3], "a")
        assert codes.tolist() == [2, 0, 1, 2]

    def test_dense_rank_codes_mixed_numeric(self):
        codes = dense_rank_codes([1, 0.5, 2], "a")
        assert codes.tolist() == [1, 0, 2]

    def test_dense_rank_codes_incomparable_raises(self):
        with pytest.raises(OperatorError, match="'a'"):
            dense_rank_codes([1, "x"], "a")

    def test_sort_position_bounds_match_definitional(self):
        relation = sales_audb()
        columnar = ColumnarAURelation.from_relation(relation)
        lower, sg, upper = sort_position_bounds(columnar, ["sales"])
        for i, (tup, _mult) in enumerate(relation):
            expected = position_bounds(relation, ["sales"], tup)
            assert (int(lower[i]), int(sg[i]), int(upper[i])) == (
                expected.lb,
                expected.sg,
                expected.ub,
            )

    def test_emission_schedule_counts_possible_predecessors(self):
        relation = AURelation.from_rows(
            ["a"],
            [((RangeValue(0, 1, 5),), 1), ((2,), 1), ((7,), 1)],
        )
        columnar = ColumnarAURelation.from_relation(relation)
        earliest, _sg, latest = order_code_matrices(columnar, ["a"])
        earliest_rank, latest_rank = lex_rank_pairs(earliest, latest)
        # [0..5] may be preceded by itself and 2; 2 by itself and [0..5];
        # 7 by everything.
        assert emission_schedule(earliest_rank, latest_rank).tolist() == [2, 2, 3]


class TestSortColumnar:
    def test_matches_rewrite_on_running_example(self):
        relation = sales_audb()
        for descending in (False, True):
            columnar_result = sort_columnar(relation, ["sales"], descending=descending)
            rewrite = sort_rewrite(relation, ["sales"], descending=descending)
            assert columnar_result.schema == rewrite.schema
            assert columnar_result._rows == rewrite._rows

    def test_accepts_preconverted_columnar_input(self):
        relation = sales_audb()
        columnar = ColumnarAURelation.from_relation(relation)
        assert sort_columnar(columnar, ["sales"])._rows == sort_columnar(relation, ["sales"])._rows

    def test_requires_order_by(self):
        with pytest.raises(OperatorError):
            sort_columnar(sales_audb(), [])

    def test_unknown_attribute_rejected(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            sort_columnar(sales_audb(), ["nope"])

    def test_k_prunes_certainly_outside_duplicates(self):
        relation = sales_audb()
        full = sort_columnar(relation, ["sales"])
        pos_idx = full.schema.index_of("pos")
        for k in (0, 1, 2, 10):
            pruned = sort_columnar(relation, ["sales"], k=k)
            expected = {
                values: mult for values, mult in full._rows.items() if values[pos_idx].lb < k
            }
            assert pruned._rows == expected

    def test_mixed_type_order_column_raises_clear_error(self):
        relation = AURelation.from_rows(["a"], [((1,), 1), (("x",), 1)])
        with pytest.raises(OperatorError, match="mixes incomparable"):
            sort_columnar(relation, ["a"])

    def test_mixed_dtype_components_keep_integer_precision(self):
        """int64 + float64 component columns must not pool via float upcast.

        2**53 + 1 is not representable in float64; a pooled float code space
        would collapse it onto 2**53 and lose a 'certainly precedes' edge.
        """
        big = 2**53
        relation = AURelation.from_rows(
            ["a"],
            [
                ((RangeValue(1, 1, float(big)),), 1),
                ((RangeValue(big + 1, big + 1, float(big + 2)),), 1),
            ],
        )
        columnar_result = sort_columnar(relation, ["a"])
        rewrite = sort_rewrite(relation, ["a"])
        assert columnar_result._rows == rewrite._rows

    def test_none_in_order_column_sorts_first(self):
        relation = AURelation.from_rows(["a"], [((3,), 1), ((None,), 1)])
        result = sort_columnar(relation, ["a"])
        by_value = {values[0]: values[1] for values in result._rows}
        assert by_value[RangeValue.certain(None)] == RangeValue.certain(0)
        assert by_value[RangeValue.certain(3)] == RangeValue.certain(1)


class TestBackendDispatch:
    def test_unknown_backend_rejected_everywhere(self):
        from repro.ranking.native import sort_native
        from repro.ranking.topk import sort as au_sort
        from repro.relational.relation import Relation
        from repro.relational.sort import sort_operator

        with pytest.raises(OperatorError):
            sort_native(sales_audb(), ["sales"], backend="fortran")
        with pytest.raises(OperatorError):
            au_sort(sales_audb(), ["sales"], backend="fortran")
        with pytest.raises(OperatorError):
            sort_operator(Relation(["a"], [((1,), 1)]), ["a"], backend="fortran")

    def test_columnar_backend_with_rewrite_method(self):
        from repro.ranking.topk import sort as au_sort

        rewrite = au_sort(sales_audb(), ["sales"], method="rewrite")
        columnar = au_sort(sales_audb(), ["sales"], method="rewrite", backend="columnar")
        assert columnar._rows == rewrite._rows
