"""Unit tests for the columnar backend (repro.columnar)."""

import pytest

np = pytest.importorskip("numpy", reason="the columnar backend requires NumPy")

from repro.columnar.kernels import (
    dense_rank_codes,
    emission_schedule,
    lex_rank_pairs,
    order_code_matrices,
    sort_position_bounds,
)
from repro.columnar.relation import ColumnarAURelation, as_columnar, column_array
from repro.columnar.sort import sort_columnar
from repro.core.multiplicity import Multiplicity
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.errors import OperatorError
from repro.ranking.positions import position_bounds
from repro.ranking.semantics import sort_rewrite
from repro.workloads.examples import sales_audb


def mixed_relation() -> AURelation:
    """A relation exercising every column dtype path: int, float, str, None, bool."""
    return AURelation.from_rows(
        ["i", "f", "s", "n", "flag"],
        [
            ((1, 1.5, "x", None, True), (1, 1, 1)),
            ((RangeValue(0, 2, 5), RangeValue(0.25, 0.5, 0.75), RangeValue("a", "b", "c"), 3, False), (0, 1, 2)),
            ((-7, 2.0, "", RangeValue(None, None, 4), True), (2, 2, 3)),
        ],
    )


class TestColumnArray:
    def test_int_columns_use_int64(self):
        assert column_array([1, 2, 3]).dtype == np.int64

    def test_float_columns_use_float64(self):
        assert column_array([1.0, 2.5]).dtype == np.float64

    def test_mixed_and_string_columns_fall_back_to_object(self):
        for values in ([1, 2.5], ["a", "b"], [None, 1], [True, False], []):
            assert column_array(values).dtype == object

    def test_huge_ints_fall_back_to_object(self):
        arr = column_array([2**70, 1])
        assert arr.dtype == object
        assert arr[0] == 2**70


class TestConversionRoundTrip:
    def test_round_trip_is_lossless(self):
        relation = mixed_relation()
        columnar = ColumnarAURelation.from_relation(relation)
        back = columnar.to_relation()
        assert back.schema == relation.schema
        assert back._rows == relation._rows

    def test_round_trip_preserves_scalar_types(self):
        relation = mixed_relation()
        back = ColumnarAURelation.from_relation(relation).to_relation()
        for (values, _), (expected, _) in zip(back, relation):
            for got, want in zip(values.values, expected.values):
                assert type(got.lb) is type(want.lb)
                assert type(got.ub) is type(want.ub)

    def test_round_trip_without_value_cache(self):
        columnar = ColumnarAURelation.from_relation(mixed_relation())
        columnar._values = None  # force reconstruction from the arrays
        assert columnar.to_relation()._rows == mixed_relation()._rows

    def test_empty_relation(self):
        columnar = ColumnarAURelation.from_relation(AURelation.from_rows(["a"], []))
        assert len(columnar) == 0
        assert columnar.to_relation().is_empty()
        assert columnar.total_possible == columnar.total_certain == columnar.total_sg == 0

    def test_totals_match_row_major(self):
        relation = mixed_relation()
        columnar = ColumnarAURelation.from_relation(relation)
        assert columnar.total_possible == relation.total_possible
        assert columnar.total_certain == relation.total_certain
        assert columnar.total_sg == relation.total_sg

    def test_as_columnar_passthrough(self):
        columnar = ColumnarAURelation.from_relation(mixed_relation())
        assert as_columnar(columnar) is columnar


class TestKernels:
    def test_dense_rank_codes_order_none_first(self):
        codes = dense_rank_codes([3, None, 1, 3], "a")
        assert codes.tolist() == [2, 0, 1, 2]

    def test_dense_rank_codes_mixed_numeric(self):
        codes = dense_rank_codes([1, 0.5, 2], "a")
        assert codes.tolist() == [1, 0, 2]

    def test_dense_rank_codes_incomparable_raises(self):
        with pytest.raises(OperatorError, match="'a'"):
            dense_rank_codes([1, "x"], "a")

    def test_sort_position_bounds_match_definitional(self):
        relation = sales_audb()
        columnar = ColumnarAURelation.from_relation(relation)
        lower, sg, upper = sort_position_bounds(columnar, ["sales"])
        for i, (tup, _mult) in enumerate(relation):
            expected = position_bounds(relation, ["sales"], tup)
            assert (int(lower[i]), int(sg[i]), int(upper[i])) == (
                expected.lb,
                expected.sg,
                expected.ub,
            )

    def test_emission_schedule_counts_possible_predecessors(self):
        relation = AURelation.from_rows(
            ["a"],
            [((RangeValue(0, 1, 5),), 1), ((2,), 1), ((7,), 1)],
        )
        columnar = ColumnarAURelation.from_relation(relation)
        earliest, _sg, latest = order_code_matrices(columnar, ["a"])
        earliest_rank, latest_rank = lex_rank_pairs(earliest, latest)
        # [0..5] may be preceded by itself and 2; 2 by itself and [0..5];
        # 7 by everything.
        assert emission_schedule(earliest_rank, latest_rank).tolist() == [2, 2, 3]

    def test_expand_ranges_concatenates_aranges(self):
        import numpy as np

        from repro.columnar.kernels import expand_ranges

        starts = np.array([0, 3, 5], dtype=np.int64)
        stops = np.array([2, 3, 8], dtype=np.int64)
        assert expand_ranges(starts, stops).tolist() == [0, 1, 5, 6, 7]
        assert expand_ranges(starts[:0], stops[:0]).tolist() == []

    def test_frame_member_index_matches_mask_kernels(self):
        """The searchsorted pair sweep agrees with the reference mask kernels.

        ``certain_frame_members`` / ``possible_frame_members`` stay in the
        kernel module as the quadratic reference implementation; the
        position-sorted :class:`FrameMemberIndex` must reproduce their
        member sets pair for pair on randomized position intervals.
        """
        import random

        import numpy as np

        from repro.columnar.kernels import (
            FrameMemberIndex,
            certain_frame_members,
            possible_frame_members,
        )

        rng = random.Random(0)
        for trial in range(25):
            m = rng.randint(0, 12)
            preceding = rng.randint(0, 3)
            pos_lb = np.array([rng.randint(0, 10) for _ in range(m)], dtype=np.int64)
            pos_ub = pos_lb + np.array(
                [rng.randint(0, 4) for _ in range(m)], dtype=np.int64
            )
            certain = np.array([rng.random() < 0.5 for _ in range(m)], dtype=bool)

            index = FrameMemberIndex(pos_lb, pos_ub, preceding)
            assert index.pair_counts(pos_lb, pos_ub).tolist() == (
                possible_frame_members(pos_lb, pos_ub, pos_lb, pos_ub, preceding)
                .sum(axis=1)
                .tolist()
            )
            query, member = index.member_pairs(pos_lb, pos_ub)
            got_possible = set(zip(query.tolist(), member.tolist()))
            expected_mask = possible_frame_members(pos_lb, pos_ub, pos_lb, pos_ub, preceding)
            expected_possible = set(zip(*np.nonzero(expected_mask))) if m else set()
            assert got_possible == {(int(a), int(b)) for a, b in expected_possible}

            cert_flags = (
                certain[member]
                & (pos_lb[member] >= pos_ub[query] - preceding)
                & (pos_ub[member] <= pos_lb[query])
            )
            got_certain = set(
                zip(query[cert_flags].tolist(), member[cert_flags].tolist())
            )
            cert_mask = certain_frame_members(
                pos_lb, pos_ub, pos_lb, pos_ub, certain, preceding
            )
            expected_certain = set(zip(*np.nonzero(cert_mask))) if m else set()
            assert got_certain == {(int(a), int(b)) for a, b in expected_certain}


class TestSortColumnar:
    def test_matches_rewrite_on_running_example(self):
        relation = sales_audb()
        for descending in (False, True):
            columnar_result = sort_columnar(relation, ["sales"], descending=descending)
            rewrite = sort_rewrite(relation, ["sales"], descending=descending)
            assert columnar_result.schema == rewrite.schema
            assert columnar_result._rows == rewrite._rows

    def test_accepts_preconverted_columnar_input(self):
        relation = sales_audb()
        columnar = ColumnarAURelation.from_relation(relation)
        assert sort_columnar(columnar, ["sales"])._rows == sort_columnar(relation, ["sales"])._rows

    def test_requires_order_by(self):
        with pytest.raises(OperatorError):
            sort_columnar(sales_audb(), [])

    def test_unknown_attribute_rejected(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            sort_columnar(sales_audb(), ["nope"])

    def test_k_prunes_certainly_outside_duplicates(self):
        relation = sales_audb()
        full = sort_columnar(relation, ["sales"])
        pos_idx = full.schema.index_of("pos")
        for k in (0, 1, 2, 10):
            pruned = sort_columnar(relation, ["sales"], k=k)
            expected = {
                values: mult for values, mult in full._rows.items() if values[pos_idx].lb < k
            }
            assert pruned._rows == expected

    def test_mixed_type_order_column_raises_clear_error(self):
        relation = AURelation.from_rows(["a"], [((1,), 1), (("x",), 1)])
        with pytest.raises(OperatorError, match="mixes incomparable"):
            sort_columnar(relation, ["a"])

    def test_mixed_dtype_components_keep_integer_precision(self):
        """int64 + float64 component columns must not pool via float upcast.

        2**53 + 1 is not representable in float64; a pooled float code space
        would collapse it onto 2**53 and lose a 'certainly precedes' edge.
        """
        big = 2**53
        relation = AURelation.from_rows(
            ["a"],
            [
                ((RangeValue(1, 1, float(big)),), 1),
                ((RangeValue(big + 1, big + 1, float(big + 2)),), 1),
            ],
        )
        columnar_result = sort_columnar(relation, ["a"])
        rewrite = sort_rewrite(relation, ["a"])
        assert columnar_result._rows == rewrite._rows

    def test_none_in_order_column_sorts_first(self):
        relation = AURelation.from_rows(["a"], [((3,), 1), ((None,), 1)])
        result = sort_columnar(relation, ["a"])
        by_value = {values[0]: values[1] for values in result._rows}
        assert by_value[RangeValue.certain(None)] == RangeValue.certain(0)
        assert by_value[RangeValue.certain(3)] == RangeValue.certain(1)


class TestTake:
    def test_take_selects_rows_losslessly(self):
        relation = mixed_relation()
        columnar = ColumnarAURelation.from_relation(relation)
        subset = columnar.take([2, 0])
        assert len(subset) == 2
        rows = list(subset)
        full = list(columnar)
        assert rows[0] == full[2]
        assert rows[1] == full[0]

    def test_take_without_value_cache(self):
        columnar = ColumnarAURelation.from_relation(mixed_relation())
        columnar._values = None
        subset = columnar.take(np.array([1]))
        assert subset.to_relation()._rows == columnar.take([1]).to_relation()._rows


class TestWindowColumnar:
    def spec(self, **overrides):
        from repro.window.spec import WindowSpec

        kwargs = dict(
            function="sum", attribute="v", output="w", order_by=("o",), frame=(-1, 0)
        )
        kwargs.update(overrides)
        return WindowSpec(**kwargs)

    def test_empty_relation(self):
        from repro.columnar.window import window_columnar
        from repro.core.schema import Schema

        result = window_columnar(AURelation(Schema(("o", "v"))), self.spec())
        assert result.is_empty()
        assert list(result.schema) == ["o", "v", "w"]

    def test_output_attribute_clash_rejected(self):
        from repro.columnar.window import window_columnar
        from repro.errors import WindowSpecError

        relation = AURelation.from_rows(["o", "v"], [((1, 2), 1)])
        with pytest.raises(WindowSpecError):
            window_columnar(relation, self.spec(output="v"))

    def test_non_numeric_aggregate_column_falls_back(self):
        from repro.columnar.window import window_columnar
        from repro.window.semantics import window_rewrite

        relation = AURelation.from_rows(
            ["o", "v"], [((1, "x"), 1), ((RangeValue(1, 2, 3), "y"), 1)]
        )
        spec = self.spec(function="min")
        assert window_columnar(relation, spec)._rows == window_rewrite(relation, spec)._rows

    def test_nan_relations_follow_the_native_backend(self):
        """NaN breaks the total order; native and rewrite genuinely disagree.

        The columnar backend is the implementation ``backend="columnar"``
        substitutes for — and the chained-plan reference runs the native
        sweep per stage — so its NaN fallback must return the *native*
        answer (this input is one where the rewrite's differs).
        """
        from repro.columnar.window import window_columnar
        from repro.window.native import window_native
        from repro.window.semantics import window_rewrite

        nan = float("nan")
        relation = AURelation.from_rows(
            ["o", "v"],
            [
                ((1, RangeValue(-3.0, -3.0, nan)), 1),
                ((2, RangeValue(0.0, 1.0, 2.0)), 1),
                ((RangeValue(1, 3, 3), RangeValue(-1.0, 0.0, 1.0)), (0, 1, 1)),
            ],
        )
        spec = self.spec()
        native = window_native(relation, spec)
        columnar = window_columnar(relation, spec)
        assert columnar.schema == native.schema

        def canon(result):
            # NaN != NaN, so ``_rows`` equality cannot compare NaN-carrying
            # outputs (not even against themselves); compare canonical reprs.
            return sorted((repr(tup.values), repr(mult)) for tup, mult in result)

        assert canon(columnar) == canon(native)
        # The divergence is real: the rewrite disagrees on this input, so
        # the assertion above genuinely pins which backend the fallback owns.
        assert canon(window_rewrite(relation, spec)) != canon(native)

    def test_uncertain_partitions_fall_back_to_rewrite(self):
        from repro.columnar.window import window_columnar
        from repro.window.semantics import window_rewrite

        relation = AURelation.from_rows(
            ["o", "v", "g"], [((1, 2, RangeValue(0, 0, 1)), 1), ((2, 3, 0), 1)]
        )
        spec = self.spec(partition_by=("g",))
        assert window_columnar(relation, spec)._rows == window_rewrite(relation, spec)._rows

    def test_huge_integer_sums_stay_exact(self):
        """Integers beyond float64's exact range delegate to the rewrite."""
        from repro.columnar.window import window_columnar
        from repro.window.native import window_native

        relation = AURelation.from_rows(
            ["o", "v"],
            [((RangeValue(1, 1, 2), 2**60), 1), ((2, 2**60 + 1), 1), ((3, 5), 1)],
        )
        spec = self.spec()
        assert window_columnar(relation, spec)._rows == window_native(relation, spec)._rows

    def test_float_selected_guess_with_integer_bounds_not_truncated(self):
        """A float sg between int lb/ub must survive the integer round-trip cast."""
        from repro.columnar.window import window_columnar
        from repro.window.native import window_native

        relation = AURelation.from_rows(
            ["o", "v"], [((1, RangeValue(-6, -3.71, 5)), 1), ((2, 4), 1)]
        )
        spec = self.spec(function="min", frame=(-2, 0))
        assert window_columnar(relation, spec)._rows == window_native(relation, spec)._rows

    def test_count_over_string_column_stays_vectorized(self):
        """count(attr) never reads the values, so string columns must not delegate."""
        from repro.relational.relation import Relation
        from repro.relational.window import window_aggregate

        relation = Relation(["a", "v"], [((1, "x"), 1), ((2, "y"), 2)])
        kwargs = dict(function="count", attribute="v", output="w", order_by=["a"], frame=(-1, 0))
        python = window_aggregate(relation, **kwargs)
        columnar = window_aggregate(relation, backend="columnar", **kwargs)
        assert python._rows == columnar._rows

    def test_mixed_float_bounds_with_huge_integer_ubs_stay_exact(self):
        """A float lower bound paired with a huge int upper bound also delegates."""
        from repro.columnar.window import window_columnar
        from repro.window.native import window_native

        relation = AURelation.from_rows(
            ["o", "v"],
            [((1, RangeValue(0.5, 1.0, 2**60 + 1)), 1), ((2, RangeValue(2.5, 3.0, 7)), 1)],
        )
        spec = self.spec()
        assert window_columnar(relation, spec)._rows == window_native(relation, spec)._rows

    def test_mixed_int_float_extrema_match_python_backend(self):
        """Deterministic min/max on mixed columns with ints beyond 2**53 delegate."""
        from repro.relational.relation import Relation
        from repro.relational.window import window_aggregate

        relation = Relation(["a", "v"], [((1, 2**60 + 1), 1), ((2, 0.5), 1)])
        for function in ("min", "max"):
            kwargs = dict(
                function=function, attribute="v", output="w", order_by=["a"], frame=(-1, 0)
            )
            python = window_aggregate(relation, **kwargs)
            columnar = window_aggregate(relation, backend="columnar", **kwargs)
            assert python._rows == columnar._rows

    def test_float_sum_columns_delegate_to_rewrite(self):
        """Float sums are order-sensitive: the columnar path must match the rewrite."""
        from repro.columnar.window import window_columnar
        from repro.window.semantics import window_rewrite

        relation = AURelation.from_rows(
            ["o", "v"],
            [
                ((1, 0.1), 1),
                ((RangeValue(1, 2, 3), 0.2), (0, 1, 1)),
                ((3, 0.3), 1),
                ((4, 0.4), 1),
            ],
        )
        spec = self.spec(frame=(-2, 0))
        assert window_columnar(relation, spec)._rows == window_rewrite(relation, spec)._rows

    def test_nan_values_delegate_to_rewrite(self):
        """NaN aggregation values route min/max to the definitional path."""
        from repro.columnar.window import window_columnar
        from repro.window.semantics import window_rewrite

        relation = AURelation.from_rows(
            ["o", "v"], [((1, 1.0), 1), ((2, float("nan")), 1), ((3, 5.0), 1)]
        )
        spec = self.spec(function="min", frame=(-2, 0))
        left = window_columnar(relation, spec)
        right = window_rewrite(relation, spec)
        assert {repr(t.values) for t, _m in left} == {repr(t.values) for t, _m in right}

    def test_composite_partition_keys_group_correctly(self):
        """Multi-column partition keys group by tuple equality (no radix encoding)."""
        from repro.relational.relation import Relation
        from repro.relational.window import window_aggregate

        relation = Relation(
            ["a", "g1", "g2", "v"],
            [((1, 0, 1, 5), 1), ((2, 1, 0, 7), 1), ((3, 0, 1, 11), 1)],
        )
        kwargs = dict(
            function="sum",
            attribute="v",
            output="w",
            order_by=["a"],
            partition_by=["g1", "g2"],
            frame=(-1, 0),
        )
        python = window_aggregate(relation, **kwargs)
        columnar = window_aggregate(relation, backend="columnar", **kwargs)
        assert python._rows == columnar._rows

    def test_nan_order_keys_match_python_backend(self):
        """NaN in an order/tiebreaker column delegates (rank codes vs timsort)."""
        from repro.relational.relation import Relation
        from repro.relational.window import window_aggregate

        relation = Relation(
            ["a", "v"], [((0, True), 1), ((0, -1.47), 1), ((0, float("nan")), 1)]
        )
        kwargs = dict(function="count", attribute=None, output="w", order_by=["a"], frame=(-2, 0))
        python = window_aggregate(relation, **kwargs)
        columnar = window_aggregate(relation, backend="columnar", **kwargs)
        assert {repr(r) for r in python._rows} == {repr(r) for r in columnar._rows}

    def test_heap_factory_rejected_on_columnar_backend(self):
        from repro.window.native import window_native
        from repro.window.spec import WindowSpec

        relation = AURelation.from_rows(["o", "v"], [((1, 2), 1)])
        spec = WindowSpec("sum", "v", "w", order_by=("o",), frame=(-1, 0))
        with pytest.raises(OperatorError):
            window_native(relation, spec, heap_factory=object, backend="columnar")

    def test_nan_extrema_match_python_backend(self):
        """NaN values delegate min/max to the Python path (np.min propagates NaN)."""
        from repro.relational.relation import Relation
        from repro.relational.window import window_aggregate

        relation = Relation(["a", "v"], [((1, 1.0), 1), ((2, float("nan")), 1)])
        kwargs = dict(function="min", attribute="v", output="w", order_by=["a"], frame=(-1, 0))
        python = window_aggregate(relation, **kwargs)
        columnar = window_aggregate(relation, backend="columnar", **kwargs)
        assert python._rows == columnar._rows

    def test_mixed_type_partition_keys_group_like_python_backend(self):
        """Partition keys only need equality; unorderable mixes must still group."""
        from repro.relational.relation import Relation
        from repro.relational.window import window_aggregate

        relation = Relation(["a", "g", "v"], [((1, "x", 1), 1), ((2, 3, 2), 1)])
        kwargs = dict(
            function="sum",
            attribute="v",
            output="w",
            order_by=["a"],
            partition_by=["g"],
            frame=(-1, 0),
        )
        python = window_aggregate(relation, **kwargs)
        columnar = window_aggregate(relation, backend="columnar", **kwargs)
        assert python._rows == columnar._rows

    def test_big_integer_avgs_avoid_double_rounding(self):
        """avg sums beyond 2**53 delegate: np rounds the sum before dividing."""
        from repro.relational.relation import Relation
        from repro.relational.window import window_aggregate

        v = 3002399751580331  # three of these sum to 2**53 + 1
        relation = Relation(["a", "v"], [((i, v), 1) for i in range(3)])
        kwargs = dict(function="avg", attribute="v", output="w", order_by=["a"], frame=(-2, 0))
        python = window_aggregate(relation, **kwargs)
        columnar = window_aggregate(relation, backend="columnar", **kwargs)
        assert python._rows == columnar._rows

    def test_huge_pure_integer_extrema_stay_exact_and_vectorized(self):
        """Pure-int min/max reduce in int64, exact beyond 2**53."""
        from repro.relational.relation import Relation
        from repro.relational.window import window_aggregate

        relation = Relation(["a", "v"], [((1, 2**60 + 1), 1), ((2, 2**60), 1)])
        for function in ("min", "max"):
            kwargs = dict(
                function=function, attribute="v", output="w", order_by=["a"], frame=(-1, 0)
            )
            python = window_aggregate(relation, **kwargs)
            columnar = window_aggregate(relation, backend="columnar", **kwargs)
            assert python._rows == columnar._rows

    def test_float_sums_match_python_backend_deterministically(self):
        """Float aggregation columns delegate sums to the exact Python path."""
        from repro.relational.relation import Relation
        from repro.relational.window import window_aggregate

        relation = Relation(["a", "v"], [((1, 0.1), 1), ((2, 0.2), 1), ((3, 0.3), 1)])
        for function in ("sum", "avg"):
            kwargs = dict(
                function=function, attribute="v", output="w", order_by=["a"], frame=(-1, 0)
            )
            python = window_aggregate(relation, **kwargs)
            columnar = window_aggregate(relation, backend="columnar", **kwargs)
            assert python._rows == columnar._rows

    def test_duplicate_offsets_empty_input(self):
        from repro.columnar.kernels import duplicate_offsets

        row, offset = duplicate_offsets(np.array([], dtype=np.int64))
        assert len(row) == 0 and len(offset) == 0

    def test_huge_preceding_extent_stays_bounded(self):
        """Frames far larger than the relation must not allocate frame-sized pads."""
        from repro.columnar.window import window_columnar
        from repro.relational.relation import Relation
        from repro.relational.window import window_aggregate
        from repro.window.native import window_native

        relation = AURelation.from_rows(
            ["o", "v"], [((1, 5), 1), ((RangeValue(1, 2, 3), 7), (0, 1, 1)), ((4, 2), 1)]
        )
        spec = self.spec(function="min", frame=(-(10**9), 0))
        assert window_columnar(relation, spec)._rows == window_native(relation, spec)._rows

        det = Relation(["a", "v"], [((1, 5), 1), ((2, 7), 1)])
        kwargs = dict(
            function="min", attribute="v", output="w", order_by=["a"], frame=(-(10**9), 0)
        )
        python = window_aggregate(det, **kwargs)
        columnar = window_aggregate(det, backend="columnar", **kwargs)
        assert python._rows == columnar._rows

    def test_string_order_column_sweeps(self):
        from repro.columnar.window import window_columnar
        from repro.window.native import window_native

        relation = AURelation.from_rows(
            ["o", "v"],
            [(("a", 1), 1), ((RangeValue("a", "b", "c"), 2), (0, 1, 1)), (("c", 3), 1)],
        )
        spec = self.spec(frame=(-2, 0))
        assert window_columnar(relation, spec)._rows == window_native(relation, spec)._rows


class TestBackendDispatch:
    def test_unknown_backend_rejected_everywhere(self):
        from repro.ranking.native import sort_native
        from repro.ranking.topk import sort as au_sort
        from repro.relational.relation import Relation
        from repro.relational.sort import sort_operator
        from repro.relational.window import window_aggregate
        from repro.window.native import window_native
        from repro.window.spec import WindowSpec

        with pytest.raises(OperatorError):
            sort_native(sales_audb(), ["sales"], backend="fortran")
        with pytest.raises(OperatorError):
            au_sort(sales_audb(), ["sales"], backend="fortran")
        with pytest.raises(OperatorError):
            sort_operator(Relation(["a"], [((1,), 1)]), ["a"], backend="fortran")
        with pytest.raises(OperatorError):
            window_native(
                sales_audb(),
                WindowSpec("sum", "sales", "w", order_by=("term",), frame=(-1, 0)),
                backend="fortran",
            )
        with pytest.raises(OperatorError):
            window_aggregate(
                Relation(["a"], [((1,), 1)]),
                function="sum",
                attribute="a",
                output="w",
                order_by=["a"],
                backend="fortran",
            )

    def test_columnar_backend_with_rewrite_method(self):
        from repro.ranking.topk import sort as au_sort

        rewrite = au_sort(sales_audb(), ["sales"], method="rewrite")
        columnar = au_sort(sales_audb(), ["sales"], method="rewrite", backend="columnar")
        assert columnar._rows == rewrite._rows
