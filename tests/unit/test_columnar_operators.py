"""Unit tests for the columnar RA⁺ kernels and the plan-composition helper."""

import pytest

pytest.importorskip("numpy", reason="the columnar backend requires NumPy")

from repro.columnar.operators import select as col_select
from repro.columnar.plan import ColumnarPlan
from repro.columnar.relation import ColumnarAURelation
from repro.core.booleans import RangeBool
from repro.core.expressions import attr, const
from repro.core.multiplicity import Multiplicity
from repro.core.operators import (
    cross,
    distinct,
    extend,
    groupby_aggregate,
    join,
    project,
    select,
    union,
)
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.errors import ExpressionError, OperatorError, SchemaError
from repro.window.spec import WindowSpec


def people():
    return AURelation.from_rows(
        ["name", "age"],
        [
            (("ann", 30), (1, 1, 1)),
            (("bob", RangeValue(20, 25, 40)), (0, 1, 2)),
            (("cyd", RangeValue(10, 15, 20)), (1, 2, 2)),
        ],
    )


def assert_same(left: AURelation, right: AURelation) -> None:
    assert left.schema == right.schema
    assert left._rows == right._rows


class TestBackendDispatch:
    def test_unknown_backend_raises(self):
        relation = people()
        with pytest.raises(OperatorError, match="unknown operator backend"):
            select(relation, attr("age").lt(30), backend="vectorised")
        with pytest.raises(OperatorError, match="unknown operator backend"):
            project(relation, ["age"], backend="")

    def test_columnar_backend_accepts_either_layout(self):
        relation = people()
        columnar = ColumnarAURelation.from_relation(relation)
        predicate = attr("age").ge(const(25))
        assert_same(
            select(relation, predicate, backend="columnar"),
            select(columnar, predicate, backend="columnar"),
        )

    def test_callable_predicates_take_the_scalar_fallback(self):
        relation = people()

        def young(tup) -> RangeBool:
            return tup.value("age").lt(RangeValue.certain(26))

        assert_same(select(relation, young), select(relation, young, backend="columnar"))

    def test_select_rejects_scalar_expression_shaped_like_python_backend(self):
        relation = people()
        # A bare attribute is not a predicate; both backends filter on
        # component truthiness (Multiplicity.filter reads .lb/.sg/.ub).
        assert_same(
            select(relation, attr("age")), select(relation, attr("age"), backend="columnar")
        )


class TestColumnarKernels:
    def test_select_filters_multiplicity_components(self):
        columnar = ColumnarAURelation.from_relation(people())
        result = col_select(columnar, attr("age").le(const(25)))
        assert isinstance(result, ColumnarAURelation)
        rows = result.to_relation()
        bob = next(tup for tup, _m in rows if tup.value("name").sg == "bob")
        # bob's age range [20/25/40] is possibly and sg-true but not certain.
        assert rows.multiplicity(bob).lb == 0
        assert rows.multiplicity(bob).sg == 1

    def test_project_merges_equal_hypercubes(self):
        relation = AURelation.from_rows(
            ["a", "b"], [((1, 1), (1, 1, 1)), ((1, 2), (0, 1, 2)), ((2, 3), 1)]
        )
        assert_same(project(relation, ["a"]), project(relation, ["a"], backend="columnar"))
        merged = project(relation, ["a"], backend="columnar")
        assert len(merged) == 2

    def test_project_to_empty_schema_merges_everything(self):
        relation = people()
        assert_same(project(relation, []), project(relation, [], backend="columnar"))

    def test_extend_rejects_existing_attribute(self):
        relation = people()
        with pytest.raises(SchemaError):
            extend(relation, "age", attr("age") + const(1), backend="columnar")

    def test_extend_rejects_predicate_expressions(self):
        with pytest.raises(ExpressionError):
            extend(people(), "x", attr("age").lt(30), backend="columnar")

    def test_union_requires_identical_schemas(self):
        with pytest.raises(SchemaError):
            union(people(), AURelation.from_rows(["x"], []), backend="columnar")

    def test_distinct_caps_triples(self):
        relation = AURelation.from_rows(["a"], [((1,), (2, 3, 4)), ((2,), (0, 0, 2))])
        assert_same(distinct(relation), distinct(relation, backend="columnar"))

    def test_join_requires_condition(self):
        with pytest.raises(OperatorError):
            join(people(), people(), backend="columnar")

    def test_join_on_missing_attribute_raises(self):
        with pytest.raises(SchemaError):
            join(people(), people(), on=["salary"], backend="columnar")

    def test_cross_disambiguates_without_capturing(self):
        left = AURelation.from_rows(["a"], [((1,), 1)])
        right = AURelation.from_rows(["a", "a_r"], [((2, 3), 1)])
        result = cross(left, right, backend="columnar")
        assert result.schema.attributes == ("a", "a_r_r", "a_r")
        assert_same(cross(left, right), result)

    def test_huge_integers_stay_exact_via_the_scalar_fallback(self):
        """Components beyond float64's exact range must not round anywhere."""
        big = 2**60
        relation = AURelation.from_rows(
            ["a", "b"],
            [((big, 1.5), 1), ((RangeValue(-big, 0, big), 2.0), (0, 1, 1))],
        )
        expression = attr("a") * const(3)
        assert_same(
            extend(relation, "x", expression),
            extend(relation, "x", expression, backend="columnar"),
        )
        predicate = attr("a").gt(attr("b"))
        assert_same(
            select(relation, predicate), select(relation, predicate, backend="columnar")
        )
        assert_same(
            join(relation, relation, on=["a"]),
            join(relation, relation, on=["a"], backend="columnar"),
        )

    def test_nan_rows_never_merge(self):
        """NaN equals nothing (itself included), so NaN rows stay distinct.

        Bit-for-bit dict comparison is impossible for NaN hypercubes (their
        hashes are identity-based), so this checks the structural agreement:
        both backends keep the same row count and annotation totals.
        """
        nan = float("nan")
        relation = AURelation(people().schema.project(["age"]).rename({"age": "v"}))
        relation.add_values([RangeValue(nan, nan, nan)], 1)
        relation.add_values([1.0], 2)
        python_result = project(relation, ["v"])
        columnar_result = project(relation, ["v"], backend="columnar")
        assert python_result.schema == columnar_result.schema
        assert len(python_result) == len(columnar_result) == 2
        assert python_result.total_possible == columnar_result.total_possible == 3


class TestColumnarPlan:
    def test_stages_stay_columnar_until_the_boundary(self):
        plan = ColumnarPlan(people()).select(attr("age").ge(const(20))).project(["age"])
        assert isinstance(plan.columnar(), ColumnarAURelation)
        result = plan.relation()
        assert isinstance(result, AURelation)
        assert_same(project(select(people(), attr("age").ge(const(20))), ["age"]), result)

    def test_full_chain_matches_python_operator_chain(self):
        orders = AURelation.from_rows(
            ["o", "g", "v"],
            [
                ((1, 0, 10), (1, 1, 1)),
                ((RangeValue(2, 2, 3), RangeValue(0, 0, 1), 20), (0, 1, 1)),
                ((3, 1, 30), (1, 1, 2)),
                ((4, 2, 40), (1, 1, 1)),
            ],
        )
        dims = AURelation.from_rows(["g", "w"], [((0, 5), 1), ((1, 7), 1)])
        spec = WindowSpec(
            function="sum", attribute="v", output="s", order_by=("o",), frame=(-1, 0)
        )
        predicate = attr("v").ge(const(15))

        from repro.window.native import window_native

        expected = window_native(
            project(join(select(orders, predicate), dims, on=["g"]), ["o", "v"]), spec
        )
        result = (
            ColumnarPlan(orders)
            .select(predicate)
            .join(ColumnarPlan(dims), on=["g"])
            .project(["o", "v"])
            .window(spec)
            .to_rows()
        )
        assert_same(expected, result)

    def test_plan_sort_and_topk_stay_columnar(self):
        from repro.ranking.topk import sort as au_sort, topk as au_topk

        relation = people()
        plan = ColumnarPlan(relation)
        sorted_plan = plan.sort(["age"])
        assert isinstance(sorted_plan, ColumnarPlan)
        assert isinstance(sorted_plan.columnar(), ColumnarAURelation)
        assert_same(au_sort(relation, ["age"], method="native"), sorted_plan.to_rows())
        assert_same(
            au_topk(relation, ["age"], 2, method="native"), plan.topk(["age"], 2).to_rows()
        )

    def test_plan_continues_past_sort_and_window(self):
        """Sort / window output feeds further stages without leaving columnar."""
        from repro.core.operators import select as row_select
        from repro.ranking.topk import sort as au_sort
        from repro.window.native import window_native

        relation = people()
        spec = WindowSpec(
            function="sum", attribute="age", output="s", order_by=("age",), frame=(-1, 0)
        )
        expected = window_native(
            row_select(au_sort(relation, ["age"], method="native"), attr("pos").lt(2)),
            spec,
        )
        result = (
            ColumnarPlan(relation)
            .sort(["age"])
            .select(attr("pos").lt(2))
            .window(spec)
            .to_rows()
        )
        assert_same(expected, result)

    def test_chained_plan_never_materialises_rows_mid_plan(self, monkeypatch):
        """Sort / window / topk stages must not touch the row-major layout.

        Spies on both conversion directions; a chained plan over a
        pre-converted columnar input may convert exactly once — at the
        explicit ``.to_rows()`` boundary.
        """
        relation = AURelation.from_rows(
            ["o", "v"],
            [
                ((1, 10), (1, 1, 1)),
                ((RangeValue(2, 2, 4), 20), (0, 1, 2)),
                ((3, RangeValue(5, 6, 9)), (1, 1, 1)),
            ],
        )
        columnar = ColumnarAURelation.from_relation(relation)
        calls = {"to_relation": 0, "from_relation": 0}
        original_to = ColumnarAURelation.to_relation
        original_from = ColumnarAURelation.from_relation

        def spy_to(self):
            calls["to_relation"] += 1
            return original_to(self)

        def spy_from(rows):
            calls["from_relation"] += 1
            return original_from(rows)

        monkeypatch.setattr(ColumnarAURelation, "to_relation", spy_to)
        monkeypatch.setattr(ColumnarAURelation, "from_relation", staticmethod(spy_from))

        spec = WindowSpec(
            function="sum", attribute="v", output="w", order_by=("o",), frame=(-1, 0)
        )
        second = WindowSpec(
            function="max", attribute="w", output="w2", order_by=("pos",), frame=(-2, 0)
        )
        plan = (
            ColumnarPlan(columnar)
            .select(attr("v").ge(const(5)))
            .window(spec)
            .topk(["o"], 3)
            .window(second)
            .groupby_aggregate(["o"], [("sum", "w2", "s")])
        )
        assert calls == {"to_relation": 0, "from_relation": 0}
        plan.to_rows()
        assert calls == {"to_relation": 1, "from_relation": 0}

    def test_stage_after_to_rows_raises_plan_error(self):
        from repro.errors import PlanError

        rows = ColumnarPlan(people()).select(attr("age").ge(const(20))).to_rows()
        assert isinstance(rows, AURelation)
        with pytest.raises(PlanError, match="after .to_rows"):
            rows.window(None)
        with pytest.raises(PlanError, match="wrap the result in ColumnarPlan"):
            rows.select(attr("age").ge(const(20)))
        with pytest.raises(PlanError, match="to_rows"):
            rows.to_rows()
        # Wrapping the boundary result explicitly re-opens the chain.
        reopened = ColumnarPlan(rows).project(["age"]).to_rows()
        assert reopened.schema.attributes == ("age",)

    def test_plan_topk_rejects_negative_k(self):
        with pytest.raises(OperatorError, match="non-negative"):
            ColumnarPlan(people()).topk(["age"], -1)

    def test_union_cross_accept_plans_and_relations(self):
        relation = people()
        by_plan = ColumnarPlan(relation).union(ColumnarPlan(relation)).relation()
        by_relation = ColumnarPlan(relation).union(relation).relation()
        assert_same(by_plan, by_relation)
        assert_same(union(relation, relation), by_plan)
        assert_same(
            cross(relation, relation), ColumnarPlan(relation).cross(relation).relation()
        )

    def test_rename_and_extend_stages(self):
        relation = people()
        result = (
            ColumnarPlan(relation)
            .extend("age2", attr("age") * const(2))
            .rename({"age2": "double_age"})
            .relation()
        )
        from repro.core.operators import rename as row_rename

        expected = row_rename(
            extend(relation, "age2", attr("age") * const(2)), {"age2": "double_age"}
        )
        assert_same(expected, result)


class TestColumnarGroupby:
    def sales(self):
        return AURelation.from_rows(
            ["g", "v"],
            [
                ((0, 10), (1, 1, 1)),
                ((RangeValue(0, 1, 1), 20), (0, 1, 2)),
                ((1, RangeValue(2, 5, 9)), (1, 2, 2)),
            ],
        )

    def test_groupby_backend_dispatch_agrees(self):
        aggregates = [("count", "*", "n"), ("sum", "v", "s"), ("avg", "v", "m")]
        assert_same(
            groupby_aggregate(self.sales(), ["g"], aggregates),
            groupby_aggregate(self.sales(), ["g"], aggregates, backend="columnar"),
        )

    def test_groupby_kernel_returns_columnar(self):
        from repro.columnar.operators import groupby_aggregate as col_groupby

        columnar = ColumnarAURelation.from_relation(self.sales())
        result = col_groupby(columnar, ["g"], [("count", "*", "n")])
        assert isinstance(result, ColumnarAURelation)
        assert result.schema.attributes == ("g", "n")

    def test_uncertain_membership_widens_group_hull(self):
        """A row whose key straddles both groups contributes possibly to each."""
        result = groupby_aggregate(
            self.sales(), ["g"], [("count", "*", "n")], backend="columnar"
        )
        rows = {tup.value("g").sg: tup.value("n") for tup, _m in result}
        assert rows[0] == RangeValue(1, 1, 3)  # straddler adds up to 2 copies
        assert rows[1] == RangeValue(1, 3, 4)

    def test_global_aggregate_over_empty_relation(self):
        empty = AURelation.from_rows(["v"], [])
        for backend in ("python", "columnar"):
            result = groupby_aggregate(
                empty, [], [("count", "*", "n"), ("min", "v", "lo")], backend=backend
            )
            (tup, mult), = list(result)
            assert tup.value("n") == RangeValue(0, 0, 0)
            assert tup.value("lo") == RangeValue(None, None, None)
            assert mult.ub == 1 and mult.lb == 0

    def test_empty_relation_with_group_by_is_empty(self):
        empty = AURelation.from_rows(["g", "v"], [])
        for backend in ("python", "columnar"):
            assert groupby_aggregate(
                empty, ["g"], [("sum", "v", "s")], backend=backend
            ).is_empty()

    def test_string_group_keys(self):
        relation = AURelation.from_rows(
            ["g", "v"], [(("x", 1), 1), (("y", 2), (0, 1, 1)), (("x", 3), (1, 2, 2))]
        )
        aggregates = [("count", "*", "n"), ("sum", "v", "s")]
        assert_same(
            groupby_aggregate(relation, ["g"], aggregates),
            groupby_aggregate(relation, ["g"], aggregates, backend="columnar"),
        )

    def test_bool_int_keys_share_groups(self):
        """`True` and `1` are the same group key on both backends."""
        relation = AURelation.from_rows(
            ["g", "v"], [((True, 1), 1), ((1, 2), 1), ((0, 3), 1)]
        )
        for backend in ("python", "columnar"):
            assert len(groupby_aggregate(relation, ["g"], [("count", "*", "n")], backend=backend)) == 2
        assert_same(
            groupby_aggregate(relation, ["g"], [("count", "*", "n")]),
            groupby_aggregate(relation, ["g"], [("count", "*", "n")], backend="columnar"),
        )

    def test_huge_integer_values_take_the_scalar_fallback(self):
        big = 2**60
        relation = AURelation.from_rows(
            ["g", "v"], [((0, big), (1, 1, 2)), ((0, RangeValue(-big, 0, big)), (0, 1, 1))]
        )
        aggregates = [("sum", "v", "s"), ("min", "v", "lo"), ("max", "v", "hi")]
        assert_same(
            groupby_aggregate(relation, ["g"], aggregates),
            groupby_aggregate(relation, ["g"], aggregates, backend="columnar"),
        )

    def test_unsupported_aggregate_raises_on_both_backends(self):
        for backend in ("python", "columnar"):
            with pytest.raises(OperatorError, match="unsupported aggregate"):
                groupby_aggregate(self.sales(), ["g"], [("median", "v", "m")], backend=backend)
            with pytest.raises(OperatorError, match="requires an attribute"):
                groupby_aggregate(self.sales(), ["g"], [("sum", "*", "s")], backend=backend)

    def test_plan_groupby_stage_stays_columnar(self):
        plan = ColumnarPlan(self.sales()).groupby_aggregate(
            ["g"], [("sum", "v", "s"), ("count", "*", "n")]
        )
        assert isinstance(plan.columnar(), ColumnarAURelation)
        assert_same(
            groupby_aggregate(self.sales(), ["g"], [("sum", "v", "s"), ("count", "*", "n")]),
            plan.relation(),
        )

    def test_plan_select_join_groupby_window_chain(self):
        """The acceptance chain: no row-major conversion before the window stage."""
        from repro.core.operators import select as row_select, join as row_join
        from repro.window.native import window_native

        orders = AURelation.from_rows(
            ["o", "g", "v"],
            [
                ((1, 0, 10), (1, 1, 1)),
                ((RangeValue(2, 2, 3), RangeValue(0, 0, 1), 20), (0, 1, 1)),
                ((3, 1, 30), (1, 1, 2)),
                ((4, 2, 40), (1, 1, 1)),
            ],
        )
        dims = AURelation.from_rows(["g", "w"], [((0, 5), 1), ((1, 7), 1)])
        predicate = attr("v").ge(const(15))
        spec = WindowSpec(
            function="sum", attribute="s", output="rolling", order_by=("g",), frame=(-1, 0)
        )
        aggregates = [("sum", "v", "s")]

        expected = window_native(
            groupby_aggregate(row_join(row_select(orders, predicate), dims, on=["g"]), ["g"], aggregates),
            spec,
        )
        result = (
            ColumnarPlan(orders)
            .select(predicate)
            .join(ColumnarPlan(dims), on=["g"])
            .groupby_aggregate(["g"], aggregates)
            .window(spec)
            .to_rows()
        )
        assert_same(expected, result)


class TestSearchsortedEquiJoin:
    def orders(self):
        return AURelation.from_rows(
            ["k", "a"],
            [
                ((1, 10), (1, 1, 1)),
                ((RangeValue(1, 2, 3), 11), (0, 1, 2)),
                ((5, 12), (1, 1, 1)),
            ],
        )

    def dims(self):
        return AURelation.from_rows(
            ["k", "b"], [((2, 100), 1), ((1, 200), (1, 2, 2)), ((3, 300), 1)]
        )

    def test_methods_are_bit_identical(self):
        from repro.columnar import operators as col_ops

        left = ColumnarAURelation.from_relation(self.orders())
        right = ColumnarAURelation.from_relation(self.dims())
        grid = col_ops.join(left, right, on=["k"], method="grid")
        fast = col_ops.join(left, right, on=["k"], method="searchsorted")
        import numpy as np

        assert grid.schema == fast.schema
        for grid_col, fast_col in zip(grid.columns, fast.columns):
            for component in ("lb", "sg", "ub"):
                assert np.array_equal(getattr(grid_col, component), getattr(fast_col, component))
        for component in ("mult_lb", "mult_sg", "mult_ub"):
            assert np.array_equal(getattr(grid, component), getattr(fast, component))

    def test_searchsorted_requires_a_certain_side(self):
        from repro.columnar import operators as col_ops

        uncertain = AURelation.from_rows(
            ["k", "a"], [((RangeValue(0, 1, 2), 1), 1)]
        )
        left = ColumnarAURelation.from_relation(uncertain)
        with pytest.raises(OperatorError, match="searchsorted equi-join requires"):
            col_ops.join(left, left, on=["k"], method="searchsorted")

    def test_searchsorted_rejects_object_keys(self):
        from repro.columnar import operators as col_ops

        strings = ColumnarAURelation.from_relation(
            AURelation.from_rows(["k"], [(("x",), 1), (("y",), 1)])
        )
        with pytest.raises(OperatorError, match="searchsorted equi-join requires"):
            col_ops.join(strings, strings, on=["k"], method="searchsorted")
        # auto silently falls back to the grid and still agrees with python.
        auto = col_ops.join(strings, strings, on=["k"]).to_relation()
        assert_same(join(strings.to_relation(), strings.to_relation(), on=["k"]), auto)

    def test_searchsorted_requires_on(self):
        from repro.columnar import operators as col_ops

        left = ColumnarAURelation.from_relation(self.orders())
        with pytest.raises(OperatorError, match="requires an `on`"):
            col_ops.join(left, left, attr("a").lt(attr("a_r")), method="searchsorted")

    def test_unknown_method_raises(self):
        from repro.columnar import operators as col_ops

        left = ColumnarAURelation.from_relation(self.orders())
        with pytest.raises(OperatorError, match="unknown join method"):
            col_ops.join(left, left, on=["k"], method="hash")

    def test_multi_key_join_filters_remaining_keys(self):
        left = AURelation.from_rows(
            ["k", "h", "a"],
            [((1, 1, 10), 1), ((1, RangeValue(1, 2, 3), 11), 1), ((2, 1, 12), 1)],
        )
        right = AURelation.from_rows(
            ["k", "h", "b"], [((1, 1, 100), 1), ((1, 2, 200), 1), ((2, 9, 300), 1)]
        )
        from repro.columnar import operators as col_ops

        columnar_left = ColumnarAURelation.from_relation(left)
        columnar_right = ColumnarAURelation.from_relation(right)
        fast = col_ops.join(columnar_left, columnar_right, on=["k", "h"], method="searchsorted")
        assert_same(join(left, right, on=["k", "h"]), fast.to_relation())

    def test_empty_sides_qualify(self):
        from repro.columnar import operators as col_ops

        empty = ColumnarAURelation.from_relation(AURelation.from_rows(["k", "a"], []))
        right = ColumnarAURelation.from_relation(self.dims())
        result = col_ops.join(empty, right, on=["k"], method="searchsorted")
        assert len(result) == 0
        assert result.schema.attributes == ("k", "a", "k_r", "b")

    def test_interval_point_match_pairs_kernel(self):
        import numpy as np

        from repro.columnar.kernels import interval_point_match_pairs

        lb = np.array([0, 5, 2], dtype=np.int64)
        ub = np.array([3, 5, 2], dtype=np.int64)
        points = np.array([2, 0, 5, 9], dtype=np.int64)
        intervals, matched = interval_point_match_pairs(lb, ub, points)
        pairs = sorted(zip(intervals.tolist(), matched.tolist()))
        assert pairs == [(0, 0), (0, 1), (1, 2), (2, 0)]


class TestDistinctSemantics:
    def test_disjoint_certain_tuples_keep_certainty(self):
        relation = AURelation.from_rows(["a"], [((1,), (2, 3, 4)), ((7,), (1, 1, 1))])
        for backend in ("python", "columnar"):
            result = distinct(relation, backend=backend)
            assert [m for _t, m in result] == [Multiplicity(1, 1, 1), Multiplicity(1, 1, 1)]

    def test_overlapping_tuples_lose_certainty_but_not_possibility(self):
        relation = AURelation.from_rows(
            ["a"], [((RangeValue(0, 0, 2),), (1, 1, 3)), ((1,), (1, 1, 1))]
        )
        for backend in ("python", "columnar"):
            result = distinct(relation, backend=backend)
            mults = list(result._rows.values())
            # The range tuple's 3 duplicates may hold 3 distinct values.
            assert mults[0] == Multiplicity(0, 1, 3)
            assert mults[1] == Multiplicity(0, 1, 1)

    def test_sg_world_deduplicates_to_first_producer(self):
        relation = AURelation.from_rows(
            ["a"], [((RangeValue(0, 1, 2),), (0, 1, 1)), ((1,), (1, 1, 1))]
        )
        for backend in ("python", "columnar"):
            result = distinct(relation, backend=backend)
            mults = list(result._rows.values())
            assert [m.sg for m in mults] == [1, 0]

    def test_zeroed_multiplicity_rows_do_not_block_certainty(self):
        """Regression: a (0,0,0) row built via with_multiplicities is the
        semiring zero — it must neither survive distinct nor strip an
        overlapping neighbour's certain copy (the row-major layout cannot
        hold it, so the Python reference never sees it)."""
        import numpy as np

        base = AURelation.from_rows(
            ["a"], [((5,), (1, 1, 1)), ((RangeValue(4, 5, 6),), (1, 1, 1))]
        )
        columnar = ColumnarAURelation.from_relation(base)
        zeroed = columnar.with_multiplicities(
            np.array([1, 0], dtype=np.int64),
            np.array([1, 0], dtype=np.int64),
            np.array([1, 0], dtype=np.int64),
        )
        from repro.columnar.operators import distinct as col_distinct
        from repro.columnar.operators import groupby_aggregate as col_groupby

        result = col_distinct(zeroed).to_relation()
        assert_same(distinct(zeroed.to_relation()), result)
        assert list(result._rows.values()) == [Multiplicity(1, 1, 1)]
        grouped = col_groupby(zeroed, [], [("count", "*", "n")]).to_relation()
        assert_same(groupby_aggregate(zeroed.to_relation(), [], [("count", "*", "n")]), grouped)

    def test_integer_sum_selected_guess_stays_integral(self):
        """Regression: clamping must not float-promote an unclamped int sg."""
        relation = AURelation.from_rows(["g", "v"], [((1, 10), 1), ((1, 5), 1)])
        py = next(iter(groupby_aggregate(relation, ["g"], [("sum", "v", "s")])))[0]
        col = next(
            iter(groupby_aggregate(relation, ["g"], [("sum", "v", "s")], backend="columnar"))
        )[0]
        assert repr(py.value("s")) == repr(col.value("s"))
