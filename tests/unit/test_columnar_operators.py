"""Unit tests for the columnar RA⁺ kernels and the plan-composition helper."""

import pytest

pytest.importorskip("numpy", reason="the columnar backend requires NumPy")

from repro.columnar.operators import select as col_select
from repro.columnar.plan import ColumnarPlan
from repro.columnar.relation import ColumnarAURelation
from repro.core.booleans import RangeBool
from repro.core.expressions import attr, const
from repro.core.operators import cross, distinct, extend, join, project, select, union
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.errors import ExpressionError, OperatorError, SchemaError
from repro.window.spec import WindowSpec


def people():
    return AURelation.from_rows(
        ["name", "age"],
        [
            (("ann", 30), (1, 1, 1)),
            (("bob", RangeValue(20, 25, 40)), (0, 1, 2)),
            (("cyd", RangeValue(10, 15, 20)), (1, 2, 2)),
        ],
    )


def assert_same(left: AURelation, right: AURelation) -> None:
    assert left.schema == right.schema
    assert left._rows == right._rows


class TestBackendDispatch:
    def test_unknown_backend_raises(self):
        relation = people()
        with pytest.raises(OperatorError, match="unknown operator backend"):
            select(relation, attr("age").lt(30), backend="vectorised")
        with pytest.raises(OperatorError, match="unknown operator backend"):
            project(relation, ["age"], backend="")

    def test_columnar_backend_accepts_either_layout(self):
        relation = people()
        columnar = ColumnarAURelation.from_relation(relation)
        predicate = attr("age").ge(const(25))
        assert_same(
            select(relation, predicate, backend="columnar"),
            select(columnar, predicate, backend="columnar"),
        )

    def test_callable_predicates_take_the_scalar_fallback(self):
        relation = people()

        def young(tup) -> RangeBool:
            return tup.value("age").lt(RangeValue.certain(26))

        assert_same(select(relation, young), select(relation, young, backend="columnar"))

    def test_select_rejects_scalar_expression_shaped_like_python_backend(self):
        relation = people()
        # A bare attribute is not a predicate; both backends filter on
        # component truthiness (Multiplicity.filter reads .lb/.sg/.ub).
        assert_same(
            select(relation, attr("age")), select(relation, attr("age"), backend="columnar")
        )


class TestColumnarKernels:
    def test_select_filters_multiplicity_components(self):
        columnar = ColumnarAURelation.from_relation(people())
        result = col_select(columnar, attr("age").le(const(25)))
        assert isinstance(result, ColumnarAURelation)
        rows = result.to_relation()
        bob = next(tup for tup, _m in rows if tup.value("name").sg == "bob")
        # bob's age range [20/25/40] is possibly and sg-true but not certain.
        assert rows.multiplicity(bob).lb == 0
        assert rows.multiplicity(bob).sg == 1

    def test_project_merges_equal_hypercubes(self):
        relation = AURelation.from_rows(
            ["a", "b"], [((1, 1), (1, 1, 1)), ((1, 2), (0, 1, 2)), ((2, 3), 1)]
        )
        assert_same(project(relation, ["a"]), project(relation, ["a"], backend="columnar"))
        merged = project(relation, ["a"], backend="columnar")
        assert len(merged) == 2

    def test_project_to_empty_schema_merges_everything(self):
        relation = people()
        assert_same(project(relation, []), project(relation, [], backend="columnar"))

    def test_extend_rejects_existing_attribute(self):
        relation = people()
        with pytest.raises(SchemaError):
            extend(relation, "age", attr("age") + const(1), backend="columnar")

    def test_extend_rejects_predicate_expressions(self):
        with pytest.raises(ExpressionError):
            extend(people(), "x", attr("age").lt(30), backend="columnar")

    def test_union_requires_identical_schemas(self):
        with pytest.raises(SchemaError):
            union(people(), AURelation.from_rows(["x"], []), backend="columnar")

    def test_distinct_caps_triples(self):
        relation = AURelation.from_rows(["a"], [((1,), (2, 3, 4)), ((2,), (0, 0, 2))])
        assert_same(distinct(relation), distinct(relation, backend="columnar"))

    def test_join_requires_condition(self):
        with pytest.raises(OperatorError):
            join(people(), people(), backend="columnar")

    def test_join_on_missing_attribute_raises(self):
        with pytest.raises(SchemaError):
            join(people(), people(), on=["salary"], backend="columnar")

    def test_cross_disambiguates_without_capturing(self):
        left = AURelation.from_rows(["a"], [((1,), 1)])
        right = AURelation.from_rows(["a", "a_r"], [((2, 3), 1)])
        result = cross(left, right, backend="columnar")
        assert result.schema.attributes == ("a", "a_r_r", "a_r")
        assert_same(cross(left, right), result)

    def test_huge_integers_stay_exact_via_the_scalar_fallback(self):
        """Components beyond float64's exact range must not round anywhere."""
        big = 2**60
        relation = AURelation.from_rows(
            ["a", "b"],
            [((big, 1.5), 1), ((RangeValue(-big, 0, big), 2.0), (0, 1, 1))],
        )
        expression = attr("a") * const(3)
        assert_same(
            extend(relation, "x", expression),
            extend(relation, "x", expression, backend="columnar"),
        )
        predicate = attr("a").gt(attr("b"))
        assert_same(
            select(relation, predicate), select(relation, predicate, backend="columnar")
        )
        assert_same(
            join(relation, relation, on=["a"]),
            join(relation, relation, on=["a"], backend="columnar"),
        )

    def test_nan_rows_never_merge(self):
        """NaN equals nothing (itself included), so NaN rows stay distinct.

        Bit-for-bit dict comparison is impossible for NaN hypercubes (their
        hashes are identity-based), so this checks the structural agreement:
        both backends keep the same row count and annotation totals.
        """
        nan = float("nan")
        relation = AURelation(people().schema.project(["age"]).rename({"age": "v"}))
        relation.add_values([RangeValue(nan, nan, nan)], 1)
        relation.add_values([1.0], 2)
        python_result = project(relation, ["v"])
        columnar_result = project(relation, ["v"], backend="columnar")
        assert python_result.schema == columnar_result.schema
        assert len(python_result) == len(columnar_result) == 2
        assert python_result.total_possible == columnar_result.total_possible == 3


class TestColumnarPlan:
    def test_stages_stay_columnar_until_the_boundary(self):
        plan = ColumnarPlan(people()).select(attr("age").ge(const(20))).project(["age"])
        assert isinstance(plan.columnar(), ColumnarAURelation)
        result = plan.relation()
        assert isinstance(result, AURelation)
        assert_same(project(select(people(), attr("age").ge(const(20))), ["age"]), result)

    def test_full_chain_matches_python_operator_chain(self):
        orders = AURelation.from_rows(
            ["o", "g", "v"],
            [
                ((1, 0, 10), (1, 1, 1)),
                ((RangeValue(2, 2, 3), RangeValue(0, 0, 1), 20), (0, 1, 1)),
                ((3, 1, 30), (1, 1, 2)),
                ((4, 2, 40), (1, 1, 1)),
            ],
        )
        dims = AURelation.from_rows(["g", "w"], [((0, 5), 1), ((1, 7), 1)])
        spec = WindowSpec(
            function="sum", attribute="v", output="s", order_by=("o",), frame=(-1, 0)
        )
        predicate = attr("v").ge(const(15))

        from repro.window.native import window_native

        expected = window_native(
            project(join(select(orders, predicate), dims, on=["g"]), ["o", "v"]), spec
        )
        result = (
            ColumnarPlan(orders)
            .select(predicate)
            .join(ColumnarPlan(dims), on=["g"])
            .project(["o", "v"])
            .window(spec)
        )
        assert_same(expected, result)

    def test_plan_sort_and_topk_are_terminal(self):
        from repro.ranking.topk import sort as au_sort, topk as au_topk

        relation = people()
        plan = ColumnarPlan(relation)
        assert_same(au_sort(relation, ["age"], method="native"), plan.sort(["age"]))
        assert_same(au_topk(relation, ["age"], 2, method="native"), plan.topk(["age"], 2))

    def test_plan_topk_rejects_negative_k(self):
        with pytest.raises(OperatorError, match="non-negative"):
            ColumnarPlan(people()).topk(["age"], -1)

    def test_union_cross_accept_plans_and_relations(self):
        relation = people()
        by_plan = ColumnarPlan(relation).union(ColumnarPlan(relation)).relation()
        by_relation = ColumnarPlan(relation).union(relation).relation()
        assert_same(by_plan, by_relation)
        assert_same(union(relation, relation), by_plan)
        assert_same(
            cross(relation, relation), ColumnarPlan(relation).cross(relation).relation()
        )

    def test_rename_and_extend_stages(self):
        relation = people()
        result = (
            ColumnarPlan(relation)
            .extend("age2", attr("age") * const(2))
            .rename({"age2": "double_age"})
            .relation()
        )
        from repro.core.operators import rename as row_rename

        expected = row_rename(
            extend(relation, "age2", attr("age") * const(2)), {"age2": "double_age"}
        )
        assert_same(expected, result)
