"""Unit tests for the serving layer (:mod:`repro.serving`).

The plan cache and query server sit between callers and the incremental
views, so the contracts pinned here are the ones a cache typically fumbles:
keying by plan *shape* (parameter re-binding must share one template entry
per constant tuple, never re-plan), LRU accounting (``peek`` must not
refresh recency), the no-aliasing guarantee (mutating a served relation
must not corrupt the cached view), and delta fan-out (every cached view
patches; a view whose apply fails is evicted — never left stale).

The fault-injection tests reuse the worker-pool failure modes pinned in
``test_parallel``: a forked worker dying mid-delta (``os._exit``) must
surface as :class:`~repro.errors.ParallelError` while the view stays
pre-delta (atomic apply) and the server drops the failed view instead of
serving its stale result.
"""

from __future__ import annotations

import asyncio
import os

import pytest

pytest.importorskip("numpy", reason="the serving layer runs on the columnar backend")

from repro.columnar.incremental import merge_delta
from repro.columnar.parallel import fork_capable
from repro.columnar.plan import ColumnarPlan, PlanSpec
from repro.core.expressions import attr, const
from repro.core.relation import AURelation
from repro.core.schema import Schema
from repro.errors import OperatorError, ParallelError, ReproError, ServingError
from repro.serving import PlanCache, QueryServer

needs_fork = pytest.mark.skipif(
    not fork_capable(), reason="the worker pool requires fork-started processes"
)

SCHEMA = ("g", "v")


def _base(rows=((0, 5), (0, 2), (1, 7), (1, 1), (2, 4), (2, 9))) -> AURelation:
    base = AURelation(Schema(SCHEMA))
    for g, v in rows:
        base.add_values([g, v], 1)
    return base


def _template() -> PlanSpec:
    """One bind slot (the threshold constant), trailing top-k."""
    return PlanSpec().select(attr("v").ge(const(0))).topk(["v"], 3, descending=True)


def _groupby_spec() -> PlanSpec:
    """The fallback class: every delta recomputes (through the worker pool)."""
    return PlanSpec().groupby_aggregate(["g"], [("sum", "v", "s")])


def _expected(spec: PlanSpec, base: AURelation) -> AURelation:
    return spec.apply(ColumnarPlan(base)).to_rows()


def assert_bit_identical(expected: AURelation, actual: AURelation) -> None:
    assert expected.schema == actual.schema
    assert list(expected._rows.items()) == list(actual._rows.items())


class TestPlanCache:
    @pytest.mark.parametrize("bad", [0, -1, 2.5, "4", True, False, None])
    def test_capacity_must_be_a_positive_integer(self, bad):
        with pytest.raises(ServingError, match="capacity"):
            PlanCache(bad)

    def test_serving_error_is_a_repro_error(self):
        with pytest.raises(ReproError):
            PlanCache(0)

    def test_get_counts_hits_and_misses(self):
        cache = PlanCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.stats == {"hits": 1, "misses": 1, "evictions": 0, "size": 1}

    def test_lru_eviction_follows_recency(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh: "b" becomes LRU
        cache.put("c", 3)
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.stats["evictions"] == 1

    def test_peek_reads_without_touching_recency_or_counters(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.peek("nope") is None
        assert cache.stats["hits"] == 0 and cache.stats["misses"] == 0
        cache.put("c", 3)  # "a" was NOT refreshed by peek: it is the LRU
        assert "a" not in cache and "b" in cache

    def test_put_refreshes_existing_entries(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, no growth
        cache.put("c", 3)
        assert "b" not in cache and cache.get("a") == 10

    def test_explicit_evict_is_not_counted_as_lru_pressure(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        assert cache.evict("a") is True
        assert cache.evict("a") is False
        assert cache.stats["evictions"] == 0 and len(cache) == 0

    def test_clear_keys_values_len(self):
        cache = PlanCache(capacity=8)
        cache.put("a", 1)
        cache.put("b", 2)
        assert sorted(cache.keys()) == ["a", "b"]
        assert sorted(cache.values()) == [1, 2]
        cache.clear()
        assert len(cache) == 0 and "a" not in cache


class TestQueryServer:
    def test_register_rejects_non_specs(self):
        server = QueryServer(_base())
        with pytest.raises(ServingError, match="PlanSpec"):
            server.register("bad", object())

    def test_unknown_template_raises(self):
        server = QueryServer(_base())
        server.register("top", _template())
        with pytest.raises(ServingError, match="unknown query template"):
            server.query("nope", (0,))

    def test_param_count_mismatch_raises(self):
        server = QueryServer(_base())
        server.register("top", _template())
        with pytest.raises(ServingError, match="top"):
            server.query("top", (1, 2))

    def test_query_matches_the_direct_plan(self):
        base = _base()
        server = QueryServer(base)
        server.register("top", _template())
        for threshold in (0, 3, 100):
            expected = _expected(_template().bind((threshold,)), base)
            assert_bit_identical(expected, server.query("top", (threshold,)))

    def test_parameter_rebinding_shares_the_template_shape(self):
        server = QueryServer(_base())
        server.register("top", _template())
        server.query("top", (0,))
        server.query("top", (3,))   # same shape, new constant: second view
        server.query("top", (0,))   # warm
        server.query("top", (3,))   # warm
        stats = server.stats()
        assert stats["views"] == 2
        assert stats["misses"] == 2 and stats["hits"] == 2
        assert stats["templates"] == 1

    def test_served_results_do_not_alias_the_cached_view(self):
        server = QueryServer(_base())
        server.register("top", _template())
        first = server.query("top", (0,))
        pristine = list(first._rows.items())
        first._rows.clear()
        first.add_values([99] * len(first.schema), 1)
        again = server.query("top", (0,))
        assert server.stats()["hits"] == 1  # warm — same cached view
        assert list(again._rows.items()) == pristine

    def test_delta_patches_every_cached_view(self):
        base = _base()
        server = QueryServer(base)
        server.register("top", _template())
        server.query("top", (0,))
        server.query("top", (5,))
        inserts = AURelation(Schema(SCHEMA))
        inserts.add_values([3, 8], 1)
        server.apply_delta(inserts=inserts)
        accumulated, _ = merge_delta(base, inserts, None)
        hits_before = server.stats()["hits"]
        for threshold in (0, 5):
            expected = _expected(_template().bind((threshold,)), accumulated)
            assert_bit_identical(expected, server.query("top", (threshold,)))
        assert server.stats()["hits"] == hits_before + 2  # still warm views
        assert server.cached_view("top", (0,)).last_apply == "patched"
        assert_bit_identical(accumulated, server.base_rows())

    def test_invalid_delta_raises_with_nothing_committed(self):
        server = QueryServer(_base())
        server.register("top", _template())
        before = server.query("top", (0,))
        missing = AURelation(Schema(SCHEMA))
        missing.add_values([9, 9], 1)
        with pytest.raises(OperatorError):
            server.apply_delta(retracts=missing)
        assert_bit_identical(_base(), server.base_rows())
        assert_bit_identical(before, server.query("top", (0,)))

    def test_eviction_under_the_capacity_cap(self):
        server = QueryServer(_base(), capacity=1)
        server.register("top", _template())
        server.query("top", (0,))
        server.query("top", (5,))  # evicts the (0,) view
        stats = server.stats()
        assert stats["views"] == 1 and stats["evictions"] == 1
        assert server.cached_view("top", (0,)) is None
        assert server.cached_view("top", (5,)) is not None
        # the evicted key still answers correctly — it just rebuilds
        expected = _expected(_template().bind((0,)), _base())
        assert_bit_identical(expected, server.query("top", (0,)))

    def test_query_spec_caches_ad_hoc_plans_by_shape_key(self):
        server = QueryServer(_base())
        spec = _template().bind((2,))
        first = server.query_spec(spec)
        again = server.query_spec(_template().bind((2,)))  # equal shape+params
        assert_bit_identical(first, again)
        stats = server.stats()
        assert stats["views"] == 1 and stats["hits"] == 1

    def test_query_async_returns_the_sync_answer(self):
        server = QueryServer(_base())
        server.register("top", _template())
        expected = server.query("top", (0,))
        result = asyncio.run(server.query_async("top", (0,)))
        assert_bit_identical(expected, result)


class _ExplodingView:
    """A stub cache entry whose delta apply always fails."""

    def apply_delta(self, inserts=None, retracts=None):
        raise RuntimeError("injected view fault")


def _fresh_delta() -> AURelation:
    inserts = AURelation(Schema(SCHEMA))
    inserts.add_values([4, 6], 1)
    return inserts


class TestFaultInjection:
    def test_failing_view_is_evicted_and_the_rest_still_patch(self):
        base = _base()
        server = QueryServer(base)
        server.register("top", _template())
        server.query("top", (0,))
        server._cache.put(("bogus-shape", ()), _ExplodingView())
        inserts = _fresh_delta()
        with pytest.raises(RuntimeError, match="injected view fault"):
            server.apply_delta(inserts=inserts)
        # the faulty entry is gone; the healthy view patched and stays warm
        assert ("bogus-shape", ()) not in server._cache
        accumulated, _ = merge_delta(base, inserts, None)
        assert_bit_identical(accumulated, server.base_rows())
        assert server.cached_view("top", (0,)).last_apply == "patched"
        expected = _expected(_template().bind((0,)), accumulated)
        assert_bit_identical(expected, server.query("top", (0,)))

    @needs_fork
    def test_worker_death_mid_delta_leaves_the_view_pre_delta(self, monkeypatch):
        """Atomic apply: a dead worker raises ParallelError, nothing commits."""
        from repro.columnar import operators
        from repro.columnar.incremental import IncrementalView
        from repro.columnar.parallel import parallel_map

        base = _base()
        view = IncrementalView(base, _groupby_spec(), workers=2)
        before = view.to_rows()

        def dying_map(fn, tasks, *, workers=1):
            if workers > 1:
                def lethal(task):
                    os._exit(17)

                return parallel_map(lethal, tasks, workers=workers)
            return parallel_map(fn, tasks, workers=workers)

        monkeypatch.setattr(operators, "parallel_map", dying_map)
        with pytest.raises(ParallelError, match="exited without reporting"):
            view.apply_delta(inserts=_fresh_delta())
        assert_bit_identical(before, view.to_rows())
        assert_bit_identical(base, view.base_rows())
        # the pool recovers: the same delta applies once workers behave
        monkeypatch.setattr(operators, "parallel_map", parallel_map)
        view.apply_delta(inserts=_fresh_delta())
        accumulated, _ = merge_delta(base, _fresh_delta(), None)
        assert_bit_identical(_expected(_groupby_spec(), accumulated), view.to_rows())

    @needs_fork
    def test_worker_death_evicts_the_view_without_poisoning_the_cache(
        self, monkeypatch
    ):
        from repro.columnar import operators
        from repro.columnar.parallel import parallel_map

        base = _base()
        server = QueryServer(base, workers=2)
        server.register("agg", _groupby_spec())
        server.query("agg")

        def dying_map(fn, tasks, *, workers=1):
            if workers > 1:
                def lethal(task):
                    os._exit(17)

                return parallel_map(lethal, tasks, workers=workers)
            return parallel_map(fn, tasks, workers=workers)

        monkeypatch.setattr(operators, "parallel_map", dying_map)
        inserts = _fresh_delta()
        with pytest.raises(ParallelError, match="exited without reporting"):
            server.apply_delta(inserts=inserts)
        # the base committed (it merged before view fan-out), the stale view
        # did not survive, and the next query rebuilds against the new base
        assert server.stats()["views"] == 0
        accumulated, _ = merge_delta(base, inserts, None)
        assert_bit_identical(accumulated, server.base_rows())
        monkeypatch.setattr(operators, "parallel_map", parallel_map)
        assert_bit_identical(
            _expected(_groupby_spec(), accumulated), server.query("agg")
        )


SQL_TEMPLATE = "SELECT g AS g, v AS v FROM base WHERE v > 5 ORDER BY v DESC"


class TestSqlTemplates:
    """SQL strings register as plan templates; constants re-bind shape-keyed.

    ``register`` parses the SQL exactly once (via
    :func:`repro.sql.sql_to_spec`); every subsequent ``query`` binds a new
    constant tuple through the spec's shape key, so differently-bound
    constants share one template entry and each lands its own cached view.
    """

    def test_sql_string_registers_as_a_template(self):
        server = QueryServer(_base())
        server.register("big", SQL_TEMPLATE)
        assert server.templates() == ("big",)

    def test_rebinding_matches_reparsing_with_the_constant_inlined(self):
        from repro.sql import run_sql

        base = _base()
        server = QueryServer(base)
        server.register("big", SQL_TEMPLATE)
        for threshold in (5, 2, 7):
            reparsed = run_sql(
                SQL_TEMPLATE.replace("> 5", f"> {threshold}"), {"base": base}
            )
            assert_bit_identical(reparsed, server.query("big", (threshold,)))

    def test_differently_bound_constants_hit_the_cache_when_warm(self):
        server = QueryServer(_base())
        server.register("big", SQL_TEMPLATE)
        for threshold in (5, 2, 7):  # three cold misses, one template
            server.query("big", (threshold,))
        stats = server.stats()
        assert stats["templates"] == 1
        assert stats["views"] == 3 and stats["misses"] == 3 and stats["hits"] == 0
        for threshold in (5, 2, 7):  # warm: every re-bound constant hits
            server.query("big", (threshold,))
        assert server.stats()["hits"] == 3

    def test_deltas_patch_sql_template_views(self):
        from repro.sql import run_sql

        base = _base()
        server = QueryServer(base)
        server.register("big", SQL_TEMPLATE)
        server.query("big", (3,))
        inserts = AURelation(Schema(SCHEMA))
        inserts.add_values([1, 8], 1)
        server.apply_delta(inserts=inserts)
        accumulated, _ = merge_delta(base, inserts, None)
        expected = run_sql(
            SQL_TEMPLATE.replace("> 5", "> 3"), {"base": accumulated}
        )
        assert_bit_identical(expected, server.query("big", (3,)))
        assert server.stats()["hits"] == 1  # warm — the patched view answered

    def test_multi_table_sql_templates_are_rejected(self):
        from repro.errors import SqlError

        server = QueryServer(_base())
        with pytest.raises(SqlError, match="single table"):
            server.register("joined", "SELECT t.g AS g FROM t JOIN s ON t.g = s.g")
