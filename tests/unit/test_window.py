"""Unit tests for uncertain windowed aggregation (rewrite and native)."""

import pytest

from repro.core.multiplicity import Multiplicity
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.errors import WindowSpecError
from repro.window.native import window_native
from repro.window.semantics import window_rewrite
from repro.window.spec import WindowSpec
from repro.workloads.examples import sales_audb


def example7_relation() -> AURelation:
    """The input of the paper's Example 7."""
    return AURelation.from_rows(
        ["A", "B", "C"],
        [
            ((1, RangeValue(1, 1, 3), 7), (1, 1, 2)),
            ((RangeValue(2, 3, 3), 15, 4), (0, 1, 1)),
            ((RangeValue(1, 1, 2), 2, RangeValue(2, 4, 5)), (1, 1, 1)),
        ],
    )


EXAMPLE7_SPEC = WindowSpec(
    function="sum",
    attribute="C",
    output="SumC",
    order_by=("B",),
    partition_by=("A",),
    frame=(-1, 0),
)


def sums_by_tuple(result: AURelation) -> dict:
    sums: dict = {}
    for tup, mult in result:
        sums.setdefault(tup.value("B").sg, []).append((tup.value("SumC"), mult))
    return sums


class TestExample7:
    """Example 7's bounds, under the pinned bag semantics for ``ub > 1``.

    Duplicates receive *per-duplicate* aggregate values (each duplicate
    occupies its own sort position, exactly as in the deterministic
    semantics and the native sweep): the first duplicate of the ``B=1``
    tuple carries the paper's bounds, the merely-possible second duplicate
    a strictly tighter lower bound (its window certainly contains a
    predecessor).
    """

    @pytest.mark.parametrize("operator", [window_rewrite, window_native])
    def test_bounds_match_paper(self, operator):
        result = operator(example7_relation(), EXAMPLE7_SPEC)
        sums = sums_by_tuple(result)
        assert sorted(sums[1], key=lambda pair: pair[0].lb) == [
            (RangeValue(7, 7, 14), Multiplicity(1, 1, 1)),
            (RangeValue(9, 9, 14), Multiplicity(0, 0, 1)),
        ]
        assert sums[2] == [(RangeValue(2, 11, 12), Multiplicity(1, 1, 1))]
        assert sums[15] == [(RangeValue(4, 4, 9), Multiplicity(0, 1, 1))]

    def test_multiplicities_preserved(self):
        """The duplicate split's annotations add back up to the input triple."""
        result = window_rewrite(example7_relation(), EXAMPLE7_SPEC)
        totals: dict = {}
        for tup, mult in result:
            key = tup.value("B").sg
            totals[key] = totals.get(key, Multiplicity(0, 0, 0)).add(mult)
        assert totals[1] == Multiplicity(1, 1, 2)
        assert totals[15] == Multiplicity(0, 1, 1)


class TestFigure1Window:
    """The rolling-sum query of Fig. 1g over the running example AU-DB."""

    SPEC = WindowSpec(
        function="sum", attribute="sales", output="sum", order_by=("term",), frame=(0, 1)
    )

    @pytest.mark.parametrize("operator", [window_rewrite, window_native])
    def test_fig1g_bounds(self, operator):
        result = operator(sales_audb(), self.SPEC)
        sums = {tup.value("term").sg: tup.value("sum") for tup, _m in result}
        assert sums[1] == RangeValue(4, 5, 6)
        assert sums[2] == RangeValue(6, 10, 10)
        assert sums[3] == RangeValue(4, 11, 14)
        assert sums[4] == RangeValue(4, 4, 14)


class TestOtherAggregates:
    def base(self) -> AURelation:
        return AURelation.from_rows(
            ["t", "v"],
            [
                ((1, 10), (1, 1, 1)),
                ((RangeValue(2, 2, 4), RangeValue(15, 20, 25)), (1, 1, 1)),
                ((3, 30), (1, 1, 1)),
            ],
        )

    def spec(self, function, attribute="v"):
        return WindowSpec(function, attribute, "out", order_by=("t",), frame=(-1, 0))

    @pytest.mark.parametrize("operator", [window_rewrite, window_native])
    def test_count(self, operator):
        result = operator(self.base(), self.spec("count", None))
        outs = {tup.value("t").sg: tup.value("out") for tup, _m in result}
        assert outs[1].lb <= 1 <= outs[1].ub
        assert outs[3].lb <= 2 <= outs[3].ub

    @pytest.mark.parametrize("operator", [window_rewrite, window_native])
    def test_min(self, operator):
        result = operator(self.base(), self.spec("min"))
        outs = {tup.value("t").sg: tup.value("out") for tup, _m in result}
        assert outs[3].lb <= 15
        assert outs[1] == RangeValue(10, 10, 10)

    @pytest.mark.parametrize("operator", [window_rewrite, window_native])
    def test_max(self, operator):
        result = operator(self.base(), self.spec("max"))
        outs = {tup.value("t").sg: tup.value("out") for tup, _m in result}
        assert outs[3].ub >= 30

    @pytest.mark.parametrize("operator", [window_rewrite, window_native])
    def test_avg_envelope(self, operator):
        result = operator(self.base(), self.spec("avg"))
        outs = {tup.value("t").sg: tup.value("out") for tup, _m in result}
        assert outs[3].lb <= 20 <= outs[3].ub


class TestValidationAndFallbacks:
    def test_output_attribute_clash(self):
        spec = WindowSpec("sum", "v", "v", order_by=("t",), frame=(-1, 0))
        relation = AURelation.from_rows(["t", "v"], [((1, 1), 1)])
        with pytest.raises(WindowSpecError):
            window_rewrite(relation, spec)

    def test_native_following_frame_matches_rewrite(self):
        """Following-only frames: both use the mirrored-order reduction, bit for bit."""
        relation = AURelation.from_rows(
            ["t", "v"],
            [((1, 10), 1), ((2, RangeValue(5, 6, 7)), 1), ((RangeValue(3, 3, 4), 30), 1)],
        )
        spec = WindowSpec("sum", "v", "s", order_by=("t",), frame=(0, 1))
        native = window_native(relation, spec)
        rewrite = window_rewrite(relation, spec)
        assert native.schema == rewrite.schema
        assert native._rows == rewrite._rows

    def test_frame_excluding_current_row_falls_back(self):
        """Frames like ``2 PRECEDING AND 1 PRECEDING`` route to the rewrite."""
        relation = AURelation.from_rows(
            ["t", "v"], [((1, 10), 1), ((2, 20), 1), ((RangeValue(2, 3, 4), 30), 1)]
        )
        spec = WindowSpec("sum", "v", "s", order_by=("t",), frame=(-2, -1))
        native = window_native(relation, spec)
        rewrite = window_rewrite(relation, spec)
        assert native._rows == rewrite._rows

    def test_native_two_sided_frame_falls_back(self):
        relation = AURelation.from_rows(["t", "v"], [((1, 1), 1), ((2, 2), 1), ((3, 3), 1)])
        spec = WindowSpec("sum", "v", "s", order_by=("t",), frame=(-1, 1))
        native = window_native(relation, spec)
        rewrite = window_rewrite(relation, spec)
        assert {t.values for t, _ in native} == {t.values for t, _ in rewrite}

    def test_native_certain_partitions_split(self):
        relation = AURelation.from_rows(
            ["g", "t", "v"],
            [(("x", 1, 1), 1), (("x", 2, 2), 1), (("y", 1, 5), 1)],
        )
        spec = WindowSpec("sum", "v", "s", order_by=("t",), partition_by=("g",), frame=(-5, 0))
        result = window_native(relation, spec)
        sums = {(tup.value("g").sg, tup.value("t").sg): tup.value("s") for tup, _m in result}
        assert sums[("x", 2)] == RangeValue(3, 3, 3)
        assert sums[("y", 1)] == RangeValue(5, 5, 5)

    def test_certain_input_matches_deterministic(self):
        relation = AURelation.from_rows(
            ["t", "v"], [((1, 10), 1), ((2, 20), 1), ((3, 30), 1)]
        )
        spec = WindowSpec("sum", "v", "s", order_by=("t",), frame=(-1, 0))
        for operator in (window_rewrite, window_native):
            result = operator(relation, spec)
            sums = {tup.value("t").sg: tup.value("s") for tup, _m in result}
            assert sums == {
                1: RangeValue.certain(10),
                2: RangeValue.certain(30),
                3: RangeValue.certain(50),
            }
