"""Integration test: the paper's running example (Figure 1) end to end."""

from repro.baselines.rank_semantics import certain_answers, possible_answers, u_rank
from repro.core.bounding import bounds_world, bounds_worlds
from repro.core.ranges import RangeValue
from repro.ranking.topk import topk
from repro.relational.sort import topk as det_topk
from repro.relational.window import window_aggregate
from repro.window.native import window_native
from repro.window.semantics import window_rewrite
from repro.window.spec import WindowSpec
from repro.workloads.examples import sales_audb, sales_worlds


class TestFigure1:
    def test_audb_bounds_input_worlds(self):
        assert bounds_worlds(sales_audb(), sales_worlds(), check_sg=True)

    def test_competing_semantics(self):
        worlds = sales_worlds()
        assert [r[0] for r in u_rank(worlds, ["sales"], 2, descending=True, project=["term"])] == [4, 4]
        assert sorted(
            r[0] for r in possible_answers(worlds, ["sales"], 2, descending=True, project=["term"])
        ) == [3, 4, 5]
        assert [r[0] for r in certain_answers(worlds, ["sales"], 2, descending=True, project=["term"])] == [4]

    def test_topk_covers_every_world_and_flags_certainty(self):
        audb = sales_audb()
        worlds = sales_worlds()
        result = topk(audb, ["sales"], k=2, descending=True)
        possible_ranges = [tup.value("term") for tup, mult in result if mult.possibly_exists]
        certain_ranges = [tup.value("term") for tup, mult in result if mult.lb > 0]
        for world in worlds.worlds:
            world_terms = {row[0] for row, _m in det_topk(world, ["sales"], 2, descending=True)}
            # completeness: every world's answer is covered by a possible range
            for term in world_terms:
                assert any(r.contains(term) for r in possible_ranges)
            # soundness of certain answers: every certain range must cover some
            # answer of this world
            for certain in certain_ranges:
                assert any(certain.contains(term) for term in world_terms)

    def test_window_bounds_every_world(self):
        audb = sales_audb()
        worlds = sales_worlds()
        spec = WindowSpec(
            function="sum", attribute="sales", output="sum", order_by=("term",), frame=(0, 1)
        )
        for operator in (window_rewrite, window_native):
            result = operator(audb, spec)
            for world in worlds.worlds:
                det = window_aggregate(
                    world,
                    function="sum",
                    attribute="sales",
                    output="sum",
                    order_by=["term"],
                    frame=(0, 1),
                )
                assert bounds_world(result, det)

    def test_fig1g_term1_overapproximates(self):
        """The paper notes term 1's max (6) over-approximates the true max (5)."""
        result = window_rewrite(
            sales_audb(),
            WindowSpec(
                function="sum", attribute="sales", output="sum", order_by=("term",), frame=(0, 1)
            ),
        )
        sums = {tup.value("term").sg: tup.value("sum") for tup, _m in result}
        assert sums[1] == RangeValue(4, 5, 6)
