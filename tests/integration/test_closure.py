"""Integration tests: composing order-based operators with the rest of RA_agg.

One of the paper's central arguments is closure: the output of uncertain
sorting / windowed aggregation is again an AU-DB, so it can feed into further
selections, projections, joins, aggregations, and even another round of
ranking — unlike the competing top-k semantics.
"""

from repro.core.expressions import attr
from repro.core.operators import groupby_aggregate, join, project, select
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.ranking.topk import sort, topk
from repro.window.native import window_native
from repro.window.spec import WindowSpec
from repro.workloads.examples import sales_audb
from repro.workloads.synthetic import SyntheticConfig, as_audb, generate_window_table


class TestClosure:
    def test_sort_then_select_then_project(self):
        ranked = sort(sales_audb(), ["sales"], descending=True)
        filtered = select(ranked, attr("pos").lt(2))
        projected = project(filtered, ["term"])
        assert len(projected) >= 1
        assert list(projected.schema) == ["term"]

    def test_window_then_topk(self):
        """Rank terms by their rolling sum — a query no single baseline supports."""
        spec = WindowSpec(
            function="sum", attribute="sales", output="rolling", order_by=("term",), frame=(0, 1)
        )
        windowed = window_native(sales_audb(), spec)
        best = topk(windowed, ["rolling"], k=1, descending=True)
        terms = {tup.value("term").sg for tup, _m in best if True}
        # Terms 2, 3 and 4 may have the largest rolling sum in some world.
        assert 3 in terms or 2 in terms
        assert all(isinstance(tup.value("rolling"), RangeValue) for tup, _m in best)

    def test_window_then_aggregate(self):
        workload = generate_window_table(
            SyntheticConfig(rows=25, uncertainty=0.2, attribute_range=15, domain=150, seed=21),
            partitions=2,
        )
        audb = as_audb(workload)
        spec = WindowSpec("sum", "v", "rolling", order_by=("o",), frame=(-1, 0))
        windowed = window_native(audb, spec)
        summary = groupby_aggregate(windowed, ["g"], [("max", "rolling", "peak"), ("count", "*", "n")])
        assert len(summary) >= 1
        for tup, _mult in summary:
            peak = tup.value("peak")
            assert peak.lb <= peak.ub

    def test_sorted_output_joins_back(self):
        ranked = sort(sales_audb(), ["sales"], descending=True)
        names = AURelation.from_rows(
            ["term", "label"], [((1, "q1"), 1), ((2, "q2"), 1), ((3, "q3"), 1), ((4, "q4"), 1)]
        )
        joined = join(ranked, names, on=["term"])
        assert len(joined) >= 4
        assert "label" in joined.schema

    def test_two_rounds_of_sorting(self):
        first = sort(sales_audb(), ["sales"], descending=True, position_attribute="r1")
        second = sort(first, ["term"], position_attribute="r2")
        assert {"r1", "r2"} <= set(second.schema.attributes)
