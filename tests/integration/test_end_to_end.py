"""Integration tests: workload -> AU-DB -> query -> bounds, against ground truth."""

import pytest

from repro.baselines.mcdb import mcdb_sort_bounds, mcdb_window_bounds
from repro.baselines.symb import symb_sort_bounds, symb_window_bounds
from repro.harness.adapters import audb_from_workload, audb_sort_bounds, audb_window_bounds
from repro.metrics.quality import compare_bounds
from repro.window.spec import WindowSpec
from repro.workloads.realworld import REAL_WORLD_DATASETS
from repro.workloads.synthetic import SyntheticConfig, generate_sort_table, generate_window_table


class TestSortingPipeline:
    @pytest.fixture(scope="class")
    def setup(self):
        workload = generate_sort_table(
            SyntheticConfig(rows=40, uncertainty=0.1, attribute_range=30, domain=300, seed=11)
        )
        audb = audb_from_workload(workload)
        truth = symb_sort_bounds(workload, ["a"], key_attribute="rid")
        return workload, audb, truth

    def test_audb_bounds_contain_exact_bounds(self, setup):
        _workload, audb, truth = setup
        for method in ("native", "rewrite"):
            estimate = audb_sort_bounds(audb, ["a"], key_attribute="rid", method=method)
            for rid, (low, high) in truth.items():
                assert estimate[rid][0] <= low and estimate[rid][1] >= high

    def test_quality_relationships(self, setup):
        workload, audb, truth = setup
        au = compare_bounds(audb_sort_bounds(audb, ["a"], key_attribute="rid"), truth)
        mcdb = compare_bounds(
            mcdb_sort_bounds(workload, ["a"], key_attribute="rid", samples=10, seed=0), truth
        )
        assert au.recall == pytest.approx(1.0)
        assert au.range_ratio >= 1.0
        assert mcdb.accuracy == pytest.approx(1.0)
        assert mcdb.range_ratio <= 1.0 + 1e-9


class TestWindowPipeline:
    @pytest.fixture(scope="class")
    def setup(self):
        workload = generate_window_table(
            SyntheticConfig(rows=30, uncertainty=0.15, attribute_range=20, domain=200, seed=13),
            partitions=1,
        )
        audb = audb_from_workload(workload)
        spec = WindowSpec("sum", "v", "w_sum", order_by=("o",), frame=(-2, 0))
        truth = symb_window_bounds(workload, spec, key_attribute="rid")
        return workload, audb, spec, truth

    def test_audb_bounds_contain_exact_bounds(self, setup):
        _workload, audb, spec, truth = setup
        for method in ("native", "rewrite"):
            estimate = audb_window_bounds(audb, spec, key_attribute="rid", method=method)
            for rid, (low, high) in truth.items():
                assert estimate[rid][0] <= low + 1e-9
                assert estimate[rid][1] >= high - 1e-9

    def test_mcdb_is_an_underapproximation(self, setup):
        workload, _audb, spec, truth = setup
        sampled = mcdb_window_bounds(workload, spec, key_attribute="rid", samples=10, seed=3)
        report = compare_bounds(sampled, truth)
        assert report.accuracy == pytest.approx(1.0)
        assert report.range_ratio <= 1.0 + 1e-9


class TestRealWorldPipelines:
    @pytest.mark.parametrize("bundle", REAL_WORLD_DATASETS(scale=0.04, seed=5), ids=lambda b: b.name)
    def test_rank_queries(self, bundle):
        audb = audb_from_workload(bundle.rank_table)
        truth = symb_sort_bounds(
            bundle.rank_table,
            list(bundle.rank_query.order_by),
            key_attribute=bundle.rank_query.key_attribute,
            descending=bundle.rank_query.descending,
        )
        estimate = audb_sort_bounds(
            audb,
            list(bundle.rank_query.order_by),
            key_attribute=bundle.rank_query.key_attribute,
            descending=bundle.rank_query.descending,
        )
        report = compare_bounds(estimate, truth)
        assert report.recall == pytest.approx(1.0)

    @pytest.mark.parametrize("bundle", REAL_WORLD_DATASETS(scale=0.04, seed=5), ids=lambda b: b.name)
    def test_window_queries(self, bundle):
        audb = audb_from_workload(bundle.window_table)
        truth = symb_window_bounds(
            bundle.window_table, bundle.window_query, key_attribute=bundle.key_attribute
        )
        estimate = audb_window_bounds(
            audb, bundle.window_query, key_attribute=bundle.key_attribute
        )
        report = compare_bounds(estimate, truth)
        assert report.recall == pytest.approx(1.0)
