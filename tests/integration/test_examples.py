"""Smoke tests: every example script must run end to end.

The examples double as executable documentation; these tests run each one's
``main()`` (with stdout captured by pytest) so that API drift breaks the
build instead of the README.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_SCRIPTS = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"examples_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


def test_examples_directory_has_expected_scripts():
    assert {
        "quickstart.py",
        "running_example.py",
        "sensor_cleaning.py",
        "crime_hotspots.py",
        "groupby_report.py",
        "multiwindow_report.py",
    } <= set(EXAMPLE_SCRIPTS)


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs(script, capsys):
    module = _load(script)
    module.main()
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_running_example_prints_paper_answers(capsys):
    module = _load("running_example.py")
    module.main()
    output = capsys.readouterr().out
    assert "[4, 4]" in output  # U-Rank
    assert "[3, 4, 5]" in output  # PT(0) possible answers
    assert "[4]" in output  # PT(1) certain answers


def test_multiwindow_report_classifies_spikes(capsys):
    """The window-then-filter-then-window plan separates certain from possible spikes."""
    module = _load("multiwindow_report.py")
    module.main()
    output = capsys.readouterr().out
    assert "certain spike" in output
    assert "possible spike" in output
    assert "bit-identical" in output
