"""Three-way differential: factorised plans vs expanded plans vs Python.

Randomized ``select -> join -> {select, project, groupby, window}`` chains
run through three independent executions:

* **factorised** — one chained :class:`~repro.columnar.plan.ColumnarPlan`
  whose join emits a :class:`~repro.columnar.factorised.FactorisedAURelation`
  (fragments plus pair indices; post-join stages push down into fragments or
  operate on slim gathers, never the full expanded product);
* **expanded** — the same plan expanded right after the join
  (``plan.columnar()`` is a sanctioned materialisation point), with the
  post-join stage applied to the expanded :class:`ColumnarAURelation`; and
* **python** — the tuple-at-a-time reference operators.

All three must agree bit for bit at the relation boundary (same hypercubes,
same ``N³`` triples, same first-occurrence row order).  The inputs cover bag
multiplicities (``ub > 1``), uncertain join keys (which push the factorised
join onto its automatic expand-and-fallback path — pinned here to stay
bit-identical), object-dtype payload *and* key columns, and sharded
execution (``workers=2`` vs serial).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expressions import attr, const
from repro.core.operators import groupby_aggregate, join, project, select
from repro.core.relation import AURelation
from repro.window.native import window_native
from repro.window.spec import WindowSpec

from tests.property.strategies import (
    au_relations,
    multiplicities,
    object_au_relations,
    range_values,
)

pytest.importorskip("numpy", reason="the columnar backend requires NumPy")

from repro.columnar.plan import ColumnarPlan  # noqa: E402
from repro.columnar.relation import ColumnarAURelation  # noqa: E402

SETTINGS = settings(max_examples=60, deadline=None)

#: Post-join stages; join output schema is ``(k, a, k_r, b)``.  The sort and
#: window stages pin the folded tiebreak: the factorised path pre-ranks the
#: ``<ᵗᵒᵗᵃˡ_O`` comparator into one strict column and passes it as the stage
#: kernels' sole non-order-by sort key (``strict_tiebreak``), which must stay
#: bit-identical to the eager rank-coded key stack.
STAGES = ("select", "project", "groupby", "window", "sort")

GROUPBY_AGGREGATES = [("count", "*", "n"), ("sum", "b", "s")]
WINDOW = WindowSpec(
    function="sum", attribute="b", output="w", order_by=("a",), frame=(-1, 0)
)


def assert_same_relation(expected: AURelation, actual: AURelation) -> None:
    assert expected.schema == actual.schema
    assert expected._rows == actual._rows


def run_python(left, right, threshold, stage):
    result = select(left, attr("a").ge(const(threshold)))
    result = join(result, right, on=["k"])
    if stage == "select":
        return select(result, attr("b").le(const(threshold)))
    if stage == "project":
        return project(result, ["a", "b"])
    if stage == "groupby":
        return groupby_aggregate(result, ["a"], GROUPBY_AGGREGATES)
    if stage == "sort":
        from repro.ranking.native import sort_native

        return sort_native(result, ["a"])
    return window_native(result, WINDOW)


def run_plans(left, right, threshold, stage, *, workers=None):
    """Run the chain factorised and expanded-after-join; return both results."""
    columnar_left = ColumnarAURelation.from_relation(left)
    columnar_right = ColumnarAURelation.from_relation(right)
    joined = (
        ColumnarPlan(columnar_left, workers=workers)
        .select(attr("a").ge(const(threshold)))
        .join(columnar_right, on=["k"])
    )
    results = []
    for contender in (joined, ColumnarPlan(joined.columnar(), workers=workers)):
        if stage == "select":
            staged = contender.select(attr("b").le(const(threshold)))
        elif stage == "project":
            staged = contender.project(["a", "b"])
        elif stage == "groupby":
            staged = contender.groupby_aggregate(["a"], GROUPBY_AGGREGATES)
        elif stage == "sort":
            staged = contender.sort(["a"])
        else:
            staged = contender.window(WINDOW)
        results.append(staged.to_rows())
    return results


@SETTINGS
@given(
    left=au_relations(attributes=("k", "a"), max_tuples=4, max_count=3),
    right=au_relations(attributes=("k", "b"), max_tuples=3, max_count=3),
    threshold=st.integers(-2, 2),
    stage=st.sampled_from(STAGES),
)
def test_factorised_chain_three_way(left, right, threshold, stage):
    """Uncertain keys: the factorised join falls back automatically, bit for bit."""
    python_result = run_python(left, right, threshold, stage)
    factorised_result, expanded_result = run_plans(left, right, threshold, stage)
    assert_same_relation(python_result, factorised_result)
    assert_same_relation(python_result, expanded_result)


@st.composite
def certain_key_relations(draw, *, attributes=("k", "b"), max_tuples=5):
    """Certain integer keys: the factorised join keeps its pair-index layout."""
    from repro.core.schema import Schema

    relation = AURelation(Schema(attributes))
    for _ in range(draw(st.integers(min_value=0, max_value=max_tuples))):
        values = [draw(st.integers(min_value=-4, max_value=4))]
        values += [draw(range_values()) for _ in attributes[1:]]
        relation.add_values(values, draw(multiplicities(max_count=3)))
    return relation


@SETTINGS
@given(
    left=certain_key_relations(attributes=("k", "a")),
    right=certain_key_relations(attributes=("k", "b"), max_tuples=4),
    threshold=st.integers(-2, 2),
    stage=st.sampled_from(STAGES),
)
def test_factorised_chain_three_way_certain_keys(left, right, threshold, stage):
    """Certain keys stay on the genuinely factorised path through every stage."""
    python_result = run_python(left, right, threshold, stage)
    factorised_result, expanded_result = run_plans(left, right, threshold, stage)
    assert_same_relation(python_result, factorised_result)
    assert_same_relation(python_result, expanded_result)


@SETTINGS
@given(
    left=object_au_relations(
        attributes=("k", "a"), max_tuples=4, max_count=3, pool=["p", "q", "r"]
    ),
    right=object_au_relations(
        attributes=("k", "b"), max_tuples=3, max_count=3, pool=["p", "q", "r"]
    ),
    stage=st.sampled_from(("project", "groupby")),
)
def test_factorised_chain_three_way_object_payload(left, right, stage):
    """Object-dtype payload columns ride the factorised chain unchanged.

    ``a``/``b`` are object (string) columns here, so the stage set avoids
    numeric predicates and windows; projection and grouping must still agree.
    """
    python_joined = join(left, right, on=["k"])
    columnar_joined = ColumnarPlan(ColumnarAURelation.from_relation(left)).join(
        ColumnarAURelation.from_relation(right), on=["k"]
    )
    for contender in (columnar_joined, ColumnarPlan(columnar_joined.columnar())):
        if stage == "project":
            python_result = project(python_joined, ["a", "b"])
            staged = contender.project(["a", "b"])
        else:
            aggregates = [("count", "*", "n"), ("max", "b", "hi")]
            python_result = groupby_aggregate(python_joined, ["a"], aggregates)
            staged = contender.groupby_aggregate(["a"], aggregates)
        assert_same_relation(python_result, staged.to_rows())


@SETTINGS
@given(
    left=object_au_relations(
        attributes=("a", "k"), max_tuples=4, max_count=3, pool=["p", "q", "r"]
    ),
    right=object_au_relations(
        attributes=("b", "k"), max_tuples=3, max_count=3, pool=["p", "q", "r"]
    ),
)
def test_factorised_object_join_keys_fall_back(left, right):
    """Object-dtype join keys: the automatic expand-and-join fallback is pinned."""
    python_result = join(left, right, on=["k"])
    plan_result = (
        ColumnarPlan(ColumnarAURelation.from_relation(left))
        .join(ColumnarAURelation.from_relation(right), on=["k"])
        .to_rows()
    )
    assert_same_relation(python_result, plan_result)


@pytest.mark.parametrize("stage", STAGES)
def test_factorised_chain_sharded_matches_serial(stage):
    """``workers=2`` shards expansion and join blocks without changing a bit."""
    from repro.workloads.pipeline import factjoin_inputs

    left, right, _v, _w = factjoin_inputs(96, seed=3)
    # factjoin_inputs yields (k, o, v) / (k, w); reshape to the (k, a) / (k, b)
    # schemas the staged helpers above expect.
    from repro.core.schema import Schema

    def reshape(relation, names):
        reshaped = AURelation(Schema(names))
        for row, mult in relation._rows.items():
            reshaped.add_values(row[: len(names)], mult)
        return reshaped

    left = reshape(left, ("k", "a"))
    right = reshape(right, ("k", "b"))
    threshold = 20
    python_result = run_python(left, right, threshold, stage)
    serial_fact, serial_expanded = run_plans(left, right, threshold, stage, workers=1)
    sharded_fact, sharded_expanded = run_plans(left, right, threshold, stage, workers=2)
    for result in (serial_fact, serial_expanded, sharded_fact, sharded_expanded):
        assert_same_relation(python_result, result)
