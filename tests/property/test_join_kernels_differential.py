"""Differential properties of the output-sensitive join kernels.

Three-way agreement (``grid == kernel == python``) over randomized inputs
for every member of the kernel family PR 8 added to
:mod:`repro.columnar.operators`:

* **multi-key searchsorted** — several ``on`` columns where *any* key has a
  certain side anchors the enumeration; the remaining keys refine pairwise;
* **range×range sweep** — both sides' keys are uncertain ``[lb, ub]``
  intervals, candidates are exactly the possibly-overlapping pairs;
* **band / theta** — key-less predicate joins whose AND-tree compares a
  left attribute against a (constant-shifted) right attribute.

Each class also pins the ``method="auto"`` dispatch
(:func:`~repro.columnar.operators.planned_join_kernel` must select the
non-grid kernel), the ``n == 0`` short-circuit, object-dtype keys degrading
to the grid, bag multiplicities with ``ub > 1``, and ``workers=2`` being
bit-identical to serial.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expressions import attr, const
from repro.core.operators import join
from repro.core.relation import AURelation
from repro.core.schema import Schema

from tests.property.strategies import (
    au_relations,
    multiplicities,
    object_au_relations,
    range_values,
)

pytest.importorskip("numpy", reason="the columnar backend requires NumPy")

SETTINGS = settings(max_examples=60, deadline=None)


def assert_same_relation(python_result, columnar_result) -> None:
    assert python_result.schema == columnar_result.schema
    assert python_result._rows == columnar_result._rows


def assert_bit_identical(reference, other) -> None:
    """Columnar-layout bit-identity: columns, components, multiplicities."""
    import numpy as np

    assert reference.schema == other.schema
    assert len(reference) == len(other)
    for ref_col, other_col in zip(reference.columns, other.columns):
        for component in ("lb", "sg", "ub"):
            assert np.array_equal(
                getattr(ref_col, component), getattr(other_col, component)
            )
    for component in ("mult_lb", "mult_sg", "mult_ub"):
        assert np.array_equal(getattr(reference, component), getattr(other, component))


@st.composite
def multi_key_relations(draw, *, attributes=("k", "o", "v"), certain_second=False):
    """Relations with two key columns; the second is certain when asked.

    The first key is always an uncertain range on some rows, so the
    searchsorted anchor must come from the *second* key — exactly the case
    the single-key kernel of PR 4 could not handle.
    """
    relation = AURelation(Schema(attributes))
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        first = draw(range_values(min_value=-4, max_value=4))
        second = (
            draw(st.integers(min_value=-2, max_value=2))
            if certain_second
            else draw(range_values(min_value=-2, max_value=2))
        )
        rest = [draw(range_values()) for _ in attributes[2:]]
        relation.add_values([first, second, *rest], draw(multiplicities(max_count=2)))
    return relation


@SETTINGS
@given(
    left=multi_key_relations(attributes=("k", "o", "a")),
    right=multi_key_relations(attributes=("k", "o", "b"), certain_second=True),
)
def test_multi_key_searchsorted_three_way_agreement(left, right):
    """Any-key anchor: grid == searchsorted == python on two ``on`` columns."""
    from repro.columnar import operators as col_ops
    from repro.columnar.relation import ColumnarAURelation

    columnar_left = ColumnarAURelation.from_relation(left)
    columnar_right = ColumnarAURelation.from_relation(right)
    for pair in ((columnar_left, columnar_right), (columnar_right, columnar_left)):
        assert col_ops.planned_join_kernel(*pair, on=["k", "o"]) == "searchsorted"
        grid = col_ops.join(*pair, on=["k", "o"], method="grid")
        fast = col_ops.join(*pair, on=["k", "o"], method="searchsorted")
        auto = col_ops.join(*pair, on=["k", "o"], method="auto")
        assert_bit_identical(grid, fast)
        assert_bit_identical(grid, auto)
        assert_same_relation(
            join(*[p.to_relation() for p in pair], on=["k", "o"]), fast.to_relation()
        )


@SETTINGS
@given(
    left=au_relations(attributes=("k", "a"), max_tuples=5, max_count=2),
    right=au_relations(attributes=("k", "b"), max_tuples=5, max_count=2),
)
def test_range_range_sweep_three_way_agreement(left, right):
    """Both-sides-uncertain keys: grid == sweep == python, grid never needed."""
    from repro.columnar import operators as col_ops
    from repro.columnar.relation import ColumnarAURelation

    columnar_left = ColumnarAURelation.from_relation(left)
    columnar_right = ColumnarAURelation.from_relation(right)
    assert col_ops.planned_join_kernel(columnar_left, columnar_right, on=["k"]) in (
        "searchsorted",  # hypothesis may generate an all-certain key column
        "sweep",
    )
    grid = col_ops.join(columnar_left, columnar_right, on=["k"], method="grid")
    sweep = col_ops.join(columnar_left, columnar_right, on=["k"], method="sweep")
    auto = col_ops.join(columnar_left, columnar_right, on=["k"], method="auto")
    assert_bit_identical(grid, sweep)
    assert_bit_identical(grid, auto)
    assert_same_relation(join(left, right, on=["k"]), sweep.to_relation())
    # workers=2 shards the candidate-pair blocks; must stay bit-identical.
    sharded = col_ops.join(
        columnar_left, columnar_right, on=["k"], method="sweep", workers=2
    )
    assert_bit_identical(sweep, sharded)


BAND_PREDICATES = [
    attr("a").le(attr("b") + const(2)).and_(attr("a").ge(attr("b") - const(1))),
    attr("a").lt(attr("b")),
    (attr("a") + const(1)).le(attr("b") + const(3)),
    attr("a").eq(attr("b")),
]


@SETTINGS
@given(
    left=au_relations(attributes=("a",), max_tuples=5, max_count=2),
    right=au_relations(attributes=("b",), max_tuples=5, max_count=2),
    index=st.integers(min_value=0, max_value=len(BAND_PREDICATES) - 1),
)
def test_band_predicate_three_way_agreement(left, right, index):
    """Band/theta predicates: grid == band == python, auto picks the band."""
    from repro.columnar import operators as col_ops
    from repro.columnar.relation import ColumnarAURelation

    predicate = BAND_PREDICATES[index]
    columnar_left = ColumnarAURelation.from_relation(left)
    columnar_right = ColumnarAURelation.from_relation(right)
    assert col_ops.planned_join_kernel(columnar_left, columnar_right, predicate) == "band"
    grid = col_ops.join(columnar_left, columnar_right, predicate, method="grid")
    band = col_ops.join(columnar_left, columnar_right, predicate, method="band")
    auto = col_ops.join(columnar_left, columnar_right, predicate, method="auto")
    assert_bit_identical(grid, band)
    assert_bit_identical(grid, auto)
    assert_same_relation(join(left, right, predicate), band.to_relation())
    sharded = col_ops.join(
        columnar_left, columnar_right, predicate, method="band", workers=2
    )
    assert_bit_identical(band, sharded)


@SETTINGS
@given(
    left=object_au_relations(
        attributes=("a", "k"), max_tuples=4, max_count=2, pool=["p", "q", "r", "s"]
    ),
    right=object_au_relations(
        attributes=("b", "k"), max_tuples=4, max_count=2, pool=["p", "q", "r", "s"]
    ),
)
def test_object_keys_fall_back_to_grid(left, right):
    """Object-dtype keys are never vectorizable: auto plans the grid, agrees."""
    from repro.columnar import operators as col_ops
    from repro.columnar.relation import ColumnarAURelation

    columnar_left = ColumnarAURelation.from_relation(left)
    columnar_right = ColumnarAURelation.from_relation(right)
    if len(left) and len(right):  # empty sides short-circuit before dispatch
        assert (
            col_ops.planned_join_kernel(columnar_left, columnar_right, on=["k"])
            == "grid"
        )
    auto = col_ops.join(columnar_left, columnar_right, on=["k"], method="auto")
    assert_same_relation(join(left, right, on=["k"]), auto.to_relation())


def test_empty_sides_every_kernel():
    """``n == 0`` on either side returns the empty result for every kernel."""
    from repro.columnar import operators as col_ops
    from repro.columnar.relation import ColumnarAURelation
    from repro.core.ranges import RangeValue

    filled = AURelation.from_rows(
        ["k", "a"], [((RangeValue(0, 1, 2), 3), (1, 1, 1)), ((2, 5), (0, 1, 2))]
    )
    empty = AURelation.from_rows(["k", "b"], [])
    columnar_filled = ColumnarAURelation.from_relation(filled)
    columnar_empty = ColumnarAURelation.from_relation(empty)
    for pair in ((columnar_filled, columnar_empty), (columnar_empty, columnar_filled)):
        for method in ("auto", "grid", "searchsorted", "sweep"):
            assert len(col_ops.join(*pair, on=["k"], method=method)) == 0
        for method in ("auto", "grid", "band"):
            predicate = attr(list(pair[0].schema)[1]).lt(attr(list(pair[1].schema)[1]))
            assert len(col_ops.join(*pair, predicate, method=method)) == 0


def test_fact_join_kernels_agree_with_eager():
    """The factorised dispatch consumes the same candidate pairs per kernel."""
    import random

    from repro.columnar import operators as col_ops
    from repro.columnar.factorised import FactorisedAURelation, fact_join
    from repro.columnar.relation import ColumnarAURelation
    from repro.core.ranges import RangeValue

    rng = random.Random(5)
    left = AURelation.from_rows(["k", "a"], [])
    right = AURelation.from_rows(["k", "b"], [])
    for i in range(24):
        v = rng.randint(0, 8)
        left.add_values(
            [RangeValue(v, v + 1, v + 2), i],
            (1, 1, 1) if rng.random() < 0.8 else (0, 1, 2),
        )
        w = rng.randint(0, 8)
        right.add_values([RangeValue(w, w, w + 2), i * 3], 1)
    columnar_left = ColumnarAURelation.from_relation(left)
    columnar_right = ColumnarAURelation.from_relation(right)
    fact_left = FactorisedAURelation.from_columnar(columnar_left)
    fact_right = FactorisedAURelation.from_columnar(columnar_right)

    eager_sweep = col_ops.join(columnar_left, columnar_right, on=["k"], method="sweep")
    fact_sweep = fact_join(fact_left, fact_right, on=["k"], method="sweep")
    assert isinstance(fact_sweep, FactorisedAURelation)
    assert eager_sweep.to_relation()._rows == fact_sweep.to_relation()._rows

    predicate = attr("a").lt(attr("b"))
    eager_band = col_ops.join(columnar_left, columnar_right, predicate, method="band")
    fact_band = fact_join(fact_left, fact_right, predicate, method="band")
    assert isinstance(fact_band, FactorisedAURelation)
    assert eager_band.to_relation()._rows == fact_band.to_relation()._rows
