"""Property-based tests for range values and expression bound preservation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expressions import attr, const
from repro.core.schema import Schema
from repro.core.tuples import AUTuple
from tests.property.strategies import range_values

SCHEMA = Schema(["x", "y"])


@given(range_values(), range_values())
def test_addition_is_bound_preserving(a, b):
    result = a.add(b)
    for x in range(a.lb, a.ub + 1):
        for y in range(b.lb, b.ub + 1):
            assert result.contains(x + y)


@given(range_values(), range_values())
def test_multiplication_is_bound_preserving(a, b):
    result = a.mul(b)
    for x in range(a.lb, a.ub + 1):
        for y in range(b.lb, b.ub + 1):
            assert result.contains(x * y)


@given(range_values(), range_values())
def test_comparisons_are_bound_preserving(a, b):
    lt = a.lt(b)
    le = a.le(b)
    eq = a.eq(b)
    for x in range(a.lb, a.ub + 1):
        for y in range(b.lb, b.ub + 1):
            assert lt.bounds(x < y)
            assert le.bounds(x <= y)
            assert eq.bounds(x == y)


@given(range_values(), range_values())
def test_min_max_hull_contain_pointwise_results(a, b):
    low = a.min_with(b)
    high = a.max_with(b)
    hull = a.union_hull(b)
    for x in range(a.lb, a.ub + 1):
        for y in range(b.lb, b.ub + 1):
            assert low.contains(min(x, y))
            assert high.contains(max(x, y))
            assert hull.contains(x) and hull.contains(y)


@settings(max_examples=50)
@given(range_values(), range_values(), st.integers(min_value=-3, max_value=3))
def test_expression_evaluation_is_bound_preserving(x_range, y_range, constant):
    """(x * c + y) > y - c evaluated over any bounded world stays bounded."""
    tup = AUTuple(SCHEMA, (x_range, y_range))
    scalar = attr("x") * const(constant) + attr("y")
    predicate = scalar.gt(attr("y") - const(constant))
    scalar_range = scalar.eval_range(tup)
    predicate_range = predicate.eval_range(tup)
    for x in range(x_range.lb, x_range.ub + 1):
        for y in range(y_range.lb, y_range.ub + 1):
            row = {"x": x, "y": y}
            assert scalar_range.contains(scalar.eval_det(row))
            assert predicate_range.bounds(predicate.eval_det(row))
