"""Property-based tests for data structures and the N³ semiring."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.connected_heap import ConnectedHeap, NaiveMultiHeap
from repro.core.booleans import RangeBool
from repro.core.multiplicity import Multiplicity
from tests.property.strategies import uncertain_relations


multiplicities = st.tuples(
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=4),
).map(lambda triple: Multiplicity(*sorted(triple)))


class TestMultiplicitySemiring:
    @given(multiplicities, multiplicities, multiplicities)
    def test_addition_commutative_and_associative(self, a, b, c):
        assert a.add(b) == b.add(a)
        assert a.add(b).add(c) == a.add(b.add(c))

    @given(multiplicities, multiplicities, multiplicities)
    def test_multiplication_distributes_over_addition(self, a, b, c):
        assert a.mul(b.add(c)) == a.mul(b).add(a.mul(c))

    @given(multiplicities)
    def test_identities(self, a):
        assert a.add(Multiplicity(0, 0, 0)) == a
        assert a.mul(Multiplicity(1, 1, 1)) == a
        assert a.mul(Multiplicity(0, 0, 0)) == Multiplicity(0, 0, 0)

    @given(multiplicities, st.booleans(), st.booleans(), st.booleans())
    def test_filter_bounds_pointwise_selection(self, m, lb, sg, ub):
        lb = lb and sg and ub
        sg = sg and ub
        condition = RangeBool(lb, sg, ub)
        filtered = m.filter(condition)
        for count in range(m.lb, m.ub + 1):
            for truth in (True, False):
                if not condition.bounds(truth):
                    continue
                survived = count if truth else 0
                assert filtered.lb <= survived <= filtered.ub


class TestConnectedHeapModel:
    """The connected heap must agree with independent heaps on every sequence."""

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            min_size=1,
            max_size=40,
            unique=True,
        ),
        st.lists(st.integers(min_value=0, max_value=1), max_size=40),
    )
    def test_pop_sequences_match_naive_model(self, values, pop_components):
        # One component orders records ascending, the other descending; keys
        # are unique so pop order is fully determined.
        records = [(value, -value) for value in values]
        connected = ConnectedHeap((lambda r: r[0], lambda r: r[1]))
        naive = NaiveMultiHeap((lambda r: r[0], lambda r: r[1]))
        iterator = iter(pop_components)
        for record in records:
            connected.insert(record)
            naive.insert(record)
            component = next(iterator, None)
            if component is not None and len(connected) > 1:
                assert connected.pop(component) == naive.pop(component)
        while len(connected):
            assert connected.pop(0) == naive.pop(0)
        assert naive.is_empty()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=1, max_size=60, unique=True))
    def test_single_component_behaves_like_heapq(self, values):
        heap = ConnectedHeap([lambda v: v])
        reference = []
        for value in values:
            heap.insert(value)
            heapq.heappush(reference, value)
        drained = [heap.pop(0) for _ in range(len(values))]
        assert drained == [heapq.heappop(reference) for _ in range(len(reference))]


class TestLiftInvariant:
    @settings(max_examples=40, deadline=None)
    @given(relation=uncertain_relations(max_tuples=4, max_alternatives=3))
    def test_lift_xtuples_bounds_every_world(self, relation):
        from repro.core.bounding import bounds_world
        from repro.incomplete.lift import lift_xtuples

        audb = lift_xtuples(relation)
        for world, _probability in relation.iter_worlds(limit=1024):
            assert bounds_world(audb, world)
