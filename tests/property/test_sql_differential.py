"""SQL differential: optimized vs unoptimized vs hand-built vs Python.

Randomized SQL text (clause families drawn independently: projections and
computed select items, equi-joins, WHERE conjuncts, GROUP BY aggregates,
OVER windows with bounded ROWS frames, ORDER BY / LIMIT) compiles and runs
through independent executions that must agree bit for bit at the relation
boundary (same hypercubes, same ``N³`` triples, same first-occurrence row
order):

* **optimized** — the full rule pipeline (predicate pushdown, projection
  pruning, kernel-preferring join order) over ``ColumnarPlan``;
* **unoptimized** — the literal lowering of the same statement (grid joins,
  filters above the pairs, no pruning);
* **python** — the row-at-a-time reference operators; and
* **hand-built** — for the fixed flagship shape, a ``ColumnarPlan`` chain
  written directly against the stage API, bypassing the SQL layer entirely.

Inputs cover bag multiplicities (``ub > 1``), object-dtype columns, and
sharded execution (``workers=2`` vs serial).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relation import AURelation

from tests.property.strategies import au_relations, object_au_relations, window_frames

pytest.importorskip("numpy", reason="the columnar backend requires NumPy")

from repro.core.expressions import attr, const  # noqa: E402
from repro.columnar.plan import ColumnarPlan  # noqa: E402
from repro.columnar.relation import ColumnarAURelation  # noqa: E402
from repro.sql import compile_sql, run_sql  # noqa: E402

SETTINGS = settings(max_examples=60, deadline=None)

constants = st.integers(min_value=-6, max_value=6)
comparators = st.sampled_from(["<", "<=", ">", ">=", "=", "<>"])
aggregate_fns = st.sampled_from(["sum", "count", "avg", "min", "max"])


def assert_same_relation(expected: AURelation, actual: AURelation) -> None:
    assert expected.schema == actual.schema
    assert expected._rows == actual._rows


def run_all_ways(query: str, catalog: dict) -> AURelation:
    """Run ``query`` optimized / unoptimized / python; assert bit-identity."""
    optimized = run_sql(query, catalog)
    unoptimized = run_sql(query, catalog, optimize=False)
    python = run_sql(query, catalog, backend="python")
    assert_same_relation(optimized, unoptimized)
    assert_same_relation(optimized, python)
    return optimized


@st.composite
def sql_queries(draw):
    """Random SQL over a ``t`` (``a, b, g``) / ``s`` (``a, d``) catalog.

    Clause families are drawn independently so shrinking isolates the
    offending clause: a join (equi on the shared ``a`` column — ambiguous
    unqualified, so references qualify), WHERE conjuncts over either side,
    then exactly one of a GROUP BY aggregate block, an OVER window, or a
    plain projection with a computed item; ORDER BY / LIMIT on top.
    """
    join = draw(st.booleans())
    where = []
    if draw(st.booleans()):
        where.append(f"t.b {draw(comparators)} {draw(constants)}")
    if join and draw(st.booleans()):
        where.append(f"s.d {draw(comparators)} {draw(constants)}")
    where_sql = f" WHERE {' AND '.join(where)}" if where else ""
    from_sql = " FROM t" + (" JOIN s ON t.a = s.a" if join else "")

    shape = draw(st.sampled_from(["plain", "group", "window"]))
    if shape == "group":
        fn = draw(aggregate_fns)
        arg = "*" if fn == "count" else "t.b"
        items = f"t.g AS g, {fn}({arg}) AS m"
        tail_sql = f"{where_sql} GROUP BY t.g"
        orderable = ["g", "m"]
    elif shape == "window":
        fn = draw(st.sampled_from(["sum", "count", "min", "max"]))
        arg = "*" if fn == "count" else "t.b"
        lower, upper = draw(window_frames())
        bounds = []
        for offset in (lower, upper):
            if offset < 0:
                bounds.append(f"{-offset} PRECEDING")
            elif offset > 0:
                bounds.append(f"{offset} FOLLOWING")
            else:
                bounds.append("CURRENT ROW")
        partition = "PARTITION BY t.g " if draw(st.booleans()) else ""
        items = (
            f"t.a AS a, {fn}({arg}) OVER ({partition}ORDER BY t.b "
            f"ROWS BETWEEN {bounds[0]} AND {bounds[1]}) AS w"
        )
        tail_sql = where_sql
        orderable = ["a"]
    else:
        items = "t.a AS a, t.b + " + str(draw(constants)) + " AS e"
        if join:
            items += ", s.d AS d"
        tail_sql = where_sql
        orderable = ["a", "e"]

    if draw(st.booleans()):
        direction = draw(st.sampled_from(["", " DESC"]))
        tail_sql += f" ORDER BY {draw(st.sampled_from(orderable))}{direction}"
        if draw(st.booleans()):
            tail_sql += f" LIMIT {draw(st.integers(min_value=1, max_value=5))}"
    return f"SELECT {items}{from_sql}{tail_sql}"


@SETTINGS
@given(
    query=sql_queries(),
    t=au_relations(attributes=("a", "b", "g")),
    s=au_relations(attributes=("a", "d")),
)
def test_random_sql_three_way(query, t, s):
    run_all_ways(query, {"t": t, "s": s})


@SETTINGS
@given(
    query=sql_queries(),
    t=au_relations(attributes=("a", "b", "g")),
    s=au_relations(attributes=("a", "d")),
)
def test_random_sql_sharded_matches_serial(query, t, s):
    catalog = {"t": t, "s": s}
    serial = run_sql(query, catalog)
    sharded = run_sql(query, catalog, workers=2)
    assert_same_relation(serial, sharded)


@SETTINGS
@given(
    t=object_au_relations(attributes=("a", "b")),
    op=comparators,
    threshold=constants,
)
def test_object_dtype_columns(t, op, threshold):
    """Object-dtype payloads flow through select/where on the integer column."""
    query = f"SELECT a AS a, b AS b FROM t WHERE a {op} {threshold}"
    run_all_ways(query, {"t": t})


@SETTINGS
@given(
    t=object_au_relations(attributes=("a", "b")),
    s=object_au_relations(attributes=("a", "d"), pool=["p", "q", "r", "s"]),
)
def test_object_dtype_join(t, s):
    """Joins whose payload columns are object-dtype stay bit-identical."""
    run_all_ways("SELECT t.b AS b, s.d AS d FROM t JOIN s ON t.a = s.a", {"t": t, "s": s})


FLAGSHIP = (
    "SELECT t.g AS g, SUM(t.b) AS total "
    "FROM t JOIN s ON t.a = s.a "
    "WHERE t.b > 0 AND s.d < 4 "
    "GROUP BY t.g ORDER BY total DESC LIMIT 3"
)


def run_flagship_by_hand(t: AURelation, s: AURelation) -> AURelation:
    """The flagship query as a hand-written ColumnarPlan, no SQL involved."""
    left = ColumnarAURelation.from_relation(t)
    right = ColumnarAURelation.from_relation(s)
    plan = (
        ColumnarPlan(left)
        .select(attr("b").gt(const(0)))
        .join(right, on=["a"])
        .select(attr("d").lt(const(4)))
        .groupby_aggregate(["g"], [("sum", "b", "total")])
        .topk(["total"], 3, position_attribute="_sqlpos", descending=True)
        .project(["g", "total"])
    )
    return plan.to_rows()


@SETTINGS
@given(
    t=au_relations(attributes=("a", "b", "g")),
    s=au_relations(attributes=("a", "d")),
)
def test_flagship_matches_hand_built_plan(t, s):
    """SQL execution == a ColumnarPlan written directly against the stage API.

    The hand-built chain places the filters and the slim right projection
    where the optimizer would push them, so this also pins that the rule
    pipeline's output *is* the plan an engine author would write by hand.
    """
    catalog = {"t": t, "s": s}
    via_sql = run_all_ways(FLAGSHIP, catalog)
    by_hand = run_flagship_by_hand(t, s)
    assert_same_relation(via_sql, by_hand)


@SETTINGS
@given(
    t=au_relations(attributes=("a", "b", "g")),
    s=au_relations(attributes=("a", "d")),
)
def test_optimizer_preserves_the_statement(t, s):
    """compile_sql(optimize=True/False) share one parse; plans differ, rows don't."""
    catalog = {"t": t, "s": s}
    optimized = compile_sql(FLAGSHIP, catalog)
    unoptimized = compile_sql(FLAGSHIP, catalog, optimize=False)
    assert optimized.statement == unoptimized.statement
    assert_same_relation(optimized.run(), unoptimized.run())
