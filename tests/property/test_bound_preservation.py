"""Property-based tests for Theorems 1 and 2: bound preservation.

For randomly generated small incomplete relations, the AU-DB sort and window
operators (both the definitional/rewrite and the native sweep
implementations) must bound the deterministic result of **every** possible
world.  The bounding oracle is the exact tuple-matching check of
:mod:`repro.core.bounding`.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bounding import bounds_world
from repro.incomplete.lift import lift_xtuples
from repro.ranking.native import sort_native
from repro.ranking.semantics import sort_rewrite
from repro.relational.sort import sort_operator
from repro.relational.window import window_aggregate
from repro.window.native import window_native
from repro.window.semantics import window_rewrite
from repro.window.spec import WindowSpec
from tests.property.strategies import uncertain_relations

RELATIONS = uncertain_relations(attributes=("a", "b"), max_tuples=4, max_alternatives=2)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SETTINGS
@given(relation=RELATIONS, descending=st.booleans())
def test_sort_bound_preservation(relation, descending):
    """Theorem 1 for both sort implementations."""
    audb = lift_xtuples(relation)
    results = {
        "native": sort_native(audb, ["a"], descending=descending),
        "rewrite": sort_rewrite(audb, ["a"], descending=descending),
    }
    for world, _probability in relation.iter_worlds(limit=512):
        det = sort_operator(world, ["a"], descending=descending)
        for name, result in results.items():
            assert bounds_world(result, det), f"{name} sort violates Theorem 1"


@SETTINGS
@given(
    relation=RELATIONS,
    function=st.sampled_from(["sum", "count", "min", "max"]),
    preceding=st.integers(min_value=0, max_value=2),
)
def test_window_bound_preservation_preceding(relation, function, preceding):
    """Theorem 2 for PRECEDING frames, both window implementations."""
    spec = WindowSpec(
        function=function,
        attribute=None if function == "count" else "b",
        output="out",
        order_by=("a",),
        frame=(-preceding, 0),
    )
    audb = lift_xtuples(relation)
    results = {
        "native": window_native(audb, spec),
        "rewrite": window_rewrite(audb, spec),
    }
    for world, _probability in relation.iter_worlds(limit=512):
        det = window_aggregate(
            world,
            function=function,
            attribute=None if function == "count" else "b",
            output="out",
            order_by=["a"],
            frame=(-preceding, 0),
        )
        for name, result in results.items():
            assert bounds_world(result, det), f"{name} window violates Theorem 2"


@SETTINGS
@given(relation=RELATIONS, following=st.integers(min_value=1, max_value=2))
def test_window_bound_preservation_following(relation, following):
    """Theorem 2 for FOLLOWING frames (exercises the mirrored-order reduction)."""
    spec = WindowSpec(
        function="sum", attribute="b", output="out", order_by=("a",), frame=(0, following)
    )
    audb = lift_xtuples(relation)
    results = {
        "native": window_native(audb, spec),
        "rewrite": window_rewrite(audb, spec),
    }
    for world, _probability in relation.iter_worlds(limit=512):
        det = window_aggregate(
            world,
            function="sum",
            attribute="b",
            output="out",
            order_by=["a"],
            frame=(0, following),
        )
        for name, result in results.items():
            assert bounds_world(result, det), f"{name} window violates Theorem 2"


@SETTINGS
@given(relation=uncertain_relations(attributes=("g", "a", "b"), max_tuples=4, max_alternatives=2))
def test_partitioned_window_bound_preservation(relation):
    """Theorem 2 with a PARTITION BY clause (definitional implementation)."""
    spec = WindowSpec(
        function="sum",
        attribute="b",
        output="out",
        order_by=("a",),
        partition_by=("g",),
        frame=(-1, 0),
    )
    audb = lift_xtuples(relation)
    result = window_rewrite(audb, spec)
    for world, _probability in relation.iter_worlds(limit=512):
        det = window_aggregate(
            world,
            function="sum",
            attribute="b",
            output="out",
            order_by=["a"],
            partition_by=["g"],
            frame=(-1, 0),
        )
        assert bounds_world(result, det)


@SETTINGS
@given(relation=RELATIONS, k=st.integers(min_value=1, max_value=3))
def test_topk_completeness(relation, k):
    """Every world's top-k rows are covered by possible top-k answers."""
    from repro.ranking.topk import topk as au_topk
    from repro.relational.sort import topk as det_topk

    audb = lift_xtuples(relation)
    result = au_topk(audb, ["a"], k=k)
    possible = [tup for tup, mult in result if mult.possibly_exists]
    for world, _probability in relation.iter_worlds(limit=512):
        for row, _mult in det_topk(world, ["a"], k):
            assert any(tup.project(["rid", "a", "b"]).bounds_row(row) for tup in possible)
