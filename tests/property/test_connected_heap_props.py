"""Model-based properties for the connected heap (Section 8.2).

A :class:`ConnectedHeap` must behave exactly like a set of records offering
"pop the minimum under key ``i``" for every component — the backwards-pointer
machinery is pure optimisation.  These properties drive random interleaved
insert / pop / pop_while sequences against a naive model (a plain list) and
against :class:`NaiveMultiHeap`, checking every invariant the window sweep
relies on:

* ``pop(h)`` returns a payload minimising component ``h``'s key over the
  *live* records, and removes it from every component,
* ``peek`` / ``peek_key`` agree with ``pop`` without mutating,
* ``len`` equals the number of live records in every component heap.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.connected_heap import ConnectedHeap, NaiveMultiHeap

KEY_FUNCTIONS = (
    lambda item: item[0],
    lambda item: item[1],
    lambda item: -item[2],
)

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=-9, max_value=9),
                st.integers(min_value=-9, max_value=9),
            ),
        ),
        st.tuples(st.just("pop"), st.integers(min_value=0, max_value=2)),
        st.tuples(st.just("pop_while"), st.integers(min_value=0, max_value=2)),
    ),
    max_size=40,
)


@settings(max_examples=150, deadline=None)
@given(ops=operations)
def test_connected_heap_matches_reference_model(ops):
    heap = ConnectedHeap(KEY_FUNCTIONS)
    model: list[tuple[int, int, int]] = []
    serial = 0

    for op, payload in ops:
        if op == "insert":
            # Tag payloads with a serial so equal keys stay distinguishable.
            record = payload + (serial,)
            serial += 1
            heap.insert(record)
            model.append(record)
        elif op == "pop":
            component = payload
            if not model:
                continue
            min_key = min(KEY_FUNCTIONS[component](item) for item in model)
            assert heap.peek_key(component) == min_key
            popped = heap.pop(component)
            assert KEY_FUNCTIONS[component](popped) == min_key
            assert popped in model
            model.remove(popped)
        else:  # pop_while: drain everything below the current median key
            component = payload
            if not model:
                continue
            keys = sorted(KEY_FUNCTIONS[component](item) for item in model)
            threshold = keys[len(keys) // 2]
            popped = heap.pop_while(component, lambda item: KEY_FUNCTIONS[component](item) < threshold)
            expected = [item for item in model if KEY_FUNCTIONS[component](item) < threshold]
            assert sorted(popped) == sorted(expected)
            for item in popped:
                model.remove(item)

        assert len(heap) == len(model)
        assert sorted(heap.items()) == sorted(model)
        # Every component heap must agree on the live record set.
        for component in range(3):
            if model:
                expected_min = min(KEY_FUNCTIONS[component](item) for item in model)
                assert heap.peek_key(component) == expected_min


#: Totally ordered key functions (serial tiebreak) so that both
#: implementations are forced to pop the *same* record on every operation.
UNIQUE_KEY_FUNCTIONS = (
    lambda item: (item[0], item[3]),
    lambda item: (item[1], item[3]),
    lambda item: (-item[2], item[3]),
)


@settings(max_examples=60, deadline=None)
@given(ops=operations)
def test_connected_heap_agrees_with_naive_multi_heap(ops):
    """The backwards-pointer heap and the linear-search baseline are equivalent."""
    connected = ConnectedHeap(UNIQUE_KEY_FUNCTIONS)
    naive = NaiveMultiHeap(UNIQUE_KEY_FUNCTIONS)
    serial = 0
    for op, payload in ops:
        if op == "insert":
            record = payload + (serial,)
            serial += 1
            connected.insert(record)
            naive.insert(record)
        elif op == "pop":
            component = payload
            if not len(connected):
                continue
            assert connected.pop(component) == naive.pop(component)
        else:
            continue
        assert len(connected) == len(naive)
        assert sorted(connected.items()) == sorted(naive.items())
