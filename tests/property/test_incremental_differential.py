"""Delta-differential properties: incremental views vs from-scratch plans.

:class:`~repro.columnar.incremental.IncrementalView` promises that after any
sequence of append/retract deltas its materialised result is **bit-identical**
— same hypercubes, same multiplicity triples, same first-occurrence row order
— to running the plan from scratch on the accumulated base relation.  The
properties below pin that contract over randomized plan shapes (sort, top-k,
windows including following-only frames, select/extend/rename prefixes, and
the group-by fallback class) and randomized delta streams (bag multiplicities
with ``ub > 1``, partial retractions, inserts colliding with stored
hypercubes, retract-to-empty), on both maintenance paths:

* the *patch* path (``incremental=True``), where sort/top-k results are
  maintained by rank-offset updates and windows by per-partition re-sweeps;
* the *forced-recompute* oracle (``incremental=False``), which pins the
  patch rules against the plain plan — if the two ever disagree, the patch
  rule is unsound.

``last_apply`` is additionally pinned on targeted deltas so the patch path
is provably *exercised*, not silently falling back to recompute everywhere.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("numpy", reason="incremental views run on the columnar backend")

from repro.columnar.incremental import IncrementalView, merge_delta
from repro.columnar.plan import ColumnarPlan, PlanSpec
from repro.core.expressions import Arithmetic, attr, const
from repro.core.multiplicity import Multiplicity
from repro.core.relation import AURelation
from repro.core.schema import Schema
from repro.errors import OperatorError
from repro.window.spec import WindowSpec

from tests.property.strategies import multiplicities, range_values

SETTINGS = settings(max_examples=25, deadline=None)

SCHEMA = ("a", "b")


def _window(frame, partition_by=("a",), order_by=("b",)) -> WindowSpec:
    return WindowSpec(
        function="sum",
        attribute="b",
        output="w",
        order_by=order_by,
        partition_by=partition_by,
        frame=frame,
    )


#: The plan shapes under differential test.  The first block is the
#: patchable class (prefix of select/extend/rename plus one trailing ranked
#: stage); the tail covers prefix-only plans, the uncertain-partition window
#: (state build fails, every delta recomputes), and the group-by fallback.
SPECS = [
    PlanSpec().sort(["a"]),
    PlanSpec().topk(["a"], 3, descending=True),
    PlanSpec().select(attr("a").ge(const(0))).sort(["b"]),
    PlanSpec().extend("c", Arithmetic("+", attr("a"), const(1))).topk(["c"], 2),
    PlanSpec().select(attr("b").le(const(4))).window(_window((-2, 0))),
    PlanSpec().window(_window((0, 2))),  # following-only frame
    PlanSpec().rename({"a": "x"}).sort(["x"], descending=True),
    PlanSpec().select(attr("a").ge(const(-2))),
    PlanSpec().window(_window((-1, 0), partition_by=("b",))),  # uncertain keys
    PlanSpec().groupby_aggregate(["a"], [("sum", "b", "s")]),  # fallback class
]


@st.composite
def base_relations(draw, *, max_tuples: int = 6) -> AURelation:
    """Random AU-relations with a certain ``a`` and an uncertain ``b``.

    ``a`` stays a point value so partition/order keys are groupable and the
    window patch rules actually engage; ``b`` draws full range values and
    bag multiplicities (``ub > 1``) so the ranked stages see the general
    AU-relation class.
    """
    relation = AURelation(Schema(SCHEMA))
    for _ in range(draw(st.integers(min_value=0, max_value=max_tuples))):
        a = draw(st.integers(min_value=-3, max_value=3))
        b = draw(range_values())
        relation.add_values([a, b], draw(multiplicities(max_count=2)))
    return relation


#: One delta program: rows to insert plus ``(victim pick, partial?)``
#: retract directives, resolved against whatever the base holds when the
#: delta is applied (so later deltas can retract earlier inserts).
delta_programs = st.tuples(
    st.lists(
        st.tuples(
            st.integers(min_value=-3, max_value=9),
            range_values(),
            multiplicities(max_count=2),
        ),
        max_size=3,
    ),
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=63), st.booleans()),
        max_size=3,
    ),
)


def _build_delta(base: AURelation, program):
    """Resolve one delta program against the current accumulated base."""
    insert_rows, retract_picks = program
    inserts = AURelation(base.schema)
    for a, b, mult in insert_rows:
        if mult != Multiplicity(0, 0, 0):
            inserts.add_values([a, b], mult)
    retracts = AURelation(base.schema)
    live = list(base._rows.items())
    taken = set()
    for pick, partial in retract_picks:
        if not live:
            break
        values, stored = live[pick % len(live)]
        if values in taken:
            continue
        taken.add(values)
        if partial and stored.ub > stored.sg:
            mult = Multiplicity(0, 0, stored.ub - stored.sg)
        else:
            mult = stored
        retracts.add_values(list(values), mult)
    return (
        inserts if len(inserts) else None,
        retracts if len(retracts) else None,
    )


def assert_bit_identical(expected: AURelation, actual: AURelation) -> None:
    """Same schema, same hypercubes and triples, same insertion order."""
    assert expected.schema == actual.schema
    assert list(expected._rows.items()) == list(actual._rows.items())


def _recompute(spec: PlanSpec, base: AURelation) -> AURelation:
    return spec.apply(ColumnarPlan(base)).to_rows()


class TestDeltaDifferential:
    @SETTINGS
    @given(
        spec_index=st.integers(min_value=0, max_value=len(SPECS) - 1),
        base=base_relations(),
        programs=st.lists(delta_programs, max_size=4),
    )
    def test_view_matches_from_scratch_after_every_delta(
        self, spec_index, base, programs
    ):
        spec = SPECS[spec_index]
        view = IncrementalView(base, spec)
        accumulated = base.copy()
        assert_bit_identical(_recompute(spec, accumulated), view.to_rows())
        for program in programs:
            inserts, retracts = _build_delta(accumulated, program)
            view.apply_delta(inserts=inserts, retracts=retracts)
            accumulated, _ = merge_delta(accumulated, inserts, retracts)
            assert_bit_identical(_recompute(spec, accumulated), view.to_rows())
            assert_bit_identical(accumulated, view.base_rows())

    @SETTINGS
    @given(
        spec_index=st.integers(min_value=0, max_value=len(SPECS) - 1),
        base=base_relations(),
        programs=st.lists(delta_programs, max_size=3),
    )
    def test_patched_equals_forced_recompute(self, spec_index, base, programs):
        """The forced-recompute oracle: both maintenance paths agree."""
        spec = SPECS[spec_index]
        patched = IncrementalView(base, spec, incremental=True)
        forced = IncrementalView(base, spec, incremental=False)
        accumulated = base.copy()
        for program in programs:
            inserts, retracts = _build_delta(accumulated, program)
            patched.apply_delta(inserts=inserts, retracts=retracts)
            forced.apply_delta(inserts=inserts, retracts=retracts)
            accumulated, _ = merge_delta(accumulated, inserts, retracts)
            assert forced.last_apply in ("recomputed", "noop")
            assert_bit_identical(forced.to_rows(), patched.to_rows())
            assert_bit_identical(forced.base_rows(), patched.base_rows())

    @SETTINGS
    @given(spec_index=st.integers(min_value=0, max_value=len(SPECS) - 1),
           base=base_relations())
    def test_empty_delta_is_a_noop(self, spec_index, base):
        view = IncrementalView(base, SPECS[spec_index])
        before = view.to_rows()
        view.apply_delta()
        assert view.last_apply == "noop"
        view.apply_delta(inserts=AURelation(base.schema),
                         retracts=AURelation(base.schema))
        assert view.last_apply == "noop"
        assert_bit_identical(before, view.to_rows())

    @SETTINGS
    @given(spec_index=st.integers(min_value=0, max_value=len(SPECS) - 1),
           base=base_relations(max_tuples=5))
    def test_retract_to_empty(self, spec_index, base):
        """Retracting every stored row leaves the empty-base plan result."""
        spec = SPECS[spec_index]
        view = IncrementalView(base, spec)
        if len(base):
            view.apply_delta(retracts=base.copy())
        assert len(view.base_rows()) == 0
        assert_bit_identical(_recompute(spec, AURelation(base.schema)),
                             view.to_rows())

    @SETTINGS
    @given(spec_index=st.integers(min_value=0, max_value=len(SPECS) - 1),
           base=base_relations(),
           programs=st.lists(delta_programs, min_size=1, max_size=2))
    def test_growing_from_an_empty_base(self, spec_index, base, programs):
        """Views built over zero rows accept deltas like any other view."""
        spec = SPECS[spec_index]
        empty = AURelation(Schema(SCHEMA))
        view = IncrementalView(empty, spec)
        accumulated = empty.copy()
        for program in programs:
            inserts, retracts = _build_delta(accumulated, program)
            view.apply_delta(inserts=inserts, retracts=retracts)
            accumulated, _ = merge_delta(accumulated, inserts, retracts)
            assert_bit_identical(_recompute(spec, accumulated), view.to_rows())

    @SETTINGS
    @given(base=base_relations(), bogus=range_values())
    def test_invalid_retract_raises_and_leaves_the_view_unchanged(
        self, base, bogus
    ):
        """Atomicity: a failing delta must not half-apply."""
        view = IncrementalView(base, SPECS[0])
        before = view.to_rows()
        before_base = view.base_rows()
        missing = AURelation(base.schema)
        missing.add_values([99, bogus], 1)  # 'a'=99 is outside the drawn range
        with pytest.raises(OperatorError):
            view.apply_delta(retracts=missing)
        assert_bit_identical(before, view.to_rows())
        assert_bit_identical(before_base, view.base_rows())


class TestPatchPathIsExercised:
    """Pin ``last_apply`` so patch rules demonstrably run (no silent fallback)."""

    def _base(self) -> AURelation:
        base = AURelation(Schema(SCHEMA))
        for a, b in [(0, 5), (0, 2), (1, 7), (1, 1), (2, 4), (2, 9)]:
            base.add_values([a, b], 1)
        return base

    def _fresh_delta(self) -> AURelation:
        inserts = AURelation(Schema(SCHEMA))
        inserts.add_values([1, 3], 1)
        inserts.add_values([3, 6], (0, 1, 2))
        return inserts

    @pytest.mark.parametrize(
        "spec",
        [
            PlanSpec().sort(["b"]),
            PlanSpec().topk(["b"], 3, descending=True),
            PlanSpec().select(attr("b").ge(const(0))).window(_window((-2, 0))),
            PlanSpec().select(attr("a").ge(const(0))),
        ],
        ids=["sort", "topk", "window", "prefix-only"],
    )
    def test_fresh_inserts_and_whole_row_retracts_patch(self, spec):
        base = self._base()
        view = IncrementalView(base, spec)
        assert view.last_apply == "rebuilt"
        view.apply_delta(inserts=self._fresh_delta())
        assert view.last_apply == "patched"
        retracts = AURelation(Schema(SCHEMA))
        retracts.add_values([0, 5], 1)
        view.apply_delta(retracts=retracts)
        assert view.last_apply == "patched"
        accumulated, _ = merge_delta(
            merge_delta(self._base(), self._fresh_delta(), None)[0], None, retracts
        )
        assert_bit_identical(_recompute(spec, accumulated), view.to_rows())

    def test_colliding_insert_forces_recompute(self):
        """An insert landing on a stored hypercube merges — no patch rule."""
        base = self._base()
        view = IncrementalView(base, PlanSpec().sort(["b"]))
        collide = AURelation(Schema(SCHEMA))
        collide.add_values([0, 5], 1)  # already stored
        view.apply_delta(inserts=collide)
        assert view.last_apply == "recomputed"
        accumulated, patchable = merge_delta(base, collide, None)
        assert not patchable
        assert_bit_identical(
            _recompute(PlanSpec().sort(["b"]), accumulated), view.to_rows()
        )

    def test_partial_retract_forces_recompute(self):
        base = AURelation(Schema(SCHEMA))
        base.add_values([0, 5], (1, 2, 3))
        view = IncrementalView(base, PlanSpec().sort(["b"]))
        partial = AURelation(Schema(SCHEMA))
        partial.add_values([0, 5], (0, 0, 1))
        view.apply_delta(retracts=partial)
        assert view.last_apply == "recomputed"
        assert list(view.base_rows()._rows.values()) == [Multiplicity(1, 2, 2)]

    def test_fallback_class_always_recomputes(self):
        view = IncrementalView(self._base(), SPECS[-1])  # group-by
        view.apply_delta(inserts=self._fresh_delta())
        assert view.last_apply == "recomputed"
