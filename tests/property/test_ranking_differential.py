"""Differential properties: native / columnar sorting vs the definitional rewrite.

The rewrite implementation (:func:`repro.ranking.semantics.sort_rewrite`)
evaluates Equations 1-3 literally and is the specification; the native sweep
and the columnar kernels must reproduce its output *bit for bit* — same
hypercubes, same position triples, same multiplicity annotations — on
arbitrary AU-relations.  Top-k additionally pins that both backends prune
exactly the duplicates a position selection would filter to zero.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("numpy", reason="the columnar backend requires NumPy")

from repro.columnar.kernels import (
    certainly_precedes_counts,
    certainly_precedes_matrix,
    lex_rank_pairs,
    order_code_matrices,
    possibly_precedes_counts,
    possibly_precedes_matrix,
)
from repro.columnar.relation import ColumnarAURelation
from repro.core.relation import AURelation
from repro.ranking.native import sort_native
from repro.ranking.semantics import sort_rewrite
from repro.ranking.topk import topk
from repro.relational.relation import Relation
from repro.relational.sort import sort_operator

from tests.property.strategies import au_relations


def assert_same_relation(left: AURelation, right: AURelation) -> None:
    """Bit-for-bit equality: same schema, same hypercube -> annotation map."""
    assert left.schema == right.schema
    assert left._rows == right._rows


@settings(max_examples=120, deadline=None)
@given(relation=au_relations(), descending=st.booleans())
def test_sort_native_matches_rewrite(relation, descending):
    native = sort_native(relation, ["a"], descending=descending)
    rewrite = sort_rewrite(relation, ["a"], descending=descending)
    assert_same_relation(native, rewrite)


@settings(max_examples=120, deadline=None)
@given(relation=au_relations(), descending=st.booleans())
def test_sort_columnar_matches_rewrite(relation, descending):
    columnar = sort_native(relation, ["a"], descending=descending, backend="columnar")
    rewrite = sort_rewrite(relation, ["a"], descending=descending)
    assert_same_relation(columnar, rewrite)


@settings(max_examples=80, deadline=None)
@given(relation=au_relations(), descending=st.booleans())
def test_sort_multi_attribute_backends_agree(relation, descending):
    order_by = ["a", "b"]
    native = sort_native(relation, order_by, descending=descending)
    columnar = sort_native(relation, order_by, descending=descending, backend="columnar")
    rewrite = sort_rewrite(relation, order_by, descending=descending)
    assert_same_relation(native, rewrite)
    assert_same_relation(columnar, rewrite)


@settings(max_examples=120, deadline=None)
@given(
    relation=au_relations(),
    k=st.integers(min_value=0, max_value=8),
    descending=st.booleans(),
)
def test_topk_backends_and_methods_agree(relation, k, descending):
    reference = topk(relation, ["a"], k, method="rewrite", descending=descending)
    for method, backend in (("native", "python"), ("native", "columnar"), ("rewrite", "columnar")):
        result = topk(relation, ["a"], k, method=method, backend=backend, descending=descending)
        assert_same_relation(result, reference)


@settings(max_examples=80, deadline=None)
@given(
    relation=au_relations(),
    k=st.integers(min_value=0, max_value=8),
    descending=st.booleans(),
)
def test_pruned_sort_backends_agree(relation, k, descending):
    """With ``k`` given both backends keep exactly the duplicates with lb < k."""
    native = sort_native(relation, ["a"], k=k, descending=descending)
    columnar = sort_native(relation, ["a"], k=k, descending=descending, backend="columnar")
    assert_same_relation(native, columnar)
    full = sort_rewrite(relation, ["a"], descending=descending)
    pos_idx = full.schema.index_of("pos")
    expected = {
        values: mult for values, mult in full._rows.items() if values[pos_idx].lb < k
    }
    assert native._rows == expected


@settings(max_examples=100, deadline=None)
@given(relation=au_relations(max_tuples=5))
def test_precede_kernels_match_pairwise_matrices(relation):
    """Prefix-sum kernels agree with the quadratic pairwise comparison matrices."""
    import numpy as np

    columnar = ColumnarAURelation.from_relation(relation)
    earliest, _sg, latest = order_code_matrices(columnar, ["a", "b"])
    earliest_rank, latest_rank = lex_rank_pairs(earliest, latest)

    certain_matrix = certainly_precedes_matrix(earliest_rank, latest_rank)
    possible_matrix = possibly_precedes_matrix(earliest_rank, latest_rank)
    lower = certainly_precedes_counts(earliest_rank, latest_rank, columnar.mult_lb)
    upper = possibly_precedes_counts(earliest_rank, latest_rank, columnar.mult_ub)

    assert np.array_equal(lower, columnar.mult_lb @ certain_matrix)
    assert np.array_equal(upper, columnar.mult_ub @ possible_matrix)


def test_empty_input_agrees_across_implementations():
    """n = 0 edge case: sort and top-k on an empty relation, every path."""
    from repro.core.schema import Schema

    empty = AURelation(Schema(("a", "b")))
    rewrite = sort_rewrite(empty, ["a"])
    assert len(rewrite) == 0
    assert_same_relation(rewrite, sort_native(empty, ["a"]))
    assert_same_relation(rewrite, sort_native(empty, ["a"], backend="columnar"))
    for backend in ("python", "columnar"):
        assert len(topk(empty, ["a"], 3, backend=backend)) == 0


@settings(max_examples=100, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.tuples(
                st.integers(min_value=-5, max_value=5),
                st.one_of(st.none(), st.integers(min_value=-3, max_value=3)),
            ),
            st.integers(min_value=1, max_value=3),
        ),
        max_size=10,
    ),
    descending=st.booleans(),
    order_by=st.sampled_from([["a"], ["b"], ["b", "a"]]),
)
def test_deterministic_sort_backends_agree(rows, descending, order_by):
    relation = Relation(["a", "b"], rows)
    python = sort_operator(relation, order_by, descending=descending)
    columnar = sort_operator(relation, order_by, descending=descending, backend="columnar")
    assert python.schema == columnar.schema
    assert python._rows == columnar._rows
