"""Differential properties: Python vs columnar ``RA⁺`` operators, plus a det oracle.

Two independent checks over randomized AU-relations (including object-dtype
columns, bag multiplicities with ``ub > 1``, and empty results):

* **backend agreement** — every operator of :mod:`repro.core.operators` must
  produce bit-identical relations on ``backend="python"`` and
  ``backend="columnar"`` (same hypercubes, same ``N³`` annotations), which
  pins the vectorized expression evaluator, the hash-grouped duplicate
  merging, and the bulk product expansion of :mod:`repro.columnar.operators`
  against the tuple-at-a-time reference; and
* **det-world soundness** — the selected-guess world of the inputs is a
  deterministic world bounded by them, so by bound preservation (Theorems of
  [23, 24]) the AU output must bound the deterministic operator applied to
  that world.  The bounding oracle is the exact tuple-matching check of
  :mod:`repro.core.bounding` — independent of both uncertain backends.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounding import bounds_world
from repro.core.expressions import IfThenElse, attr, const
from repro.core.operators import (
    cross,
    distinct,
    extend,
    groupby_aggregate,
    join,
    project,
    select,
    union,
)
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.core.schema import Schema
from repro.relational import operators as det_ops
from repro.relational.relation import Relation

from tests.property.strategies import (
    au_relations,
    multiplicities,
    object_au_relations,
    range_values,
)

pytest.importorskip("numpy", reason="the columnar backend requires NumPy")

SETTINGS = settings(max_examples=80, deadline=None)

#: One of each supported aggregate, all at once (over attribute ``v``).
ALL_AGGREGATES = [
    ("count", "*", "n"),
    ("sum", "v", "s"),
    ("min", "v", "lo"),
    ("max", "v", "hi"),
    ("avg", "v", "m"),
]


def assert_same_relation(python_result: AURelation, columnar_result: AURelation) -> None:
    assert python_result.schema == columnar_result.schema
    assert python_result._rows == columnar_result._rows


def sg_world(relation: AURelation) -> Relation:
    """The selected-guess world as a deterministic bag relation."""
    world = Relation(relation.schema)
    for row, mult in relation.selected_guess_rows().items():
        world.add(row, mult)
    return world


# -- predicate / expression strategies --------------------------------------


@st.composite
def numeric_predicates(draw):
    """Small random predicates over the integer attributes ``a`` and ``b``."""
    operands = [attr("a"), attr("b"), const(draw(st.integers(-4, 4)))]
    ops = ["lt", "le", "gt", "ge", "eq", "ne"]

    def comparison():
        left = draw(st.sampled_from(operands))
        right = draw(st.sampled_from(operands))
        return getattr(left, draw(st.sampled_from(ops)))(right)

    predicate = comparison()
    if draw(st.booleans()):
        connective = draw(st.sampled_from(["and_", "or_"]))
        predicate = getattr(predicate, connective)(comparison())
    if draw(st.booleans()):
        predicate = predicate.not_()
    return predicate


@st.composite
def numeric_expressions(draw):
    """Small random scalar expressions over ``a`` and ``b``."""
    base = [attr("a"), attr("b"), const(draw(st.integers(-3, 3)))]
    left = draw(st.sampled_from(base))
    right = draw(st.sampled_from(base))
    op = draw(st.sampled_from(["+", "-", "*", "ite"]))
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    return IfThenElse(attr("a").lt(attr("b")), left, right)


# -- backend agreement ------------------------------------------------------


@SETTINGS
@given(relation=au_relations(attributes=("a", "b")), predicate=numeric_predicates())
def test_select_backends_agree(relation, predicate):
    assert_same_relation(
        select(relation, predicate), select(relation, predicate, backend="columnar")
    )


@SETTINGS
@given(relation=object_au_relations(attributes=("a", "b")), constant=st.integers(-1, 3))
def test_select_backends_agree_object_columns(relation, constant):
    """Object-dtype columns route through the scalar fallback, bit for bit."""
    predicate = attr("a").le(const(constant))
    assert_same_relation(
        select(relation, predicate), select(relation, predicate, backend="columnar")
    )
    equality = attr("b").eq(attr("b"))
    assert_same_relation(
        select(relation, equality), select(relation, equality, backend="columnar")
    )


@SETTINGS
@given(
    relation=au_relations(attributes=("a", "b", "c")),
    attributes=st.sampled_from([("a",), ("b",), ("c", "a"), ("b", "c"), ("a", "b", "c"), ()]),
)
def test_project_backends_agree(relation, attributes):
    assert_same_relation(
        project(relation, list(attributes)),
        project(relation, list(attributes), backend="columnar"),
    )


@SETTINGS
@given(relation=object_au_relations(attributes=("a", "b")))
def test_project_backends_agree_object_columns(relation):
    """Dict-coded equality grouping must merge exactly like RangeValue.__eq__."""
    assert_same_relation(
        project(relation, ["b"]), project(relation, ["b"], backend="columnar")
    )


@SETTINGS
@given(relation=au_relations(attributes=("a", "b")), expression=numeric_expressions())
def test_extend_backends_agree(relation, expression):
    assert_same_relation(
        extend(relation, "x", expression),
        extend(relation, "x", expression, backend="columnar"),
    )


@SETTINGS
@given(
    left=au_relations(attributes=("a", "b")),
    right=au_relations(attributes=("a", "b")),
)
def test_union_backends_agree(left, right):
    assert_same_relation(union(left, right), union(left, right, backend="columnar"))


@SETTINGS
@given(
    left=object_au_relations(attributes=("a", "b")),
    right=object_au_relations(attributes=("a", "b")),
)
def test_union_backends_agree_object_columns(left, right):
    assert_same_relation(union(left, right), union(left, right, backend="columnar"))


@SETTINGS
@given(relation=au_relations(attributes=("a", "b"), max_count=3))
def test_distinct_backends_agree(relation):
    assert_same_relation(distinct(relation), distinct(relation, backend="columnar"))


@SETTINGS
@given(
    left=au_relations(attributes=("a", "b"), max_tuples=4),
    right=au_relations(attributes=("b", "c"), max_tuples=3),
)
def test_cross_backends_agree(left, right):
    """Shared attribute names exercise the ``_r`` suffix disambiguation too."""
    assert_same_relation(cross(left, right), cross(left, right, backend="columnar"))


@SETTINGS
@given(
    left=au_relations(attributes=("k", "a"), max_tuples=4),
    right=au_relations(attributes=("k", "b"), max_tuples=3),
)
def test_join_on_backends_agree(left, right):
    assert_same_relation(
        join(left, right, on=["k"]), join(left, right, on=["k"], backend="columnar")
    )


@SETTINGS
@given(
    left=object_au_relations(attributes=("a", "k"), max_tuples=4, pool=["p", "q", "r"]),
    right=object_au_relations(attributes=("b", "k"), max_tuples=3, pool=["p", "q", "r"]),
)
def test_join_on_backends_agree_object_keys(left, right):
    """Object-dtype join keys take the scalar per-pair equality path."""
    assert_same_relation(
        join(left, right, on=["k"]), join(left, right, on=["k"], backend="columnar")
    )


@SETTINGS
@given(
    left=au_relations(attributes=("a", "b"), max_tuples=4),
    right=au_relations(attributes=("c",), max_tuples=3),
)
def test_join_predicate_backends_agree(left, right):
    predicate = attr("a").lt(attr("c")).or_(attr("b").eq(attr("c")))
    assert_same_relation(
        join(left, right, predicate), join(left, right, predicate, backend="columnar")
    )


@st.composite
def certain_key_relations(draw, *, attributes=("k", "b"), max_tuples=5):
    """Relations whose first attribute is a *certain* integer key column.

    These qualify for the sort/searchsorted equi-join path (point keys on one
    side); values on the remaining attributes stay uncertain ranges.
    """
    relation = AURelation(Schema(attributes))
    for _ in range(draw(st.integers(min_value=0, max_value=max_tuples))):
        values = [draw(st.integers(min_value=-4, max_value=4))]
        values += [draw(range_values()) for _ in attributes[1:]]
        relation.add_values(values, draw(multiplicities(max_count=2)))
    return relation


@SETTINGS
@given(
    relation=au_relations(attributes=("g", "v"), max_tuples=5, max_count=3),
)
def test_groupby_backends_agree(relation):
    """Uncertain group keys exercise the N³ possible-membership handling."""
    assert_same_relation(
        groupby_aggregate(relation, ["g"], ALL_AGGREGATES),
        groupby_aggregate(relation, ["g"], ALL_AGGREGATES, backend="columnar"),
    )


@SETTINGS
@given(relation=au_relations(attributes=("g", "h", "v"), max_tuples=5, max_count=3))
def test_groupby_multi_key_backends_agree(relation):
    assert_same_relation(
        groupby_aggregate(relation, ["g", "h"], [("count", "*", "n"), ("sum", "v", "s")]),
        groupby_aggregate(
            relation, ["g", "h"], [("count", "*", "n"), ("sum", "v", "s")], backend="columnar"
        ),
    )


@SETTINGS
@given(relation=au_relations(attributes=("g", "v"), max_tuples=4, max_count=3))
def test_groupby_global_backends_agree(relation):
    """Empty ``group_by``: one output row even over the empty relation."""
    assert_same_relation(
        groupby_aggregate(relation, [], ALL_AGGREGATES),
        groupby_aggregate(relation, [], ALL_AGGREGATES, backend="columnar"),
    )


@SETTINGS
@given(relation=object_au_relations(attributes=("v", "g"), max_tuples=5, max_count=3))
def test_groupby_backends_agree_object_keys(relation):
    """Object-dtype group keys (strings, None/int, bool/int) group identically."""
    aggregates = [("count", "*", "n"), ("sum", "v", "s"), ("max", "v", "hi")]
    assert_same_relation(
        groupby_aggregate(relation, ["g"], aggregates),
        groupby_aggregate(relation, ["g"], aggregates, backend="columnar"),
    )


@SETTINGS
@given(
    relation=object_au_relations(
        attributes=("g", "v"), max_tuples=5, max_count=3, pool=["p", "q", "r", "s"]
    )
)
def test_groupby_backends_agree_object_values(relation):
    """Object-dtype *aggregated* columns fold through the shared scalar helper."""
    aggregates = [("min", "v", "lo"), ("max", "v", "hi")]
    assert_same_relation(
        groupby_aggregate(relation, ["g"], aggregates),
        groupby_aggregate(relation, ["g"], aggregates, backend="columnar"),
    )


@SETTINGS
@given(
    left=au_relations(attributes=("k", "a"), max_tuples=5, max_count=2),
    right=certain_key_relations(),
)
def test_equijoin_grid_and_searchsorted_agree(left, right):
    """The memory-safe pair enumeration is bit-identical to the pair grid."""
    import numpy as np

    from repro.columnar import operators as col_ops
    from repro.columnar.relation import ColumnarAURelation

    columnar_left = ColumnarAURelation.from_relation(left)
    columnar_right = ColumnarAURelation.from_relation(right)
    for pair in ((columnar_left, columnar_right), (columnar_right, columnar_left)):
        grid = col_ops.join(*pair, on=["k"], method="grid")
        fast = col_ops.join(*pair, on=["k"], method="searchsorted")
        assert grid.schema == fast.schema
        assert len(grid) == len(fast)
        for grid_col, fast_col in zip(grid.columns, fast.columns):
            for component in ("lb", "sg", "ub"):
                assert np.array_equal(
                    getattr(grid_col, component), getattr(fast_col, component)
                )
        for component in ("mult_lb", "mult_sg", "mult_ub"):
            assert np.array_equal(getattr(grid, component), getattr(fast, component))
        # ... and both match the Python backend at the relation boundary.
        assert_same_relation(join(*[p.to_relation() for p in pair], on=["k"]), fast.to_relation())


@SETTINGS
@given(
    left=au_relations(attributes=("k", "a"), max_tuples=4, max_count=2),
    right=certain_key_relations(attributes=("k", "b"), max_tuples=4),
)
def test_equijoin_auto_with_predicate_agrees(left, right):
    """`auto` + extra predicate stays bit-identical across methods and backends."""
    from repro.columnar import operators as col_ops
    from repro.columnar.relation import ColumnarAURelation

    predicate = attr("a").lt(attr("b"))
    columnar_left = ColumnarAURelation.from_relation(left)
    columnar_right = ColumnarAURelation.from_relation(right)
    auto = col_ops.join(columnar_left, columnar_right, predicate, on=["k"])
    grid = col_ops.join(columnar_left, columnar_right, predicate, on=["k"], method="grid")
    assert auto.to_relation()._rows == grid.to_relation()._rows
    assert_same_relation(join(left, right, predicate, on=["k"]), auto.to_relation())


def test_join_cross_empty_inputs_agree_all_methods():
    """Regression: ``n == 0`` inputs short-circuit before the repeat/tile scratch.

    The grid kernel used to size its pair scratch from ``|L| * |R|`` before
    checking for emptiness; every method must now return the empty result on
    an empty side without touching the pair-expansion path, bit-identical to
    the Python backend.
    """
    from repro.columnar import operators as col_ops
    from repro.columnar.relation import ColumnarAURelation

    filled_left = AURelation.from_rows(
        ["k", "a"], [((1, 2), (1, 1, 1)), ((RangeValue(0, 1, 2), 4), (0, 1, 2))]
    )
    filled_right = AURelation.from_rows(["k", "b"], [((1, 5), 1)])
    empty_left = AURelation.from_rows(["k", "a"], [])
    empty_right = AURelation.from_rows(["k", "b"], [])
    for left, right in [
        (filled_left, empty_right),
        (empty_left, filled_right),
        (empty_left, empty_right),
    ]:
        columnar_left = ColumnarAURelation.from_relation(left)
        columnar_right = ColumnarAURelation.from_relation(right)
        python_joined = join(left, right, on=["k"])
        assert python_joined.is_empty()
        for method in ("auto", "grid", "searchsorted", "sweep"):
            columnar_joined = col_ops.join(
                columnar_left, columnar_right, on=["k"], method=method
            )
            assert_same_relation(python_joined, columnar_joined.to_relation())
        band_joined = col_ops.join(
            columnar_left, columnar_right, attr("a").lt(attr("b")), method="band"
        )
        assert_same_relation(join(left, right, attr("a").lt(attr("b"))), band_joined.to_relation())
        python_crossed = cross(left, right)
        assert python_crossed.is_empty()
        assert_same_relation(python_crossed, cross(left, right, backend="columnar"))
        predicate = attr("a").lt(attr("b"))
        assert_same_relation(
            join(left, right, predicate),
            join(left, right, predicate, backend="columnar"),
        )


def test_empty_results_agree_on_both_backends():
    relation = AURelation.from_rows(["a", "b"], [((1, 2), (1, 1, 1)), ((3, 4), (0, 1, 2))])
    never = attr("a").gt(const(100))
    for backend in ("python", "columnar"):
        result = select(relation, never, backend=backend)
        assert result.is_empty()
        assert result.schema == relation.schema
    other = AURelation.from_rows(["c"], [((200,), 1)])
    for backend in ("python", "columnar"):
        joined = join(relation, other, attr("a").gt(attr("c")), backend=backend)
        assert joined.is_empty()
    empty = AURelation.from_rows(["a", "b"], [])
    for backend in ("python", "columnar"):
        assert project(empty, ["a"], backend=backend).is_empty()
        assert distinct(empty, backend=backend).is_empty()
        assert cross(empty, relation, backend=backend).is_empty()


# -- det-world soundness oracle ---------------------------------------------

ORACLE_SETTINGS = settings(max_examples=40, deadline=None)


@ORACLE_SETTINGS
@given(relation=au_relations(attributes=("a", "b"), max_tuples=4), predicate=numeric_predicates())
def test_select_bounds_selected_guess_world(relation, predicate):
    result = select(relation, predicate, backend="columnar")
    expected = det_ops.select(sg_world(relation), predicate)
    assert bounds_world(result, expected)


@ORACLE_SETTINGS
@given(
    relation=au_relations(attributes=("a", "b"), max_tuples=4),
    attributes=st.sampled_from([("a",), ("b",), ("b", "a")]),
)
def test_project_bounds_selected_guess_world(relation, attributes):
    result = project(relation, list(attributes), backend="columnar")
    expected = det_ops.project(sg_world(relation), list(attributes))
    assert bounds_world(result, expected)


@ORACLE_SETTINGS
@given(
    left=au_relations(attributes=("k", "a"), max_tuples=3),
    right=au_relations(attributes=("k", "b"), max_tuples=3),
)
def test_join_bounds_selected_guess_world(left, right):
    result = join(left, right, on=["k"], backend="columnar")
    expected = det_ops.join(sg_world(left), sg_world(right), on=["k"])
    assert bounds_world(result, expected)


@ORACLE_SETTINGS
@given(
    left=au_relations(attributes=("a", "b"), max_tuples=3),
    right=au_relations(attributes=("a", "b"), max_tuples=3),
)
def test_union_bounds_selected_guess_world(left, right):
    result = union(left, right, backend="columnar")
    expected = det_ops.union(sg_world(left), sg_world(right))
    assert bounds_world(result, expected)


@ORACLE_SETTINGS
@given(relation=au_relations(attributes=("a", "b"), max_tuples=4, max_count=3))
def test_distinct_bounds_selected_guess_world(relation):
    result = distinct(relation, backend="columnar")
    world = sg_world(relation)
    expected = Relation(world.schema)
    for row, _mult in world:
        expected.add(row, 1)
    assert bounds_world(result, expected)


def test_distinct_overlapping_tuples_drop_certainty():
    """Regression: two tuples that may collapse to one value cannot both stay certain.

    The flow oracle found this on the naive min(1, ·) capping — the world
    ``{(0, 0): 1}`` (the deduplicated selected-guess world) has one tuple, but
    both outputs claimed a certain copy.
    """
    relation = AURelation.from_rows(
        ["a", "b"], [((0, 0), (1, 1, 1)), ((0, RangeValue(0, 0, 1)), (1, 1, 1))]
    )
    for backend in ("python", "columnar"):
        result = distinct(relation, backend=backend)
        mults = list(result._rows.values())
        assert [m.lb for m in mults] == [0, 0]
        assert [m.sg for m in mults] == [1, 0]  # SG world deduplicates to one copy
        expected = Relation(result.schema)
        expected.add((0, 0), 1)
        assert bounds_world(result, expected)


@ORACLE_SETTINGS
@given(relation=au_relations(attributes=("g", "v"), max_tuples=4, max_count=2))
def test_groupby_bounds_selected_guess_world(relation):
    result = groupby_aggregate(
        relation, ["g"], [("count", "*", "n"), ("sum", "v", "s")], backend="columnar"
    )
    expected = det_ops.groupby_aggregate(
        sg_world(relation), ["g"], [("count", "*", "n"), ("sum", "v", "s")]
    )
    assert bounds_world(result, expected)
