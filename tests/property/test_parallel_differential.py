"""Differential properties: sharded (``workers > 1``) vs unsharded execution.

The partitioned parallel executor (:mod:`repro.columnar.parallel`) must be
*invisible* in every output: for each sharded stage class — sort / top-k,
window, equi- and theta-joins, grouped aggregation, and the ``.to_rows()``
plan boundary — running at ``workers > 1`` must be **bit-identical** to the
serial ``workers=1`` path on arbitrary AU-relations, *including the
first-occurrence row order* (downstream ``<ᵗᵒᵗᵃˡ_O`` tiebreakers read it).
The properties below pin that contract, plus the edge cases a sharded
executor typically fumbles:

* **empty inputs** — ``n = 0`` relations and relations whose rows are all
  filtered away before the sharded stage (zero shards, empty concatenation);
* **uncertain partition / group keys** — non-point ``PARTITION BY`` or
  ``GROUP BY`` ranges, where the per-group decomposition is unsound and the
  stage must fall back to the unsharded path (checked against the *Python*
  backend, so the fallback is pinned to the reference semantics, not merely
  to itself);
* **object-dtype join keys**, whose pair kernels route through the scalar
  equality fallbacks inside each shard.

Shard boundaries are exercised at ``workers=2`` (morsels smaller than the
relation) and spot-checked at ``workers=4`` (more morsels than rows, so
every shard is a single row).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("numpy", reason="the columnar backend requires NumPy")

from repro.columnar import operators as col_ops
from repro.columnar.plan import ColumnarPlan
from repro.columnar.relation import ColumnarAURelation
from repro.core.expressions import attr, const
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.core.schema import Schema
from repro.window.spec import WindowSpec

from tests.property.strategies import au_relations, object_au_relations, window_frames

#: Forking a worker pool per example is orders of magnitude slower than the
#: kernels under test; fewer examples than the single-process suites, no
#: deadline (fork latency is environment noise).
SETTINGS = settings(max_examples=25, deadline=None)

ALL_AGGREGATES = [
    ("count", "*", "n"),
    ("sum", "v", "s"),
    ("min", "v", "lo"),
    ("max", "v", "hi"),
    ("avg", "v", "m"),
]


def assert_bit_identical(serial: AURelation, sharded: AURelation) -> None:
    """Same schema, same hypercubes and triples, same insertion order."""
    assert serial.schema == sharded.schema
    assert list(serial._rows.items()) == list(sharded._rows.items())


def _window_spec(frame, partition_by=(), *, descending=False) -> WindowSpec:
    return WindowSpec(
        function="sum",
        attribute="v",
        output="w",
        order_by=("o",),
        partition_by=partition_by,
        frame=frame,
        descending=descending,
    )


# -- stage classes: sharded == unsharded ------------------------------------


@SETTINGS
@given(relation=au_relations(max_tuples=8), descending=st.booleans())
def test_sort_sharded_matches_serial(relation, descending):
    serial = ColumnarPlan(relation, workers=1).sort(["a"], descending=descending).to_rows()
    sharded = ColumnarPlan(relation, workers=2).sort(["a"], descending=descending).to_rows()
    assert_bit_identical(serial, sharded)


@SETTINGS
@given(
    relation=au_relations(max_tuples=8),
    k=st.integers(min_value=0, max_value=4),
    descending=st.booleans(),
)
def test_topk_sharded_matches_serial(relation, k, descending):
    serial = ColumnarPlan(relation, workers=1).topk(["a"], k, descending=descending).to_rows()
    sharded = ColumnarPlan(relation, workers=2).topk(["a"], k, descending=descending).to_rows()
    assert_bit_identical(serial, sharded)


@SETTINGS
@given(
    relation=au_relations(attributes=("o", "v"), max_tuples=8),
    frame=window_frames(),
    function=st.sampled_from(["sum", "count", "min", "max"]),
)
def test_window_sharded_matches_serial(relation, frame, function):
    spec = WindowSpec(
        function=function,
        attribute=None if function == "count" else "v",
        output="w",
        order_by=("o",),
        frame=frame,
    )
    serial = ColumnarPlan(relation, workers=1).window(spec).to_rows()
    sharded = ColumnarPlan(relation, workers=2).window(spec).to_rows()
    assert_bit_identical(serial, sharded)


@SETTINGS
@given(relation=au_relations(attributes=("g", "o", "v"), max_tuples=8))
def test_partitioned_window_sharded_matches_serial(relation):
    """Certain PARTITION BY groups are the window stage's shard boundary."""
    spec = _window_spec((-2, 0), partition_by=("g",))
    serial = ColumnarPlan(relation, workers=1).window(spec).to_rows()
    sharded = ColumnarPlan(relation, workers=2).window(spec).to_rows()
    assert_bit_identical(serial, sharded)


@SETTINGS
@given(
    left=au_relations(attributes=("a", "v"), max_tuples=6),
    right=au_relations(attributes=("a", "w"), max_tuples=6),
)
def test_join_auto_sharded_matches_serial(left, right):
    serial = ColumnarPlan(left, workers=1).join(ColumnarPlan(right), on=["a"]).to_rows()
    sharded = ColumnarPlan(left, workers=2).join(ColumnarPlan(right), on=["a"]).to_rows()
    assert_bit_identical(serial, sharded)


@SETTINGS
@given(
    left=au_relations(attributes=("a", "v"), max_tuples=6),
    right=au_relations(attributes=("a", "w"), max_tuples=6),
)
def test_join_grid_sharded_matches_serial(left, right):
    """The pair-grid kernel shards over left-row blocks."""
    columnar_left = ColumnarAURelation.from_relation(left)
    columnar_right = ColumnarAURelation.from_relation(right)
    serial = col_ops.join(columnar_left, columnar_right, on=["a"], method="grid")
    sharded = col_ops.join(
        columnar_left, columnar_right, on=["a"], method="grid", workers=2
    )
    assert_bit_identical(serial.to_relation(), sharded.to_relation())


@SETTINGS
@given(
    left=au_relations(attributes=("a", "v"), max_tuples=5),
    right=au_relations(attributes=("b", "w"), max_tuples=5),
)
def test_join_predicate_sharded_matches_serial(left, right):
    predicate = attr("a").le(attr("b"))
    serial = ColumnarPlan(left, workers=1).join(ColumnarPlan(right), predicate).to_rows()
    sharded = ColumnarPlan(left, workers=2).join(ColumnarPlan(right), predicate).to_rows()
    assert_bit_identical(serial, sharded)


@SETTINGS
@given(
    left=object_au_relations(attributes=("k", "a"), pool=["p", "q", "r", "s"]),
    right=object_au_relations(attributes=("v", "a"), pool=["p", "q", "r", "s"]),
)
def test_join_object_keys_sharded_matches_serial(left, right):
    """Object-dtype keys take the scalar equality fallback inside each shard."""
    serial = ColumnarPlan(left, workers=1).join(ColumnarPlan(right), on=["a"]).to_rows()
    sharded = ColumnarPlan(left, workers=2).join(ColumnarPlan(right), on=["a"]).to_rows()
    assert_bit_identical(serial, sharded)


@SETTINGS
@given(relation=au_relations(attributes=("g", "v"), max_tuples=8))
def test_groupby_sharded_matches_serial(relation):
    serial = (
        ColumnarPlan(relation, workers=1).groupby_aggregate(["g"], ALL_AGGREGATES).to_rows()
    )
    sharded = (
        ColumnarPlan(relation, workers=2).groupby_aggregate(["g"], ALL_AGGREGATES).to_rows()
    )
    assert_bit_identical(serial, sharded)


@SETTINGS
@given(relation=au_relations(max_tuples=10))
def test_to_rows_boundary_sharded_matches_serial(relation):
    serial = ColumnarPlan(relation, workers=1).to_rows()
    sharded = ColumnarPlan(relation, workers=2).to_rows()
    assert_bit_identical(serial, sharded)


@SETTINGS
@given(relation=au_relations(attributes=("o", "v"), max_tuples=8))
def test_chained_plan_sharded_matches_serial_workers4(relation):
    """A whole chained plan at workers=4: more morsels than rows."""
    spec = _window_spec((-1, 0))

    def run(workers):
        return (
            ColumnarPlan(relation, workers=workers)
            .select(attr("v").ge(const(-3)))
            .window(spec)
            .sort(["w"])
            .to_rows()
        )

    assert_bit_identical(run(1), run(4))


# -- edge cases: empty inputs and all-rows-filtered inputs ------------------


def _empty_relation(attributes=("o", "v")) -> AURelation:
    return AURelation(Schema(attributes))


@pytest.mark.parametrize("workers", [2, 4])
def test_empty_inputs_agree_across_all_stages(workers):
    """n = 0 through every sharded stage class: zero shards, empty output."""
    empty = _empty_relation()
    spec = _window_spec((-1, 0))
    for build in (
        lambda w: ColumnarPlan(empty, workers=w).sort(["o"]).to_rows(),
        lambda w: ColumnarPlan(empty, workers=w).topk(["o"], 2).to_rows(),
        lambda w: ColumnarPlan(empty, workers=w).window(spec).to_rows(),
        lambda w: ColumnarPlan(empty, workers=w)
        .join(ColumnarPlan(_empty_relation(("o", "w"))), on=["o"])
        .to_rows(),
        lambda w: ColumnarPlan(empty, workers=w)
        .groupby_aggregate(["o"], ALL_AGGREGATES)
        .to_rows(),
        lambda w: ColumnarPlan(empty, workers=w).to_rows(),
    ):
        assert_bit_identical(build(1), build(workers))
        assert len(build(workers)) == 0


@SETTINGS
@given(relation=au_relations(attributes=("o", "v"), max_tuples=6))
def test_all_rows_filtered_inputs_agree(relation):
    """A certainly-false selection empties the input mid-plan; the sharded
    stages downstream must handle the zero-row intermediate identically."""
    spec = _window_spec((-1, 0))

    def run(workers):
        return (
            ColumnarPlan(relation, workers=workers)
            .select(attr("v").ge(const(100)))  # values are drawn from [-6, 6]
            .window(spec)
            .sort(["w"])
            .groupby_aggregate(["o"], [("count", "*", "n")])
            .to_rows()
        )

    serial = run(1)
    assert len(serial) == 0
    assert_bit_identical(serial, run(2))


# -- uncertain keys: sharding must fall back, pinned to the Python backend --


def _uncertain_group_relation() -> AURelation:
    """A relation whose grouping attribute ``g`` has a non-point range."""
    return AURelation.from_rows(
        ["g", "o", "v"],
        [
            ((RangeValue(0, 1, 2), 1, 10), (1, 1, 1)),  # uncertain group key
            ((1, 2, 20), (1, 1, 1)),
            ((1, 3, 30), (0, 1, 1)),
            ((2, 4, 40), (1, 1, 2)),
        ],
    )


def test_uncertain_partition_by_falls_back_and_matches_python_backend():
    """Non-point PARTITION BY ranges make per-group sharding unsound; the
    window stage must fall back to the unsharded path, and the result must be
    bit-identical to the *Python* backend — not just serial-columnar."""
    from repro.window.native import window_native

    relation = _uncertain_group_relation()
    spec = _window_spec((-1, 0), partition_by=("g",))
    python = window_native(relation, spec)
    for workers in (2, 4):
        sharded = ColumnarPlan(relation, workers=workers).window(spec).to_rows()
        assert_bit_identical(python, sharded)


def test_uncertain_group_by_falls_back_and_matches_python_backend():
    from repro.core.operators import groupby_aggregate as row_groupby

    relation = _uncertain_group_relation()
    python = row_groupby(relation, ["g"], ALL_AGGREGATES, backend="python")
    for workers in (2, 4):
        sharded = (
            ColumnarPlan(relation, workers=workers)
            .groupby_aggregate(["g"], ALL_AGGREGATES)
            .to_rows()
        )
        assert_bit_identical(python, sharded)


# -- the env knob reaches the same code paths -------------------------------


def test_workers_env_knob_matches_explicit_workers(monkeypatch):
    relation = AURelation.from_rows(
        ["o", "v"], [((i, (i * 7) % 5), (1, 1, 1)) for i in range(12)]
    )
    spec = _window_spec((-2, 0))
    explicit = ColumnarPlan(relation, workers=2).window(spec).to_rows()
    monkeypatch.setenv("REPRO_WORKERS", "2")
    from_env = ColumnarPlan(relation).window(spec).to_rows()
    assert ColumnarPlan(relation).workers == 2
    assert_bit_identical(explicit, from_env)
