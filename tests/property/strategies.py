"""Shared hypothesis strategies for property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.ranges import RangeValue
from repro.incomplete.xtuples import UncertainRelation

__all__ = ["range_values", "uncertain_relations", "small_ints"]

small_ints = st.integers(min_value=-6, max_value=6)


@st.composite
def range_values(draw, *, min_value: int = -6, max_value: int = 6) -> RangeValue:
    """A well-formed range-annotated integer value."""
    bounds = sorted(
        draw(
            st.lists(
                st.integers(min_value=min_value, max_value=max_value), min_size=3, max_size=3
            )
        )
    )
    return RangeValue(bounds[0], bounds[1], bounds[2])


@st.composite
def uncertain_relations(
    draw,
    *,
    attributes: tuple[str, ...] = ("a", "b"),
    max_tuples: int = 4,
    max_alternatives: int = 3,
    value_range: tuple[int, int] = (0, 6),
    allow_absence: bool = True,
) -> UncertainRelation:
    """A small block-independent-disjoint incomplete relation.

    Every x-tuple carries a unique ``rid`` as its first attribute so that
    per-tuple results can be tracked; alternative rows vary the remaining
    attributes.
    """
    relation = UncertainRelation(("rid",) + attributes)
    count = draw(st.integers(min_value=1, max_value=max_tuples))
    low, high = value_range
    for rid in range(count):
        n_alternatives = draw(st.integers(min_value=1, max_value=max_alternatives))
        alternatives = []
        for _ in range(n_alternatives):
            row = (rid,) + tuple(
                draw(st.integers(min_value=low, max_value=high)) for _ in attributes
            )
            alternatives.append(row)
        maybe_absent = allow_absence and draw(st.booleans())
        share = (0.5 if maybe_absent else 1.0) / n_alternatives
        probabilities = [share] * n_alternatives
        relation.add_alternatives(alternatives, probabilities, sg_index=0)
    return relation
