"""Shared hypothesis strategies for property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.multiplicity import Multiplicity
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.core.schema import Schema
from repro.incomplete.xtuples import UncertainRelation

__all__ = [
    "range_values",
    "uncertain_relations",
    "small_ints",
    "multiplicities",
    "au_relations",
    "lifted_au_relations",
    "object_au_relations",
    "window_frames",
]

small_ints = st.integers(min_value=-6, max_value=6)


@st.composite
def range_values(draw, *, min_value: int = -6, max_value: int = 6) -> RangeValue:
    """A well-formed range-annotated integer value."""
    bounds = sorted(
        draw(
            st.lists(
                st.integers(min_value=min_value, max_value=max_value), min_size=3, max_size=3
            )
        )
    )
    return RangeValue(bounds[0], bounds[1], bounds[2])


@st.composite
def uncertain_relations(
    draw,
    *,
    attributes: tuple[str, ...] = ("a", "b"),
    max_tuples: int = 4,
    max_alternatives: int = 3,
    value_range: tuple[int, int] = (0, 6),
    allow_absence: bool = True,
) -> UncertainRelation:
    """A small block-independent-disjoint incomplete relation.

    Every x-tuple carries a unique ``rid`` as its first attribute so that
    per-tuple results can be tracked; alternative rows vary the remaining
    attributes.
    """
    relation = UncertainRelation(("rid",) + attributes)
    count = draw(st.integers(min_value=1, max_value=max_tuples))
    low, high = value_range
    for rid in range(count):
        n_alternatives = draw(st.integers(min_value=1, max_value=max_alternatives))
        alternatives = []
        for _ in range(n_alternatives):
            row = (rid,) + tuple(
                draw(st.integers(min_value=low, max_value=high)) for _ in attributes
            )
            alternatives.append(row)
        maybe_absent = allow_absence and draw(st.booleans())
        share = (0.5 if maybe_absent else 1.0) / n_alternatives
        probabilities = [share] * n_alternatives
        relation.add_alternatives(alternatives, probabilities, sg_index=0)
    return relation


@st.composite
def window_frames(draw, *, max_extent: int = 3) -> tuple[int, int]:
    """A row-based window frame as signed offsets ``(lower, upper)``.

    Weighted toward the paper's frame classes — ``N PRECEDING AND CURRENT
    ROW`` (the native sweep) and ``CURRENT ROW AND N FOLLOWING`` (the
    mirrored-order reduction) — but also produces two-sided frames and frames
    excluding the current row, which exercise the rewrite fallback.
    """
    kind = draw(
        st.sampled_from(["preceding", "preceding", "following", "following", "other"])
    )
    if kind == "preceding":
        return (-draw(st.integers(min_value=0, max_value=max_extent)), 0)
    if kind == "following":
        return (0, draw(st.integers(min_value=0, max_value=max_extent)))
    bounds = sorted(
        draw(
            st.lists(
                st.integers(min_value=-max_extent, max_value=max_extent),
                min_size=2,
                max_size=2,
            )
        )
    )
    return (bounds[0], bounds[1])


@st.composite
def multiplicities(draw, *, max_count: int = 2) -> Multiplicity:
    """A well-formed ``N³`` multiplicity triple (possibly zero)."""
    bounds = sorted(
        draw(st.lists(st.integers(min_value=0, max_value=max_count), min_size=3, max_size=3))
    )
    return Multiplicity(bounds[0], bounds[1], bounds[2])


@st.composite
def au_relations(
    draw,
    *,
    attributes: tuple[str, ...] = ("a", "b"),
    max_tuples: int = 6,
    min_value: int = -6,
    max_value: int = 6,
    max_count: int = 2,
) -> AURelation:
    """A small random AU-relation with integer range values.

    Tuples with equal hypercubes merge on insertion (the ``K``-relation
    view), exactly as operator inputs do; multiplicity triples may exceed one
    in every component.
    """
    relation = AURelation(Schema(attributes))
    count = draw(st.integers(min_value=0, max_value=max_tuples))
    for _ in range(count):
        values = [
            draw(range_values(min_value=min_value, max_value=max_value)) for _ in attributes
        ]
        relation.add_values(values, draw(multiplicities(max_count=max_count)))
    return relation


#: Scalar pools for object-dtype columns; each pool is internally comparable
#: under the domain order (``None`` before everything, ``bool`` as ``int``).
_OBJECT_POOLS = (
    ["p", "q", "r", "s"],
    [None, 0, 1, 2],
    [False, True, 1, 2],
)


@st.composite
def object_au_relations(
    draw,
    *,
    attributes: tuple[str, ...] = ("a", "b"),
    max_tuples: int = 5,
    max_count: int = 2,
    pool: list | None = None,
) -> AURelation:
    """AU-relations whose last attribute is stored as an ``object`` column.

    The first attributes carry integer ranges; the last draws from one pool
    per relation — strings, ``None``/int mixes, or bool/int mixes — so the
    columnar backend exercises its object-dtype fallbacks (scalar expression
    evaluation, dict-coded equality grouping) against the Python backend.
    Pass an explicit ``pool`` when two relations must stay mutually
    comparable (e.g. join keys).
    """
    from repro.relational.sort import sort_key_value

    if pool is None:
        pool = draw(st.sampled_from(_OBJECT_POOLS))
    relation = AURelation(Schema(attributes))
    count = draw(st.integers(min_value=0, max_value=max_tuples))
    for _ in range(count):
        values = [draw(range_values()) for _ in attributes[:-1]]
        bounds = sorted(
            draw(st.lists(st.sampled_from(pool), min_size=3, max_size=3)),
            key=sort_key_value,
        )
        values.append(RangeValue(bounds[0], bounds[1], bounds[2]))
        relation.add_values(values, draw(multiplicities(max_count=max_count)))
    return relation


@st.composite
def lifted_au_relations(
    draw,
    *,
    attributes: tuple[str, ...] = ("a", "b"),
    max_tuples: int = 6,
    min_value: int = -6,
    max_value: int = 6,
) -> AURelation:
    """A random AU-relation from the lifted x-tuple class of the paper.

    :func:`repro.incomplete.lift.lift_xtuples` always produces multiplicity
    triples with ``ub == 1`` (each x-tuple occurs at most once); this is the
    workload class the paper's window operators are evaluated on.  For true
    bag inputs (``ub > 1``, per-duplicate aggregate values) use
    :func:`au_relations`.
    """
    relation = AURelation(Schema(attributes))
    count = draw(st.integers(min_value=0, max_value=max_tuples))
    seen: set[tuple[RangeValue, ...]] = set()
    for _ in range(count):
        values = tuple(
            draw(range_values(min_value=min_value, max_value=max_value)) for _ in attributes
        )
        if values in seen:  # equal hypercubes would merge and exceed ub == 1
            continue
        seen.add(values)
        lb = draw(st.integers(min_value=0, max_value=1))
        sg = draw(st.integers(min_value=lb, max_value=1))
        relation.add_values(values, Multiplicity(lb, sg, 1))
    return relation
