"""Differential properties: native windowed aggregation vs the definitional rewrite.

The native sweep (:func:`repro.window.native.window_native`) must agree with
the definitional rewrite bit for bit on the paper's workload class — AU-DBs
lifted from x-tuple relations, whose multiplicity triples always have
``ub == 1`` (:func:`repro.incomplete.lift.lift_xtuples`) — across every
dispatch path:

* the real one-pass sweep (``N PRECEDING AND CURRENT ROW`` frames, no
  partition-by),
* the per-partition sweep (certain partition-by attributes),
* the fallback paths (two-sided frames, uncertain partition-by attributes),
  which route to the rewrite and must do so transparently.

Known divergence, pinned below: the mirrored-order reduction for
``CURRENT ROW AND N FOLLOWING`` frames compares order-by *keys* directly,
while the rewrite classifies window membership through sort-position
intervals; the two produce different (each individually sound) bounds.  See
the ROADMAP open item before relying on following-only frames.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multiplicity import Multiplicity
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.window.native import window_native
from repro.window.semantics import window_rewrite
from repro.window.spec import WindowSpec

from tests.property.strategies import lifted_au_relations

FUNCTIONS = ["sum", "count", "min", "max"]


def _spec(function: str, frame: tuple[int, int], partition_by: tuple[str, ...]) -> WindowSpec:
    return WindowSpec(
        function=function,
        attribute=None if function == "count" else "v",
        output="w",
        order_by=("o",),
        partition_by=partition_by,
        frame=frame,
    )


def assert_same_relation(left: AURelation, right: AURelation) -> None:
    assert left.schema == right.schema
    assert left._rows == right._rows


@settings(max_examples=100, deadline=None)
@given(
    relation=lifted_au_relations(attributes=("o", "v")),
    function=st.sampled_from(FUNCTIONS),
    preceding=st.integers(min_value=0, max_value=3),
)
def test_sweep_matches_rewrite_preceding_frames(relation, function, preceding):
    spec = _spec(function, (-preceding, 0), ())
    assert_same_relation(window_native(relation, spec), window_rewrite(relation, spec))


@settings(max_examples=80, deadline=None)
@given(
    relation=lifted_au_relations(attributes=("o", "v", "g"), min_value=0, max_value=4),
    function=st.sampled_from(FUNCTIONS),
)
def test_partitioned_sweep_matches_rewrite(relation, function):
    """Partition-by attributes: certain values sweep per partition, uncertain fall back."""
    spec = _spec(function, (-2, 0), ("g",))
    assert_same_relation(window_native(relation, spec), window_rewrite(relation, spec))


@settings(max_examples=80, deadline=None)
@given(
    relation=lifted_au_relations(attributes=("o", "v")),
    function=st.sampled_from(FUNCTIONS),
)
def test_two_sided_frame_falls_back_to_rewrite(relation, function):
    spec = _spec(function, (-1, 1), ())
    assert_same_relation(window_native(relation, spec), window_rewrite(relation, spec))


def test_certain_partitions_take_the_sweep_path():
    """Sanity: fully certain partition keys do *not* fall back to the rewrite."""
    relation = AURelation.from_rows(
        ["o", "v", "g"],
        [
            ((RangeValue(0, 1, 2), 4, 0), (1, 1, 1)),
            ((RangeValue(1, 1, 3), 5, 0), (0, 1, 1)),
            ((2, 6, 1), (1, 1, 1)),
        ],
    )
    spec = _spec("sum", (-1, 0), ("g",))
    assert_same_relation(window_native(relation, spec), window_rewrite(relation, spec))


def test_following_frame_mirror_reduction_divergence_is_pinned():
    """Known divergence of the ``CURRENT ROW AND N FOLLOWING`` mirror reduction.

    The mirrored sweep decides window membership from order-by keys, the
    rewrite from sort-position intervals; on this example the sweep's bounds
    are strictly tighter.  If this assertion ever fails the implementations
    have converged — delete this test, tighten the property suite to cover
    following-only frames, and close the ROADMAP open item.
    """
    relation = AURelation.from_rows(
        ["o", "v"],
        [
            ((RangeValue(45, 48, 51), RangeValue(-1, 1, 4)), (1, 1, 1)),
            ((RangeValue(26, 26, 28), RangeValue(-3, -3, 1)), (0, 1, 1)),
            ((RangeValue(0, 2, 5), RangeValue(3, 3, 4)), (1, 1, 1)),
            ((RangeValue(16, 16, 19), RangeValue(-1, 1, 1)), (0, 1, 1)),
        ],
    )
    spec = _spec("sum", (0, 2), ())
    native = window_native(relation, spec)
    rewrite = window_rewrite(relation, spec)
    assert native._rows != rewrite._rows

    # Both are sound for the selected-guess world: every selected-guess
    # aggregate reported by either implementation lies within the other's
    # bounds for the same input tuple.
    def sg_bounds(result):
        out = {}
        for tup, mult in result:
            if mult.sg == 0:
                continue
            out.setdefault(tup.project(["o", "v"]).values, []).append(tup.value("w"))
        return out

    native_bounds = sg_bounds(native)
    rewrite_bounds = sg_bounds(rewrite)
    assert native_bounds.keys() == rewrite_bounds.keys()
    for key, native_values in native_bounds.items():
        for nat_value, rew_value in zip(native_values, rewrite_bounds[key]):
            assert rew_value.lb <= nat_value.sg <= rew_value.ub
            assert nat_value.lb <= rew_value.sg <= nat_value.ub


@settings(max_examples=60, deadline=None)
@given(
    relation=lifted_au_relations(attributes=("o", "v")),
    function=st.sampled_from(FUNCTIONS),
)
def test_following_frame_bounds_contain_selected_guess_world(relation, function):
    """Soundness of the mirror reduction: bounds contain the SG-world result.

    Following-only frames are excluded from the bit-for-bit property (see the
    pinned divergence above), but the native bounds must still bound the
    deterministic aggregate of the selected-guess world.
    """
    from repro.baselines.det import det_window
    from repro.relational.relation import Relation

    spec = _spec(function, (0, 2), ())
    native = window_native(relation, spec)

    sg_world = Relation(["o", "v"])
    for tup, mult in relation:
        if mult.sg:
            sg_world.add(tup.sg_row(), mult.sg)
    expected = det_window(sg_world, spec)

    # Hull the native bounds per selected-guess row and compare against the
    # multiset of deterministic window values of that row.
    hulls: dict[tuple, tuple[float, float]] = {}
    for tup, mult in native:
        if mult.sg == 0:
            continue
        row = tup.project(["o", "v"]).sg_row()
        value = tup.value("w")
        low, high = hulls.get(row, (value.lb, value.ub))
        hulls[row] = (min(low, value.lb), max(high, value.ub))
    for row, det_mult in expected:
        base, w_value = row[:2], row[2]
        if base not in hulls:
            continue  # duplicate splitting may hull several duplicates together
        low, high = hulls[base]
        assert low <= w_value <= high
