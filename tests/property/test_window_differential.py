"""Differential properties: native / columnar windowed aggregation vs the rewrite.

The definitional rewrite (:func:`repro.window.semantics.window_rewrite`) is
the specification; the native sweep (:func:`repro.window.native.window_native`)
and the columnar kernels (:mod:`repro.columnar.window`) must agree with it
*bit for bit* — same hypercubes, same aggregate-bound triples, same
multiplicity annotations — on arbitrary AU-relations (including bag inputs
with multiplicity ``ub > 1``, which receive per-duplicate aggregate values)
across every dispatch path:

* the real one-pass sweep (``N PRECEDING AND CURRENT ROW`` frames, no
  partition-by),
* the mirrored-order reduction (``CURRENT ROW AND N FOLLOWING`` frames),
* the per-partition sweep (certain partition-by attributes),
* the fallback paths (two-sided frames, frames excluding the current row,
  uncertain partition-by attributes), which route to the rewrite and must do
  so transparently.

The two historical divergences — following-only frames (order-by-key vs
sort-position-interval membership) and ``ub > 1`` duplicate splitting
(shared hulls vs per-duplicate values) — are resolved; the properties below
pin the converged semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.window.native import window_native
from repro.window.semantics import window_rewrite
from repro.window.spec import WindowSpec

from tests.property.strategies import au_relations, lifted_au_relations, window_frames

FUNCTIONS = ["sum", "count", "min", "max"]


def _spec(
    function: str,
    frame: tuple[int, int],
    partition_by: tuple[str, ...] = (),
    *,
    descending: bool = False,
) -> WindowSpec:
    return WindowSpec(
        function=function,
        attribute=None if function == "count" else "v",
        output="w",
        order_by=("o",),
        partition_by=partition_by,
        frame=frame,
        descending=descending,
    )


def assert_same_relation(left: AURelation, right: AURelation) -> None:
    assert left.schema == right.schema
    assert left._rows == right._rows


@settings(max_examples=100, deadline=None)
@given(
    relation=au_relations(attributes=("o", "v")),
    function=st.sampled_from(FUNCTIONS),
    preceding=st.integers(min_value=0, max_value=3),
    descending=st.booleans(),
)
def test_sweep_matches_rewrite_preceding_frames(relation, function, preceding, descending):
    spec = _spec(function, (-preceding, 0), descending=descending)
    assert_same_relation(window_native(relation, spec), window_rewrite(relation, spec))


@settings(max_examples=100, deadline=None)
@given(
    relation=au_relations(attributes=("o", "v")),
    function=st.sampled_from(FUNCTIONS),
    following=st.integers(min_value=0, max_value=3),
)
def test_following_frames_match_bit_for_bit(relation, function, following):
    """``CURRENT ROW AND N FOLLOWING``: the mirrored-order reduction converges.

    Historically pinned as a divergence (the sweep decided membership from
    order-by keys in mirrored coordinates, the rewrite from forward
    sort-position intervals); both now classify members through the mirrored
    order's position intervals.
    """
    spec = _spec(function, (0, following))
    assert_same_relation(window_native(relation, spec), window_rewrite(relation, spec))


@settings(max_examples=120, deadline=None)
@given(
    relation=au_relations(attributes=("o", "v")),
    function=st.sampled_from(FUNCTIONS + ["avg"]),
    frame=window_frames(),
)
def test_native_matches_rewrite_arbitrary_frames(relation, function, frame):
    """Every dispatch path (sweep, mirror, fallback) agrees with the rewrite."""
    spec = _spec(function, frame)
    assert_same_relation(window_native(relation, spec), window_rewrite(relation, spec))


@settings(max_examples=100, deadline=None)
@given(
    relation=au_relations(attributes=("o", "v")),
    function=st.sampled_from(FUNCTIONS + ["avg"]),
    frame=window_frames(),
    descending=st.booleans(),
)
def test_window_backends_agree(relation, function, frame, descending):
    """Three-way property: native == rewrite == columnar, bit for bit."""
    pytest.importorskip("numpy", reason="the columnar backend requires NumPy")
    spec = _spec(function, frame, descending=descending)
    rewrite = window_rewrite(relation, spec)
    native = window_native(relation, spec)
    columnar = window_native(relation, spec, backend="columnar")
    assert_same_relation(native, rewrite)
    assert_same_relation(columnar, rewrite)


@st.composite
def float_valued_relations(draw) -> AURelation:
    """AU-relations whose aggregation column carries floats (order-sensitive sums)."""
    from repro.core.schema import Schema

    relation = AURelation(Schema(("o", "v")))
    floats = st.floats(min_value=-4, max_value=4, allow_nan=False, width=16)
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        o = sorted(draw(st.lists(st.integers(-4, 4), min_size=3, max_size=3)))
        v = sorted(draw(st.lists(floats, min_size=3, max_size=3)))
        lb = draw(st.integers(0, 1))
        sg = draw(st.integers(lb, 2))
        ub = draw(st.integers(max(1, sg), 2))
        relation.add_values([RangeValue(*o), RangeValue(*v)], (lb, sg, ub))
    return relation


@settings(max_examples=80, deadline=None)
@given(
    relation=float_valued_relations(),
    function=st.sampled_from(FUNCTIONS + ["avg"]),
    frame=window_frames(max_extent=2),
)
def test_float_columns_agree_bit_for_bit(relation, function, frame):
    """Float aggregation columns: sum bounds use exactly-rounded summation,
    so the member-collection order of the three implementations cannot leak
    into the results."""
    pytest.importorskip("numpy", reason="the columnar backend requires NumPy")
    spec = _spec(function, frame)
    rewrite = window_rewrite(relation, spec)
    assert_same_relation(window_native(relation, spec), rewrite)
    assert_same_relation(window_native(relation, spec, backend="columnar"), rewrite)


@settings(max_examples=80, deadline=None)
@given(
    relation=au_relations(attributes=("o", "v", "g"), min_value=0, max_value=4),
    function=st.sampled_from(FUNCTIONS),
    frame=window_frames(max_extent=2),
)
def test_partitioned_sweep_matches_rewrite(relation, function, frame):
    """Partition-by attributes: certain values sweep per partition, uncertain fall back."""
    spec = _spec(function, frame, ("g",))
    assert_same_relation(window_native(relation, spec), window_rewrite(relation, spec))


@settings(max_examples=60, deadline=None)
@given(
    relation=au_relations(attributes=("o", "v", "g"), min_value=0, max_value=4),
    function=st.sampled_from(FUNCTIONS),
)
def test_partitioned_backends_agree(relation, function):
    pytest.importorskip("numpy", reason="the columnar backend requires NumPy")
    spec = _spec(function, (-2, 0), ("g",))
    assert_same_relation(
        window_native(relation, spec, backend="columnar"), window_rewrite(relation, spec)
    )


@settings(max_examples=80, deadline=None)
@given(
    relation=au_relations(attributes=("o", "v")),
    function=st.sampled_from(FUNCTIONS),
)
def test_two_sided_frame_falls_back_to_rewrite(relation, function):
    spec = _spec(function, (-1, 1))
    assert_same_relation(window_native(relation, spec), window_rewrite(relation, spec))


def test_empty_input_agrees_across_implementations():
    """n = 0 edge case: every implementation emits the widened empty schema."""
    from repro.core.schema import Schema

    empty = AURelation(Schema(("o", "v")))
    for frame in ((-1, 0), (0, 1), (-1, 1)):
        spec = _spec("sum", frame)
        rewrite = window_rewrite(empty, spec)
        assert len(rewrite) == 0
        assert_same_relation(rewrite, window_native(empty, spec))
        pytest.importorskip("numpy", reason="the columnar backend requires NumPy")
        assert_same_relation(rewrite, window_native(empty, spec, backend="columnar"))


def test_certain_partitions_take_the_sweep_path():
    """Sanity: fully certain partition keys do *not* fall back to the rewrite."""
    relation = AURelation.from_rows(
        ["o", "v", "g"],
        [
            ((RangeValue(0, 1, 2), 4, 0), (1, 1, 1)),
            ((RangeValue(1, 1, 3), 5, 0), (0, 1, 1)),
            ((2, 6, 1), (1, 1, 1)),
        ],
    )
    spec = _spec("sum", (-1, 0), ("g",))
    assert_same_relation(window_native(relation, spec), window_rewrite(relation, spec))


def test_bag_duplicates_get_per_duplicate_aggregates():
    """Pinned bag semantics for ``ub > 1``: each duplicate aggregates separately.

    The i-th duplicate of a tuple occupies the tuple's position bounds
    shifted by ``i`` (Fig. 4 / Algorithm 2), so later duplicates certainly
    have predecessors and their windows tighten accordingly — the rewrite no
    longer reports one shared hull per tuple.
    """
    relation = AURelation.from_rows(["o", "v"], [((1, 5), (2, 2, 2)), ((2, 3), (1, 1, 1))])
    spec = _spec("sum", (-1, 0))
    for result in (window_rewrite(relation, spec), window_native(relation, spec)):
        values = sorted(
            (tup.value("w") for tup, _m in result if tup.value("o").sg == 1),
            key=lambda value: value.sg,
        )
        # First duplicate's window holds only itself; the second certainly
        # also contains the first.
        assert values == [RangeValue(5, 5, 5), RangeValue(10, 10, 10)]


def _assert_bounds_contain_sg_world(relation, spec, result) -> None:
    """Independent oracle: the bounds must contain the SG world's aggregates.

    Hulls the reported bounds per selected-guess row and checks that every
    deterministic window value of that row lies inside — a soundness check
    that does not depend on any of the three uncertain implementations.
    """
    from repro.baselines.det import det_window
    from repro.relational.relation import Relation
    from repro.relational.sort import sort_key_value  # domain order: None first

    sg_world = Relation(["o", "v"])
    for tup, mult in relation:
        if mult.sg:
            sg_world.add(tup.sg_row(), mult.sg)
    expected = det_window(sg_world, spec)

    hulls: dict[tuple, tuple[float, float]] = {}
    for tup, mult in result:
        if mult.sg == 0:
            continue
        row = tup.project(["o", "v"]).sg_row()
        value = tup.value("w")
        low, high = hulls.get(row, (value.lb, value.ub))
        hulls[row] = (
            min(low, value.lb, key=sort_key_value),
            max(high, value.ub, key=sort_key_value),
        )
    for row, _det_mult in expected:
        base, w_value = row[:2], row[2]
        if base not in hulls:
            continue  # duplicate splitting may hull several duplicates together
        if w_value is None:
            # Frames excluding the current row can be empty in the SG world;
            # min/max/avg are then SQL-NULL, which the RangeValue encoding
            # cannot express alongside numeric bounds (see the ROADMAP open
            # item).  The paper's frame class always includes the current
            # row, so its windows are never empty.
            continue
        low, high = hulls[base]
        assert sort_key_value(low) <= sort_key_value(w_value) <= sort_key_value(high)


@settings(max_examples=60, deadline=None)
@given(
    relation=lifted_au_relations(attributes=("o", "v")),
    function=st.sampled_from(FUNCTIONS),
)
def test_following_frame_bounds_contain_selected_guess_world(relation, function):
    """Soundness of the mirror reduction: bounds contain the SG-world result."""
    spec = _spec(function, (0, 2))
    _assert_bounds_contain_sg_world(relation, spec, window_native(relation, spec))


@settings(max_examples=80, deadline=None)
@given(
    relation=au_relations(attributes=("o", "v")),
    function=st.sampled_from(FUNCTIONS),
    frame=window_frames(),
)
def test_rewrite_bounds_contain_selected_guess_world(relation, function, frame):
    """Soundness of the rewrite on every frame class, against the det oracle.

    On two-sided and current-row-excluding frames the native operator (and
    the columnar backend) delegate to the rewrite, so the bit-for-bit
    properties compare it with itself there; this check pins the rewrite's
    per-duplicate membership logic against an independent deterministic
    oracle instead.
    """
    spec = _spec(function, frame)
    _assert_bounds_contain_sg_world(relation, spec, window_rewrite(relation, spec))


@settings(max_examples=80, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.tuples(
                st.integers(min_value=-5, max_value=5),
                st.integers(min_value=0, max_value=2),
                st.one_of(st.none(), st.integers(min_value=-3, max_value=3)),
            ),
            st.integers(min_value=1, max_value=3),
        ),
        max_size=10,
    ),
    function=st.sampled_from(FUNCTIONS + ["avg"]),
    frame=window_frames(),
    descending=st.booleans(),
    partition_by=st.sampled_from([(), ("g",)]),
)
def test_deterministic_window_backends_agree(rows, function, frame, descending, partition_by):
    """The deterministic window operator's columnar backend matches the Python one."""
    pytest.importorskip("numpy", reason="the columnar backend requires NumPy")
    from repro.relational.relation import Relation
    from repro.relational.window import window_aggregate

    relation = Relation(["a", "g", "b"], rows)
    kwargs = dict(
        function=function,
        attribute=None if function == "count" else "a",
        output="w",
        order_by=["a", "b"],
        partition_by=partition_by,
        frame=frame,
        descending=descending,
    )
    python = window_aggregate(relation, **kwargs)
    columnar = window_aggregate(relation, backend="columnar", **kwargs)
    assert python.schema == columnar.schema
    assert python._rows == columnar._rows


# ---------------------------------------------------------------------------
# Chained multi-window plans: the columnar-native window stages must feed the
# next stage exactly what the Python backend's row-major path would.
# ---------------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(
    relation=au_relations(attributes=("o", "v")),
    first=st.sampled_from(FUNCTIONS + ["avg"]),
    second=st.sampled_from(FUNCTIONS + ["avg"]),
    frame1=window_frames(max_extent=2),
    frame2=window_frames(max_extent=2),
    cut=st.integers(min_value=-6, max_value=6),
    descending=st.booleans(),
)
def test_multiwindow_chained_plan_matches_python_per_stage(
    relation, first, second, frame1, frame2, cut, descending
):
    """``window -> select-on-aggregate -> window`` as one columnar chain.

    The Python path materialises a row-major relation after every stage; the
    chained plan stays columnar throughout (its window stages emit columnar
    output in the native sweep's emission order, so downstream ``<total_O``
    sequence-number tiebreakers agree).  Covers ub > 1 bag inputs, every
    frame class of ``window_frames`` (preceding, following-only via the
    mirrored reduction, two-sided / current-row-excluding fallbacks), and
    float aggregate columns from a first-stage ``avg``.
    """
    pytest.importorskip("numpy", reason="the columnar backend requires NumPy")
    from repro.columnar.plan import ColumnarPlan
    from repro.core.expressions import attr, const
    from repro.core.operators import select as row_select

    spec1 = WindowSpec(
        function=first,
        attribute=None if first == "count" else "v",
        output="w1",
        order_by=("o",),
        frame=frame1,
        descending=descending,
    )
    spec2 = WindowSpec(
        function=second,
        attribute=None if second == "count" else "w1",
        output="w2",
        order_by=("o",),
        frame=frame2,
    )
    predicate = attr("w1").ge(const(cut))

    mid = row_select(window_native(relation, spec1), predicate)
    expected = window_native(mid, spec2)
    chained = (
        ColumnarPlan(relation).window(spec1).select(predicate).window(spec2).to_rows()
    )
    assert_same_relation(expected, chained)


@settings(max_examples=60, deadline=None)
@given(
    relation=au_relations(attributes=("o", "v")),
    function=st.sampled_from(FUNCTIONS),
    k=st.integers(min_value=0, max_value=4),
    following=st.integers(min_value=0, max_value=2),
    descending=st.booleans(),
)
def test_sort_then_window_chained_plan_matches_python_per_stage(
    relation, function, k, following, descending
):
    """``topk -> window-over-the-position`` as one columnar chain.

    The sort stage's columnar output (position column appended columnar-side,
    per-duplicate split expanded in bulk) must be a drop-in input for a
    following-only window over the position attribute.
    """
    pytest.importorskip("numpy", reason="the columnar backend requires NumPy")
    from repro.columnar.plan import ColumnarPlan
    from repro.core.expressions import attr
    from repro.core.operators import select as row_select
    from repro.ranking.native import sort_native

    spec = WindowSpec(
        function=function,
        attribute=None if function == "count" else "v",
        output="w",
        order_by=("pos",),
        frame=(0, following),
    )
    ranked = sort_native(relation, ["o"], k=k, descending=descending)
    expected = window_native(row_select(ranked, attr("pos").lt(k)), spec)
    chained = (
        ColumnarPlan(relation).topk(["o"], k, descending=descending).window(spec).to_rows()
    )
    assert_same_relation(expected, chained)
