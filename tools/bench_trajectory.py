"""Append multiwindow / equijoin / factjoin timings to the perf trajectory file.

Each run appends one JSON record to ``BENCH_pipeline.json`` (a JSON array at
the repository root) timing the large-N harness workloads —
the multi-window plan (``select -> join -> window -> select -> window``) and
the searchsorted equi-join at each requested worker count, plus the
factorised ``select -> join -> select -> window`` chain (``factjoin``).  The
factjoin block compares the fully expanded grid plan against the factorised
representation head-to-head: each path runs in a forked child process so
``resource.getrusage(RUSAGE_SELF).ru_maxrss`` isolates its peak RSS, and the
record carries the estimated expanded pair-row count (``|L'| * |R|``)
alongside the pair rows the factorised path actually materialised
(:func:`repro.columnar.factorised.pair_rows_materialised`).  Above the grid
ceiling only the factorised path runs — that asymmetry *is* the datapoint.

Records carry the host's core count: speedup numbers are only meaningful
when ``cpus >= workers`` (an oversubscribed pool measures scheduling
overhead, not scaling), so downstream tooling must filter on it rather than
compare raw milliseconds across machines.

Example::

    PYTHONPATH=src python tools/bench_trajectory.py --rows 20000 --workers 1,2,4
    PYTHONPATH=src python tools/bench_trajectory.py --rows 100000 --reps 3
    PYTHONPATH=src python tools/bench_trajectory.py --factjoin-rows 4096

The trajectory is append-only — committing the file over time charts the
backend's perf history against a fixed workload shape.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_pipeline.json"


def best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def _forked_best_of(fn, reps: int) -> tuple[float, int]:
    """Best-of timing plus peak RSS, measured in a forked child process.

    Forking isolates the measurement: ``ru_maxrss`` is a per-process
    high-water mark, so running both contenders in one process would let
    whichever ran first set the mark for both.  The child inherits the
    parent's pages copy-on-write, times ``fn`` like :func:`best_of`, and
    reports ``(best_ms, peak_rss_kb)`` back through a queue.  ``ru_maxrss``
    is kilobytes on Linux.
    """
    import multiprocessing
    import resource

    context = multiprocessing.get_context("fork")
    channel = context.Queue()

    def child() -> None:
        best = best_of(fn, reps)
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        channel.put((best, int(peak)))

    process = context.Process(target=child)
    process.start()
    try:
        best_ms, peak_rss_kb = channel.get()
    finally:
        process.join()
    return best_ms, peak_rss_kb


def measure_factjoin(rows: int, reps: int, *, grid_ceiling: int = 1024) -> dict:
    """Time the factjoin chain and record peak RSS + pair-row counts.

    Returns one JSON-ready block: logical row counts first (estimated
    expanded pairs vs pair rows the factorised path materialised), then the
    per-path timings and peak RSS.  The grid path is skipped above
    ``grid_ceiling`` (its scratch is ``O(|L'| * |R|)``); the factorised path
    always runs.
    """
    from repro.columnar.factorised import pair_rows_materialised, reset_pair_rows
    from repro.columnar.relation import ColumnarAURelation
    from repro.core.expressions import attr, const
    from repro.core.operators import select
    from repro.workloads.pipeline import factjoin_inputs, run_factjoin_columnar

    left, right, v_threshold, w_threshold = factjoin_inputs(rows)
    columnar_left = ColumnarAURelation.from_relation(left)
    columnar_right = ColumnarAURelation.from_relation(right)

    expanded_pairs = len(select(left, attr("v").ge(const(v_threshold)))) * len(right)
    reset_pair_rows()
    result = run_factjoin_columnar(
        columnar_left, columnar_right, v_threshold, w_threshold
    )
    factorised_pairs = pair_rows_materialised()

    block = {
        "rows": rows,
        "output_rows": len(result),
        "expanded_pair_rows": expanded_pairs,
        "factorised_pair_rows": factorised_pairs,
    }
    factorised_ms, factorised_rss = _forked_best_of(
        lambda: run_factjoin_columnar(
            columnar_left, columnar_right, v_threshold, w_threshold
        ),
        reps,
    )
    block["factorised_ms"] = round(factorised_ms, 3)
    block["factorised_peak_rss_kb"] = factorised_rss
    if rows <= grid_ceiling:
        grid_ms, grid_rss = _forked_best_of(
            lambda: run_factjoin_columnar(
                columnar_left, columnar_right, v_threshold, w_threshold, method="grid"
            ),
            reps,
        )
        block["grid_ms"] = round(grid_ms, 3)
        block["grid_peak_rss_kb"] = grid_rss
        print(
            f"factjoin rows={rows}: factorised={factorised_ms:.1f}ms "
            f"(peak {factorised_rss}KB, {factorised_pairs} pair rows) "
            f"grid={grid_ms:.1f}ms (peak {grid_rss}KB, {expanded_pairs} pair rows)"
        )
    else:
        print(
            f"factjoin rows={rows}: factorised={factorised_ms:.1f}ms "
            f"(peak {factorised_rss}KB, {factorised_pairs} pair rows) "
            f"grid skipped (would expand {expanded_pairs} pair rows)"
        )
    return block


def parse_workers(raw: str) -> list[int]:
    try:
        values = sorted({int(part) for part in raw.split(",") if part.strip()})
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated list of positive integers, got {raw!r}"
        ) from None
    if not values or any(value < 1 for value in values):
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated list of positive integers, got {raw!r}"
        )
    return values


def measure(rows: int, workers: list[int], reps: int) -> list[dict]:
    from repro.columnar.relation import ColumnarAURelation
    from repro.workloads.pipeline import (
        equijoin_inputs,
        multiwindow_inputs,
        run_equijoin_columnar,
        run_multiwindow_columnar,
    )

    fact, dim, threshold = multiwindow_inputs(rows)
    columnar_fact = ColumnarAURelation.from_relation(fact)
    columnar_dim = ColumnarAURelation.from_relation(dim)
    left, right = equijoin_inputs(rows)
    columnar_left = ColumnarAURelation.from_relation(left)
    columnar_right = ColumnarAURelation.from_relation(right)

    results = []
    for count in workers:
        multiwindow_ms = best_of(
            lambda: run_multiwindow_columnar(
                columnar_fact, columnar_dim, threshold, workers=count
            ),
            reps,
        )
        equijoin_ms = best_of(
            lambda: run_equijoin_columnar(
                columnar_left, columnar_right, method="searchsorted", workers=count
            ),
            reps,
        )
        results.append(
            {"workers": count, "multiwindow_ms": round(multiwindow_ms, 3),
             "equijoin_ms": round(equijoin_ms, 3)}
        )
        print(
            f"workers={count}: multiwindow={multiwindow_ms:.1f}ms "
            f"equijoin={equijoin_ms:.1f}ms"
        )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=20000, help="workload size (default 20000)")
    parser.add_argument(
        "--workers",
        type=parse_workers,
        default=[1, 2, 4],
        help="comma-separated worker counts to time (default 1,2,4)",
    )
    parser.add_argument("--reps", type=int, default=1, help="repetitions, best-of (default 1)")
    parser.add_argument(
        "--factjoin-rows",
        type=int,
        default=4096,
        help="factjoin chain size; 0 skips the factjoin block (default 4096)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="trajectory file to append to"
    )
    args = parser.parse_args(argv)

    results = measure(args.rows, args.workers, args.reps)
    record = {
        "timestamp": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "rows": args.rows,
        "reps": args.reps,
        "cpus": os.cpu_count() or 1,
        "results": results,
    }
    if args.factjoin_rows > 0:
        record["factjoin"] = measure_factjoin(args.factjoin_rows, args.reps)

    trajectory = []
    if args.output.exists():
        trajectory = json.loads(args.output.read_text())
        if not isinstance(trajectory, list):
            raise SystemExit(f"{args.output} is not a JSON array")
    trajectory.append(record)
    args.output.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"appended record #{len(trajectory)} to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
