"""Append multiwindow / equijoin timings to the perf trajectory file.

Each run appends one JSON record to ``BENCH_pipeline.json`` (a JSON array at
the repository root) timing the two large-N harness workloads —
the multi-window plan (``select -> join -> window -> select -> window``) and
the searchsorted equi-join — on the columnar backend at each requested
worker count.  Records carry the host's core count: speedup numbers are only
meaningful when ``cpus >= workers`` (an oversubscribed pool measures
scheduling overhead, not scaling), so downstream tooling must filter on it
rather than compare raw milliseconds across machines.

Example::

    PYTHONPATH=src python tools/bench_trajectory.py --rows 20000 --workers 1,2,4
    PYTHONPATH=src python tools/bench_trajectory.py --rows 100000 --reps 3

The trajectory is append-only — committing the file over time charts the
backend's perf history against a fixed workload shape.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_pipeline.json"


def best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def parse_workers(raw: str) -> list[int]:
    try:
        values = sorted({int(part) for part in raw.split(",") if part.strip()})
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated list of positive integers, got {raw!r}"
        ) from None
    if not values or any(value < 1 for value in values):
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated list of positive integers, got {raw!r}"
        )
    return values


def measure(rows: int, workers: list[int], reps: int) -> list[dict]:
    from repro.columnar.relation import ColumnarAURelation
    from repro.workloads.pipeline import (
        equijoin_inputs,
        multiwindow_inputs,
        run_equijoin_columnar,
        run_multiwindow_columnar,
    )

    fact, dim, threshold = multiwindow_inputs(rows)
    columnar_fact = ColumnarAURelation.from_relation(fact)
    columnar_dim = ColumnarAURelation.from_relation(dim)
    left, right = equijoin_inputs(rows)
    columnar_left = ColumnarAURelation.from_relation(left)
    columnar_right = ColumnarAURelation.from_relation(right)

    results = []
    for count in workers:
        multiwindow_ms = best_of(
            lambda: run_multiwindow_columnar(
                columnar_fact, columnar_dim, threshold, workers=count
            ),
            reps,
        )
        equijoin_ms = best_of(
            lambda: run_equijoin_columnar(
                columnar_left, columnar_right, method="searchsorted", workers=count
            ),
            reps,
        )
        results.append(
            {"workers": count, "multiwindow_ms": round(multiwindow_ms, 3),
             "equijoin_ms": round(equijoin_ms, 3)}
        )
        print(
            f"workers={count}: multiwindow={multiwindow_ms:.1f}ms "
            f"equijoin={equijoin_ms:.1f}ms"
        )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=20000, help="workload size (default 20000)")
    parser.add_argument(
        "--workers",
        type=parse_workers,
        default=[1, 2, 4],
        help="comma-separated worker counts to time (default 1,2,4)",
    )
    parser.add_argument("--reps", type=int, default=1, help="repetitions, best-of (default 1)")
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="trajectory file to append to"
    )
    args = parser.parse_args(argv)

    results = measure(args.rows, args.workers, args.reps)
    record = {
        "timestamp": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "rows": args.rows,
        "reps": args.reps,
        "cpus": os.cpu_count() or 1,
        "results": results,
    }

    trajectory = []
    if args.output.exists():
        trajectory = json.loads(args.output.read_text())
        if not isinstance(trajectory, list):
            raise SystemExit(f"{args.output} is not a JSON array")
    trajectory.append(record)
    args.output.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"appended record #{len(trajectory)} to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
