"""Append multiwindow / equijoin / rangejoin / factjoin timings to a trajectory file.

Each run appends one JSON record to a ``BENCH_*.json`` trajectory (a JSON
array at the repository root) timing the large-N harness workloads — the
multi-window plan (``select -> join -> window -> select -> window``), the
equi-join and range×range join at each requested worker count (each timing
carries the pair-enumeration kernel ``method="auto"`` selects, via
:func:`repro.columnar.operators.planned_join_kernel`, so a dispatch
regression is diffable across records), plus the factorised
``select -> join -> select -> window`` chain (``factjoin``).  The factjoin
block compares the fully expanded grid plan against the factorised
representation head-to-head: each path runs in a forked child process so
``resource.getrusage(RUSAGE_SELF).ru_maxrss`` isolates its peak RSS, and the
record carries the estimated expanded pair-row count (``|L'| * |R|``)
alongside the pair rows the factorised path actually materialised
(:func:`repro.columnar.factorised.pair_rows_materialised`).  Above the grid
ceiling only the factorised path runs — that asymmetry *is* the datapoint.
The rangejoin block does the same for the both-sides-uncertain interval
join: sweep-kernel timing plus its candidate-pair count, with the quadratic
grid contender only below the ceiling.  The ``serve`` harness drives the
synthetic query/delta serving mix through all three serving modes
(cached-incremental, cached-recompute, direct) and records QPS/p99 per
mode plus the patched-vs-rebuilt delta totals, asserting bit-identity
across the modes first.  The ``sql`` harness compiles the SQL scaling query
through the full rule pipeline and brackets optimized vs unoptimized
(literal-lowering) vs Python-oracle timings, asserting three-way
bit-identity and recording the join kernels the optimizer steered onto.

Records carry the host's core count: speedup numbers are only meaningful
when ``cpus >= workers`` (an oversubscribed pool measures scheduling
overhead, not scaling), so downstream tooling must filter on it rather than
compare raw milliseconds across machines.

Runs are config-driven: ``--config benchmarks/configs/<id>.json`` holds the
workload shape (rows / reps / workers / harness ids / output file) as JSON,
so every PR re-runs the *same* named configuration and the appended records
diff cleanly across commits.  Explicit CLI flags override config values.

Example::

    PYTHONPATH=src python tools/bench_trajectory.py --config benchmarks/configs/pipeline.json
    PYTHONPATH=src python tools/bench_trajectory.py --config benchmarks/configs/rangejoin.json
    PYTHONPATH=src python tools/bench_trajectory.py --rows 20000 --workers 1,2,4

The trajectory is append-only — committing the file over time charts the
backend's perf history against a fixed workload shape.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_pipeline.json"

#: Harness ids a config's ``harnesses`` list may name.
HARNESSES = ("multiwindow", "equijoin", "rangejoin", "factjoin", "serve", "sql")


def best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def _forked_best_of(fn, reps: int) -> tuple[float, int]:
    """Best-of timing plus peak RSS, measured in a forked child process.

    Forking isolates the measurement: ``ru_maxrss`` is a per-process
    high-water mark, so running both contenders in one process would let
    whichever ran first set the mark for both.  The child inherits the
    parent's pages copy-on-write, times ``fn`` like :func:`best_of`, and
    reports ``(best_ms, peak_rss_kb)`` back through a queue.  ``ru_maxrss``
    is kilobytes on Linux.
    """
    import multiprocessing
    import resource

    context = multiprocessing.get_context("fork")
    channel = context.Queue()

    def child() -> None:
        best = best_of(fn, reps)
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        channel.put((best, int(peak)))

    process = context.Process(target=child)
    process.start()
    try:
        best_ms, peak_rss_kb = channel.get()
    finally:
        process.join()
    return best_ms, peak_rss_kb


def measure_factjoin(rows: int, reps: int, *, grid_ceiling: int = 1024) -> dict:
    """Time the factjoin chain and record peak RSS + pair-row counts.

    Returns one JSON-ready block: logical row counts first (estimated
    expanded pairs vs pair rows the factorised path materialised), then the
    per-path timings and peak RSS.  The grid path is skipped above
    ``grid_ceiling`` (its scratch is ``O(|L'| * |R|)``); the factorised path
    always runs.
    """
    from repro.columnar import operators as col_ops
    from repro.columnar.factorised import pair_rows_materialised, reset_pair_rows
    from repro.columnar.relation import ColumnarAURelation
    from repro.core.expressions import attr, const
    from repro.core.operators import select
    from repro.workloads.pipeline import factjoin_inputs, run_factjoin_columnar

    left, right, v_threshold, w_threshold = factjoin_inputs(rows)
    columnar_left = ColumnarAURelation.from_relation(left)
    columnar_right = ColumnarAURelation.from_relation(right)

    expanded_pairs = len(select(left, attr("v").ge(const(v_threshold)))) * len(right)
    reset_pair_rows()
    result = run_factjoin_columnar(
        columnar_left, columnar_right, v_threshold, w_threshold
    )
    factorised_pairs = pair_rows_materialised()

    block = {
        "rows": rows,
        "kernel": col_ops.planned_join_kernel(columnar_left, columnar_right, on=["k"]),
        "output_rows": len(result),
        "expanded_pair_rows": expanded_pairs,
        "factorised_pair_rows": factorised_pairs,
    }
    factorised_ms, factorised_rss = _forked_best_of(
        lambda: run_factjoin_columnar(
            columnar_left, columnar_right, v_threshold, w_threshold
        ),
        reps,
    )
    block["factorised_ms"] = round(factorised_ms, 3)
    block["factorised_peak_rss_kb"] = factorised_rss
    if rows <= grid_ceiling:
        grid_ms, grid_rss = _forked_best_of(
            lambda: run_factjoin_columnar(
                columnar_left, columnar_right, v_threshold, w_threshold, method="grid"
            ),
            reps,
        )
        block["grid_ms"] = round(grid_ms, 3)
        block["grid_peak_rss_kb"] = grid_rss
        print(
            f"factjoin rows={rows}: factorised={factorised_ms:.1f}ms "
            f"(peak {factorised_rss}KB, {factorised_pairs} pair rows) "
            f"grid={grid_ms:.1f}ms (peak {grid_rss}KB, {expanded_pairs} pair rows)"
        )
    else:
        print(
            f"factjoin rows={rows}: factorised={factorised_ms:.1f}ms "
            f"(peak {factorised_rss}KB, {factorised_pairs} pair rows) "
            f"grid skipped (would expand {expanded_pairs} pair rows)"
        )
    return block


def measure_rangejoin(rows: int, reps: int, *, grid_ceiling: int = 1024) -> dict:
    """Time the both-sides-uncertain range join: overlap sweep vs the grid.

    Records the kernel ``method="auto"`` selects, the sweep's candidate-pair
    count against the grid's ``|L|·|R|``, and the sweep timing; the grid
    contender only runs below ``grid_ceiling``.
    """
    from repro.columnar import operators as col_ops
    from repro.columnar.relation import ColumnarAURelation
    from repro.workloads.pipeline import rangejoin_inputs, run_rangejoin_columnar

    left, right = rangejoin_inputs(rows)
    columnar_left = ColumnarAURelation.from_relation(left)
    columnar_right = ColumnarAURelation.from_relation(right)

    candidates = col_ops.candidate_key_pairs(
        [columnar_left.column("k")], [columnar_right.column("k")], kernels=("sweep",)
    )
    block = {
        "rows": rows,
        "kernel": col_ops.planned_join_kernel(columnar_left, columnar_right, on=["k"]),
        "sweep_candidate_pairs": 0 if candidates is None else len(candidates[0]),
        "grid_pairs": len(columnar_left) * len(columnar_right),
    }
    sweep_ms = best_of(
        lambda: run_rangejoin_columnar(columnar_left, columnar_right, method="sweep"),
        reps,
    )
    block["sweep_ms"] = round(sweep_ms, 3)
    if rows <= grid_ceiling:
        grid_ms = best_of(
            lambda: run_rangejoin_columnar(columnar_left, columnar_right, method="grid"),
            reps,
        )
        block["grid_ms"] = round(grid_ms, 3)
        print(
            f"rangejoin rows={rows}: sweep={sweep_ms:.1f}ms "
            f"({block['sweep_candidate_pairs']} candidates) grid={grid_ms:.1f}ms "
            f"({block['grid_pairs']} pairs)"
        )
    else:
        print(
            f"rangejoin rows={rows}: sweep={sweep_ms:.1f}ms "
            f"({block['sweep_candidate_pairs']} candidates) grid skipped "
            f"(would expand {block['grid_pairs']} pairs)"
        )
    return block


def measure_serve(rows: int, reps: int, *, queries: int = 200, deltas: int = 10) -> dict:
    """Time the cached-incremental serving mix against recompute-per-query.

    Runs the same synthetic query/delta schedule under all three serving
    modes (:data:`repro.workloads.serve.SERVE_MODES`), asserts the answered
    relations are bit-identical, and records per-mode QPS/p99 plus the
    patched-vs-rebuilt delta totals — the two ratios the serving layer
    exists to improve.  ``reps`` keeps the best (lowest total wall-clock)
    run per mode.
    """
    from repro.workloads.serve import (
        SERVE_MODES,
        latency_summary,
        run_serve_mix,
        serve_inputs,
        serve_schedule,
    )

    base = serve_inputs(rows, seed=0)
    schedule = serve_schedule(base, queries=queries, deltas=deltas, seed=0)
    best: dict[str, tuple] = {}
    reference = None
    for mode in SERVE_MODES:
        for _ in range(max(1, reps)):
            results, query_seconds, delta_seconds = run_serve_mix(
                base, schedule, mode=mode
            )
            total = sum(query_seconds) + sum(delta_seconds)
            if mode not in best or total < best[mode][0]:
                best[mode] = (total, query_seconds, delta_seconds)
        if reference is None:
            reference = results
        else:
            for lhs, rhs in zip(reference, results):
                if lhs.schema != rhs.schema or list(lhs._rows.items()) != list(
                    rhs._rows.items()
                ):
                    raise SystemExit(
                        f"serve harness: mode {mode!r} diverges from incremental results"
                    )

    incremental = latency_summary(best["incremental"][1])
    direct = latency_summary(best["direct"][1])
    patched_ms = sum(best["incremental"][2]) * 1000.0
    rebuilt_ms = sum(best["cached-recompute"][2]) * 1000.0
    query_speedup = incremental["qps"] / direct["qps"] if direct["qps"] else float("inf")
    delta_speedup = rebuilt_ms / patched_ms if patched_ms else float("inf")
    block = {
        "rows": rows,
        "queries": queries,
        "deltas": deltas,
        "incremental_qps": round(incremental["qps"], 1),
        "incremental_p99_ms": round(incremental["p99_ms"], 3),
        "direct_qps": round(direct["qps"], 1),
        "direct_p99_ms": round(direct["p99_ms"], 3),
        "query_speedup": round(query_speedup, 2),
        "patched_delta_ms": round(patched_ms, 3),
        "rebuilt_delta_ms": round(rebuilt_ms, 3),
        "delta_speedup": round(delta_speedup, 2),
    }
    print(
        f"serve rows={rows} queries={queries} deltas={deltas}: "
        f"incremental qps={incremental['qps']:.0f} p99={incremental['p99_ms']:.1f}ms "
        f"direct qps={direct['qps']:.0f} p99={direct['p99_ms']:.1f}ms "
        f"({query_speedup:.2f}x) | deltas patched={patched_ms:.1f}ms "
        f"rebuilt={rebuilt_ms:.1f}ms ({delta_speedup:.2f}x)"
    )
    return block


def measure_sql(rows: int, reps: int, *, grid_ceiling: int = 4096) -> dict:
    """Time the SQL scaling query: optimized rule pipeline vs literal lowering.

    Asserts three-way bit-identity first — the optimized columnar plan must
    equal the unoptimized (grid join, no pushdown, no pruning) plan and the
    row-at-a-time Python oracle — then records both columnar timings plus
    the pair-enumeration kernels the optimized joins resolve to, so a
    kernel-preference regression (a join falling back to the grid) shows in
    the trajectory diff.  The quadratic contenders (unoptimized, python)
    only run up to ``grid_ceiling``.
    """
    from repro.workloads.sql import (
        run_sql_optimized,
        run_sql_python,
        run_sql_unoptimized,
        sql_catalog,
        sql_join_kernels,
    )

    catalog = sql_catalog(rows, seed=0)
    optimized = run_sql_optimized(catalog)
    kernels = sql_join_kernels(catalog)
    block: dict = {
        "rows": rows,
        "kernels": list(kernels),
        "output_rows": len(optimized),
    }
    optimized_ms = best_of(lambda: run_sql_optimized(catalog), reps)
    block["optimized_ms"] = round(optimized_ms, 3)
    if rows <= grid_ceiling:
        for label, oracle in (
            ("unoptimized", run_sql_unoptimized),
            ("python", run_sql_python),
        ):
            other = oracle(catalog)
            if optimized.schema != other.schema or optimized._rows != other._rows:
                raise SystemExit(
                    f"sql harness: optimized plan diverges from the {label} execution"
                )
        unoptimized_ms = best_of(lambda: run_sql_unoptimized(catalog), reps)
        python_ms = best_of(lambda: run_sql_python(catalog), reps)
        speedup = unoptimized_ms / optimized_ms if optimized_ms else float("inf")
        block["unoptimized_ms"] = round(unoptimized_ms, 3)
        block["python_ms"] = round(python_ms, 3)
        block["optimizer_speedup"] = round(speedup, 2)
        print(
            f"sql rows={rows}: optimized={optimized_ms:.1f}ms "
            f"unoptimized={unoptimized_ms:.1f}ms python={python_ms:.1f}ms "
            f"({speedup:.2f}x) kernels={'+'.join(kernels)}"
        )
    else:
        print(
            f"sql rows={rows}: optimized={optimized_ms:.1f}ms "
            f"quadratic contenders skipped above rows={grid_ceiling} "
            f"kernels={'+'.join(kernels)}"
        )
    return block


def parse_workers(raw: str) -> list[int]:
    try:
        values = sorted({int(part) for part in raw.split(",") if part.strip()})
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated list of positive integers, got {raw!r}"
        ) from None
    if not values or any(value < 1 for value in values):
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated list of positive integers, got {raw!r}"
        )
    return values


def measure(
    rows: int, workers: list[int], reps: int, harnesses: list[str]
) -> list[dict]:
    """Per-worker-count timings for the requested scaling harnesses.

    Every join timing records the kernel the ``method="auto"`` dispatch
    would select for the workload's inputs, so a silent dispatch regression
    (a workload falling back to the grid) shows up in the trajectory diff
    even when the milliseconds drift.
    """
    from repro.columnar import operators as col_ops
    from repro.columnar.relation import ColumnarAURelation
    from repro.workloads.pipeline import (
        equijoin_inputs,
        multiwindow_inputs,
        rangejoin_inputs,
        run_equijoin_columnar,
        run_multiwindow_columnar,
        run_rangejoin_columnar,
    )

    prepared = {}
    if "multiwindow" in harnesses:
        fact, dim, threshold = multiwindow_inputs(rows)
        prepared["multiwindow"] = (
            ColumnarAURelation.from_relation(fact),
            ColumnarAURelation.from_relation(dim),
            threshold,
        )
    if "equijoin" in harnesses:
        left, right = equijoin_inputs(rows)
        prepared["equijoin"] = (
            ColumnarAURelation.from_relation(left),
            ColumnarAURelation.from_relation(right),
        )
    if "rangejoin" in harnesses:
        left, right = rangejoin_inputs(rows)
        prepared["rangejoin"] = (
            ColumnarAURelation.from_relation(left),
            ColumnarAURelation.from_relation(right),
        )

    results = []
    for count in workers:
        entry: dict = {"workers": count}
        report = []
        if "multiwindow" in prepared:
            fact, dim, threshold = prepared["multiwindow"]
            ms = best_of(
                lambda: run_multiwindow_columnar(fact, dim, threshold, workers=count),
                reps,
            )
            entry["multiwindow_ms"] = round(ms, 3)
            report.append(f"multiwindow={ms:.1f}ms")
        if "equijoin" in prepared:
            left, right = prepared["equijoin"]
            kernel = col_ops.planned_join_kernel(left, right, on=["k"])
            ms = best_of(
                lambda: run_equijoin_columnar(left, right, method=kernel, workers=count),
                reps,
            )
            entry["equijoin_ms"] = round(ms, 3)
            entry["equijoin_kernel"] = kernel
            report.append(f"equijoin={ms:.1f}ms[{kernel}]")
        if "rangejoin" in prepared:
            left, right = prepared["rangejoin"]
            kernel = col_ops.planned_join_kernel(left, right, on=["k"])
            ms = best_of(
                lambda: run_rangejoin_columnar(left, right, method=kernel, workers=count),
                reps,
            )
            entry["rangejoin_ms"] = round(ms, 3)
            entry["rangejoin_kernel"] = kernel
            report.append(f"rangejoin={ms:.1f}ms[{kernel}]")
        results.append(entry)
        print(f"workers={count}: " + " ".join(report))
    return results


def load_config(path: Path) -> dict:
    """Parse and validate one ``benchmarks/configs/<id>.json`` file."""
    config = json.loads(path.read_text())
    if not isinstance(config, dict):
        raise SystemExit(f"{path} must hold a JSON object")
    unknown = set(config) - {
        "rows", "reps", "workers", "harnesses", "factjoin_rows", "output",
        "queries", "deltas",
    }
    if unknown:
        raise SystemExit(f"{path}: unknown config keys {sorted(unknown)}")
    harnesses = config.get("harnesses", [])
    bad = [h for h in harnesses if h not in HARNESSES]
    if bad:
        raise SystemExit(f"{path}: unknown harness ids {bad}; expected {HARNESSES}")
    workers = config.get("workers", [])
    if not isinstance(workers, list) or any(
        not isinstance(w, int) or w < 1 for w in workers
    ):
        raise SystemExit(f"{path}: 'workers' must be a list of positive integers")
    return config


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="JSON config (benchmarks/configs/<id>.json) supplying defaults "
        "for rows/reps/workers/harnesses/output; explicit flags override",
    )
    parser.add_argument("--rows", type=int, default=None, help="workload size (default 20000)")
    parser.add_argument(
        "--workers",
        type=parse_workers,
        default=None,
        help="comma-separated worker counts to time (default 1,2,4)",
    )
    parser.add_argument("--reps", type=int, default=None, help="repetitions, best-of (default 1)")
    parser.add_argument(
        "--factjoin-rows",
        type=int,
        default=None,
        help="factjoin chain size; 0 skips the factjoin block (default 4096)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="trajectory file to append to"
    )
    args = parser.parse_args(argv)

    config = load_config(args.config) if args.config else {}
    rows = args.rows if args.rows is not None else config.get("rows", 20000)
    reps = args.reps if args.reps is not None else config.get("reps", 1)
    workers = (
        args.workers if args.workers is not None else config.get("workers") or [1, 2, 4]
    )
    harnesses = config.get("harnesses") or ["multiwindow", "equijoin"]
    factjoin_rows = (
        args.factjoin_rows
        if args.factjoin_rows is not None
        else config.get("factjoin_rows", 4096 if "factjoin" in harnesses or not config else 0)
    )
    output = args.output or (
        REPO_ROOT / config["output"] if "output" in config else DEFAULT_OUTPUT
    )

    scaling = [h for h in harnesses if h not in ("factjoin", "serve", "sql")]
    results = measure(rows, workers, reps, scaling) if scaling else []
    record = {
        "timestamp": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "rows": rows,
        "reps": reps,
        "cpus": os.cpu_count() or 1,
        "results": results,
    }
    if args.config:
        record["config"] = args.config.stem
    if "rangejoin" in harnesses:
        record["rangejoin"] = measure_rangejoin(max(rows, 4096), reps)
    if factjoin_rows > 0:
        record["factjoin"] = measure_factjoin(factjoin_rows, reps)
    if "sql" in harnesses:
        record["sql"] = measure_sql(rows, reps)
    if "serve" in harnesses:
        record["serve"] = measure_serve(
            rows,
            reps,
            queries=config.get("queries", 200),
            deltas=config.get("deltas", 10),
        )

    trajectory = []
    if output.exists():
        trajectory = json.loads(output.read_text())
        if not isinstance(trajectory, list):
            raise SystemExit(f"{output} is not a JSON array")
    trajectory.append(record)
    output.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"appended record #{len(trajectory)} to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
