"""Link and TOC checker for the markdown documentation.

Checks, for each given markdown file (default: ``docs/ARCHITECTURE.md``):

* every relative link target exists on disk (external ``http(s)`` links are
  skipped — CI must not depend on the network);
* every in-page anchor link (``#fragment``) resolves to a heading;
* if the file has a ``## Table of contents`` section, its entries match the
  document's ``##`` headings one-to-one (same order, correct anchors).

Run directly: ``python tools/check_docs.py [files...]``.  Exits non-zero on
the first broken document; also importable (``tests/unit/test_docs.py`` runs
it inside tier-1).
"""

from __future__ import annotations

import pathlib
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$")

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DEFAULT_FILES = [
    "docs/ARCHITECTURE.md",
    "docs/PLAN_GUIDE.md",
    "docs/SQL_GUIDE.md",
    "benchmarks/README.md",
    "examples/README.md",
]


def github_anchor(heading: str) -> str:
    """The anchor GitHub generates for a heading (code spans stripped)."""
    text = heading.replace("`", "").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def check_document(path: pathlib.Path) -> list[str]:
    """All link / TOC problems of one markdown document."""
    errors: list[str] = []
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()

    headings = [match for line in lines if (match := HEADING.match(line))]
    anchors = {github_anchor(match.group(2)) for match in headings}

    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if target[1:] not in anchors:
                errors.append(f"{path}: broken in-page anchor {target!r}")
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link {target!r} -> {resolved}")

    toc_headings = [
        github_anchor(match.group(2))
        for match in headings
        if match.group(1) == "##" and github_anchor(match.group(2)) != "table-of-contents"
    ]
    toc_entries = _toc_entries(lines)
    if toc_entries is not None and toc_entries != toc_headings:
        errors.append(
            f"{path}: TOC out of sync with ## headings\n"
            f"  TOC:      {toc_entries}\n  headings: {toc_headings}"
        )
    return errors


def _toc_entries(lines: list[str]) -> list[str] | None:
    """Anchors listed under a ``## Table of contents`` heading (None if absent)."""
    entries: list[str] = []
    in_toc = False
    for line in lines:
        heading = HEADING.match(line)
        if heading:
            if in_toc:
                break
            in_toc = github_anchor(heading.group(2)) == "table-of-contents"
            continue
        if in_toc:
            for match in re.finditer(r"\]\(#([^)]+)\)", line):
                entries.append(match.group(1))
    return entries if in_toc or entries else None


def main(argv: list[str]) -> int:
    files = argv or DEFAULT_FILES
    failures = 0
    for name in files:
        path = (REPO_ROOT / name) if not pathlib.Path(name).is_absolute() else pathlib.Path(name)
        if not path.exists():
            print(f"MISSING: {path}")
            failures += 1
            continue
        errors = check_document(path)
        for error in errors:
            print(error)
        failures += len(errors)
        if not errors:
            print(f"OK: {path.relative_to(REPO_ROOT)}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
