"""repro — reproduction of *Efficient Approximation of Certain and Possible
Answers for Ranking and Window Queries over Uncertain Data* (VLDB 2023).

The package provides:

* ``repro.core`` — the AU-DB data model (range-annotated values, ``N³``
  multiplicities, relations, bound-preserving relational operators),
* ``repro.relational`` — the deterministic bag-relational substrate,
* ``repro.incomplete`` — possible worlds and x-tuple uncertainty models,
* ``repro.ranking`` — uncertain sorting and top-k (rewrite + native sweep),
* ``repro.window`` — uncertain windowed aggregation (rewrite + native sweep),
* ``repro.columnar`` — NumPy-backed columnar AU-relations and vectorized
  ranking / window kernels (select with ``backend="columnar"`` on the
  sort/top-k/window entry points; imported lazily so NumPy stays an
  optional dependency),
* ``repro.algorithms`` — the connected heap data structure,
* ``repro.baselines`` — Det, MCDB, Symb, PT-k, U-Top, U-Rank, … competitors,
* ``repro.workloads`` — synthetic and simulated real-world workloads,
* ``repro.metrics`` / ``repro.harness`` — bound-quality metrics and the
  experiment harness regenerating every table and figure of the paper.

Quickstart::

    from repro import AURelation, RangeValue, topk

    sales = AURelation.from_rows(
        ["term", "sales"],
        [
            ((1, RangeValue(2, 2, 3)), (1, 1, 1)),
            ((2, RangeValue(2, 3, 3)), (1, 1, 1)),
            ((RangeValue(3, 3, 5), RangeValue(4, 7, 7)), (1, 1, 1)),
            ((4, RangeValue(4, 4, 7)), (1, 1, 1)),
        ],
    )
    best = topk(sales, ["sales"], k=2, descending=True)
"""

from repro.core import (
    AURelation,
    AUTuple,
    Multiplicity,
    RangeBool,
    RangeValue,
    Schema,
    attr,
    bounds_world,
    bounds_worlds,
    const,
)
from repro.incomplete import PossibleWorlds, UncertainRelation, XTuple, lift_worlds, lift_xtuples
from repro.ranking import sort, sort_native, sort_rewrite, topk
from repro.relational import Relation
from repro.window import WindowSpec, window_native, window_rewrite

__version__ = "1.0.0"

__all__ = [
    "AURelation",
    "AUTuple",
    "Multiplicity",
    "RangeBool",
    "RangeValue",
    "Schema",
    "attr",
    "const",
    "bounds_world",
    "bounds_worlds",
    "PossibleWorlds",
    "UncertainRelation",
    "XTuple",
    "lift_worlds",
    "lift_xtuples",
    "Relation",
    "sort",
    "sort_native",
    "sort_rewrite",
    "topk",
    "WindowSpec",
    "window_native",
    "window_rewrite",
    "__version__",
]
