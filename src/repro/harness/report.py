"""Result containers and plain-text table formatting for the harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["ExperimentResult", "format_table"]


@dataclass
class ExperimentResult:
    """One reproduced table / figure: a title, column headers, and rows."""

    name: str
    description: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)

    def add(self, *values: object) -> None:
        self.rows.append(list(values))

    def to_text(self) -> str:
        return f"{self.name}: {self.description}\n" + format_table(self.headers, self.rows)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table.

    Floats round to three decimals; every other value prints via ``str``:

    >>> print(format_table(["Size", "Value"], [[64, 1.5], [128, 3.25]]))
    Size | Value
    -----+------
    64   | 1.500
    128  | 3.250
    """
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines = [" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
