"""Per-figure experiment drivers reproducing the paper's evaluation tables.

Every public function regenerates one table or figure of Section 9 (plus the
connected-heap preliminary experiment of Section 8.2) and returns an
:class:`~repro.harness.report.ExperimentResult`.  Sizes default to values
that run in seconds on a laptop with the pure-Python substrate; pass a larger
``scale`` (or explicit row counts) for closer-to-paper workloads.  The
*shape* of each result — which method wins, by roughly what factor, who over-
vs under-approximates — is what reproduces; absolute milliseconds do not
(PostgreSQL + C vs pure Python), as discussed in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import random
from typing import Sequence

from repro.algorithms.connected_heap import ConnectedHeap, NaiveMultiHeap
from repro.baselines.det import det_sort, det_topk, det_window
from repro.baselines.mcdb import mcdb_sort_bounds, mcdb_window_bounds
from repro.baselines.ptk import topk_probabilities_montecarlo
from repro.baselines.symb import symb_sort_bounds, symb_window_bounds
from repro.errors import EnumerationLimitError
from repro.harness.adapters import (
    audb_from_workload,
    audb_sort_bounds,
    audb_window_bounds,
)
from repro.harness.report import ExperimentResult
from repro.harness.runner import timed_ms
from repro.metrics.quality import compare_bounds
from repro.ranking.topk import sort as au_sort, topk as au_topk
from repro.window.native import window_native
from repro.window.semantics import window_rewrite
from repro.window.spec import WindowSpec
from repro.workloads.realworld import REAL_WORLD_DATASETS, DatasetBundle
from repro.workloads.synthetic import SyntheticConfig, generate_sort_table, generate_window_table

__all__ = [
    "BACKEND_ENV",
    "BACKEND_CHOICES",
    "backend_enabled",
    "heap_table",
    "fig11_sort_configs",
    "fig12_sort_quality",
    "fig13_window_quality",
    "fig14_sort_scaling",
    "fig15_window_scaling",
    "fig16_window_configs",
    "fig17_realworld_performance",
    "fig18_realworld_sort_quality",
    "fig19_realworld_window_quality",
    "pipeline_scaling",
    "groupby_pipeline_scaling",
    "multiwindow_scaling",
    "equijoin_scaling",
    "rangejoin_scaling",
    "factjoin_scaling",
    "serve_scaling",
    "sql_scaling",
    "ALL_EXPERIMENTS",
]


#: Environment variable filtering which backends the experiments time.
BACKEND_ENV = "REPRO_BACKEND"

#: Valid ``REPRO_BACKEND`` / ``--backend`` values.
BACKEND_CHOICES = ("python", "columnar", "all")


def backend_enabled(backend: str) -> bool:
    """Whether ``REPRO_BACKEND`` (default ``all``) includes this backend.

    ``python`` / ``columnar`` skip the other backend's timing columns in the
    backend-comparison experiments (they print ``-``); an unrecognised value
    raises :class:`~repro.errors.ReproError` naming the valid choices.
    """
    value = os.environ.get(BACKEND_ENV, "all").strip().lower() or "all"
    if value not in BACKEND_CHOICES:
        from repro.errors import ReproError

        raise ReproError(
            f"{BACKEND_ENV} must be one of {', '.join(BACKEND_CHOICES)}; got {value!r}"
        )
    return value in ("all", backend)


def _timed_columnar_ms(audb, run) -> object:
    """Time ``run(columnar)`` on a pre-converted columnar relation.

    Degrades to ``"-"`` without NumPy (or with ``REPRO_BACKEND=python``)
    instead of aborting the figure; the conversion is excluded from the
    timing, matching how the other methods are measured on pre-built inputs.
    """
    if not backend_enabled("columnar"):
        return "-"
    try:
        from repro.columnar.relation import ColumnarAURelation
    except ImportError:
        return "-"
    columnar = ColumnarAURelation.from_relation(audb)
    _, ms = timed_ms(lambda: run(columnar))
    return ms


# ---------------------------------------------------------------------------
# Section 8.2 — connected heaps vs unconnected heaps
# ---------------------------------------------------------------------------


def _heap_workload(structure_cls, records: list[tuple[int, float, float]], window: int) -> None:
    """The access pattern of the window sweep: insert, then pop+reinsert probes."""
    heap = structure_cls(
        (
            lambda record: record[0],
            lambda record: record[1],
            lambda record: -record[2],
        )
    )
    for record in records:
        heap.insert(record)
        if len(heap) > window:
            # Evict by position (component 0) and probe the value components,
            # removing the probed records from every component heap.
            heap.pop(0)
            popped = []
            for component in (1, 2):
                for _ in range(2):
                    if not len(heap):
                        break
                    popped.append(heap.pop(component))
            for record in popped:
                heap.insert(record)


def heap_table(*, items: int = 4000, seed: int = 0) -> ExperimentResult:
    """Section 8.2 preliminary experiment: connected vs unconnected heaps."""
    result = ExperimentResult(
        name="sec8.2-heaps",
        description="Connected heaps (back pointers) vs unconnected heaps (linear search), ms",
        headers=["Uncert", "Range", "Connected (ms)", "Unconnected (ms)", "speedup"],
    )
    for uncertainty in (0.01, 0.05):
        for attribute_range in (2000, 15000, 30000):
            rng = random.Random(seed)
            window = max(8, int(items * uncertainty * attribute_range / 10000))
            records = [
                (i, rng.uniform(-attribute_range, attribute_range), rng.uniform(-attribute_range, attribute_range))
                for i in range(items)
            ]
            _, connected_ms = timed_ms(lambda: _heap_workload(ConnectedHeap, records, window))
            _, naive_ms = timed_ms(lambda: _heap_workload(NaiveMultiHeap, records, window))
            result.add(
                f"{uncertainty:.0%}",
                attribute_range,
                connected_ms,
                naive_ms,
                naive_ms / connected_ms if connected_ms else float("nan"),
            )
    return result


# ---------------------------------------------------------------------------
# Figure 11 — sorting and top-k performance per configuration
# ---------------------------------------------------------------------------


def fig11_sort_configs(*, rows: int = 400, seed: int = 0, mcdb_samples: tuple[int, int] = (10, 20)) -> ExperimentResult:
    """Figure 11: sorting / top-k runtime for the paper's five configurations."""
    result = ExperimentResult(
        name="fig11",
        description="Sorting and top-k microbenchmark runtimes (ms)",
        headers=["Config", "Det", "Imp", "Rewr", "MCDB10", "MCDB20"],
    )
    configurations = [
        ("r=1k,u=5%", 1000, 0.05, None),
        ("r=10k,u=5%", 10000, 0.05, None),
        ("r=1k,u=20%", 1000, 0.20, None),
        ("r=1k,u=5%,k=2", 1000, 0.05, 2),
        ("r=1k,u=5%,k=10", 1000, 0.05, 10),
    ]
    for label, attribute_range, uncertainty, k in configurations:
        config = SyntheticConfig(
            rows=rows, uncertainty=uncertainty, attribute_range=attribute_range, seed=seed
        )
        workload = generate_sort_table(config)
        audb = audb_from_workload(workload)
        order_by = ["a"]

        if k is None:
            _, det_ms = timed_ms(lambda: det_sort(workload, order_by))
            _, imp_ms = timed_ms(lambda: au_sort(audb, order_by, method="native"))
            _, rewr_ms = timed_ms(lambda: au_sort(audb, order_by, method="rewrite"))
        else:
            _, det_ms = timed_ms(lambda: det_topk(workload, order_by, k))
            _, imp_ms = timed_ms(lambda: au_topk(audb, order_by, k, method="native"))
            _, rewr_ms = timed_ms(lambda: au_topk(audb, order_by, k, method="rewrite"))
        _, mcdb10_ms = timed_ms(
            lambda: mcdb_sort_bounds(
                workload, order_by, key_attribute="rid", samples=mcdb_samples[0], seed=seed
            )
        )
        _, mcdb20_ms = timed_ms(
            lambda: mcdb_sort_bounds(
                workload, order_by, key_attribute="rid", samples=mcdb_samples[1], seed=seed
            )
        )
        result.add(label, det_ms, imp_ms, rewr_ms, mcdb10_ms, mcdb20_ms)
    return result


# ---------------------------------------------------------------------------
# Figures 12 / 13 — approximation quality vs uncertainty and range
# ---------------------------------------------------------------------------


def _sort_quality_row(
    rows: int, uncertainty: float, attribute_range: int, seed: int
) -> tuple[float, float, float]:
    config = SyntheticConfig(
        rows=rows,
        uncertainty=uncertainty,
        attribute_range=attribute_range,
        domain=10 * rows,
        seed=seed,
    )
    workload = generate_sort_table(config)
    audb = audb_from_workload(workload)
    order_by = ["a"]
    truth = symb_sort_bounds(workload, order_by, key_attribute="rid")
    au_bounds = audb_sort_bounds(audb, order_by, key_attribute="rid", method="native")
    mcdb10 = mcdb_sort_bounds(workload, order_by, key_attribute="rid", samples=10, seed=seed)
    mcdb20 = mcdb_sort_bounds(workload, order_by, key_attribute="rid", samples=20, seed=seed)
    return (
        compare_bounds(mcdb10, truth).range_ratio,
        compare_bounds(mcdb20, truth).range_ratio,
        compare_bounds(au_bounds, truth).range_ratio,
    )


def fig12_sort_quality(*, rows: int = 64, seed: int = 0) -> ExperimentResult:
    """Figure 12: estimated-value-range of sort-position bounds (vs exact)."""
    result = ExperimentResult(
        name="fig12",
        description="Sorting approximation quality: estimated value range relative to exact bounds",
        headers=["Sweep", "Setting", "MCDB10", "MCDB20", "Imp/Rewr"],
    )
    for percent in (1, 3, 5, 7, 9):
        ratios = _sort_quality_row(rows, percent / 100.0, rows // 2, seed)
        result.add("uncertainty", f"{percent}%", *ratios)
    for attribute_range in (rows // 8, rows // 4, rows // 2, rows, 2 * rows):
        ratios = _sort_quality_row(rows, 0.05, attribute_range, seed)
        result.add("range", attribute_range, *ratios)
    return result


def _window_quality_row(
    rows: int, uncertainty: float, attribute_range: int, seed: int, spec: WindowSpec
) -> tuple[float, float, float]:
    config = SyntheticConfig(
        rows=rows,
        uncertainty=uncertainty,
        attribute_range=attribute_range,
        domain=10 * rows,
        seed=seed,
    )
    workload = generate_window_table(config, partitions=1)
    audb = audb_from_workload(workload)
    truth = symb_window_bounds(workload, spec, key_attribute="rid")
    au_bounds = audb_window_bounds(audb, spec, key_attribute="rid", method="native")
    mcdb10 = mcdb_window_bounds(workload, spec, key_attribute="rid", samples=10, seed=seed)
    mcdb20 = mcdb_window_bounds(workload, spec, key_attribute="rid", samples=20, seed=seed)
    return (
        compare_bounds(mcdb10, truth).range_ratio,
        compare_bounds(mcdb20, truth).range_ratio,
        compare_bounds(au_bounds, truth).range_ratio,
    )


def fig13_window_quality(*, rows: int = 48, seed: int = 0) -> ExperimentResult:
    """Figure 13: estimated-value-range of window-aggregate bounds (vs exact)."""
    spec = WindowSpec(
        function="sum", attribute="v", output="w_sum", order_by=("o",), frame=(-2, 0)
    )
    result = ExperimentResult(
        name="fig13",
        description="Windowed aggregation approximation quality: estimated value range vs exact bounds",
        headers=["Sweep", "Setting", "MCDB10", "MCDB20", "Imp/Rewr"],
    )
    for percent in (1, 3, 5, 7, 9):
        ratios = _window_quality_row(rows, percent / 100.0, rows // 2, seed, spec)
        result.add("uncertainty", f"{percent}%", *ratios)
    for attribute_range in (rows // 8, rows // 4, rows // 2, rows, 2 * rows):
        ratios = _window_quality_row(rows, 0.05, attribute_range, seed, spec)
        result.add("range", attribute_range, *ratios)
    return result


# ---------------------------------------------------------------------------
# Figure 14 — sorting runtime scaling
# ---------------------------------------------------------------------------


def fig14_sort_scaling(
    *,
    small_sizes: Sequence[int] = (32, 64, 128, 256),
    large_sizes: Sequence[int] = (256, 512, 1024, 2048),
    seed: int = 0,
    rewrite_limit: int = 1024,
) -> ExperimentResult:
    """Figure 14: sorting runtime vs data size (small sweep incl. Symb / PT-k).

    ``Imp-Col`` reports the native operator on the columnar backend
    (:mod:`repro.columnar`, vectorized kernels over a pre-converted columnar
    relation); its bounds are identical to ``Imp``.  Without NumPy the
    column degrades to ``-`` instead of aborting the figure.
    """
    result = ExperimentResult(
        name="fig14",
        description="Sorting runtime (ms) vs data size; '-' marks methods infeasible at that size",
        headers=["Panel", "Size", "Det", "Imp", "Imp-Col", "Rewr", "MCDB10", "MCDB20", "Symb", "PT-k"],
    )
    order_by = ["a"]
    for panel, sizes, include_exact in (("a-small", small_sizes, True), ("b-large", large_sizes, False)):
        for size in sizes:
            config = SyntheticConfig(rows=size, uncertainty=0.05, attribute_range=max(4, size // 2), domain=10 * size, seed=seed)
            workload = generate_sort_table(config)
            audb = audb_from_workload(workload)
            _, det_ms = timed_ms(lambda: det_sort(workload, order_by))
            _, imp_ms = timed_ms(lambda: au_sort(audb, order_by, method="native"))
            imp_col_ms = _timed_columnar_ms(
                audb,
                lambda columnar: au_sort(columnar, order_by, method="native", backend="columnar"),
            )
            if size <= rewrite_limit:
                _, rewr_ms = timed_ms(lambda: au_sort(audb, order_by, method="rewrite"))
            else:
                rewr_ms = "-"
            _, mcdb10_ms = timed_ms(
                lambda: mcdb_sort_bounds(workload, order_by, key_attribute="rid", samples=10, seed=seed)
            )
            _, mcdb20_ms = timed_ms(
                lambda: mcdb_sort_bounds(workload, order_by, key_attribute="rid", samples=20, seed=seed)
            )
            symb_ms: object = "-"
            ptk_ms: object = "-"
            if include_exact:
                try:
                    _, symb_ms = timed_ms(
                        lambda: symb_sort_bounds(
                            workload, order_by, key_attribute="rid", world_limit=100_000
                        )
                    )
                except EnumerationLimitError:
                    symb_ms = "-"
                _, ptk_ms = timed_ms(
                    lambda: topk_probabilities_montecarlo(
                        workload, order_by, k=max(2, size // 4), key_attribute="rid", samples=100, seed=seed
                    )
                )
            result.add(panel, size, det_ms, imp_ms, imp_col_ms, rewr_ms, mcdb10_ms, mcdb20_ms, symb_ms, ptk_ms)
    return result


# ---------------------------------------------------------------------------
# Figure 15 — windowed aggregation runtime scaling
# ---------------------------------------------------------------------------


def fig15_window_scaling(
    *,
    sizes: Sequence[int] = (64, 128, 256, 512),
    seed: int = 0,
    rewrite_limit: int = 512,
) -> ExperimentResult:
    """Figure 15: windowed aggregation runtime (ms) vs data size.

    ``Imp-Col`` reports the native operator on the columnar backend
    (:mod:`repro.columnar.window`, vectorized frame-membership kernels over a
    pre-converted columnar relation); its bounds are identical to ``Imp``.
    Without NumPy the column degrades to ``-`` instead of aborting the figure.
    """
    spec = WindowSpec(function="sum", attribute="v", output="w_sum", order_by=("o",), frame=(-2, 0))
    result = ExperimentResult(
        name="fig15",
        description="Windowed aggregation runtime (ms) vs data size",
        headers=["Size", "Det", "Imp", "Imp-Col", "Rewr", "MCDB10", "MCDB20"],
    )
    for size in sizes:
        config = SyntheticConfig(rows=size, uncertainty=0.05, attribute_range=max(4, size // 2), domain=10 * size, seed=seed)
        workload = generate_window_table(config, partitions=1)
        audb = audb_from_workload(workload)
        _, det_ms = timed_ms(lambda: det_window(workload, spec))
        _, imp_ms = timed_ms(lambda: window_native(audb, spec))
        imp_col_ms = _timed_columnar_ms(
            audb, lambda columnar: window_native(columnar, spec, backend="columnar")
        )
        if size <= rewrite_limit:
            _, rewr_ms = timed_ms(lambda: window_rewrite(audb, spec))
        else:
            rewr_ms = "-"
        _, mcdb10_ms = timed_ms(
            lambda: mcdb_window_bounds(workload, spec, key_attribute="rid", samples=10, seed=seed)
        )
        _, mcdb20_ms = timed_ms(
            lambda: mcdb_window_bounds(workload, spec, key_attribute="rid", samples=20, seed=seed)
        )
        result.add(size, det_ms, imp_ms, imp_col_ms, rewr_ms, mcdb10_ms, mcdb20_ms)
    return result


# ---------------------------------------------------------------------------
# Figure 16 — windowed aggregation configurations
# ---------------------------------------------------------------------------


def fig16_window_configs(*, rows: int = 300, partitioned_rows: int = 128, seed: int = 0) -> ExperimentResult:
    """Figure 16: windowed aggregation runtimes for varying window specs.

    ``Imp-Col`` reports the columnar window sweep on the order-by-only panel;
    the partition-by panel runs the rewrite method (the native operator
    delegates uncertain partitions to it), where the columnar backend would
    transparently fall back to the same code — hence ``-``.
    """
    result = ExperimentResult(
        name="fig16",
        description="Windowed aggregation runtimes (ms) for order-by only (Imp) and order+partition-by (Rewr)",
        headers=["Panel", "Config", "Det", "Imp", "Imp-Col", "Rewr", "MCDB10", "MCDB20"],
    )
    order_only = [
        ("w=3,r=1k,u=5%", 3, 1000, 0.05),
        ("w=3,r=10k,u=5%", 3, 10000, 0.05),
        ("w=3,r=1k,u=20%", 3, 1000, 0.20),
        ("w=6,r=1k,u=5%", 6, 1000, 0.05),
    ]
    for label, window, attribute_range, uncertainty in order_only:
        spec = WindowSpec(
            function="sum", attribute="v", output="w_sum", order_by=("o",), frame=(-(window - 1), 0)
        )
        config = SyntheticConfig(rows=rows, uncertainty=uncertainty, attribute_range=attribute_range, seed=seed)
        workload = generate_window_table(config, partitions=1)
        audb = audb_from_workload(workload)
        _, det_ms = timed_ms(lambda: det_window(workload, spec))
        _, imp_ms = timed_ms(lambda: window_native(audb, spec))
        imp_col_ms = _timed_columnar_ms(
            audb, lambda columnar: window_native(columnar, spec, backend="columnar")
        )
        _, mcdb10_ms = timed_ms(
            lambda: mcdb_window_bounds(workload, spec, key_attribute="rid", samples=10, seed=seed)
        )
        _, mcdb20_ms = timed_ms(
            lambda: mcdb_window_bounds(workload, spec, key_attribute="rid", samples=20, seed=seed)
        )
        result.add("a-order-by", label, det_ms, imp_ms, imp_col_ms, "-", mcdb10_ms, mcdb20_ms)

    partitioned = [
        ("w=3,r=1k,u=5%", 3, 1000, 0.05),
        ("w=3,r=10k,u=5%", 3, 10000, 0.05),
        ("w=3,r=1k,u=20%", 3, 1000, 0.20),
    ]
    for label, window, attribute_range, uncertainty in partitioned:
        spec = WindowSpec(
            function="sum",
            attribute="v",
            output="w_sum",
            order_by=("o",),
            partition_by=("g",),
            frame=(-(window - 1), 0),
        )
        config = SyntheticConfig(
            rows=partitioned_rows, uncertainty=uncertainty, attribute_range=attribute_range, seed=seed
        )
        workload = generate_window_table(config, partitions=4)
        audb = audb_from_workload(workload)
        _, det_ms = timed_ms(lambda: det_window(workload, spec))
        _, rewr_ms = timed_ms(lambda: window_rewrite(audb, spec))
        _, mcdb10_ms = timed_ms(
            lambda: mcdb_window_bounds(workload, spec, key_attribute="rid", samples=10, seed=seed)
        )
        _, mcdb20_ms = timed_ms(
            lambda: mcdb_window_bounds(workload, spec, key_attribute="rid", samples=20, seed=seed)
        )
        result.add("b-partition-by", label, det_ms, "-", "-", rewr_ms, mcdb10_ms, mcdb20_ms)
    return result


# ---------------------------------------------------------------------------
# Figures 17-19 — real-world datasets
# ---------------------------------------------------------------------------


def _rank_methods(dataset: DatasetBundle, *, seed: int = 0) -> dict[str, float]:
    query = dataset.rank_query
    audb = audb_from_workload(dataset.rank_table)
    order_by = list(query.order_by)
    timings: dict[str, float] = {}
    _, timings["Det"] = timed_ms(
        lambda: det_topk(dataset.rank_table, order_by, query.k, descending=query.descending)
    )
    _, timings["Imp"] = timed_ms(
        lambda: au_topk(audb, order_by, query.k, method="native", descending=query.descending)
    )
    timings["Imp-Col"] = _timed_columnar_ms(
        audb,
        lambda columnar: au_topk(
            columnar,
            order_by,
            query.k,
            method="native",
            descending=query.descending,
            backend="columnar",
        ),
    )
    _, timings["Rewr"] = timed_ms(
        lambda: au_topk(audb, order_by, query.k, method="rewrite", descending=query.descending)
    )
    _, timings["MCDB20"] = timed_ms(
        lambda: mcdb_sort_bounds(
            dataset.rank_table,
            order_by,
            key_attribute=query.key_attribute,
            samples=20,
            seed=seed,
            descending=query.descending,
        )
    )
    return timings


def _window_methods(dataset: DatasetBundle, *, seed: int = 0) -> dict[str, float]:
    spec = dataset.window_query
    audb = audb_from_workload(dataset.window_table)
    timings: dict[str, float] = {}
    _, timings["Det"] = timed_ms(lambda: det_window(dataset.window_table, spec))
    _, timings["Imp"] = timed_ms(lambda: window_native(audb, spec))
    timings["Imp-Col"] = _timed_columnar_ms(
        audb, lambda columnar: window_native(columnar, spec, backend="columnar")
    )
    _, timings["Rewr"] = timed_ms(lambda: window_rewrite(audb, spec))
    _, timings["MCDB20"] = timed_ms(
        lambda: mcdb_window_bounds(
            dataset.window_table, spec, key_attribute=dataset.key_attribute, samples=20, seed=seed
        )
    )
    return timings


def fig17_realworld_performance(*, scale: float = 0.25, seed: int = 0) -> ExperimentResult:
    """Figure 17: runtimes of the real-world rank and window queries.

    ``Imp-Col`` reports the native operator on the columnar backend over a
    pre-converted columnar relation (bit-identical bounds); without NumPy the
    column degrades to ``-``.
    """
    result = ExperimentResult(
        name="fig17",
        description="Real-world query runtimes (ms) on simulated Iceberg / Crimes / Healthcare data",
        headers=["Dataset", "Query", "Det", "Imp", "Imp-Col", "Rewr", "MCDB20"],
    )
    for dataset in REAL_WORLD_DATASETS(scale=scale, seed=seed):
        rank = _rank_methods(dataset, seed=seed)
        result.add(
            dataset.name,
            "Rank",
            rank["Det"],
            rank["Imp"],
            rank["Imp-Col"],
            rank["Rewr"],
            rank["MCDB20"],
        )
        window = _window_methods(dataset, seed=seed)
        result.add(
            dataset.name,
            "Window",
            window["Det"],
            window["Imp"],
            window["Imp-Col"],
            window["Rewr"],
            window["MCDB20"],
        )
    return result


def fig18_realworld_sort_quality(*, scale: float = 0.05, seed: int = 0) -> ExperimentResult:
    """Figure 18: sort-position bound accuracy and recall on the real-world data."""
    result = ExperimentResult(
        name="fig18",
        description="Real-world sort-position bound quality (accuracy / recall)",
        headers=["Dataset", "Method", "Accuracy", "Recall"],
    )
    for dataset in REAL_WORLD_DATASETS(scale=scale, seed=seed):
        query = dataset.rank_query
        order_by = list(query.order_by)
        audb = audb_from_workload(dataset.rank_table)
        truth = symb_sort_bounds(
            dataset.rank_table,
            order_by,
            key_attribute=query.key_attribute,
            descending=query.descending,
        )
        au_bounds = audb_sort_bounds(
            audb,
            order_by,
            key_attribute=query.key_attribute,
            method="native",
            descending=query.descending,
        )
        mcdb = mcdb_sort_bounds(
            dataset.rank_table,
            order_by,
            key_attribute=query.key_attribute,
            samples=20,
            seed=seed,
            descending=query.descending,
        )
        au_quality = compare_bounds(au_bounds, truth)
        mcdb_quality = compare_bounds(mcdb, truth)
        result.add(dataset.name, "Imp/Rewr", au_quality.accuracy, au_quality.recall)
        result.add(dataset.name, "MCDB20", mcdb_quality.accuracy, mcdb_quality.recall)
        result.add(dataset.name, "PT-k/Symb", 1.0, 1.0)
    return result


def fig19_realworld_window_quality(*, scale: float = 0.05, seed: int = 0) -> ExperimentResult:
    """Figure 19: window-aggregate bound accuracy and recall on the real-world data."""
    result = ExperimentResult(
        name="fig19",
        description="Real-world window-aggregation bound quality (accuracy / recall)",
        headers=["Dataset", "Method", "Agg accuracy", "Agg recall"],
    )
    for dataset in REAL_WORLD_DATASETS(scale=scale, seed=seed):
        spec = dataset.window_query
        audb = audb_from_workload(dataset.window_table)
        truth = symb_window_bounds(
            dataset.window_table, spec, key_attribute=dataset.key_attribute
        )
        au_bounds = audb_window_bounds(
            audb, spec, key_attribute=dataset.key_attribute, method="native"
        )
        mcdb = mcdb_window_bounds(
            dataset.window_table, spec, key_attribute=dataset.key_attribute, samples=20, seed=seed
        )
        au_quality = compare_bounds(au_bounds, truth)
        mcdb_quality = compare_bounds(mcdb, truth)
        result.add(dataset.name, "Imp/Rewr", au_quality.accuracy, au_quality.recall)
        result.add(dataset.name, "MCDB20", mcdb_quality.accuracy, mcdb_quality.recall)
        result.add(dataset.name, "Symb", 1.0, 1.0)
    return result


# ---------------------------------------------------------------------------
# Pipeline — multi-operator RA⁺ plans on both backends
# ---------------------------------------------------------------------------


def _pipeline_backend_scaling(
    name: str,
    description: str,
    python_runner,
    columnar_runner,
    *,
    sizes: Sequence[int],
    seed: int,
) -> ExperimentResult:
    """Shared driver for the pipeline-shaped two-backend comparisons.

    ``Imp`` materialises a row-major relation between every stage;
    ``Imp-Col`` runs the identical plan as a
    :class:`~repro.columnar.plan.ColumnarPlan` chain.  Results are
    bit-identical (``smoke_backends.py`` asserts it); without NumPy the
    columnar column degrades to ``-``.
    """
    from repro.workloads.pipeline import pipeline_inputs

    result = ExperimentResult(
        name=name, description=description, headers=["Size", "Imp", "Imp-Col", "speedup"]
    )
    # Warm both runners once so one-time import / kernel setup costs do not
    # land in the smallest size's timing.
    warm_fact, warm_dim, warm_threshold = pipeline_inputs(min(sizes), seed=seed)
    if backend_enabled("python"):
        python_runner(warm_fact, warm_dim, warm_threshold)
    if backend_enabled("columnar"):
        try:
            columnar_runner(warm_fact, warm_dim, warm_threshold)
        except ImportError:  # pragma: no cover - environment dependent
            pass
    for size in sizes:
        fact, dim, threshold = pipeline_inputs(size, seed=seed)
        imp_ms: object = "-"
        if backend_enabled("python"):
            _, imp_ms = timed_ms(lambda: python_runner(fact, dim, threshold))
        imp_col_ms: object = "-"
        speedup: object = "-"
        if backend_enabled("columnar"):
            try:
                from repro.columnar.relation import ColumnarAURelation
            except ImportError:
                pass
            else:
                columnar_fact = ColumnarAURelation.from_relation(fact)
                columnar_dim = ColumnarAURelation.from_relation(dim)
                _, imp_col_ms = timed_ms(
                    lambda: columnar_runner(columnar_fact, columnar_dim, threshold)
                )
        if isinstance(imp_ms, float) and isinstance(imp_col_ms, float):
            speedup = imp_ms / imp_col_ms if imp_col_ms else float("inf")
        result.add(size, imp_ms, imp_col_ms, speedup)
    return result


def pipeline_scaling(*, sizes: Sequence[int] = (64, 128, 256, 512), seed: int = 0) -> ExperimentResult:
    """Multi-operator pipeline (select -> join -> project -> window) per backend."""
    from repro.workloads.pipeline import run_pipeline_columnar, run_pipeline_python

    return _pipeline_backend_scaling(
        "pipeline",
        "Multi-operator RA+ pipeline runtime (ms): select -> join -> project -> window",
        run_pipeline_python,
        run_pipeline_columnar,
        sizes=sizes,
        seed=seed,
    )


def groupby_pipeline_scaling(
    *, sizes: Sequence[int] = (64, 128, 256, 512), seed: int = 0
) -> ExperimentResult:
    """Grouped-aggregation pipeline (select -> join -> groupby -> window) per backend.

    The columnar chain keeps the grouped-aggregation stage columnar between
    the join and the terminal window (no row-major conversion mid-plan).
    """
    from repro.workloads.pipeline import (
        run_groupby_pipeline_columnar,
        run_groupby_pipeline_python,
    )

    return _pipeline_backend_scaling(
        "groupby",
        "Groupby pipeline runtime (ms): select -> join -> groupby -> window",
        run_groupby_pipeline_python,
        run_groupby_pipeline_columnar,
        sizes=sizes,
        seed=seed,
    )


def multiwindow_scaling(
    *, sizes: Sequence[int] = (128, 256, 512, 1024), seed: int = 0
) -> ExperimentResult:
    """Multi-window plan (select -> join -> window -> select -> window) per path.

    The composed RA⁺ setting: the plan *continues past* its first window
    stage.  Three execution paths over identical inputs:

    * ``Imp`` — tuple-at-a-time operators, row-major between stages;
    * ``Imp-Col-RT`` — the columnar kernels invoked per stage through the
      ``backend="columnar"`` entry points, so every stage converts its input
      to columnar and its result back to row-major (the pre-refactor
      round-trip execution model; starts from the row-major tables, like
      ``Imp``);
    * ``Imp-Col`` — the identical plan as one ``ColumnarPlan`` chain over the
      columnar-resident tables, converting only at the final ``.to_rows()``.

    ``RT-speedup`` is the no-round-trip win (``Imp-Col-RT`` / ``Imp-Col``);
    all three paths are bit-identical (``smoke_backends.py`` asserts it).
    Without NumPy the columnar columns degrade to ``-``.
    """
    from repro.workloads.pipeline import (
        multiwindow_inputs,
        run_multiwindow_columnar,
        run_multiwindow_python,
        run_multiwindow_roundtrip_columnar,
    )

    result = ExperimentResult(
        name="multiwindow",
        description="Multi-window RA+ plan runtime (ms): select -> join -> window -> select -> window",
        headers=["Size", "Imp", "Imp-Col-RT", "Imp-Col", "RT-speedup", "Imp-speedup"],
    )
    warm_fact, warm_dim, warm_threshold = multiwindow_inputs(min(sizes), seed=seed)
    if backend_enabled("python"):
        run_multiwindow_python(warm_fact, warm_dim, warm_threshold)
    if backend_enabled("columnar"):
        try:
            run_multiwindow_columnar(warm_fact, warm_dim, warm_threshold)
        except ImportError:  # pragma: no cover - environment dependent
            pass
    for size in sizes:
        fact, dim, threshold = multiwindow_inputs(size, seed=seed)
        imp_ms: object = "-"
        if backend_enabled("python"):
            _, imp_ms = timed_ms(lambda: run_multiwindow_python(fact, dim, threshold))
        rt_ms: object = "-"
        chained_ms: object = "-"
        rt_speedup: object = "-"
        imp_speedup: object = "-"
        if backend_enabled("columnar"):
            try:
                from repro.columnar.relation import ColumnarAURelation
            except ImportError:
                pass
            else:
                columnar_fact = ColumnarAURelation.from_relation(fact)
                columnar_dim = ColumnarAURelation.from_relation(dim)
                _, rt_ms = timed_ms(
                    lambda: run_multiwindow_roundtrip_columnar(fact, dim, threshold)
                )
                _, chained_ms = timed_ms(
                    lambda: run_multiwindow_columnar(columnar_fact, columnar_dim, threshold)
                )
        if isinstance(chained_ms, float):
            if isinstance(rt_ms, float):
                rt_speedup = rt_ms / chained_ms if chained_ms else float("inf")
            if isinstance(imp_ms, float):
                imp_speedup = imp_ms / chained_ms if chained_ms else float("inf")
        result.add(size, imp_ms, rt_ms, chained_ms, rt_speedup, imp_speedup)
    return result


def equijoin_scaling(
    *,
    sizes: Sequence[int] = (256, 1024, 4096),
    quadratic_ceiling: int = 1024,
    seed: int = 0,
) -> ExperimentResult:
    """Equi-join kernels: Python loop vs columnar pair grid vs searchsorted.

    The quadratic contenders (the tuple-at-a-time loop and the
    ``np.repeat`` × ``np.tile`` grid) only run up to ``quadratic_ceiling``;
    above it their columns degrade to ``-`` — which is the point: the
    sort/searchsorted path reaches sizes the pair grid cannot.
    """
    from repro.workloads.pipeline import (
        equijoin_inputs,
        run_equijoin_columnar,
        run_equijoin_python,
    )

    result = ExperimentResult(
        name="equijoin",
        description="Equi-join runtime (ms): python / columnar grid / columnar searchsorted",
        headers=["Size", "Imp", "Grid", "SearchSorted"],
    )
    for size in sizes:
        left, right = equijoin_inputs(size, seed=seed)
        imp_ms: object = "-"
        grid_ms: object = "-"
        if size <= quadratic_ceiling and backend_enabled("python"):
            _, imp_ms = timed_ms(lambda: run_equijoin_python(left, right))
        fast_ms: object = "-"
        if backend_enabled("columnar"):
            try:
                from repro.columnar.relation import ColumnarAURelation
            except ImportError:
                pass
            else:
                columnar_left = ColumnarAURelation.from_relation(left)
                columnar_right = ColumnarAURelation.from_relation(right)
                if size <= quadratic_ceiling:
                    _, grid_ms = timed_ms(
                        lambda: run_equijoin_columnar(columnar_left, columnar_right, method="grid")
                    )
                _, fast_ms = timed_ms(
                    lambda: run_equijoin_columnar(
                        columnar_left, columnar_right, method="searchsorted"
                    )
                )
        result.add(size, imp_ms, grid_ms, fast_ms)
    return result


def rangejoin_scaling(
    *,
    sizes: Sequence[int] = (256, 1024, 4096),
    quadratic_ceiling: int = 1024,
    seed: int = 0,
) -> ExperimentResult:
    """Range×range join kernels: Python loop vs columnar grid vs overlap sweep.

    Both sides carry uncertain interval keys, so the searchsorted kernel's
    certain-side requirement can never hold — before the interval-overlap
    sweep this workload was grid-only.  The quadratic contenders run up to
    ``quadratic_ceiling``; above it their columns degrade to ``-`` while the
    sweep, which enumerates only the possibly-overlapping pairs, keeps
    scaling.
    """
    from repro.workloads.pipeline import (
        rangejoin_inputs,
        run_rangejoin_columnar,
        run_rangejoin_python,
    )

    result = ExperimentResult(
        name="rangejoin",
        description=(
            "Range-key join runtime (ms): python / columnar grid / columnar sweep"
        ),
        headers=["Size", "Imp", "Grid", "Sweep"],
    )
    for size in sizes:
        left, right = rangejoin_inputs(size, seed=seed)
        imp_ms: object = "-"
        grid_ms: object = "-"
        if size <= quadratic_ceiling and backend_enabled("python"):
            _, imp_ms = timed_ms(lambda: run_rangejoin_python(left, right))
        sweep_ms: object = "-"
        if backend_enabled("columnar"):
            try:
                from repro.columnar.relation import ColumnarAURelation
            except ImportError:
                pass
            else:
                columnar_left = ColumnarAURelation.from_relation(left)
                columnar_right = ColumnarAURelation.from_relation(right)
                if size <= quadratic_ceiling:
                    _, grid_ms = timed_ms(
                        lambda: run_rangejoin_columnar(
                            columnar_left, columnar_right, method="grid"
                        )
                    )
                _, sweep_ms = timed_ms(
                    lambda: run_rangejoin_columnar(
                        columnar_left, columnar_right, method="sweep"
                    )
                )
        result.add(size, imp_ms, grid_ms, sweep_ms)
    return result


def factjoin_scaling(
    *,
    sizes: Sequence[int] = (256, 1024, 4096),
    quadratic_ceiling: int = 1024,
    seed: int = 0,
) -> ExperimentResult:
    """The factorised select → join → select → window chain vs the expanded paths.

    The Python backend and the eager pair-grid contender only run up to
    ``quadratic_ceiling`` — above it their columns degrade to ``-``, which is
    the point: the factorised representation (matched-pair index vectors, no
    payload gather before the boundary) reaches N=4096 where the grid's
    ``O(|L|·|R|)`` scratch exceeds its memory ceiling.  At the capped sizes
    the three results are checked bit-identical at ``.to_rows()`` (a mismatch
    raises, so the table never reports timings for diverging plans).
    """
    from repro.errors import ReproError
    from repro.workloads.pipeline import (
        factjoin_inputs,
        run_factjoin_columnar,
        run_factjoin_python,
    )

    result = ExperimentResult(
        name="factjoin",
        description=(
            "select-join-select-window runtime (ms): python / expanded grid / factorised"
        ),
        headers=["Size", "Imp", "Grid", "Factorised"],
    )
    for size in sizes:
        left, right, v_threshold, w_threshold = factjoin_inputs(size, seed=seed)
        imp_ms: object = "-"
        python_rows = None
        if size <= quadratic_ceiling and backend_enabled("python"):
            python_rows, imp_ms = timed_ms(
                lambda: run_factjoin_python(left, right, v_threshold, w_threshold)
            )
        grid_ms: object = "-"
        fact_ms: object = "-"
        if backend_enabled("columnar"):
            try:
                from repro.columnar.relation import ColumnarAURelation
            except ImportError:
                pass
            else:
                columnar_left = ColumnarAURelation.from_relation(left)
                columnar_right = ColumnarAURelation.from_relation(right)
                grid_rows = None
                if size <= quadratic_ceiling:
                    grid_rows, grid_ms = timed_ms(
                        lambda: run_factjoin_columnar(
                            columnar_left, columnar_right, v_threshold, w_threshold,
                            method="grid",
                        )
                    )
                fact_rows, fact_ms = timed_ms(
                    lambda: run_factjoin_columnar(
                        columnar_left, columnar_right, v_threshold, w_threshold
                    )
                )
                for label, other in (("python", python_rows), ("grid", grid_rows)):
                    if other is not None and (
                        fact_rows.schema != other.schema
                        or fact_rows._rows != other._rows
                    ):
                        raise ReproError(
                            f"factjoin: factorised result diverges from the "
                            f"{label} backend at size {size}"
                        )
        result.add(size, imp_ms, grid_ms, fact_ms)
    return result


def serve_scaling(
    *,
    sizes: Sequence[int] = (256, 512, 1024),
    seed: int = 0,
    queries: int = 120,
    deltas: int = 8,
) -> ExperimentResult:
    """Cached-plan serving under a query/delta mix: incremental vs recompute.

    Drives the same synthetic schedule (repeated parameterized top-k and
    partitioned-window queries, interleaved append/retract bursts — see
    :mod:`repro.workloads.serve`) through three serving configurations:
    cached views patched in place per delta (``Inc``), the plan re-run from
    the accumulated base on every query (``Direct`` — recompute-per-query,
    the query-cost contender), and cached views rebuilt per delta
    (``delta speedup``'s denominator — the delta-cost contender).  Reports
    query throughput (QPS) and tail latency (p99 ms) for the first two, plus
    the patched-vs-rebuilt delta-application speedup; all three modes'
    answers are asserted bit-identical at every size.
    """
    from repro.errors import ReproError

    result = ExperimentResult(
        name="serve",
        description=(
            "Cached-plan serving (QPS / p99 ms): incremental views (Inc) vs "
            "recompute-per-query (Direct), plus patched-vs-rebuilt delta speedup"
        ),
        headers=[
            "Size", "Inc QPS", "Direct QPS", "Inc p99", "Direct p99", "delta speedup",
        ],
    )
    if not backend_enabled("columnar"):
        for size in sizes:
            result.add(size, "-", "-", "-", "-", "-")
        return result
    try:
        from repro.workloads.serve import (
            latency_summary, run_serve_mix, serve_inputs, serve_schedule,
        )
    except ImportError:  # pragma: no cover - environment dependent
        for size in sizes:
            result.add(size, "-", "-", "-", "-", "-")
        return result
    for size in sizes:
        base = serve_inputs(size, seed=seed)
        schedule = serve_schedule(base, queries=queries, deltas=deltas, seed=seed)
        inc_rows, inc_q, inc_d = run_serve_mix(base, schedule, mode="incremental")
        direct_rows, direct_q, _ = run_serve_mix(base, schedule, mode="direct")
        rebuilt_rows, _, rebuilt_d = run_serve_mix(
            base, schedule, mode="cached-recompute"
        )
        for label, other in (("direct", direct_rows), ("rebuilt", rebuilt_rows)):
            for a, b in zip(inc_rows, other):
                if a.schema != b.schema or a._rows != b._rows:
                    raise ReproError(
                        f"serve: incremental serving diverges from the {label} "
                        f"mode at size {size}"
                    )
        inc, direct = latency_summary(inc_q), latency_summary(direct_q)
        delta_speedup: object = "-"
        if inc_d and sum(inc_d):
            delta_speedup = sum(rebuilt_d) / sum(inc_d)
        result.add(
            size, inc["qps"], direct["qps"], inc["p99_ms"], direct["p99_ms"],
            delta_speedup,
        )
    return result


def sql_scaling(
    *,
    sizes: Sequence[int] = (256, 1024, 4096),
    quadratic_ceiling: int = 1024,
    seed: int = 0,
) -> ExperimentResult:
    """The SQL frontend's optimizer bracket: optimized vs literal vs python.

    One query (certain-key equi-join, one-sided WHERE conjuncts, untouched
    payload columns, GROUP BY, top-k — see :mod:`repro.workloads.sql`) runs
    three ways: through the full rule pipeline (pushdown + pruning + kernel
    preference), as the literal grid-joining unpruned lowering, and on the
    row-at-a-time python backend.  The quadratic contenders stop at
    ``quadratic_ceiling`` (their columns degrade to ``-``); at every size
    that runs more than one mode the results are checked bit-identical at
    ``.to_rows()`` before any timing is reported, and the ``Kernels`` column
    records what the optimized joins resolved to (never the grid on this
    workload's certain keys).
    """
    from repro.errors import ReproError
    from repro.workloads.sql import (
        run_sql_optimized,
        run_sql_python,
        run_sql_unoptimized,
        sql_catalog,
        sql_join_kernels,
    )

    result = ExperimentResult(
        name="sql",
        description=(
            "SQL query runtime (ms): python / unoptimized lowering / "
            "optimized plan, plus the optimized joins' kernels"
        ),
        headers=["Size", "Imp", "Unopt", "Opt", "Kernels"],
    )
    for size in sizes:
        catalog = sql_catalog(size, seed=seed)
        imp_ms: object = "-"
        python_rows = None
        if size <= quadratic_ceiling and backend_enabled("python"):
            python_rows, imp_ms = timed_ms(lambda: run_sql_python(catalog))
        unopt_ms: object = "-"
        opt_ms: object = "-"
        kernels: object = "-"
        if backend_enabled("columnar"):
            try:
                import numpy  # noqa: F401 - the columnar backend needs it
            except ImportError:
                pass
            else:
                unopt_rows = None
                if size <= quadratic_ceiling:
                    unopt_rows, unopt_ms = timed_ms(
                        lambda: run_sql_unoptimized(catalog)
                    )
                opt_rows, opt_ms = timed_ms(lambda: run_sql_optimized(catalog))
                kernels = "+".join(sql_join_kernels(catalog))
                for label, other in (
                    ("python", python_rows), ("unoptimized", unopt_rows),
                ):
                    if other is not None and (
                        opt_rows.schema != other.schema
                        or opt_rows._rows != other._rows
                    ):
                        raise ReproError(
                            f"sql: the optimized plan diverges from the "
                            f"{label} execution at size {size}"
                        )
        result.add(size, imp_ms, unopt_ms, opt_ms, kernels)
    return result


#: Registry used by the CLI: experiment id -> driver.
ALL_EXPERIMENTS = {
    "heap_table": heap_table,
    "fig11": fig11_sort_configs,
    "fig12": fig12_sort_quality,
    "fig13": fig13_window_quality,
    "fig14": fig14_sort_scaling,
    "fig15": fig15_window_scaling,
    "fig16": fig16_window_configs,
    "fig17": fig17_realworld_performance,
    "fig18": fig18_realworld_sort_quality,
    "fig19": fig19_realworld_window_quality,
    "pipeline": pipeline_scaling,
    "groupby": groupby_pipeline_scaling,
    "multiwindow": multiwindow_scaling,
    "equijoin": equijoin_scaling,
    "rangejoin": rangejoin_scaling,
    "factjoin": factjoin_scaling,
    "serve": serve_scaling,
    "sql": sql_scaling,
}
