"""Adapters turning operator outputs into per-tuple bounds keyed by ``rid``.

The evaluation compares methods tuple by tuple: for sorting, the bounds on a
tuple's sort position; for windowed aggregation, the bounds on its aggregate
value.  AU-DB results carry these as range-annotated attributes; the adapters
extract them into plain ``{key: (low, high)}`` dictionaries so they can be
compared against the MCDB / Symb baselines with
:func:`repro.metrics.quality.compare_bounds`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.ranges import Scalar
from repro.core.relation import AURelation
from repro.incomplete.lift import lift_xtuples
from repro.incomplete.xtuples import UncertainRelation
from repro.ranking.topk import sort as au_sort
from repro.window.native import window_native
from repro.window.semantics import window_rewrite
from repro.window.spec import WindowSpec

__all__ = [
    "audb_sort_bounds",
    "audb_window_bounds",
    "extract_bounds",
    "audb_from_workload",
]


def audb_from_workload(relation: UncertainRelation) -> AURelation:
    """Lift a workload relation to its AU-DB encoding."""
    return lift_xtuples(relation)


def extract_bounds(
    result: AURelation, key_attribute: str, value_attribute: str
) -> dict[Scalar, tuple[float, float]]:
    """Per-key hull of the value attribute's ranges over all result tuples."""
    bounds: dict[Scalar, tuple[float, float]] = {}
    for tup, mult in result:
        if not mult.possibly_exists:
            continue
        key = tup.value(key_attribute).sg
        value = tup.value(value_attribute)
        low, high = float(value.lb), float(value.ub)
        if key in bounds:
            old_low, old_high = bounds[key]
            bounds[key] = (min(old_low, low), max(old_high, high))
        else:
            bounds[key] = (low, high)
    return bounds


def audb_sort_bounds(
    audb: AURelation,
    order_by: Sequence[str],
    *,
    key_attribute: str,
    method: str = "native",
    descending: bool = False,
    k: int | None = None,
    backend: str = "python",
) -> dict[Scalar, tuple[float, float]]:
    """Per-tuple sort-position bounds produced by the AU-DB sort operator.

    ``backend="columnar"`` evaluates the sort with the vectorized kernels of
    :mod:`repro.columnar`; the bounds are identical to the Python backend.
    """
    ranked = au_sort(
        audb, list(order_by), method=method, descending=descending, k=k, backend=backend
    )
    return extract_bounds(ranked, key_attribute, "pos")


def audb_window_bounds(
    audb: AURelation,
    spec: WindowSpec,
    *,
    key_attribute: str,
    method: str = "native",
    backend: str = "python",
) -> dict[Scalar, tuple[float, float]]:
    """Per-tuple window-aggregate bounds produced by the AU-DB window operator.

    ``backend="columnar"`` evaluates the native method with the vectorized
    kernels of :mod:`repro.columnar`; the bounds are identical.
    """
    if method == "native":
        result = window_native(audb, spec, backend=backend)
    else:
        result = window_rewrite(audb, spec)
    return extract_bounds(result, key_attribute, spec.output)
