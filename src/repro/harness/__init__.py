"""Experiment harness: drivers regenerating every table and figure of the paper."""

from repro.harness.figures import ALL_EXPERIMENTS
from repro.harness.report import ExperimentResult, format_table
from repro.harness.runner import timed, timed_ms
from repro.harness.adapters import (
    audb_from_workload,
    audb_sort_bounds,
    audb_window_bounds,
    extract_bounds,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "format_table",
    "timed",
    "timed_ms",
    "audb_from_workload",
    "audb_sort_bounds",
    "audb_window_bounds",
    "extract_bounds",
]
