"""``python -m repro.harness`` — run the experiment harness CLI."""

import sys

from repro.harness.cli import main

if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
