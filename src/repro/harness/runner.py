"""Timing helpers for the experiment harness."""

from __future__ import annotations

import time
from typing import Any, Callable

__all__ = ["timed", "timed_ms"]


def timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` once, returning its result and the wall-clock time in seconds."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def timed_ms(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` once, returning its result and the wall-clock time in milliseconds."""
    result, seconds = timed(fn)
    return result, seconds * 1000.0
