"""Command-line entry point: ``python -m repro.harness`` / ``repro-harness``.

Runs one (or all) of the paper's experiments and prints the corresponding
table.  Example::

    python -m repro.harness fig11
    python -m repro.harness all
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.harness.figures import ALL_EXPERIMENTS

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Reproduce the tables and figures of the paper's evaluation (Section 9).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="experiment id (figure number) or 'all'",
    )
    args = parser.parse_args(argv)

    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = ALL_EXPERIMENTS[name]()
        print(result.to_text())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
