"""Command-line entry point: ``python -m repro.harness`` / ``repro-harness``.

Runs one (or all) of the paper's experiments and prints the corresponding
table.  Example::

    python -m repro.harness fig11
    python -m repro.harness all
    python -m repro.harness multiwindow --backend columnar --workers 4

``--backend`` restricts which backends the backend-comparison experiments
time (the skipped side prints ``-``); ``--workers`` runs the columnar plans
on the partitioned parallel executor.  Both flags work by setting the
``REPRO_BACKEND`` / ``REPRO_WORKERS`` environment variables for the duration
of the run, so scripted callers can set the variables directly instead.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.harness.figures import ALL_EXPERIMENTS, BACKEND_CHOICES, BACKEND_ENV

__all__ = ["main"]


def _positive_int(raw: str) -> int:
    """``argparse`` type for ``--workers``: a strictly positive integer."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {raw!r}")
    return value


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Reproduce the tables and figures of the paper's evaluation (Section 9).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="experiment id (figure number) or 'all'",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default=None,
        help="backends to time in the backend-comparison experiments "
        "(default: all; the skipped backend's columns print '-')",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker processes for the partitioned parallel executor "
        "(default: the REPRO_WORKERS environment variable, else 1)",
    )
    args = parser.parse_args(argv)

    from repro.columnar.parallel import WORKERS_ENV

    overrides: dict[str, str] = {}
    if args.backend is not None:
        overrides[BACKEND_ENV] = args.backend
    if args.workers is not None:
        overrides[WORKERS_ENV] = str(args.workers)
    previous = {name: os.environ.get(name) for name in overrides}
    os.environ.update(overrides)
    try:
        names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        for name in names:
            result = ALL_EXPERIMENTS[name]()
            print(result.to_text())
            print()
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
