"""``MCDB`` baseline: Monte-Carlo evaluation over sampled possible worlds.

MCDB [34] evaluates the deterministic query over a fixed number of worlds
sampled from the incomplete database.  Following the paper's evaluation
protocol, the per-tuple result bounds reported by MCDB are the minimum and
maximum values observed across the samples — an *under*-approximation of the
true certain/possible bounds (some possible results are never sampled), in
contrast to the AU-DB methods which over-approximate.

Tuples are tracked across worlds through a key attribute (``rid`` in the
synthetic and real-world workloads).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.ranges import Scalar
from repro.errors import WorkloadError
from repro.incomplete.xtuples import UncertainRelation
from repro.relational.relation import Relation
from repro.relational.sort import sort_operator
from repro.relational.window import window_aggregate
from repro.window.spec import WindowSpec

__all__ = ["mcdb_sort_bounds", "mcdb_window_bounds", "run_per_world"]


def run_per_world(
    relation: UncertainRelation,
    samples: int,
    query,
    *,
    seed: int | None = None,
) -> list[Relation]:
    """Evaluate a deterministic ``query`` over ``samples`` sampled worlds."""
    rng = random.Random(seed)
    return [query(relation.sample_world(rng)) for _ in range(samples)]


def _collect_bounds(
    results: list[Relation], key_attribute: str, value_attribute: str
) -> dict[Scalar, tuple[float, float]]:
    bounds: dict[Scalar, tuple[float, float]] = {}
    for result in results:
        key_idx = result.schema.index_of(key_attribute)
        value_idx = result.schema.index_of(value_attribute)
        for row, _mult in result:
            key = row[key_idx]
            value = row[value_idx]
            if key in bounds:
                low, high = bounds[key]
                bounds[key] = (min(low, value), max(high, value))
            else:
                bounds[key] = (value, value)
    return bounds


def mcdb_sort_bounds(
    relation: UncertainRelation,
    order_by: Sequence[str],
    *,
    key_attribute: str,
    samples: int = 10,
    seed: int | None = None,
    descending: bool = False,
) -> dict[Scalar, tuple[float, float]]:
    """Per-tuple sort-position bounds estimated from sampled worlds."""
    if key_attribute not in relation.schema:
        raise WorkloadError(f"key attribute {key_attribute!r} missing from schema")
    results = run_per_world(
        relation,
        samples,
        lambda world: sort_operator(world, order_by, descending=descending),
        seed=seed,
    )
    return _collect_bounds(results, key_attribute, "pos")


def mcdb_window_bounds(
    relation: UncertainRelation,
    spec: WindowSpec,
    *,
    key_attribute: str,
    samples: int = 10,
    seed: int | None = None,
) -> dict[Scalar, tuple[float, float]]:
    """Per-tuple window-aggregate bounds estimated from sampled worlds."""
    if key_attribute not in relation.schema:
        raise WorkloadError(f"key attribute {key_attribute!r} missing from schema")
    results = run_per_world(
        relation,
        samples,
        lambda world: window_aggregate(
            world,
            function=spec.function,
            attribute=None if spec.attribute in (None, "*") else spec.attribute,
            output=spec.output,
            order_by=spec.order_by,
            partition_by=spec.partition_by,
            frame=spec.frame,
            descending=spec.descending,
        ),
        seed=seed,
    )
    return _collect_bounds(results, key_attribute, spec.output)
