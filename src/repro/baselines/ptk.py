"""``PT-k`` baseline: probabilistic threshold top-k (Hua et al. [32]).

PT-k returns every tuple whose probability of belonging to the top-k exceeds
a user-supplied threshold.  Setting the threshold to 1 yields certain
answers; any positive threshold below that yields (a superset of) likely
answers, and a threshold of (effectively) 0 yields all possible answers.

Two evaluation strategies are provided:

* :func:`topk_probabilities_exact` — the dynamic-programming algorithm for
  tuple-independent tables (each x-tuple has one alternative with an
  existence probability): the probability that tuple ``t`` is in the top-k is
  ``p(t) · Pr(at most k-1 better tuples exist)``, computed with a
  Poisson-binomial recurrence over the tuples sorted by score.
* :func:`topk_probabilities_montecarlo` — a sampling fallback for general
  x-tuples with uncertain scores (the setting of the paper's attribute-level
  microbenchmarks, where the authors likewise ran the original PT-k binary on
  discretised inputs).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.ranges import Scalar
from repro.errors import WorkloadError
from repro.incomplete.xtuples import UncertainRelation
from repro.relational.sort import topk as det_topk

__all__ = [
    "topk_probabilities_exact",
    "topk_probabilities_montecarlo",
    "ptk_query",
    "certain_topk_answers",
    "possible_topk_answers",
]


def topk_probabilities_exact(
    relation: UncertainRelation,
    score_attribute: str,
    k: int,
    *,
    key_attribute: str,
    descending: bool = True,
) -> dict[Scalar, float]:
    """Exact Pr(tuple ∈ top-k) for tuple-independent tables.

    Every x-tuple must have exactly one alternative (a certain score); its
    existence probability is the alternative's probability.
    """
    score_idx = relation.schema.index_of(score_attribute)
    key_idx = relation.schema.index_of(key_attribute)
    entries: list[tuple[float, Scalar, float]] = []  # (score, key, probability)
    for xt in relation.xtuples:
        if len(xt.alternatives) != 1:
            raise WorkloadError(
                "the exact PT-k algorithm requires tuple-independent tables "
                "(one alternative per x-tuple); use topk_probabilities_montecarlo instead"
            )
        row = xt.alternatives[0]
        entries.append((row[score_idx], row[key_idx], xt.probabilities[0]))

    entries.sort(key=lambda e: e[0], reverse=descending)

    # dp[j] = probability that exactly j of the already-processed (better)
    # tuples exist.  Only the first k entries matter.
    dp = [1.0] + [0.0] * k
    probabilities: dict[Scalar, float] = {}
    for score, key, prob in entries:
        probabilities[key] = prob * sum(dp[:k])
        # Fold this tuple into the Poisson-binomial distribution of the
        # number of better tuples.
        new_dp = [0.0] * (k + 1)
        for j in range(k + 1):
            if dp[j] == 0.0:
                continue
            new_dp[j] += dp[j] * (1.0 - prob)
            if j + 1 <= k:
                new_dp[j + 1] += dp[j] * prob
            else:
                # Mass beyond k slots can never re-enter the top-k; drop it.
                pass
        dp = new_dp
        del score
    return probabilities


def topk_probabilities_montecarlo(
    relation: UncertainRelation,
    order_by: Sequence[str],
    k: int,
    *,
    key_attribute: str,
    samples: int = 200,
    seed: int | None = None,
    descending: bool = True,
) -> dict[Scalar, float]:
    """Monte-Carlo estimate of Pr(tuple ∈ top-k) for general x-tuples."""
    key_counts: dict[Scalar, int] = {}
    rng = random.Random(seed)
    key_idx_schema = relation.schema.index_of(key_attribute)
    for xt in relation.xtuples:
        for alt in xt.alternatives:
            key_counts.setdefault(alt[key_idx_schema], 0)
    for _ in range(samples):
        world = relation.sample_world(rng)
        result = det_topk(world, order_by, k, descending=descending)
        key_idx = result.schema.index_of(key_attribute)
        seen: set[Scalar] = set()
        for row, _mult in result:
            seen.add(row[key_idx])
        for key in seen:
            key_counts[key] = key_counts.get(key, 0) + 1
    return {key: count / samples for key, count in key_counts.items()}


def ptk_query(probabilities: dict[Scalar, float], threshold: float) -> list[Scalar]:
    """Keys whose top-k probability meets the threshold (sorted by probability)."""
    selected = [(prob, key) for key, prob in probabilities.items() if prob >= threshold]
    selected.sort(key=lambda item: (-item[0], str(item[1])))
    return [key for _prob, key in selected]


def certain_topk_answers(probabilities: dict[Scalar, float], *, tolerance: float = 1e-9) -> list[Scalar]:
    """PT(1): tuples in the top-k of every world."""
    return ptk_query(probabilities, 1.0 - tolerance)


def possible_topk_answers(probabilities: dict[Scalar, float], *, tolerance: float = 1e-9) -> list[Scalar]:
    """PT(>0): tuples in the top-k of at least one (sampled/enumerated) world."""
    return ptk_query(probabilities, tolerance)
