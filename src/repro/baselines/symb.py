"""``Symb`` baseline: exact certain/possible bounds by possible-world reasoning.

The paper's Symb method encodes ranks and aggregation results as symbolic
expressions and uses the Z3 SMT solver to derive *tight* bounds.  SMT solving
is unavailable offline, so this module obtains the same tight bounds by
exhaustively enumerating the possible worlds of the (x-tuple encoded)
incomplete relation and evaluating the deterministic query in each world.

Both approaches share the property the evaluation relies on: they are exact
but intractable beyond small inputs.  Enumeration beyond
``DEFAULT_WORLD_LIMIT`` worlds raises
:class:`~repro.errors.EnumerationLimitError`, mirroring the crashes /
timeouts the paper reports for Z3 past ~1k tuples.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.ranges import Scalar
from repro.errors import WorkloadError
from repro.incomplete.xtuples import UncertainRelation
from repro.relational.relation import Relation
from repro.relational.sort import sort_operator
from repro.relational.window import window_aggregate
from repro.window.spec import WindowSpec

__all__ = ["symb_sort_bounds", "symb_window_bounds", "DEFAULT_WORLD_LIMIT"]

DEFAULT_WORLD_LIMIT = 200_000


def _collect(
    results: list[Relation], key_attribute: str, value_attribute: str
) -> dict[Scalar, tuple[float, float]]:
    bounds: dict[Scalar, tuple[float, float]] = {}
    for result in results:
        key_idx = result.schema.index_of(key_attribute)
        value_idx = result.schema.index_of(value_attribute)
        for row, _mult in result:
            key = row[key_idx]
            value = row[value_idx]
            if key in bounds:
                low, high = bounds[key]
                bounds[key] = (min(low, value), max(high, value))
            else:
                bounds[key] = (value, value)
    return bounds


def symb_sort_bounds(
    relation: UncertainRelation,
    order_by: Sequence[str],
    *,
    key_attribute: str,
    descending: bool = False,
    world_limit: int = DEFAULT_WORLD_LIMIT,
) -> dict[Scalar, tuple[float, float]]:
    """Exact per-tuple sort-position bounds across every possible world."""
    if key_attribute not in relation.schema:
        raise WorkloadError(f"key attribute {key_attribute!r} missing from schema")
    results = [
        sort_operator(world, order_by, descending=descending)
        for world, _p in relation.iter_worlds(limit=world_limit)
    ]
    return _collect(results, key_attribute, "pos")


def symb_window_bounds(
    relation: UncertainRelation,
    spec: WindowSpec,
    *,
    key_attribute: str,
    world_limit: int = DEFAULT_WORLD_LIMIT,
) -> dict[Scalar, tuple[float, float]]:
    """Exact per-tuple window-aggregate bounds across every possible world."""
    if key_attribute not in relation.schema:
        raise WorkloadError(f"key attribute {key_attribute!r} missing from schema")
    results = [
        window_aggregate(
            world,
            function=spec.function,
            attribute=None if spec.attribute in (None, "*") else spec.attribute,
            output=spec.output,
            order_by=spec.order_by,
            partition_by=spec.partition_by,
            frame=spec.frame,
            descending=spec.descending,
        )
        for world, _p in relation.iter_worlds(limit=world_limit)
    ]
    return _collect(results, key_attribute, spec.output)
