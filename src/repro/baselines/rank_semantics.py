"""Alternative uncertain top-k semantics from related work (Section 2, Fig. 1).

These baselines operate on an explicit :class:`PossibleWorlds` instance and
implement the classic competing semantics the paper contrasts with AU-DBs:

* **U-Top** [56] — the most probable top-k *list*.
* **U-Rank** [56] — for every rank, the tuple most likely to occupy it.
* **Global-Top-k** [64] — the k tuples with the highest probability of being
  in the top-k.
* **Expected rank** [19] — the k tuples with the smallest expected rank
  (a tuple absent from a world is ranked after every present tuple).

They exist to reproduce the running example (Fig. 1b-1e) and to demonstrate
why the AU-DB semantics — which reports both certain and possible answers and
stays closed under further queries — differs from each of them.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.ranges import Scalar
from repro.incomplete.worlds import PossibleWorlds
from repro.relational.relation import Relation, Row
from repro.relational.sort import sort_operator

__all__ = ["u_top", "u_rank", "global_topk", "expected_ranks", "expected_rank_topk"]


def _ranked_world(
    world: Relation,
    order_by: Sequence[str],
    descending: bool,
    project: Sequence[str] | None = None,
) -> list[Row]:
    """The rows of a world in rank order (duplicates expanded).

    With ``project`` set, every ranked row is projected onto those attributes;
    this is how the classic semantics identify answers by key (e.g. "term")
    rather than by the full row.
    """
    ranked = sort_operator(world, order_by, descending=descending)
    pos_idx = ranked.schema.index_of("pos")
    rows = sorted(ranked.rows(), key=lambda row: row[pos_idx])
    rows = [row[:pos_idx] + row[pos_idx + 1:] for row in rows]
    if project is not None:
        idx = world.schema.indexes_of(project)
        rows = [tuple(row[i] for i in idx) for row in rows]
    return rows


def u_top(
    worlds: PossibleWorlds,
    order_by: Sequence[str],
    k: int,
    *,
    descending: bool = False,
    project: Sequence[str] | None = None,
) -> list[Row]:
    """U-Top: the top-k list with the highest total probability."""
    weights: dict[tuple[Row, ...], float] = {}
    for world, probability in worlds:
        prefix = tuple(_ranked_world(world, order_by, descending, project)[:k])
        weights[prefix] = weights.get(prefix, 0.0) + probability
    best = max(weights.items(), key=lambda item: item[1])
    return list(best[0])


def u_rank(
    worlds: PossibleWorlds,
    order_by: Sequence[str],
    k: int,
    *,
    descending: bool = False,
    project: Sequence[str] | None = None,
) -> list[Row]:
    """U-Rank: for every rank position, the row most likely to occupy it."""
    result: list[Row] = []
    for rank in range(k):
        weights: dict[Row, float] = {}
        for world, probability in worlds:
            ranked = _ranked_world(world, order_by, descending, project)
            if rank < len(ranked):
                row = ranked[rank]
                weights[row] = weights.get(row, 0.0) + probability
        if not weights:
            break
        best = max(weights.items(), key=lambda item: item[1])
        result.append(best[0])
    return result


def global_topk(
    worlds: PossibleWorlds,
    order_by: Sequence[str],
    k: int,
    *,
    descending: bool = False,
    project: Sequence[str] | None = None,
) -> list[Row]:
    """Global-Top-k: the k rows with the highest probability of being in the top-k."""
    weights: dict[Row, float] = {}
    for world, probability in worlds:
        for row in set(_ranked_world(world, order_by, descending, project)[:k]):
            weights[row] = weights.get(row, 0.0) + probability
    ordered = sorted(weights.items(), key=lambda item: (-item[1], str(item[0])))
    return [row for row, _weight in ordered[:k]]


def expected_ranks(
    worlds: PossibleWorlds,
    order_by: Sequence[str],
    *,
    descending: bool = False,
    project: Sequence[str] | None = None,
) -> dict[Row, float]:
    """Expected rank of every possible row across the worlds.

    Following Cormode et al. [19], a row absent from a world is assigned that
    world's size as its rank (it comes after every present row).
    """
    all_rows: dict[Row, None] = {}
    per_world: list[tuple[list[Row], float]] = []
    for world, probability in worlds:
        ranked = _ranked_world(world, order_by, descending, project)
        per_world.append((ranked, probability))
        for row in ranked:
            all_rows.setdefault(row, None)
    totals: dict[Row, float] = {row: 0.0 for row in all_rows}
    for ranked, probability in per_world:
        positions: dict[Row, int] = {}
        for position, row in enumerate(ranked):
            positions.setdefault(row, position)
        size = len(ranked)
        for row in totals:
            totals[row] += probability * positions.get(row, size)
    return totals


def expected_rank_topk(
    worlds: PossibleWorlds,
    order_by: Sequence[str],
    k: int,
    *,
    descending: bool = False,
    project: Sequence[str] | None = None,
) -> list[Row]:
    """The k rows with the smallest expected rank."""
    ranks = expected_ranks(worlds, order_by, descending=descending, project=project)
    ordered = sorted(ranks.items(), key=lambda item: (item[1], str(item[0])))
    return [row for row, _rank in ordered[:k]]


def certain_answers(
    worlds: PossibleWorlds,
    order_by: Sequence[str],
    k: int,
    *,
    descending: bool = False,
    project: Sequence[str] | None = None,
) -> list[Row]:
    """Rows that belong to the top-k of every world (PT(1)-style certain answers)."""
    survivors: set[Row] | None = None
    for world, _probability in worlds:
        prefix = set(_ranked_world(world, order_by, descending, project)[:k])
        survivors = prefix if survivors is None else survivors & prefix
    return sorted(survivors or set(), key=str)


def possible_answers(
    worlds: PossibleWorlds,
    order_by: Sequence[str],
    k: int,
    *,
    descending: bool = False,
    project: Sequence[str] | None = None,
) -> list[Row]:
    """Rows that belong to the top-k of at least one world (PT(>0)-style)."""
    union: set[Row] = set()
    for world, _probability in worlds:
        union |= set(_ranked_world(world, order_by, descending, project)[:k])
    return sorted(union, key=str)


__all__ += ["certain_answers", "possible_answers"]
