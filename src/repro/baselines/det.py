"""``Det`` baseline: deterministic query evaluation that ignores uncertainty.

The paper reports Det to expose the overhead of the uncertainty-aware
methods.  Det evaluates the query over a single deterministic relation — the
selected-guess world — using the deterministic substrate, and therefore
reports neither certain nor possible answers.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.relation import AURelation
from repro.incomplete.xtuples import UncertainRelation
from repro.relational.relation import Relation
from repro.relational.sort import sort_operator, topk as det_topk_operator
from repro.relational.window import window_aggregate
from repro.window.spec import WindowSpec

__all__ = ["selected_guess_relation", "det_sort", "det_topk", "det_window"]


def selected_guess_relation(source: AURelation | UncertainRelation | Relation) -> Relation:
    """Extract the deterministic relation Det operates on (the SG world)."""
    if isinstance(source, Relation):
        return source
    if isinstance(source, UncertainRelation):
        return source.selected_guess_world()
    relation = Relation(source.schema)
    for row, mult in source.selected_guess_rows().items():
        relation.add(row, mult)
    return relation


def det_sort(
    source: AURelation | UncertainRelation | Relation,
    order_by: Sequence[str],
    *,
    position_attribute: str = "pos",
    descending: bool = False,
) -> Relation:
    """Deterministic sort of the selected-guess world."""
    return sort_operator(
        selected_guess_relation(source),
        order_by,
        position_attribute=position_attribute,
        descending=descending,
    )


def det_topk(
    source: AURelation | UncertainRelation | Relation,
    order_by: Sequence[str],
    k: int,
    *,
    descending: bool = False,
) -> Relation:
    """Deterministic top-k of the selected-guess world."""
    return det_topk_operator(
        selected_guess_relation(source), order_by, k, descending=descending
    )


def det_window(
    source: AURelation | UncertainRelation | Relation,
    spec: WindowSpec,
) -> Relation:
    """Deterministic windowed aggregation over the selected-guess world."""
    return window_aggregate(
        selected_guess_relation(source),
        function=spec.function,
        attribute=None if spec.attribute in (None, "*") else spec.attribute,
        output=spec.output,
        order_by=spec.order_by,
        partition_by=spec.partition_by,
        frame=spec.frame,
        descending=spec.descending,
    )
