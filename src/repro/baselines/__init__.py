"""Baseline methods the paper evaluates against (Det, MCDB, Symb, PT-k, …)."""

from repro.baselines.det import det_sort, det_topk, det_window, selected_guess_relation
from repro.baselines.mcdb import mcdb_sort_bounds, mcdb_window_bounds, run_per_world
from repro.baselines.symb import symb_sort_bounds, symb_window_bounds
from repro.baselines.ptk import (
    certain_topk_answers,
    possible_topk_answers,
    ptk_query,
    topk_probabilities_exact,
    topk_probabilities_montecarlo,
)
from repro.baselines.rank_semantics import (
    certain_answers,
    expected_rank_topk,
    expected_ranks,
    global_topk,
    possible_answers,
    u_rank,
    u_top,
)

__all__ = [
    "det_sort",
    "det_topk",
    "det_window",
    "selected_guess_relation",
    "mcdb_sort_bounds",
    "mcdb_window_bounds",
    "run_per_world",
    "symb_sort_bounds",
    "symb_window_bounds",
    "topk_probabilities_exact",
    "topk_probabilities_montecarlo",
    "ptk_query",
    "certain_topk_answers",
    "possible_topk_answers",
    "u_top",
    "u_rank",
    "global_topk",
    "expected_ranks",
    "expected_rank_topk",
    "certain_answers",
    "possible_answers",
]
