"""Bound-quality metrics (Section 9, "recall" and "accuracy").

Given a per-tuple *estimated* bound ``[a, b]`` and the *tight* bound
``[c, d]`` (as computed by the exact Symb baseline or exhaustive possible
world enumeration), the paper measures:

* **recall** — how much of the true bound the estimate covers:
  ``overlap / (d - c)``.  Over-approximations (AU-DB methods) have recall 1;
  sampling (MCDB) misses possible results and has recall < 1.
* **accuracy** (precision) — how much of the estimate is actually possible:
  ``overlap / (b - a)``.  Under-approximations have accuracy 1;
  over-approximations have accuracy ≤ 1.
* **estimated value range** — the relative width ``(b - a) / (d - c)`` used
  in Figures 12 and 13: values above one indicate over-approximation, below
  one under-approximation.

Per-relation numbers are the averages over all tuples, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = [
    "bound_overlap",
    "bound_recall",
    "bound_accuracy",
    "estimated_range_ratio",
    "QualityReport",
    "compare_bounds",
]

Bound = tuple[float, float]


def bound_overlap(estimate: Bound, truth: Bound) -> float:
    """Length of the intersection of the two bounds (0 when disjoint)."""
    return max(0.0, min(estimate[1], truth[1]) - max(estimate[0], truth[0]))


def bound_recall(estimate: Bound, truth: Bound) -> float:
    """Fraction of the true bound covered by the estimate."""
    width = truth[1] - truth[0]
    if width <= 0:
        return 1.0 if estimate[0] <= truth[0] <= estimate[1] else 0.0
    return min(1.0, bound_overlap(estimate, truth) / width)


def bound_accuracy(estimate: Bound, truth: Bound) -> float:
    """Fraction of the estimated bound that is actually possible (precision)."""
    width = estimate[1] - estimate[0]
    if width <= 0:
        return 1.0 if truth[0] <= estimate[0] <= truth[1] else 0.0
    return min(1.0, bound_overlap(estimate, truth) / width)


def estimated_range_ratio(estimate: Bound, truth: Bound) -> float:
    """Relative width of the estimate vs the tight bound (Figures 12/13)."""
    true_width = truth[1] - truth[0]
    est_width = estimate[1] - estimate[0]
    if true_width <= 0:
        return 1.0 if est_width <= 0 else float("inf")
    return est_width / true_width


@dataclass(frozen=True)
class QualityReport:
    """Average bound quality over a set of tuples."""

    accuracy: float
    recall: float
    range_ratio: float
    tuples: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"accuracy={self.accuracy:.3f} recall={self.recall:.3f} "
            f"range_ratio={self.range_ratio:.3f} (n={self.tuples})"
        )


def compare_bounds(
    estimates: Mapping[object, Bound],
    truths: Mapping[object, Bound],
    *,
    missing_recall: float = 0.0,
) -> QualityReport:
    """Average quality of ``estimates`` against the tight ``truths``.

    Keys present in ``truths`` but absent from ``estimates`` (e.g. tuples a
    sampling method never produced) contribute ``missing_recall`` recall and
    full accuracy, mirroring the paper's treatment of missed possible answers.
    Ratios are averaged over keys with finite ratios.
    """
    accuracies: list[float] = []
    recalls: list[float] = []
    ratios: list[float] = []
    for key, truth in truths.items():
        estimate = estimates.get(key)
        if estimate is None:
            accuracies.append(1.0)
            recalls.append(missing_recall)
            ratios.append(0.0)
            continue
        accuracies.append(bound_accuracy(estimate, truth))
        recalls.append(bound_recall(estimate, truth))
        # The range ratio is only informative where at least one side reports
        # an actual range; point-vs-point pairs (certain tuples) are skipped so
        # that they do not wash out the average.
        if truth[1] - truth[0] <= 0 and estimate[1] - estimate[0] <= 0:
            continue
        ratio = estimated_range_ratio(estimate, truth)
        if ratio != float("inf"):
            ratios.append(ratio)
    count = len(truths)
    if count == 0:
        return QualityReport(1.0, 1.0, 1.0, 0)
    return QualityReport(
        accuracy=sum(accuracies) / count,
        recall=sum(recalls) / count,
        range_ratio=(sum(ratios) / len(ratios)) if ratios else 1.0,
        tuples=count,
    )
