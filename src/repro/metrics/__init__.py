"""Bound-quality metrics used by the evaluation harness."""

from repro.metrics.quality import (
    QualityReport,
    bound_accuracy,
    bound_overlap,
    bound_recall,
    compare_bounds,
    estimated_range_ratio,
)

__all__ = [
    "QualityReport",
    "bound_accuracy",
    "bound_overlap",
    "bound_recall",
    "compare_bounds",
    "estimated_range_ratio",
]
