"""Uncertain top-k queries over AU-DBs.

A top-k query is the uncertain sort operator followed by a selection on the
position attribute (Section 5): a tuple whose position is certainly below
``k`` is a certain answer, a tuple whose position is only possibly below
``k`` is a possible answer, and tuples whose position is certainly at least
``k`` are filtered out.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.expressions import attr
from repro.core.operators.select import select
from repro.core.relation import AURelation
from repro.errors import OperatorError
from repro.ranking.native import sort_native
from repro.ranking.semantics import sort_rewrite

__all__ = ["topk", "sort"]


def sort(
    relation: AURelation,
    order_by: Sequence[str],
    *,
    method: str = "native",
    position_attribute: str = "pos",
    k: int | None = None,
    descending: bool = False,
) -> AURelation:
    """Uncertain sort using either the native sweep or the rewrite semantics."""
    if method == "native":
        return sort_native(
            relation,
            order_by,
            k=k,
            position_attribute=position_attribute,
            descending=descending,
        )
    if method == "rewrite":
        return sort_rewrite(
            relation, order_by, position_attribute=position_attribute, descending=descending
        )
    raise OperatorError(f"unknown sort method {method!r}; expected 'native' or 'rewrite'")


def topk(
    relation: AURelation,
    order_by: Sequence[str],
    k: int,
    *,
    method: str = "native",
    position_attribute: str = "pos",
    keep_position: bool = True,
    descending: bool = False,
) -> AURelation:
    """Uncertain top-k: tuples possibly among the first ``k`` in the sort order.

    The result's multiplicity triples encode answer classes: a lower bound of
    one marks a *certain* answer, an upper bound of one with a lower bound of
    zero marks a merely *possible* answer.
    """
    if k < 0:
        raise OperatorError("k must be non-negative")
    ranked = sort(
        relation,
        order_by,
        method=method,
        position_attribute=position_attribute,
        k=k if method == "native" else None,
        descending=descending,
    )
    filtered = select(ranked, attr(position_attribute).lt(k))
    if keep_position:
        return filtered
    from repro.core.operators.project import project  # local import to avoid cycle

    return project(filtered, list(relation.schema.attributes))
