"""Uncertain top-k queries over AU-DBs.

A top-k query is the uncertain sort operator followed by a selection on the
position attribute (Section 5): a tuple whose position is certainly below
``k`` is a certain answer, a tuple whose position is only possibly below
``k`` is a possible answer, and tuples whose position is certainly at least
``k`` are filtered out.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.expressions import attr
from repro.core.operators.select import select
from repro.core.relation import AURelation
from repro.errors import OperatorError
from repro.ranking.native import sort_native
from repro.ranking.semantics import sort_rewrite

__all__ = ["topk", "sort"]


def sort(
    relation: AURelation,
    order_by: Sequence[str],
    *,
    method: str = "native",
    position_attribute: str = "pos",
    k: int | None = None,
    descending: bool = False,
    backend: str = "python",
) -> AURelation:
    """Uncertain sort using either the native sweep or the rewrite semantics.

    ``backend="columnar"`` routes to the NumPy-backed vectorized kernels of
    :mod:`repro.columnar` (bit-identical bounds for both methods — the
    columnar kernels evaluate the definitional Equations 1-3 directly, which
    the native sweep reproduces).
    """
    if method not in ("native", "rewrite"):
        raise OperatorError(f"unknown sort method {method!r}; expected 'native' or 'rewrite'")
    if method == "rewrite" and backend == "python":
        return sort_rewrite(
            relation, order_by, position_attribute=position_attribute, descending=descending
        )
    # sort_native owns the backend dispatch (including the NumPy gate); the
    # columnar kernels evaluate the definitional equations directly, so the
    # rewrite method on the columnar backend is the unpruned columnar sort.
    return sort_native(
        relation,
        order_by,
        k=k if method == "native" else None,
        position_attribute=position_attribute,
        descending=descending,
        backend=backend,
    )


def topk(
    relation: AURelation,
    order_by: Sequence[str],
    k: int,
    *,
    method: str = "native",
    position_attribute: str = "pos",
    keep_position: bool = True,
    descending: bool = False,
    backend: str = "python",
) -> AURelation:
    """Uncertain top-k: tuples possibly among the first ``k`` in the sort order.

    The result's multiplicity triples encode answer classes: a lower bound of
    one marks a *certain* answer, an upper bound of one with a lower bound of
    zero marks a merely *possible* answer.  ``backend="columnar"`` computes
    the underlying sort with the vectorized kernels of :mod:`repro.columnar`.
    """
    if k < 0:
        raise OperatorError("k must be non-negative")
    ranked = sort(
        relation,
        order_by,
        method=method,
        position_attribute=position_attribute,
        k=k if method == "native" else None,
        descending=descending,
        backend=backend,
    )
    filtered = select(ranked, attr(position_attribute).lt(k))
    if keep_position:
        return filtered
    from repro.core.operators.project import project  # local import to avoid cycle

    return project(filtered, list(relation.schema.attributes))
