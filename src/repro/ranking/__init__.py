"""Uncertain sorting and top-k over AU-DBs (the paper's Section 5 and 8.1)."""

from repro.ranking.positions import (
    certainly_before,
    possibly_before,
    position_bounds,
    sg_before,
)
from repro.ranking.semantics import sort_rewrite, split_duplicates
from repro.ranking.native import sort_native
from repro.ranking.topk import sort, topk

__all__ = [
    "certainly_before",
    "possibly_before",
    "sg_before",
    "position_bounds",
    "sort_rewrite",
    "split_duplicates",
    "sort_native",
    "sort",
    "topk",
]
