"""Native one-pass uncertain sort / top-k operator (Algorithm 1 and 2).

The operator processes the input ordered by the lower bounds of the order-by
attributes and maintains a min-heap (``todo``) keyed on the upper bounds.  A
tuple's window of uncertainty closes once an incoming tuple certainly follows
it; at that moment its position bounds are final and it is emitted.  Position
lower bounds accumulate the certain multiplicity of emitted tuples; position
upper bounds are obtained from a running prefix sum over the possible
multiplicity of processed tuples (the tuples that possibly precede the one
being emitted), which keeps the bounds identical to the definitional
(rewrite) semantics while doing a single pass.

For top-k queries the sweep stops as soon as every unprocessed tuple is
certainly outside the top-k; tuples whose position is still uncertain are
flushed from the heap first so that no possible answer is lost.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from typing import Sequence

from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.errors import OperatorError
from repro.ranking.positions import RankedItem, relation_items, sort_key_value
from repro.ranking.semantics import split_duplicates

__all__ = ["sort_native"]


def _sg_positions(
    items: list[RankedItem], order_by: Sequence[str], *, descending: bool = False
) -> dict[int, int]:
    """Selected-guess position of the first duplicate of every item.

    Computed by ordering the items on their selected-guess keys (with the
    remaining attributes and the sequence number as tiebreakers, i.e. the
    paper's ``<ᵗᵒᵗᵃˡ_O``) and accumulating selected-guess multiplicities.
    """
    if not items:
        return {}
    schema = items[0].tup.schema
    rest = [name for name in schema if name not in set(order_by)]

    def sg_total_key(item: RankedItem) -> tuple:
        rest_key = tuple(sort_key_value(item.tup.value(name).sg) for name in rest)
        return (item.key_sg, rest_key, item.seq)

    ordered = sorted(items, key=sg_total_key)
    positions: dict[int, int] = {}
    running = 0
    for item in ordered:
        positions[item.seq] = running
        running += item.mult.sg
    return positions


def sort_native(
    relation: AURelation,
    order_by: Sequence[str],
    *,
    k: int | None = None,
    position_attribute: str = "pos",
    descending: bool = False,
    backend: str = "python",
) -> AURelation:
    """One-pass uncertain sort (Algorithm 1); optionally top-k limited.

    Returns the relation extended with a range-annotated position attribute.
    With ``k`` given, tuples that are certainly not among the first ``k`` may
    be omitted (their multiplicity would be filtered to zero by the top-k
    selection anyway), which lets the sweep terminate early.

    ``backend="columnar"`` evaluates the same bounds with the NumPy-backed
    vectorized kernels of :mod:`repro.columnar` (results are bit-identical;
    the heap sweep is replaced by the batched emission schedule).
    """
    if backend == "columnar":
        try:
            from repro.columnar.sort import sort_columnar  # local: NumPy optional
        except ImportError as exc:
            raise OperatorError("the columnar backend requires NumPy") from exc

        return sort_columnar(
            relation,
            order_by,
            k=k,
            position_attribute=position_attribute,
            descending=descending,
        )
    if backend != "python":
        raise OperatorError(
            f"unknown sort backend {backend!r}; expected 'python' or 'columnar'"
        )
    if not order_by:
        raise OperatorError("sort requires at least one order-by attribute")
    items = relation_items(relation, order_by, descending=descending)
    sg_positions = _sg_positions(items, order_by, descending=descending)

    items.sort(key=lambda item: item.key_lower)

    out_schema = relation.schema.extend(position_attribute)
    out = AURelation(out_schema)

    # State of the sweep.
    todo: list[tuple[tuple, int, int]] = []  # (key_upper, seq, index into `items`)
    processed_keys: list[tuple] = []  # key_lower of processed items (non-decreasing)
    prefix_possible: list[int] = [0]  # prefix sums of possible multiplicity
    rank_lower = 0  # total certain multiplicity of emitted tuples
    pos_lower_of: dict[int, int] = {}  # seq -> position lower bound

    def emit(index: int) -> None:
        nonlocal rank_lower
        item = items[index]
        lower = pos_lower_of[item.seq]
        # Possible predecessors: processed items whose lower-bound key does not
        # exceed this item's upper-bound key (ties count), minus the item itself.
        count = bisect_right(processed_keys, item.key_upper)
        upper = prefix_possible[count] - item.mult.ub
        sg = sg_positions[item.seq]
        sg = max(lower, min(sg, upper))
        base = RangeValue(lower, sg, upper)
        for position, mult in split_duplicates(base, item.mult):
            if k is not None and position.lb >= k:
                # This duplicate is certainly outside the top-k; a selection
                # on the position attribute would filter it to zero anyway.
                break
            out.add(item.tup.extend(position_attribute, position), mult)
        rank_lower += item.mult.lb

    cutoff = False
    for index, item in enumerate(items):
        # Emit every tuple that certainly precedes the incoming one.
        while todo and todo[0][0] < item.key_lower:
            _key, _seq, closed_index = heapq.heappop(todo)
            emit(closed_index)
        if k is not None and rank_lower > k:
            # Every unprocessed tuple certainly follows all emitted tuples and
            # is therefore certainly outside the top-k: stop feeding the heap.
            # Tuples still in the heap may yet be possible answers, so keep
            # accumulating the possible-multiplicity prefix (which keeps their
            # position upper bounds identical to the definitional semantics)
            # until the heap drains.
            cutoff = True
        if cutoff and not todo:
            break
        if not cutoff:
            pos_lower_of[item.seq] = rank_lower
            heapq.heappush(todo, (item.key_upper, item.seq, index))
        processed_keys.append(item.key_lower)
        prefix_possible.append(prefix_possible[-1] + item.mult.ub)

    while todo:
        _key, _seq, closed_index = heapq.heappop(todo)
        emit(closed_index)
    return out
