"""Definitional ("rewrite") uncertain sort operator over AU-DBs (Section 5).

``sort_rewrite`` implements Definition 2 directly: every input tuple is split
into its possible duplicates, each extended with a range-annotated position
attribute computed from Equations 1-3 by comparing it against every other
tuple.  This mirrors the SQL rewrite evaluated as ``Rewr`` in the paper and
runs in quadratic time; :func:`repro.ranking.native.sort_native` computes the
same bounds with the one-pass sweep of Algorithm 1.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.multiplicity import Multiplicity, duplicate_annotation
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.errors import OperatorError
from repro.ranking.positions import RankedItem, relation_items, sg_before

__all__ = ["sort_rewrite", "split_duplicates"]


def split_duplicates(
    base_position: RangeValue, mult: Multiplicity
) -> list[tuple[RangeValue, Multiplicity]]:
    """Split a tuple with multiplicity bounds into per-duplicate positions.

    Implements the case split of Fig. 4 / Algorithm 2: the ``i``-th duplicate
    is certain for ``i < lb``, selected-guess-only for ``lb <= i < sg``, and
    merely possible for ``sg <= i < ub``.  Every duplicate's position is the
    base position shifted by ``i``.
    """
    out: list[tuple[RangeValue, Multiplicity]] = []
    for i in range(mult.ub):
        position = RangeValue(base_position.lb + i, base_position.sg + i, base_position.ub + i)
        out.append((position, duplicate_annotation(i, mult.lb, mult.sg)))
    return out


def _base_positions(
    items: list[RankedItem], order_by: Sequence[str], *, descending: bool = False
) -> list[RangeValue]:
    """Position bounds of the first duplicate of every item (quadratic pass)."""
    positions: list[RangeValue] = []
    for item in items:
        lower = 0
        sg = 0
        upper = 0
        for other in items:
            if other.seq == item.seq:
                continue
            if other.key_upper < item.key_lower:
                lower += other.mult.lb
            if other.key_lower <= item.key_upper:
                upper += other.mult.ub
            if sg_before(
                other.tup,
                item.tup,
                order_by,
                descending=descending,
                first_seq=other.seq,
                second_seq=item.seq,
            ):
                sg += other.mult.sg
        sg = max(lower, min(sg, upper))
        positions.append(RangeValue(lower, sg, upper))
    return positions


def sort_rewrite(
    relation: AURelation,
    order_by: Sequence[str],
    *,
    position_attribute: str = "pos",
    descending: bool = False,
) -> AURelation:
    """Uncertain sort: extend every (split) tuple with its position bounds."""
    if not order_by:
        raise OperatorError("sort requires at least one order-by attribute")
    items = relation_items(relation, order_by, descending=descending)
    positions = _base_positions(items, order_by, descending=descending)

    out_schema = relation.schema.extend(position_attribute)
    out = AURelation(out_schema)
    for item, base in zip(items, positions):
        for position, mult in split_duplicates(base, item.mult):
            out.add(item.tup.extend(position_attribute, position), mult)
    return out
