"""Sort-position bounds for AU-DB tuples (Section 5, Equations 1-3).

Uncertainty in the order-by attributes and in tuple multiplicities makes a
tuple's sort position uncertain.  The position of (the first duplicate of) a
tuple ``t`` is bounded by

* **lower bound** — the total certain multiplicity of tuples that *certainly*
  precede ``t`` in every bounded world,
* **selected guess** — the position in the selected-guess world, and
* **upper bound** — the total possible multiplicity of tuples that *possibly*
  precede ``t`` (including possible ties, which a tiebreaker could resolve
  either way).

Tuple comparisons use the interval-lexicographic order over the order-by
attributes: ``t`` certainly precedes ``t'`` when ``t``'s vector of "latest"
attribute bounds is lexicographically smaller than ``t'``'s vector of
"earliest" bounds, and possibly precedes it when its earliest vector is not
lexicographically greater than ``t'``'s latest vector.  This is tight under
attribute independence and reproduces the paper's worked examples.

Descending sort orders are supported by wrapping key components in
:class:`Desc`, which inverts comparisons; under a descending order the
"earliest" bound of a range is its upper end.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Any, Sequence

from repro.core.multiplicity import Multiplicity
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.core.tuples import AUTuple
from repro.relational.sort import sort_key_value

__all__ = [
    "Desc",
    "order_key_earliest",
    "order_key_sg",
    "order_key_latest",
    "certainly_before",
    "possibly_before",
    "sg_before",
    "position_bounds",
    "RankedItem",
    "relation_items",
]


@total_ordering
class Desc:
    """Wrapper inverting the comparison order of a key component."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Desc) and self.value == other.value

    def __lt__(self, other: "Desc") -> bool:
        return other.value < self.value

    def __hash__(self) -> int:
        return hash(("desc", self.value))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Desc({self.value!r})"


def _component(value: Any, descending: bool) -> Any:
    key = sort_key_value(value)
    return Desc(key) if descending else key


def order_key_earliest(tup: AUTuple, order_by: Sequence[str], *, descending: bool = False) -> tuple:
    """The earliest (smallest wrt the sort order) key the tuple can take."""
    if descending:
        return tuple(_component(tup.value(name).ub, True) for name in order_by)
    return tuple(_component(tup.value(name).lb, False) for name in order_by)


def order_key_latest(tup: AUTuple, order_by: Sequence[str], *, descending: bool = False) -> tuple:
    """The latest (largest wrt the sort order) key the tuple can take."""
    if descending:
        return tuple(_component(tup.value(name).lb, True) for name in order_by)
    return tuple(_component(tup.value(name).ub, False) for name in order_by)


def order_key_sg(tup: AUTuple, order_by: Sequence[str], *, descending: bool = False) -> tuple:
    """The selected-guess sort key of the tuple."""
    return tuple(_component(tup.value(name).sg, descending) for name in order_by)


def certainly_before(
    first: AUTuple, second: AUTuple, order_by: Sequence[str], *, descending: bool = False
) -> bool:
    """``first`` precedes ``second`` under ``<_O`` in every bounded world."""
    return order_key_latest(first, order_by, descending=descending) < order_key_earliest(
        second, order_by, descending=descending
    )


def possibly_before(
    first: AUTuple, second: AUTuple, order_by: Sequence[str], *, descending: bool = False
) -> bool:
    """``first`` may precede ``second`` in some bounded world (ties included)."""
    return order_key_earliest(first, order_by, descending=descending) <= order_key_latest(
        second, order_by, descending=descending
    )


def sg_before(
    first: AUTuple,
    second: AUTuple,
    order_by: Sequence[str],
    *,
    descending: bool = False,
    first_seq: int = 0,
    second_seq: int = 0,
) -> bool:
    """``first`` precedes ``second`` in the selected-guess world.

    Ties on the order-by attributes are broken by the remaining attributes
    (the paper's ``<ᵗᵒᵗᵃˡ_O``) and finally by the supplied sequence numbers so
    that the selected-guess positions form a proper permutation.
    """
    key_first = order_key_sg(first, order_by, descending=descending)
    key_second = order_key_sg(second, order_by, descending=descending)
    if key_first != key_second:
        return key_first < key_second
    rest = [name for name in first.schema if name not in set(order_by)]
    rest_first = tuple(sort_key_value(first.value(name).sg) for name in rest)
    rest_second = tuple(sort_key_value(second.value(name).sg) for name in rest)
    if rest_first != rest_second:
        return rest_first < rest_second
    return first_seq < second_seq


@dataclass
class RankedItem:
    """A tuple of the input relation together with cached sort keys.

    ``seq`` is a per-relation sequence number used as the final tiebreaker for
    the selected-guess order.
    """

    tup: AUTuple
    mult: Multiplicity
    seq: int
    key_lower: tuple  # earliest possible sort key
    key_sg: tuple
    key_upper: tuple  # latest possible sort key


def relation_items(
    relation: AURelation, order_by: Sequence[str], *, descending: bool = False
) -> list[RankedItem]:
    """Materialise the relation as :class:`RankedItem` objects with cached keys."""
    relation.schema.require(list(order_by))
    items: list[RankedItem] = []
    for seq, (tup, mult) in enumerate(relation):
        items.append(
            RankedItem(
                tup=tup,
                mult=mult,
                seq=seq,
                key_lower=order_key_earliest(tup, order_by, descending=descending),
                key_sg=order_key_sg(tup, order_by, descending=descending),
                key_upper=order_key_latest(tup, order_by, descending=descending),
            )
        )
    return items


def position_bounds(
    relation: AURelation,
    order_by: Sequence[str],
    tup: AUTuple,
    duplicate: int = 0,
    *,
    descending: bool = False,
) -> RangeValue:
    """Position bounds of the ``duplicate``-th copy of ``tup`` (Equations 1-3).

    This is the quadratic, definitional computation used by the rewrite-based
    implementation; the native operator of :mod:`repro.ranking.native`
    computes the same bounds in a single sweep.
    """
    items = relation_items(relation, order_by, descending=descending)
    tup_seq = None
    for item in items:
        if item.tup.values == tup.values:
            tup_seq = item.seq
            break
    target = AUTuple(relation.schema, tup.values)
    target_key_lower = order_key_earliest(target, order_by, descending=descending)
    target_key_upper = order_key_latest(target, order_by, descending=descending)

    lower = 0
    sg = 0
    upper = 0
    for item in items:
        if item.tup.values == tup.values:
            continue
        if item.key_upper < target_key_lower:
            lower += item.mult.lb
        if item.key_lower <= target_key_upper:
            upper += item.mult.ub
        if sg_before(
            item.tup,
            target,
            order_by,
            descending=descending,
            first_seq=item.seq,
            second_seq=tup_seq if tup_seq is not None else len(items),
        ):
            sg += item.mult.sg
    lower += duplicate
    sg += duplicate
    upper += duplicate
    sg = max(lower, min(sg, upper))
    return RangeValue(lower, sg, upper)
