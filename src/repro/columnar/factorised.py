"""Factorised AU-relations: join/cross results as products, not pair grids.

A :class:`FactorisedAURelation` represents a relation as a product of
independent *groups*.  Each group holds one or more
:class:`~repro.columnar.relation.ColumnarAURelation` fragments plus a pairing
structure — ``None`` indices for a full product over a single fragment, or
matched-pair index vectors (the searchsorted equi-join candidates) aligning
several fragments row-for-row — and a lazy multiplicity vector (the pointwise
product of the gathered fragment annotations, materialised only when an
operator filters it).  The logical relation is the lexicographic product of
the groups, group 0 outermost: exactly the left-outer / right-inner pair
order of the eager ``np.repeat`` × ``np.tile`` grid, so
:meth:`FactorisedAURelation.expand` — the *only* materialisation point — is
bit-identical to the expanded pipeline, row order included.

Operators push down instead of expanding: ``select`` / ``extend`` evaluate
inside the group owning the referenced columns (ownership decided by
:func:`repro.columnar.expressions.referenced_attributes`), ``join`` keeps the
matched-pair index vectors instead of gathering both payloads, and the
row-local stages (``sort`` / ``top-k`` / ``window`` / ``groupby``) run over a
*slim* gather of only the columns they touch, reattaching untouched fragments
through a row-id indirection.  Anything outside the proven class — callable
predicates, expressions spanning unknown columns, NaN windows, grid-method
joins — expands and delegates to the eager kernels, which keeps every result
bit-identical to the Python backend by construction.

>>> from repro.core.expressions import attr, const
>>> from repro.core.relation import AURelation
>>> from repro.columnar.factorised import as_factorised, fact_cross, fact_select
>>> left = as_factorised(AURelation.from_rows(["a"], [([1], 1), ([2], 1)]))
>>> right = as_factorised(
...     AURelation.from_rows(["b"], [([7], 1), ([8], 1), ([9], 1)])
... )
>>> product = fact_cross(left, right)
>>> len(product), [group.size for group in product.groups]
(6, [2, 3])
>>> expanded = product.expand()  # the only materialisation point
>>> [tuple(v.sg for v in expanded.row_values(i)) for i in range(3)]
[(1, 7), (1, 8), (1, 9)]

Selection on ``b`` pushes into the group that owns it — the product shrinks
without ever enumerating the six pairs:

>>> kept = fact_select(product, attr("b").ge(const(9)))
>>> len(kept), [group.size for group in kept.groups]
(2, [2, 1])
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.columnar import operators as ops
from repro.columnar.expressions import (
    predicate_masks,
    range_columns,
    referenced_attributes,
)
from repro.columnar.parallel import pair_blocks, parallel_map
from repro.columnar.relation import (
    AttributeColumn,
    ColumnarAURelation,
    as_columnar,
    concat_relations,
)
from repro.core.booleans import RangeBool
from repro.core.expressions import Expression
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.core.schema import Schema
from repro.core.tuples import AUTuple
from repro.errors import OperatorError, WindowSpecError
from repro.window.spec import WindowSpec

__all__ = [
    "FactorisedGroup",
    "FactorisedAURelation",
    "as_factorised",
    "fact_select",
    "fact_project",
    "fact_extend",
    "fact_rename",
    "fact_cross",
    "fact_join",
    "fact_groupby_aggregate",
    "fact_sort",
    "fact_window",
    "pair_rows_materialised",
    "reset_pair_rows",
]


# ---------------------------------------------------------------------------
# Allocation accounting (the smoke gate asserts factorised << grid)
# ---------------------------------------------------------------------------

_PAIR_ROWS = 0


def _record(rows: int) -> None:
    global _PAIR_ROWS
    _PAIR_ROWS += int(rows)


def reset_pair_rows() -> None:
    """Reset the pair-row materialisation counter (see below)."""
    global _PAIR_ROWS
    _PAIR_ROWS = 0


def pair_rows_materialised() -> int:
    """Total pair rows gathered into explicit arrays since the last reset.

    Every operation that materialises a row-aligned array over (candidate)
    pairs adds its length here — expansion blocks, slim gathers, index
    compositions, join candidates.  ``benchmarks/smoke_backends.py`` asserts
    this stays asymptotically below the eager grid's ``|L| · |R|`` pair
    count, so a regression that silently re-expands mid-chain fails CI.
    """
    return _PAIR_ROWS


# ---------------------------------------------------------------------------
# The representation
# ---------------------------------------------------------------------------


class FactorisedGroup:
    """One independent component of a factorised relation.

    ``fragments`` are columnar relations whose rows this group draws from;
    ``indices`` aligns them — entry ``j`` is either ``None`` (identity: the
    group's rows *are* fragment ``j``'s rows) or an ``int64`` row vector of
    length :attr:`size` into fragment ``j`` (matched pairs).  A group with a
    single fragment, an identity index, and lazy multiplicities is *simple*:
    operators can mutate the fragment itself (no dead rows ever accumulate).

    Multiplicities are lazy by default — the pointwise product of the
    gathered fragment annotations — and become explicit arrays once a
    selection or join filters them.
    """

    __slots__ = ("fragments", "indices", "mult_lb", "mult_sg", "mult_ub", "size")

    def __init__(
        self,
        fragments: Sequence[ColumnarAURelation],
        indices: Sequence[np.ndarray | None],
        mult_lb: np.ndarray | None = None,
        mult_sg: np.ndarray | None = None,
        mult_ub: np.ndarray | None = None,
        size: int | None = None,
    ):
        self.fragments = tuple(fragments)
        self.indices = tuple(indices)
        if size is None:
            first = self.indices[0]
            size = len(self.fragments[0]) if first is None else len(first)
        self.size = int(size)
        self.mult_lb = mult_lb
        self.mult_sg = mult_sg
        self.mult_ub = mult_ub

    @property
    def is_simple(self) -> bool:
        return (
            len(self.fragments) == 1
            and self.indices[0] is None
            and self.mult_lb is None
        )

    def column(self, name: str) -> AttributeColumn:
        """One attribute gathered to group-level rows (zero-copy on identity)."""
        for fragment, idx in zip(self.fragments, self.indices):
            if name in fragment.schema:
                column = fragment.column(name)
                if idx is None:
                    return column
                _record(len(idx))
                return AttributeColumn(name, column.lb[idx], column.sg[idx], column.ub[idx])
        raise KeyError(name)

    def multiplicities(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The group's multiplicity triple (lazy product unless explicit)."""
        if self.mult_lb is not None:
            assert self.mult_sg is not None and self.mult_ub is not None
            return self.mult_lb, self.mult_sg, self.mult_ub
        lb = sg = ub = None
        for fragment, idx in zip(self.fragments, self.indices):
            flb, fsg, fub = fragment.mult_lb, fragment.mult_sg, fragment.mult_ub
            if idx is not None:
                _record(len(idx))
                flb, fsg, fub = flb[idx], fsg[idx], fub[idx]
            if lb is None:
                lb, sg, ub = flb, fsg, fub
            else:
                lb, sg, ub = lb * flb, sg * fsg, ub * fub
        assert lb is not None and sg is not None and ub is not None
        return lb, sg, ub

    def filtered(
        self,
        keep: np.ndarray,
        mult_lb: np.ndarray,
        mult_sg: np.ndarray,
        mult_ub: np.ndarray,
    ) -> "FactorisedGroup":
        """Rows at ``keep`` (an int64 subsequence) under explicit multiplicities."""
        _record(len(keep) * len(self.indices))
        indices = tuple(
            keep if idx is None else idx[keep] for idx in self.indices
        )
        return FactorisedGroup(
            self.fragments, indices, mult_lb[keep], mult_sg[keep], mult_ub[keep],
            size=len(keep),
        )


class FactorisedAURelation:
    """A columnar AU-relation held as a product of independent groups.

    The logical relation is the lexicographic product of :attr:`groups`
    (group 0 outermost — the eager grid's left-outer / right-inner pair
    enumeration), each logical row's hypercube the concatenation of the
    gathered fragment rows and its annotation the product of the group
    multiplicities.  :meth:`expand` materialises that product; every other
    method keeps the factorised form.
    """

    __slots__ = ("schema", "groups", "_locate")

    def __init__(self, schema: Schema, groups: Sequence[FactorisedGroup]):
        self.schema = schema
        self.groups = tuple(groups)
        locate: dict[str, tuple[int, int]] = {}
        for g, group in enumerate(self.groups):
            for f, fragment in enumerate(group.fragments):
                for name in fragment.schema:
                    locate[name] = (g, f)
        self._locate = locate

    @staticmethod
    def from_columnar(relation: ColumnarAURelation) -> "FactorisedAURelation":
        """Wrap an expanded relation as a single simple group (zero copies)."""
        return FactorisedAURelation(
            relation.schema, (FactorisedGroup((relation,), (None,)),)
        )

    # -- geometry -------------------------------------------------------------

    def __len__(self) -> int:
        n = 1
        for group in self.groups:
            n *= group.size
        return n

    def _strides(self) -> list[int]:
        """Per-group stride of the lexicographic product (group 0 outermost)."""
        strides = [1] * len(self.groups)
        for g in range(len(self.groups) - 2, -1, -1):
            strides[g] = strides[g + 1] * self.groups[g + 1].size
        return strides

    def _rows_in_group(self, g: int, pair: np.ndarray) -> np.ndarray:
        """Group-``g`` row index of each logical pair row in ``pair``."""
        if len(self.groups) == 1:
            return pair
        if len(pair) == 0:
            return np.empty(0, dtype=np.int64)
        stride = self._strides()[g]
        rows = pair // stride if stride > 1 else pair
        return rows % self.groups[g].size

    # -- materialisation ------------------------------------------------------

    def expand(self, *, workers: int = 1) -> ColumnarAURelation:
        """The expanded columnar relation — the single materialisation point.

        Bit-identical to running the eager pipeline: columns gather in schema
        order through the product enumeration, multiplicities multiply
        pointwise.  A trivial wrapper (one simple group over the full schema)
        returns its fragment with zero copies.  With ``workers > 1`` the pair
        range splits into contiguous blocks expanded on the forked worker
        pool; block-order concatenation reproduces the serial row order.
        """
        if len(self.groups) == 1 and self.groups[0].is_simple:
            fragment = self.groups[0].fragments[0]
            if fragment.schema == self.schema:
                return fragment
            return fragment.restrict(list(self.schema))
        n = len(self)
        blocks = pair_blocks(n, workers)
        if len(blocks) > 1:
            return concat_relations(
                parallel_map(
                    lambda block: self._expand_block(*block), blocks, workers=workers
                )
            )
        return self._expand_block(0, n)

    def _expand_block(self, start: int, stop: int) -> ColumnarAURelation:
        n = stop - start
        _record(n * (len(self.schema.attributes) + 1))
        if n == 0:
            group_rows = [np.empty(0, dtype=np.int64) for _ in self.groups]
        else:
            pair = np.arange(start, stop, dtype=np.int64)
            strides = self._strides()
            group_rows = []
            for g, group in enumerate(self.groups):
                rows = pair // strides[g] if strides[g] > 1 else pair
                if len(self.groups) > 1:
                    rows = rows % group.size
                group_rows.append(rows)
        columns = []
        for name in self.schema:
            g, f = self._locate[name]
            group = self.groups[g]
            column = group.fragments[f].column(name)
            idx = group_rows[g]
            frag_idx = group.indices[f]
            if frag_idx is not None:
                idx = frag_idx[idx]
            columns.append(AttributeColumn(name, column.lb[idx], column.sg[idx], column.ub[idx]))
        mult_lb = mult_sg = mult_ub = None
        for g, group in enumerate(self.groups):
            glb, gsg, gub = group.multiplicities()
            glb, gsg, gub = glb[group_rows[g]], gsg[group_rows[g]], gub[group_rows[g]]
            if mult_lb is None:
                mult_lb, mult_sg, mult_ub = glb, gsg, gub
            else:
                mult_lb, mult_sg, mult_ub = mult_lb * glb, mult_sg * gsg, mult_ub * gub
        assert mult_lb is not None and mult_sg is not None and mult_ub is not None
        return ColumnarAURelation(self.schema, columns, mult_lb, mult_sg, mult_ub)

    def to_relation(self, *, workers: int = 1) -> AURelation:
        """Row-major boundary conversion (expand, then merge zero/equal rows)."""
        expanded = self.expand(workers=workers)
        if workers > 1:
            return expanded.to_relation(workers=workers)
        return expanded.to_relation()

    # -- gathering ------------------------------------------------------------

    def gather_column(self, name: str) -> AttributeColumn:
        """One attribute gathered over all logical pair rows."""
        g, f = self._locate[name]
        group = self.groups[g]
        column = group.fragments[f].column(name)
        frag_idx = group.indices[f]
        if len(self.groups) == 1:
            if frag_idx is None:
                return column
            _record(len(frag_idx))
            return AttributeColumn(
                name, column.lb[frag_idx], column.sg[frag_idx], column.ub[frag_idx]
            )
        rows = self._rows_in_group(g, np.arange(len(self), dtype=np.int64))
        idx = rows if frag_idx is None else frag_idx[rows]
        _record(len(idx))
        return AttributeColumn(name, column.lb[idx], column.sg[idx], column.ub[idx])

    def pair_multiplicities(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The multiplicity triple over all logical pair rows."""
        if len(self.groups) == 1:
            return self.groups[0].multiplicities()
        n = len(self)
        _record(n)
        mult_lb = mult_sg = mult_ub = None
        for g, group in enumerate(self.groups):
            glb, gsg, gub = group.multiplicities()
            rows = self._rows_in_group(g, np.arange(n, dtype=np.int64))
            glb, gsg, gub = glb[rows], gsg[rows], gub[rows]
            if mult_lb is None:
                mult_lb, mult_sg, mult_ub = glb, gsg, gub
            else:
                mult_lb, mult_sg, mult_ub = mult_lb * glb, mult_sg * gsg, mult_ub * gub
        assert mult_lb is not None and mult_sg is not None and mult_ub is not None
        return mult_lb, mult_sg, mult_ub

    def slim_relation(
        self, names: Sequence[str], *, rowid: str | None = None
    ) -> ColumnarAURelation:
        """Only the named columns, gathered over pairs, with the pair mults.

        The slim twin of ``expand().restrict(names)``: row-local stages
        (sort / window / groupby) run on it bit-identically because they read
        nothing else.  With ``rowid`` set, a certain ``int64`` row-number
        column is appended so stage outputs can be traced back to their
        source pair (the untouched fragments reattach through it).
        """
        columns = [self.gather_column(name) for name in names]
        schema_names = tuple(names)
        if rowid is not None:
            rid = np.arange(len(self), dtype=np.int64)
            columns.append(AttributeColumn(rowid, rid, rid, rid))
            schema_names += (rowid,)
        mult_lb, mult_sg, mult_ub = self.pair_multiplicities()
        return ColumnarAURelation(
            Schema(schema_names), columns, mult_lb, mult_sg, mult_ub
        )

    # -- restructuring --------------------------------------------------------

    def merge_span(self, lo: int, hi: int) -> "FactorisedAURelation":
        """Groups ``lo..hi`` (inclusive) flattened into one paired group.

        The merged group enumerates the span's sub-product in the same
        lexicographic order, so the overall pair order is unchanged — this is
        how an operator whose columns span several groups localises them
        before pushing down.
        """
        if lo == hi:
            return self
        span = self.groups[lo : hi + 1]
        total = 1
        for group in span:
            total *= group.size
        strides = [1] * len(span)
        for g in range(len(span) - 2, -1, -1):
            strides[g] = strides[g + 1] * span[g + 1].size
        if total == 0:
            pair = np.empty(0, dtype=np.int64)
        else:
            pair = np.arange(total, dtype=np.int64)
        fragments: list[ColumnarAURelation] = []
        indices: list[np.ndarray | None] = []
        lazy = all(group.mult_lb is None for group in span)
        mult_lb = mult_sg = mult_ub = None
        for g, group in enumerate(span):
            if total == 0:
                rows = pair
            else:
                rows = pair // strides[g] if strides[g] > 1 else pair
                rows = rows % group.size if len(span) > 1 else rows
            _record(total * len(group.indices))
            for fragment, idx in zip(group.fragments, group.indices):
                fragments.append(fragment)
                indices.append(rows if idx is None else idx[rows])
            if not lazy:
                glb, gsg, gub = group.multiplicities()
                glb, gsg, gub = glb[rows], gsg[rows], gub[rows]
                if mult_lb is None:
                    mult_lb, mult_sg, mult_ub = glb, gsg, gub
                else:
                    mult_lb, mult_sg, mult_ub = (
                        mult_lb * glb, mult_sg * gsg, mult_ub * gub
                    )
        merged = FactorisedGroup(
            tuple(fragments), tuple(indices), mult_lb, mult_sg, mult_ub, size=total
        )
        return FactorisedAURelation(
            self.schema, self.groups[:lo] + (merged,) + self.groups[hi + 1 :]
        )

    def _owning_span(self, names: Sequence[str]) -> tuple[int, int]:
        """The contiguous group span covering ``names`` (group 0 if empty)."""
        touched = sorted({self._locate[name][0] for name in names}) or [0]
        return touched[0], touched[-1]

    def _replace_group(self, g: int, group: FactorisedGroup) -> "FactorisedAURelation":
        return FactorisedAURelation(
            self.schema, self.groups[:g] + (group,) + self.groups[g + 1 :]
        )


def as_factorised(
    relation: "AURelation | ColumnarAURelation | FactorisedAURelation",
) -> FactorisedAURelation:
    """Coerce any relation layout to factorised (trivial wrap is zero-copy)."""
    if isinstance(relation, FactorisedAURelation):
        return relation
    return FactorisedAURelation.from_columnar(as_columnar(relation))


# ---------------------------------------------------------------------------
# Pushdown operators
# ---------------------------------------------------------------------------


def _group_slim(
    fact: FactorisedAURelation, group: FactorisedGroup, names: Sequence[str]
) -> ColumnarAURelation:
    """Group-level gather of ``names`` under dummy multiplicities.

    Expression evaluation never reads multiplicities, so the all-ones dummy
    is safe; the gather touches only *live* group rows (the index vectors),
    so rows a previous selection dropped are never evaluated.
    """
    ordered = [name for name in fact.schema if name in set(names)]
    columns = [group.column(name) for name in ordered]
    ones = np.ones(group.size, dtype=np.int64)
    return ColumnarAURelation(Schema(tuple(ordered)), columns, ones, ones, ones)


def fact_select(
    fact: FactorisedAURelation,
    predicate: Expression | Callable[[AUTuple], RangeBool],
) -> "FactorisedAURelation | ColumnarAURelation":
    """Selection pushed into the group owning the predicate's columns.

    The predicate's bounding-triple masks are evaluated at group level (over
    the merged span when the referenced columns straddle groups), the group's
    multiplicities filter per component, and rows with a zero possible
    multiplicity drop out of the group — exactly the eager
    :func:`repro.columnar.operators.select` applied through the product.
    Callable predicates (unknown column set) expand and run eagerly.
    """
    refs = referenced_attributes(predicate)
    if refs is None or not refs <= set(fact.schema):
        return ops.select(fact.expand(), predicate)
    lo, hi = fact._owning_span(sorted(refs))
    fact = fact.merge_span(lo, hi)
    group = fact.groups[lo]
    if group.is_simple:
        fragment = group.fragments[0]
        filtered = ops.select(fragment, predicate)
        return fact._replace_group(lo, FactorisedGroup((filtered,), (None,)))
    slim = _group_slim(fact, group, sorted(refs))
    certain, sg, possible = predicate_masks(slim, predicate)
    glb, gsg, gub = group.multiplicities()
    mult_lb = np.where(certain, glb, 0)
    mult_sg = np.where(sg, gsg, 0)
    mult_ub = np.where(possible, gub, 0)
    keep = np.flatnonzero(mult_ub > 0)
    return fact._replace_group(lo, group.filtered(keep, mult_lb, mult_sg, mult_ub))


def fact_project(
    fact: FactorisedAURelation, attributes: Sequence[str]
) -> ColumnarAURelation:
    """Bag projection: slim-gather the kept columns, then merge duplicates.

    The gather materialises only the projected columns (and the pair
    multiplicities) — never the dropped payload — and the duplicate merge is
    the same first-occurrence kernel the eager path uses, so the result is
    bit-identical to ``project(expand())``.
    """
    schema = fact.schema.project(list(attributes))
    return ops.merge_equal_rows(fact.slim_relation(schema.attributes))


def fact_extend(
    fact: FactorisedAURelation,
    name: str,
    expression: Expression | Callable[[AUTuple], RangeValue],
) -> "FactorisedAURelation | ColumnarAURelation":
    """Computed column, evaluated inside the group owning its inputs.

    The new column joins that group as an identity-aligned single-column
    fragment under neutral (all-ones) multiplicities, so the product's
    annotations are unchanged.  Callable expressions expand and run eagerly.
    """
    fact.schema.extend(name)  # validates the name early (clear SchemaError)
    refs = referenced_attributes(expression)
    if refs is None or not refs <= set(fact.schema):
        return ops.extend(fact.expand(), name, expression)
    lo, hi = fact._owning_span(sorted(refs))
    fact = fact.merge_span(lo, hi)
    group = fact.groups[lo]
    schema = fact.schema.extend(name)
    if group.is_simple:
        extended = ops.extend(group.fragments[0], name, expression)
        groups = fact.groups[:lo] + (FactorisedGroup((extended,), (None,)),) + fact.groups[lo + 1 :]
        return FactorisedAURelation(schema, groups)
    slim = _group_slim(fact, group, sorted(refs))
    lb, sg, ub = range_columns(slim, expression)
    ones = np.ones(group.size, dtype=np.int64)
    extra = ColumnarAURelation(
        Schema((name,)), (AttributeColumn(name, lb, sg, ub),), ones, ones, ones
    )
    extended_group = FactorisedGroup(
        group.fragments + (extra,),
        group.indices + (None,),
        group.mult_lb,
        group.mult_sg,
        group.mult_ub,
        size=group.size,
    )
    groups = fact.groups[:lo] + (extended_group,) + fact.groups[lo + 1 :]
    return FactorisedAURelation(schema, groups)


def fact_rename(
    fact: FactorisedAURelation, mapping: Mapping[str, str]
) -> FactorisedAURelation:
    """Attributes renamed per fragment (arrays shared, structure unchanged)."""
    mapping = dict(mapping)
    schema = fact.schema.rename(mapping)  # validates clashes on the full schema
    groups = []
    for group in fact.groups:
        fragments = []
        for fragment in group.fragments:
            sub = {old: new for old, new in mapping.items() if old in fragment.schema}
            fragments.append(fragment.rename(sub) if sub else fragment)
        groups.append(
            FactorisedGroup(
                tuple(fragments), group.indices,
                group.mult_lb, group.mult_sg, group.mult_ub, size=group.size,
            )
        )
    return FactorisedAURelation(schema, tuple(groups))


def _disambiguated(
    left: FactorisedAURelation, right: FactorisedAURelation
) -> tuple[Schema, FactorisedAURelation]:
    """The concatenated schema and the right side renamed to match it."""
    schema = left.schema.concat(right.schema, disambiguate=True)
    renamed = schema.attributes[len(left.schema.attributes) :]
    mapping = {
        old: new for old, new in zip(right.schema, renamed) if old != new
    }
    return schema, (fact_rename(right, mapping) if mapping else right)


def fact_cross(
    left: FactorisedAURelation, right: FactorisedAURelation
) -> FactorisedAURelation:
    """Cross product as pure group concatenation — no pair enumeration at all.

    The result's group list is ``left.groups + right.groups`` (right-hand
    name clashes ``_r``-suffixed), whose lexicographic product is exactly the
    eager grid's left-outer / right-inner pair order.
    """
    schema, right = _disambiguated(left, right)
    return FactorisedAURelation(schema, left.groups + right.groups)


def _take_column(column: AttributeColumn, idx: np.ndarray, name: str) -> AttributeColumn:
    _record(len(idx))
    return AttributeColumn(name, column.lb[idx], column.sg[idx], column.ub[idx])


def fact_join(
    left: FactorisedAURelation,
    right: FactorisedAURelation,
    predicate: Expression | Callable[[AUTuple], RangeBool] | None = None,
    *,
    on: Sequence[str] | None = None,
    method: str = "auto",
    workers: int = 1,
) -> "FactorisedAURelation | ColumnarAURelation":
    """Equi-, sweep-, or band-join as matched-pair index vectors over the sides.

    When a non-grid candidate enumeration qualifies — any ``on`` key certain
    on one side (searchsorted), both sides uncertain but exactly vectorizable
    (the range×range sweep), or a band window extractable from the predicate
    of a key-less join (the shifted-endpoint sweep) — the result is a single
    paired group holding *both* sides' fragments aligned by the surviving
    candidate pairs: only the key columns and the pair index vectors
    materialise, never the payloads.  The gates are the same as the eager
    kernel's (:func:`repro.columnar.operators.candidate_key_pairs` /
    :func:`~repro.columnar.operators.band_candidate_pairs`); grid-method
    requests and non-qualifying inputs expand both sides and delegate to the
    eager join (automatic fallback, bit-identical by construction).
    """
    if on is None and predicate is None:
        raise OperatorError("join requires either a predicate or an `on` attribute list")
    if method not in ("auto", "grid", "searchsorted", "sweep", "band"):
        raise OperatorError(
            f"unknown join method {method!r}; expected 'auto', 'grid', "
            "'searchsorted', 'sweep' or 'band'"
        )
    if method in ("searchsorted", "sweep") and not on:
        raise OperatorError(f"the {method} equi-join requires an `on` attribute list")
    if method == "band" and predicate is None:
        raise OperatorError("the band join requires a predicate")
    if method == "band" and on:
        raise OperatorError(
            "the band join enumerates candidates from the predicate; drop the "
            "`on` keys or use method='auto'"
        )
    left.schema.require(list(on or ()))
    right.schema.require(list(on or ()))

    if method != "grid" and on:
        keys = list(on)
        left_keys = [left.gather_column(name) for name in keys]
        right_keys = [right.gather_column(name) for name in keys]
        kernels = ("searchsorted", "sweep") if method == "auto" else (method,)
        candidates = ops.candidate_key_pairs(left_keys, right_keys, kernels=kernels)
        if candidates is not None:
            return _fact_join_pairs(
                left, right, predicate, keys, left_keys, right_keys,
                candidates[0], candidates[1],
                workers=workers,
            )
        if method == "searchsorted":
            raise OperatorError(
                "searchsorted equi-join requires a certain (lb == sg == ub) "
                "key column on one side and NaN-free, exactly promotable numeric "
                "key columns; use method='grid' (or 'auto') for these inputs"
            )
        if method == "sweep":
            raise OperatorError(
                "the sweep equi-join requires NaN-free, exactly promotable "
                "numeric key columns; use method='grid' (or 'auto') for these inputs"
            )
    if method in ("auto", "band") and not on and predicate is not None:
        plan = ops.band_join_plan(predicate, left.schema, right.schema)
        pairs = None
        if plan is not None:
            left_name, right_name, low, high = plan
            pairs = ops.band_candidate_pairs(
                left.gather_column(left_name),
                right.gather_column(right_name),
                low,
                high,
            )
        if pairs is not None:
            return _fact_join_pairs(
                left, right, predicate, [], [], [], *pairs, workers=workers
            )
        if method == "band":
            raise OperatorError(
                "the band join requires an AND-tree predicate comparing a left "
                "attribute against a (constant-shifted) right attribute over "
                "NaN-free, exactly promotable numeric columns; use "
                "method='grid' (or 'auto') for these inputs"
            )
    return ops.join(
        left.expand(), right.expand(), predicate, on=on, method=method, workers=workers
    )


def _fact_join_pairs(
    left: FactorisedAURelation,
    right: FactorisedAURelation,
    predicate: Expression | Callable[[AUTuple], RangeBool] | None,
    on: list[str],
    left_keys: list[AttributeColumn],
    right_keys: list[AttributeColumn],
    left_rows: np.ndarray,
    right_rows: np.ndarray,
    *,
    workers: int = 1,
) -> "FactorisedAURelation | ColumnarAURelation":
    schema, right_renamed = _disambiguated(left, right)
    n = len(left_rows)
    _record(2 * n)

    certain = np.ones(n, dtype=bool)
    sg = np.ones(n, dtype=bool)
    possible = np.ones(n, dtype=bool)
    for left_key, right_key in zip(left_keys, right_keys):
        eq_cert, eq_sg, eq_poss = ops._equality_triple_arrays(
            left_key.lb[left_rows],
            left_key.sg[left_rows],
            left_key.ub[left_rows],
            right_key.lb[right_rows],
            right_key.sg[right_rows],
            right_key.ub[right_rows],
        )
        certain &= eq_cert
        sg &= eq_sg
        possible &= eq_poss
    if predicate is not None:
        refs = referenced_attributes(predicate)
        if refs is None:
            names = list(schema)  # callable: may read any attribute
        else:
            if not refs <= set(schema):
                # Reproduce the eager error without materialising payloads.
                schema.require(sorted(refs))
            names = [name for name in schema if name in refs]
        columns = []
        n_left = len(left.schema.attributes)
        for name in names:
            position = schema.index_of(name)
            if position < n_left:
                source = left.gather_column(left.schema.attributes[position])
                columns.append(_take_column(source, left_rows, name))
            else:
                source = right.gather_column(
                    right.schema.attributes[position - n_left]
                )
                columns.append(_take_column(source, right_rows, name))
        ones = np.ones(n, dtype=np.int64)
        slim = ColumnarAURelation(
            Schema(tuple(names)), columns, ones, ones, ones
        )
        blocks = pair_blocks(n, workers) or [(0, n)]
        if len(blocks) > 1:

            def block_masks(block: tuple[int, int]) -> tuple[np.ndarray, ...]:
                start, stop = block
                return predicate_masks(
                    slim.take(np.arange(start, stop, dtype=np.int64)), predicate
                )

            parts = parallel_map(block_masks, blocks, workers=workers)
            p_cert = np.concatenate([part[0] for part in parts])
            p_sg = np.concatenate([part[1] for part in parts])
            p_poss = np.concatenate([part[2] for part in parts])
        else:
            p_cert, p_sg, p_poss = predicate_masks(slim, predicate)
        certain &= p_cert
        sg &= p_sg
        possible &= p_poss

    llb, lsg, lub = left.pair_multiplicities()
    rlb, rsg, rub = right.pair_multiplicities()
    mult_lb = np.where(certain, llb[left_rows] * rlb[right_rows], 0)
    mult_sg = np.where(sg, lsg[left_rows] * rsg[right_rows], 0)
    mult_ub = np.where(possible, lub[left_rows] * rub[right_rows], 0)
    keep = np.flatnonzero(mult_ub > 0)
    left_rows = left_rows[keep]
    right_rows = right_rows[keep]
    mult_lb, mult_sg, mult_ub = mult_lb[keep], mult_sg[keep], mult_ub[keep]

    fragments: list[ColumnarAURelation] = []
    indices: list[np.ndarray | None] = []
    for fact, rows in ((left, left_rows), (right_renamed, right_rows)):
        for g, group in enumerate(fact.groups):
            group_rows = fact._rows_in_group(g, rows)
            _record(len(rows) * len(group.indices))
            for fragment, idx in zip(group.fragments, group.indices):
                fragments.append(fragment)
                indices.append(group_rows if idx is None else idx[group_rows])
    merged = FactorisedGroup(
        tuple(fragments), tuple(indices), mult_lb, mult_sg, mult_ub,
        size=len(left_rows),
    )
    return FactorisedAURelation(schema, (merged,))


def fact_groupby_aggregate(
    fact: FactorisedAURelation,
    group_by: Sequence[str],
    aggregates: Sequence[tuple[str, str | None, str]],
    *,
    workers: int = 1,
) -> ColumnarAURelation:
    """Grouped aggregation over a slim gather of only the touched columns.

    The eager kernel reads nothing but the group-by columns, the aggregated
    value columns, and the multiplicities — all reproduced exactly by the
    slim gather — so running it there is bit-identical to aggregating the
    expansion.  NaN group keys expand first: that path re-materialises the
    row-major layout internally, which must see the full schema.
    """
    from repro.core.operators.aggregate import validate_aggregate_spec

    validate_aggregate_spec(fact.schema, group_by, aggregates)
    names = list(
        dict.fromkeys(
            list(group_by)
            + [attr for _f, attr, _n in aggregates if attr not in (None, "*")]
        )
    )
    slim = fact.slim_relation(tuple(names))
    if any(
        ops._components_carry_nan(slim.column(name)) for name in group_by
    ):
        return ops.groupby_aggregate(fact.expand(), group_by, aggregates, workers=workers)
    return ops.groupby_aggregate(slim, group_by, aggregates, workers=workers)


def _fresh_name(schema: Schema, *avoid: str) -> str:
    name = "_src"
    while name in schema or name in avoid:
        name += "_"
    return name


def _gather_sg_codes(fact: FactorisedAURelation, name: str) -> np.ndarray:
    """Selected-guess rank codes of one attribute, gathered over all pairs.

    Codes are computed on the *fragment* (small) and gathered through the
    pair indices: rank codes are order-preserving per value, so the gathered
    codes sort and tie exactly like codes computed on the expanded column —
    without materialising the expanded bound triples.
    """
    from repro.columnar.kernels import component_rank_codes

    g, f = fact._locate[name]
    group = fact.groups[g]
    codes = component_rank_codes(group.fragments[f].column(name), ("sg",))[0]
    frag_idx = group.indices[f]
    if len(fact.groups) == 1:
        if frag_idx is None:
            return codes
        idx = frag_idx
    else:
        rows = fact._rows_in_group(g, np.arange(len(fact), dtype=np.int64))
        idx = rows if frag_idx is None else frag_idx[rows]
    _record(len(idx))
    return codes[idx]


def _tiebreak_ranks(fact: FactorisedAURelation, order_by: Sequence[str]) -> np.ndarray:
    """Rank of every pair row under the eager ``<ᵗᵒᵗᵃˡ_O`` tiebreak.

    The eager ranked kernels break selected-guess ties by the *remaining*
    attributes (schema order, selected-guess components), then the input
    sequence.  One strict rank per pair row reproduces that comparator on
    the slim relation, so the untouched payload columns never need to be
    gathered for the sort.
    """
    from repro.columnar.kernels import lexsort_stable

    n = len(fact)
    in_order_by = set(order_by)
    rest = [name for name in fact.schema if name not in in_order_by]
    keys: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
    for name in reversed(rest):
        keys.append(_gather_sg_codes(fact, name))
    order = lexsort_stable(keys)
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(n, dtype=np.int64)
    return ranks


def _ranked_slim(
    fact: FactorisedAURelation,
    order_by: Sequence[str],
    extra_names: Sequence[str],
    *avoid: str,
) -> tuple[ColumnarAURelation, str, str]:
    """The slim input of a ranked stage (sort / window): ``(relation, rowid, tie)``.

    Columns: the order-by attributes, then the ``<ᵗᵒᵗᵃˡ_O`` tiebreak rank —
    a strict permutation, so it must be the *first* non-order-by column: the
    ranked kernels consult the remaining attributes in schema order and the
    rank settles every tie before the extras could disagree with the eager
    ordering — then the extra referenced columns, then a certain source
    row-id column mapping each row back to its pair.  ``tie`` is the rank
    column's name: because the rank is strict, the stage kernels may use it
    as their *only* non-order-by sort key (``strict_tiebreak=tie``), skipping
    the rank-coding of the extras and the row-id entirely.
    """
    order_names = list(dict.fromkeys(order_by))
    extras = [
        name for name in dict.fromkeys(extra_names) if name not in set(order_names)
    ]
    tie = _fresh_name(fact.schema, *avoid)
    rowid = _fresh_name(fact.schema, tie, *avoid)
    columns = [fact.gather_column(name) for name in order_names]
    ranks = _tiebreak_ranks(fact, order_names)
    columns.append(AttributeColumn(tie, ranks, ranks, ranks))
    columns.extend(fact.gather_column(name) for name in extras)
    rid = np.arange(len(fact), dtype=np.int64)
    columns.append(AttributeColumn(rowid, rid, rid, rid))
    mult_lb, mult_sg, mult_ub = fact.pair_multiplicities()
    schema = Schema(tuple(order_names) + (tie,) + tuple(extras) + (rowid,))
    return (
        ColumnarAURelation(schema, columns, mult_lb, mult_sg, mult_ub),
        rowid,
        tie,
    )


def _any_fragment_nan(fact: FactorisedAURelation) -> bool:
    """Whether any fragment column carries NaN anywhere (conservative gate)."""
    return any(
        ops._components_carry_nan(column)
        for group in fact.groups
        for fragment in group.fragments
        for column in fragment.columns
    )


def _reattached(
    fact: FactorisedAURelation,
    source_rows: np.ndarray,
    extra_name: str,
    extra: AttributeColumn,
    mults: tuple[np.ndarray, np.ndarray, np.ndarray],
) -> FactorisedAURelation:
    """Stage output rows re-joined to the untouched fragments.

    ``source_rows`` maps each output row to its source pair; every original
    fragment keeps its arrays and gets a composed index vector, the stage's
    new column rides along as an identity-aligned fragment, and the stage's
    (replaced) multiplicities become the group's explicit triple.
    """
    fragments: list[ColumnarAURelation] = []
    indices: list[np.ndarray | None] = []
    for g, group in enumerate(fact.groups):
        rows = fact._rows_in_group(g, source_rows)
        _record(len(source_rows) * len(group.indices))
        for fragment, idx in zip(group.fragments, group.indices):
            fragments.append(fragment)
            indices.append(rows if idx is None else idx[rows])
    ones = np.ones(len(source_rows), dtype=np.int64)
    fragments.append(
        ColumnarAURelation(
            Schema((extra_name,)),
            (AttributeColumn(extra_name, extra.lb, extra.sg, extra.ub),),
            ones,
            ones,
            ones,
        )
    )
    indices.append(None)
    merged = FactorisedGroup(
        tuple(fragments), tuple(indices), *mults, size=len(source_rows)
    )
    return FactorisedAURelation(fact.schema.extend(extra_name), (merged,))


def fact_sort(
    fact: FactorisedAURelation,
    order_by: Sequence[str],
    *,
    k: int | None = None,
    position_attribute: str = "pos",
    descending: bool = False,
    workers: int = 1,
) -> FactorisedAURelation:
    """Uncertain sort over a slim gather of only the order-by columns.

    The position kernels read nothing but the order-by columns and the
    multiplicities; the emitted row order, duplicate split, and replaced
    multiplicities are therefore identical on the slim relation, and the
    untouched fragments reattach through a row-id column that rode along.
    """
    from repro.columnar.sort import sort_stage

    if not order_by:
        raise OperatorError("sort requires at least one order-by attribute")
    fact.schema.require(list(order_by))
    fact.schema.extend(position_attribute)  # validates the output name early
    if _any_fragment_nan(fact):
        # NaN rank codes must be computed on one shared value pool to tie
        # consistently; the eager stage (the reference) handles that case.
        return FactorisedAURelation.from_columnar(
            sort_stage(
                fact.expand(),
                order_by,
                k=k,
                position_attribute=position_attribute,
                descending=descending,
                workers=workers,
            )
        )
    slim, rowid, tie = _ranked_slim(fact, order_by, (), position_attribute)
    ranked = sort_stage(
        slim,
        order_by,
        k=k,
        position_attribute=position_attribute,
        descending=descending,
        workers=workers,
        strict_tiebreak=tie,
    )
    source_rows = ranked.column(rowid).sg.astype(np.int64, copy=False)
    return _reattached(
        fact,
        source_rows,
        position_attribute,
        ranked.column(position_attribute),
        (ranked.mult_lb, ranked.mult_sg, ranked.mult_ub),
    )


def fact_window(
    fact: FactorisedAURelation, spec: WindowSpec, *, workers: int = 1
) -> "FactorisedAURelation | ColumnarAURelation":
    """Windowed aggregation over a slim gather of the referenced columns.

    Only applies the slim sweep when no fragment column carries NaN anywhere
    (the eager classifier's NaN check is global — unreferenced columns enter
    the ``<ᵗᵒᵗᵃˡ_O`` tiebreakers of its fallback sorts) and the classifier
    picks the vectorized sweep; every other classification expands and runs
    the eager stage, which *is* the reference implementation.
    """
    from repro.columnar.window import _classify, _partitioned_sweep, window_stage

    schema = fact.schema
    schema.require(list(spec.order_by))
    schema.require(list(spec.partition_by))
    if spec.attribute is not None and spec.attribute != "*":
        schema.require([spec.attribute])
    if spec.output in schema:
        raise WindowSpecError(
            f"output attribute {spec.output!r} already exists in the schema"
        )
    if _any_fragment_nan(fact):
        return window_stage(fact.expand(), spec, workers=workers)
    extras = list(spec.partition_by) + (
        [spec.attribute] if spec.attribute not in (None, "*") else []
    )
    slim, rowid, tie = _ranked_slim(fact, spec.order_by, extras, spec.output)
    kind, sweep_spec, groups = _classify(slim, spec)
    if kind != "sweep":
        return window_stage(fact.expand(), spec, workers=workers)
    result = _partitioned_sweep(
        slim, sweep_spec, groups, workers=workers, strict_tiebreak=tie
    )
    source_rows = result.column(rowid).sg.astype(np.int64, copy=False)
    return _reattached(
        fact,
        source_rows,
        spec.output,
        result.column(spec.output),
        (result.mult_lb, result.mult_sg, result.mult_ub),
    )
