"""Uncertain sort / top-k over the columnar backend.

:func:`sort_stage` computes the same range-annotated position attribute as
:func:`repro.ranking.native.sort_native` and
:func:`repro.ranking.semantics.sort_rewrite` — the three implementations are
bound-identical (enforced by the differential property suite) — but evaluates
the position bounds with the vectorized kernels of
:mod:`repro.columnar.kernels` instead of a per-tuple heap sweep, and emits a
:class:`~repro.columnar.relation.ColumnarAURelation`: the position column is
appended columnar-side and the Fig. 4 per-duplicate split expands the aligned
``lb`` / ``sg`` / ``ub`` arrays in bulk, so a :class:`~repro.columnar.plan.ColumnarPlan`
can keep chaining stages past a sort without materialising rows.

:func:`sort_columnar` is the thin row-major adapter the
``backend="columnar"`` entry points dispatch to (bit-identical to the Python
backend, as before).

>>> from repro.core.relation import AURelation
>>> audb = AURelation.from_rows(["a"], [((3,), 1), ((1,), 2)])
>>> for tup, mult in sort_columnar(audb, ["a"]):
...     print(tup.value("a"), tup.value("pos"), mult)
1 0 (1,1,1)
1 1 (1,1,1)
3 2 (1,1,1)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.columnar.kernels import duplicate_offsets, sort_position_bounds_ranked
from repro.columnar.relation import AttributeColumn, ColumnarAURelation, as_columnar
from repro.core.relation import AURelation
from repro.errors import OperatorError

__all__ = ["sort_stage", "sort_columnar", "ranked_emission"]


def sort_stage(
    relation: AURelation | ColumnarAURelation,
    order_by: Sequence[str],
    *,
    k: int | None = None,
    position_attribute: str = "pos",
    descending: bool = False,
    workers: int = 1,
    strict_tiebreak: str | None = None,
) -> ColumnarAURelation:
    """Uncertain sort emitting a columnar relation (non-terminal plan stage).

    Accepts either relation layout (row-major inputs are converted).  With
    ``k`` given, duplicates whose position is certainly not among the first
    ``k`` are pruned — exactly the duplicates a top-k selection on the
    position attribute would filter to zero, so top-k results agree with the
    Python backend bit for bit.  With ``workers > 1`` the position-bound
    kernels shard over contributor rows (per-shard emission schedules merged
    by summation) on the forked worker pool — bit-identical, as the
    differential suite pins.

    The result is the columnar twin of ``sort_native``'s output, *including
    row order*: rows are emitted in the native sweep's emission order —
    latest key vector, then input sequence, then duplicate offset (the order
    the Python backend's insertion-ordered dictionary ends up in) — so
    chained plans feed the next stage the same ``<ᵗᵒᵗᵃˡ_O`` sequence-number
    tiebreakers as the row-major path.

    ``strict_tiebreak`` names a non-order-by attribute whose selected-guess
    values are a strict total order (no duplicates); when given, it becomes
    the sole ``<ᵗᵒᵗᵃˡ_O`` tiebreak key, skipping the rank-coding of the
    remaining columns (the factorised layer's pre-ranked slim relations use
    this).
    """
    if not order_by:
        raise OperatorError("sort requires at least one order-by attribute")
    columnar = as_columnar(relation)
    columnar.schema.require(list(order_by))
    columnar.schema.extend(position_attribute)  # validates the name early

    lower, sg, upper, latest_rank = sort_position_bounds_ranked(
        columnar,
        order_by,
        descending=descending,
        workers=workers,
        strict_tiebreak=strict_tiebreak,
    )

    # The native sweep emits a tuple once an incoming tuple certainly follows
    # it: emission order is its latest key vector, ties broken by the input
    # sequence number.
    emit = np.argsort(latest_rank, kind="stable")  # stable: input order breaks ties
    return ranked_emission(
        columnar, lower, sg, upper, emit, k=k, position_attribute=position_attribute
    )


def ranked_emission(
    columnar: ColumnarAURelation,
    lower: np.ndarray,
    sg: np.ndarray,
    upper: np.ndarray,
    emit: np.ndarray,
    *,
    k: int | None = None,
    position_attribute: str = "pos",
) -> ColumnarAURelation:
    """Expand per-row position bounds into the sort stage's output relation.

    The shared tail of the sort: rows reordered by the emission permutation
    ``emit``, the Fig. 4 / Algorithm 2 per-duplicate split applied, and the
    range-annotated position column appended.  :func:`sort_stage` computes
    the bound arrays from scratch; the incremental sort patch
    (:mod:`repro.columnar.incremental`) re-derives them from maintained
    permutations — both feed this one emission path, so the patched output
    cannot drift from the from-scratch stage.
    """
    ordered = columnar.take(emit)

    # Fig. 4 / Algorithm 2 split: the j-th duplicate shifts the base position
    # by j and is certain / selected-guess-only / merely possible depending on
    # where j falls in the multiplicity triple.
    row, offset = duplicate_offsets(ordered.mult_ub)
    pos_lb = lower[emit][row] + offset
    pos_sg = sg[emit][row] + offset
    pos_ub = upper[emit][row] + offset
    if k is not None:
        keep = pos_lb < k
        row, offset = row[keep], offset[keep]
        pos_lb, pos_sg, pos_ub = pos_lb[keep], pos_sg[keep], pos_ub[keep]

    expanded = ordered.take(row)
    # Every output hypercube is distinct by construction — the columnar
    # layout holds one row per *distinct* range tuple, and duplicates of one
    # row occupy distinct positions — so the merge-on-collision semantics of
    # AURelation.add cannot fire and no duplicate merge is needed.
    return expanded.with_multiplicities(
        (offset < ordered.mult_lb[row]).astype(np.int64),
        (offset < ordered.mult_sg[row]).astype(np.int64),
        np.ones(len(row), dtype=np.int64),
    ).with_column(AttributeColumn(position_attribute, pos_lb, pos_sg, pos_ub))


def sort_columnar(
    relation: AURelation | ColumnarAURelation,
    order_by: Sequence[str],
    *,
    k: int | None = None,
    position_attribute: str = "pos",
    descending: bool = False,
    workers: int = 1,
) -> AURelation:
    """Row-major adapter over :func:`sort_stage` (the plan boundary).

    This is what ``backend="columnar"`` on the sort / top-k entry points
    dispatches to; results are bit-identical to the Python backend.
    """
    return sort_stage(
        relation,
        order_by,
        k=k,
        position_attribute=position_attribute,
        descending=descending,
        workers=workers,
    ).to_relation(workers=workers)
