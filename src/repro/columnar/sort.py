"""Uncertain sort / top-k over the columnar backend.

:func:`sort_columnar` computes the same range-annotated position attribute as
:func:`repro.ranking.native.sort_native` and
:func:`repro.ranking.semantics.sort_rewrite` — the three implementations are
bound-identical (enforced by the differential property suite) — but evaluates
the position bounds with the vectorized kernels of
:mod:`repro.columnar.kernels` instead of a per-tuple heap sweep.
"""

from __future__ import annotations

from typing import Sequence

from repro.columnar.kernels import sort_position_bounds
from repro.columnar.relation import ColumnarAURelation, as_columnar
from repro.core.multiplicity import duplicate_annotation
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.errors import OperatorError

__all__ = ["sort_columnar"]


def sort_columnar(
    relation: AURelation | ColumnarAURelation,
    order_by: Sequence[str],
    *,
    k: int | None = None,
    position_attribute: str = "pos",
    descending: bool = False,
) -> AURelation:
    """Uncertain sort over the columnar backend; optionally top-k pruned.

    Accepts either relation layout (row-major inputs are converted).  With
    ``k`` given, duplicates whose position is certainly not among the first
    ``k`` are pruned — exactly the duplicates a top-k selection on the
    position attribute would filter to zero, so top-k results agree with the
    Python backend bit for bit.
    """
    if not order_by:
        raise OperatorError("sort requires at least one order-by attribute")
    columnar = as_columnar(relation)
    columnar.schema.require(list(order_by))

    lower, sg, upper = sort_position_bounds(columnar, order_by, descending=descending)

    out_schema = columnar.schema.extend(position_attribute)
    out = AURelation(out_schema)
    # Materialise straight into the relation's row dictionary: every output
    # hypercube is distinct by construction (distinct input rows got merged on
    # conversion and duplicates of one row occupy distinct positions), so the
    # per-tuple schema checks of AURelation.add would be pure overhead — but
    # keep the merge-on-collision semantics for safety.
    rows_out = out._rows
    lower_l, sg_l, upper_l = lower.tolist(), sg.tolist(), upper.tolist()
    mult_lb = columnar.mult_lb.tolist()
    mult_sg = columnar.mult_sg.tolist()
    mult_ub = columnar.mult_ub.tolist()
    for i in range(len(columnar)):
        base_lb = lower_l[i]
        base_sg = sg_l[i]
        base_ub = upper_l[i]
        m_lb, m_sg, m_ub = mult_lb[i], mult_sg[i], mult_ub[i]
        values = columnar.row_values(i)
        # Inlined split of Fig. 4 / Algorithm 2: the j-th duplicate shifts the
        # base position by j and is certain / selected-guess-only / possible
        # depending on where j falls in the multiplicity triple.
        for j in range(m_ub):
            if k is not None and base_lb + j >= k:
                break
            key = values + (RangeValue(base_lb + j, base_sg + j, base_ub + j),)
            duplicate_mult = duplicate_annotation(j, m_lb, m_sg)
            existing = rows_out.get(key)
            rows_out[key] = duplicate_mult if existing is None else existing.add(duplicate_mult)
    return out
