"""Morsel-driven multiprocessing executor for the columnar kernels.

The columnar kernels partition cleanly: window sweeps split by certain
``PARTITION BY`` groups or by query chunks, equi-joins by candidate-pair
ranges, sort position bounds by row shards whose per-shard emission
schedules merge by summation, and the plan boundary by output-row blocks.
This module supplies the shared execution machinery those stages use:

* :func:`resolve_workers` — the ``workers`` knob (``None`` reads the
  ``REPRO_WORKERS`` environment variable; ``1`` means serial);
* :func:`parallel_map` — a fork-based, morsel-driven worker pool.  Tasks
  are pulled from a shared queue as workers free up, so skewed shards do
  not straggle behind a static assignment.  Inputs reach the workers
  through fork's copy-on-write page sharing (no pickling of the column
  arrays); results return pickled, in task order;
* :func:`shared_arrays` — shared-memory output buffers so forked workers
  can write result blocks directly into the parent's arrays (used by the
  window sweep, whose chunk outputs would otherwise round-trip through the
  result pipe);
* :func:`shard_ranges` / :func:`morsel_count` — contiguous shard layout
  helpers shared by every sharded stage.

``workers=1`` never touches any of this machinery beyond a trivial list
comprehension in :func:`parallel_map`: every call site keeps its exact
single-shard code path, and the differential property suite pins
``sharded == unsharded`` for every stage class.

>>> resolve_workers(1)
1
>>> shard_ranges(10, 3)
[(0, 4), (4, 7), (7, 10)]
>>> parallel_map(lambda x: x * x, [1, 2, 3], workers=1)
[1, 4, 9]

A worker that raises surfaces the *original* exception in the parent (the
pool shuts down instead of hanging); a worker that dies without reporting
raises :class:`~repro.errors.ParallelError`.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
import warnings
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.errors import ParallelError

__all__ = [
    "WORKERS_ENV",
    "resolve_workers",
    "fork_capable",
    "shard_ranges",
    "morsel_count",
    "pair_blocks",
    "parallel_map",
    "shared_arrays",
]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when ``workers`` is not given explicitly.
WORKERS_ENV = "REPRO_WORKERS"

#: Morsels per worker: enough slack for the pull-based queue to rebalance
#: skewed shards without drowning small inputs in scheduling overhead.
MORSELS_PER_WORKER = 4

#: Seconds between liveness checks while waiting on worker results.
_POLL_INTERVAL = 0.2


#: Whether the oversubscription warning has already fired in this process.
#: The serving layer resolves a worker count on every cached-view build, so a
#: per-call warning would spam the log once per query; one line per process
#: is enough to surface the misconfiguration (tests reset the flag).
_warned_oversubscription = False


def _warn_if_oversubscribed(workers: int) -> int:
    """Warn once per *process* when ``workers`` exceeds the machine's CPU count.

    Oversubscription makes the fork pool *slower* than serial (the committed
    BENCH records show 2-16x regressions with 2-4 workers on a 1-core
    container), so the footgun gets a one-line :class:`RuntimeWarning` —
    never an error: the count is still honoured.  The warning is deduplicated
    to the first offending call of the process: serving loops resolve the
    worker knob on every query, and repeating the same line per call buries
    the signal.
    """
    global _warned_oversubscription
    cpus = os.cpu_count()
    if cpus is not None and workers > cpus and not _warned_oversubscription:
        _warned_oversubscription = True
        warnings.warn(
            f"workers={workers} exceeds os.cpu_count()={cpus}; the fork pool "
            "will oversubscribe and typically runs slower than serial",
            RuntimeWarning,
            stacklevel=3,
        )
    return workers


def resolve_workers(workers: int | None = None) -> int:
    """Validate a worker count, or read it from ``REPRO_WORKERS``.

    ``None`` falls back to the environment variable (default ``1``);
    anything that is not a positive integer raises
    :class:`~repro.errors.ParallelError`.  A count above ``os.cpu_count()``
    is honoured but draws a one-line :class:`RuntimeWarning` — on a 1-core
    container the fork pool runs slower than serial, and the warning makes
    the silently-regressed benchmark configuration visible.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV)
        if raw is None or not raw.strip():
            return 1
        try:
            value = int(raw)
        except ValueError:
            raise ParallelError(
                f"{WORKERS_ENV} must be a positive integer, got {raw!r}"
            ) from None
        if value < 1:
            raise ParallelError(f"{WORKERS_ENV} must be >= 1, got {raw!r}")
        return _warn_if_oversubscribed(value)
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ParallelError(f"workers must be a positive integer, got {workers!r}")
    if workers < 1:
        raise ParallelError(f"workers must be >= 1, got {workers!r}")
    return _warn_if_oversubscribed(workers)


def fork_capable() -> bool:
    """Whether the platform supports fork-started workers.

    The pool relies on fork's copy-on-write inheritance to share the input
    column arrays (and the task closures) without pickling; platforms
    without it (e.g. Windows) run every plan serially.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def shard_ranges(n: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into at most ``shards`` contiguous, non-empty ranges.

    The first ``n % shards`` ranges are one element longer, so sizes differ
    by at most one.  Contiguity is what keeps sharded stages bit-identical:
    concatenating per-range results in range order reproduces the unsharded
    output exactly.
    """
    if n <= 0:
        return []
    shards = max(1, min(shards, n))
    base, extra = divmod(n, shards)
    ranges = []
    start = 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def morsel_count(workers: int) -> int:
    """How many morsels a sharded stage should cut its work into."""
    return workers * MORSELS_PER_WORKER


def pair_blocks(n: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous pair-range morsels for a stage sharded over ``n`` pair rows.

    The factorised layer (:mod:`repro.columnar.factorised`) shards its
    expansion blocks and join-predicate evaluation over logical pair ranges
    with this layout; contiguity plus block-order concatenation is what
    keeps ``workers=N`` bit-identical to the serial path.  ``workers <= 1``
    (or a single row) yields one block covering everything, so serial runs
    take the exact single-shard code path.
    """
    if n <= 0:
        return []
    if workers <= 1 or n == 1:
        return [(0, n)]
    return shard_ranges(n, morsel_count(workers))


def parallel_map(
    fn: Callable[[T], R], tasks: Iterable[T], *, workers: int
) -> list[R]:
    """Apply ``fn`` to every task across ``workers`` forked processes.

    Results come back in task order.  Tasks are dispatched through a shared
    queue (morsel-driven): an idle worker pulls the next task, so a skewed
    morsel occupies one worker while the rest drain the remainder.  With
    ``workers <= 1``, a single task, or no fork support this is exactly
    ``[fn(t) for t in tasks]`` — the serial path runs no pool code.

    A task that raises re-raises the original exception in the parent and
    tears the pool down; a worker that dies without reporting (killed,
    ``os._exit``) raises :class:`~repro.errors.ParallelError` instead of
    deadlocking — surviving workers finish, the missing results are
    detected, and the pool is reaped.
    """
    tasks = list(tasks)
    if workers <= 1 or len(tasks) <= 1 or not fork_capable():
        return [fn(task) for task in tasks]
    workers = min(workers, len(tasks))

    context = multiprocessing.get_context("fork")
    task_queue = context.Queue()
    result_queue = context.Queue()
    processes = [
        context.Process(
            target=_worker_loop,
            args=(fn, tasks, task_queue, result_queue),
            daemon=True,
        )
        for _ in range(workers)
    ]
    try:
        for process in processes:
            process.start()
        for index in range(len(tasks)):
            task_queue.put(index)
        for _ in processes:
            task_queue.put(None)  # one shutdown sentinel per worker

        results: list[R | None] = [None] * len(tasks)
        outstanding = len(tasks)
        while outstanding:
            try:
                payload = result_queue.get(timeout=_POLL_INTERVAL)
            except queue_module.Empty:
                if any(process.is_alive() for process in processes):
                    continue
                # Every worker exited; drain what they managed to report.
                while True:
                    try:
                        payload = result_queue.get_nowait()
                    except queue_module.Empty:
                        break
                    outstanding -= _consume(pickle.loads(payload), results)
                if outstanding:
                    codes = [process.exitcode for process in processes]
                    raise ParallelError(
                        f"{outstanding} shard result(s) missing: worker processes "
                        f"exited without reporting (exit codes {codes})"
                    )
                break
            outstanding -= _consume(pickle.loads(payload), results)
        return results  # type: ignore[return-value]
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            if process.pid is not None:
                process.join()
        task_queue.close()
        result_queue.close()


def _consume(message: tuple[int, bool, object], results: list) -> int:
    """Record one worker message; re-raise a shipped exception."""
    index, ok, value = message
    if not ok:
        if isinstance(value, BaseException):
            raise value
        raise ParallelError(f"shard worker failed: {value}")
    results[index] = value
    return 1


def _worker_loop(fn, tasks, task_queue, result_queue) -> None:
    """Worker body: pull task indexes until the shutdown sentinel.

    Results are pickled *eagerly* so an unpicklable result (or exception)
    becomes an explicit failure message instead of dying silently in the
    queue's feeder thread — the parent would otherwise wait on a result
    that never arrives.
    """
    while True:
        index = task_queue.get()
        if index is None:
            return
        try:
            payload = pickle.dumps(
                (index, True, fn(tasks[index])), protocol=pickle.HIGHEST_PROTOCOL
            )
        except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
            try:
                payload = pickle.dumps(
                    (index, False, exc), protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception:
                payload = pickle.dumps(
                    (index, False, f"unpicklable {type(exc).__name__}: {exc}"),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            result_queue.put(payload)
            return
        result_queue.put(payload)


def shared_arrays(*specs: tuple[int, object]) -> list[np.ndarray]:
    """One-dimensional output arrays in anonymous shared memory.

    Each ``(length, dtype)`` spec becomes a numpy array backed by an
    anonymous shared mapping (``mmap.mmap(-1, ...)`` — the same kernel
    facility ``multiprocessing.shared_memory`` wraps, minus the filesystem
    name, so there is no segment to unlink and no exported-buffer teardown
    hazard).  Allocated before the pool forks, the mapping is inherited by
    every worker: a worker writing ``arrays[j][start:stop]`` fills the
    parent's array directly, so result blocks never round-trip through the
    result queue.  The arrays own their mapping — ordinary garbage
    collection reclaims the memory.
    """
    import mmap

    arrays = []
    for length, dtype in specs:
        nbytes = max(1, int(length) * np.dtype(dtype).itemsize)
        mapping = mmap.mmap(-1, nbytes)
        arrays.append(np.frombuffer(mapping, dtype=dtype, count=int(length)))
    return arrays
