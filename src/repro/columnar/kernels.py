"""Vectorized kernels over columnar AU-relations.

The ranking operators only ever compare tuples through three per-tuple key
vectors over the order-by attributes — *earliest*, *selected-guess*, and
*latest* (:mod:`repro.ranking.positions`).  The kernels here rank-encode
those vectors into dense ``int64`` codes (order-preserving, so lexicographic
tuple comparison becomes integer comparison) and then evaluate the paper's
Equations 1-3 with sorts, prefix sums, and binary searches instead of
per-tuple Python work:

* :func:`sort_position_bounds` — position ``(lb, sg, ub)`` triples for every
  row, bit-identical to the definitional rewrite semantics,
* :func:`selected_guess_positions` — positions under ``<ᵗᵒᵗᵃˡ_O`` in the
  selected-guess world,
* :func:`emission_schedule` — the batched replacement for the native sweep's
  per-tuple heap feeding: for every row, how many rows of the
  earliest-ordered stream must be processed before its window of uncertainty
  closes,
* :func:`certainly_precedes_matrix` / :func:`possibly_precedes_matrix` —
  pairwise interval-lexicographic comparison matrices (used by the
  differential tests to cross-check the prefix-sum kernels).

Rank encoding uses :func:`repro.relational.sort.sort_key_value` for columns
stored as ``object`` arrays, so ``None`` ordering and mixed ``int``/``float``
columns behave exactly as in the Python backend; genuinely incomparable
columns (e.g. ``int`` vs ``str``) raise a clear
:class:`~repro.errors.OperatorError` naming the attribute.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.columnar.relation import AttributeColumn, ColumnarAURelation
from repro.errors import OperatorError
from repro.relational.sort import sort_key_value

__all__ = [
    "lexsort_stable",
    "dense_rank_codes",
    "order_code_matrices",
    "lex_rank_pairs",
    "sort_position_bounds",
    "sort_position_bounds_ranked",
    "rank_offset_bounds",
    "permutation_insert",
    "permutation_delete",
    "selected_guess_positions",
    "emission_schedule",
    "certainly_precedes_matrix",
    "possibly_precedes_matrix",
    "duplicate_offsets",
    "interval_point_match_pairs",
    "interval_overlap_pairs",
    "certain_frame_members",
    "possible_frame_members",
    "expand_ranges",
    "FrameMemberIndex",
    "sliding_window_sums",
    "sliding_window_extrema",
]


def lexsort_stable(keys: Sequence[np.ndarray]) -> np.ndarray:
    """``np.lexsort`` semantics (last key is primary) via chained stable argsorts.

    Bit-identical to ``np.lexsort(keys)`` — both orders are stable — but
    ~5-7x faster on large key arrays: ``np.lexsort`` pays a per-key merge
    over the full index array, while successive ``kind="stable"`` argsorts
    use the radix/timsort fast paths.  The hot sweep orderings (the window
    sweep's member-pair groupings, emission schedules, ``<ᵗᵒᵗᵃˡ_O`` key
    stacks) all sort through here.
    """
    order = np.argsort(keys[0], kind="stable")
    for key in keys[1:]:
        order = order[np.argsort(key[order], kind="stable")]
    return order


# ---------------------------------------------------------------------------
# Rank encoding
# ---------------------------------------------------------------------------


def _object_rank_codes(pools: Sequence[list], attribute: str) -> list[np.ndarray]:
    """Dense order codes for object-dtype component columns (shared code space)."""
    distinct = set()
    for pool in pools:
        distinct.update(pool)
    try:
        ordered = sorted(distinct, key=sort_key_value)
    except TypeError as exc:
        types = sorted({type(v).__name__ for v in distinct})
        raise OperatorError(
            f"cannot order attribute {attribute!r}: column mixes incomparable "
            f"scalar types {types}; clean the column to a single comparable type"
        ) from exc
    codes = {value: rank for rank, value in enumerate(ordered)}
    return [np.array([codes[v] for v in pool], dtype=np.int64) for pool in pools]


def _numeric_rank_codes(arrays: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Dense order codes for numeric component columns (shared code space)."""
    pooled = np.concatenate(arrays)
    _, inverse = np.unique(pooled, return_inverse=True)
    inverse = inverse.astype(np.int64, copy=False)
    out = []
    offset = 0
    for arr in arrays:
        out.append(inverse[offset : offset + len(arr)])
        offset += len(arr)
    return out


def dense_rank_codes(values: Sequence, attribute: str) -> np.ndarray:
    """Order-preserving dense ``int64`` codes for one scalar column.

    Used by the deterministic columnar sort; shares the numeric fast path and
    the ``sort_key_value``-based object path with the AU-relation kernels.
    """
    from repro.columnar.relation import column_array

    arr = column_array(list(values))
    if arr.dtype != object:
        return _numeric_rank_codes([arr])[0]
    return _object_rank_codes([arr.tolist()], attribute)[0]


def component_rank_codes(
    column: AttributeColumn, components: Sequence[str] = ("lb", "sg", "ub")
) -> list[np.ndarray]:
    """Order-preserving dense codes for the requested bound components.

    All requested components share one code space so that cross-component
    comparisons (earliest of one tuple vs latest of another) remain valid.
    """
    arrays = [getattr(column, c) for c in components]
    first_dtype = arrays[0].dtype
    # The vectorized path requires one shared numeric dtype: pooling int64
    # with float64 would upcast to float64 and collapse integers >= 2**53,
    # silently breaking order-preservation.  Mixed-dtype components take the
    # exact object path instead.
    if first_dtype != object and all(arr.dtype == first_dtype for arr in arrays):
        return _numeric_rank_codes(arrays)
    return _object_rank_codes([arr.tolist() for arr in arrays], column.name)


def order_code_matrices(
    relation: ColumnarAURelation, order_by: Sequence[str], *, descending: bool = False
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Earliest / selected-guess / latest code matrices over the order-by attributes.

    Row ``i`` of the matrices is the rank-encoded key vector of tuple ``i``;
    under a descending order the earliest bound of a range is its upper end,
    which the encoding realises by swapping components and negating codes.
    """
    n = len(relation)
    m = len(order_by)
    earliest = np.empty((n, m), dtype=np.int64)
    sg = np.empty((n, m), dtype=np.int64)
    latest = np.empty((n, m), dtype=np.int64)
    for j, name in enumerate(order_by):
        lb_c, sg_c, ub_c = component_rank_codes(relation.column(name))
        if descending:
            earliest[:, j] = -ub_c
            sg[:, j] = -sg_c
            latest[:, j] = -lb_c
        else:
            earliest[:, j] = lb_c
            sg[:, j] = sg_c
            latest[:, j] = ub_c
    return earliest, sg, latest


def _lex_dense_ranks(rows: np.ndarray) -> np.ndarray:
    """Dense ranks of the rows of an integer matrix under lexicographic order."""
    if len(rows) == 0:
        return np.empty(0, dtype=np.int64)
    order = lexsort_stable(tuple(rows.T[::-1]))
    ordered = rows[order]
    changed = np.any(ordered[1:] != ordered[:-1], axis=1)
    ranks_sorted = np.concatenate([[0], np.cumsum(changed)])
    ranks = np.empty(len(rows), dtype=np.int64)
    ranks[order] = ranks_sorted
    return ranks


def lex_rank_pairs(
    earliest: np.ndarray, latest: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Scalar ranks of the earliest / latest key vectors in one shared order.

    After this step ``earliest_rank[i] <= latest_rank[j]`` iff the earliest
    key vector of ``i`` is lexicographically ``<=`` the latest key vector of
    ``j`` — all interval-lexicographic comparisons reduce to ``int64``
    comparisons.
    """
    n = len(earliest)
    ranks = _lex_dense_ranks(np.vstack([earliest, latest]))
    return ranks[:n], ranks[n:]


# ---------------------------------------------------------------------------
# Position-bound kernels (Equations 1-3)
# ---------------------------------------------------------------------------


def emission_schedule(earliest_rank: np.ndarray, latest_rank: np.ndarray) -> np.ndarray:
    """Batched heap feeding: the close index of every tuple's uncertainty window.

    The native sweep feeds tuples into a min-heap in earliest-key order and
    emits a tuple once an incoming tuple certainly follows it.  Vectorized,
    tuple ``i`` closes after exactly ``count(j : earliest[j] <= latest[i])``
    tuples of the earliest-ordered stream have been fed — which is also the
    prefix of that stream contributing to ``i``'s position upper bound.
    """
    order = np.argsort(earliest_rank, kind="stable")
    return np.searchsorted(earliest_rank[order], latest_rank, side="right")


def certainly_precedes_counts(
    earliest_rank: np.ndarray, latest_rank: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """For every tuple ``i``: total weight of tuples that certainly precede it.

    A tuple certainly precedes ``i`` when its latest key vector is strictly
    below ``i``'s earliest key vector (Equation 1's predecessor set).  A tuple
    never certainly precedes itself, so no self-correction is needed.
    """
    order = np.argsort(latest_rank, kind="stable")
    prefix = np.concatenate([[0], np.cumsum(weights[order])])
    return prefix[np.searchsorted(latest_rank[order], earliest_rank, side="left")]


def possibly_precedes_counts(
    earliest_rank: np.ndarray, latest_rank: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """For every tuple ``i``: total weight of tuples that possibly precede it.

    A tuple possibly precedes ``i`` when its earliest key vector does not
    exceed ``i``'s latest key vector (possible ties included).  The count
    includes ``i`` itself; callers subtract its own weight.  Evaluates the
    weighted form of :func:`emission_schedule` with a single sort.
    """
    order = np.argsort(earliest_rank, kind="stable")
    prefix = np.concatenate([[0], np.cumsum(weights[order])])
    return prefix[np.searchsorted(earliest_rank[order], latest_rank, side="right")]


def selected_guess_positions(
    relation: ColumnarAURelation,
    order_by: Sequence[str],
    sg_codes: np.ndarray,
    *,
    strict_tiebreak: str | None = None,
) -> np.ndarray:
    """Position of every tuple's first duplicate in the selected-guess world.

    Orders the tuples under ``<ᵗᵒᵗᵃˡ_O`` — selected-guess order-by keys, then
    the remaining attributes, then the input sequence number — and
    accumulates selected-guess multiplicities, exactly like the Python
    backend's ``_sg_positions``.

    ``strict_tiebreak`` names an attribute whose selected-guess values are a
    strict ``int64`` permutation ordered like the *full* non-order-by
    remainder (the factorised slim schema's rank column): it settles every
    ``<ᵗᵒᵗᵃˡ_O`` tie before any later attribute or the sequence number could
    be consulted, so the sort uses it as the sole tiebreaker — skipping the
    rank-encode + sort of every remaining column — and stays bit-identical.
    """
    n = len(relation)
    in_order_by = set(order_by)
    # np.lexsort sorts by its *last* key first: sequence number (final
    # tiebreaker) goes first, then the rest attributes right-to-left, then
    # the order-by codes right-to-left.
    if strict_tiebreak is not None:
        if strict_tiebreak in in_order_by or strict_tiebreak not in relation.schema:
            raise OperatorError(
                f"strict_tiebreak {strict_tiebreak!r} must be a non-order-by attribute"
            )
        # Raw values are their own rank codes (strict int64 permutation).
        keys: list[np.ndarray] = [relation.column(strict_tiebreak).sg]
    else:
        rest = [name for name in relation.schema if name not in in_order_by]
        keys = [np.arange(n, dtype=np.int64)]
        for name in reversed(rest):
            keys.append(component_rank_codes(relation.column(name), ("sg",))[0])
    for j in reversed(range(sg_codes.shape[1])):
        keys.append(sg_codes[:, j])
    order = lexsort_stable(keys)
    weights = relation.mult_sg[order]
    running = np.cumsum(weights) - weights
    positions = np.empty(n, dtype=np.int64)
    positions[order] = running
    return positions


def sort_position_bounds(
    relation: ColumnarAURelation, order_by: Sequence[str], *, descending: bool = False
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-row sort-position bound triples (Equations 1-3), fully vectorized.

    Returns ``(lower, sg, upper)`` arrays for the first duplicate of every
    row; bit-identical to :func:`repro.ranking.positions.position_bounds` and
    to what the native sweep emits.
    """
    lower, sg, upper, _latest_rank = sort_position_bounds_ranked(
        relation, order_by, descending=descending
    )
    return lower, sg, upper


def sort_position_bounds_ranked(
    relation: ColumnarAURelation,
    order_by: Sequence[str],
    *,
    descending: bool = False,
    workers: int = 1,
    strict_tiebreak: str | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """:func:`sort_position_bounds` plus the latest-key ranks of every row.

    ``latest_rank`` orders rows by their *latest* (upper-bound) key vector —
    the comparator the native sweep's emission heap pops by.  The
    columnar-native sort / window stages order their output rows by
    ``(latest_rank, input sequence)`` so that chained plans see exactly the
    row order the Python backend's insertion-ordered dictionaries would feed
    the next stage (downstream ``<ᵗᵒᵗᵃˡ_O`` sequence-number tiebreakers
    depend on it).

    With ``workers > 1`` the two precedes-counts evaluate as per-shard
    emission schedules that merge by summation (see
    :func:`_sharded_precedes_counts`); the rank encoding and selected-guess
    pass stay serial.  ``strict_tiebreak`` passes through to
    :func:`selected_guess_positions`.
    """
    earliest, sg_matrix, latest = order_code_matrices(
        relation, order_by, descending=descending
    )
    earliest_rank, latest_rank = lex_rank_pairs(earliest, latest)
    if workers > 1 and len(relation) > 1:
        lower, upper = _sharded_precedes_counts(
            earliest_rank, latest_rank, relation.mult_lb, relation.mult_ub, workers
        )
    else:
        lower = certainly_precedes_counts(earliest_rank, latest_rank, relation.mult_lb)
        upper = possibly_precedes_counts(earliest_rank, latest_rank, relation.mult_ub)
    upper -= relation.mult_ub
    sg = selected_guess_positions(
        relation, order_by, sg_matrix, strict_tiebreak=strict_tiebreak
    )
    sg = np.clip(sg, lower, upper)
    return lower, sg, upper, latest_rank


def rank_offset_bounds(
    earliest: np.ndarray,
    latest: np.ndarray,
    mult_lb: np.ndarray,
    mult_ub: np.ndarray,
    earliest_perm: np.ndarray,
    latest_perm: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Position ``(lower, upper)`` bounds from *maintained* sorted permutations.

    The offset-patch twin of :func:`certainly_precedes_counts` /
    :func:`possibly_precedes_counts`: instead of re-sorting the key arrays,
    the caller supplies permutations it keeps sorted across deltas
    (``latest_perm`` orders rows by latest key, ``earliest_perm`` by earliest
    key), so a delta costs two ``np.searchsorted`` passes over already-sorted
    views plus two prefix sums — no argsort of the whole relation.

    ``earliest`` / ``latest`` are *raw* oriented key values, not dense rank
    codes: searchsorted only consults ``<`` / ``==`` between earliest and
    latest values, which any order-isomorphic encoding preserves, so the
    result is bit-identical to the rank-coded kernels (the callers gate on
    the uniform-numeric, NaN-free columns where that isomorphism holds).
    ``upper`` already has the row's own weight removed, exactly as
    :func:`sort_position_bounds_ranked` returns it.
    """
    latest_sorted = latest[latest_perm]
    prefix_lb = np.concatenate([[0], np.cumsum(mult_lb[latest_perm])])
    lower = prefix_lb[np.searchsorted(latest_sorted, earliest, side="left")]
    earliest_sorted = earliest[earliest_perm]
    prefix_ub = np.concatenate([[0], np.cumsum(mult_ub[earliest_perm])])
    upper = prefix_ub[np.searchsorted(earliest_sorted, latest, side="right")]
    return lower, upper - mult_ub


def permutation_insert(
    perm: np.ndarray, positions: np.ndarray, new_indices: np.ndarray
) -> np.ndarray:
    """Insert new row indices into a maintained sorted permutation.

    ``positions[t]`` is the slot (into the *current* ``perm``) before which
    ``new_indices[t]`` belongs — typically a ``np.searchsorted(...,
    side="right")`` result so that an inserted row lands after every equal
    key (its row index is larger than any existing row's, matching the
    stable-argsort tie order the kernels emit).  Equal positions keep the
    order of appearance, so batches pre-sorted by row index stay
    index-ordered among themselves.
    """
    if len(new_indices) == 0:
        return perm
    return np.insert(perm, positions, new_indices)


def permutation_delete(perm: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Drop deleted rows from a maintained permutation and renumber it.

    ``keep`` is a boolean mask over the rows the permutation currently
    indexes; surviving entries are renumbered to index the compacted row
    array (``new_index = cumsum(keep) - 1``), preserving their relative
    order — exactly what a stable argsort of the masked keys would produce.
    """
    new_index = np.cumsum(keep) - 1
    kept = perm[keep[perm]]
    return new_index[kept]


def _sharded_precedes_counts(
    earliest_rank: np.ndarray,
    latest_rank: np.ndarray,
    mult_lb: np.ndarray,
    mult_ub: np.ndarray,
    workers: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Both precedes-counts, sharded over *contributor* rows.

    Every row shard computes the weight its own rows contribute to each
    tuple's certain / possible predecessor counts — a per-shard emission
    schedule over the full query set — and the partials merge by summation.
    Weights are exact ``int64`` counts, so the shard-local prefix sums add up
    to the global prefix sums regardless of the shard layout: bit-identical
    to the unsharded kernels.
    """
    from repro.columnar.parallel import morsel_count, parallel_map, shard_ranges

    shards = shard_ranges(len(earliest_rank), morsel_count(workers))

    def shard_counts(block: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
        start, stop = block
        return (
            certainly_precedes_counts(
                earliest_rank, latest_rank[start:stop], mult_lb[start:stop]
            ),
            possibly_precedes_counts(
                earliest_rank[start:stop], latest_rank, mult_ub[start:stop]
            ),
        )

    partials = parallel_map(shard_counts, shards, workers=workers)
    lower = np.zeros(len(earliest_rank), dtype=np.int64)
    upper = np.zeros(len(earliest_rank), dtype=np.int64)
    for part_lower, part_upper in partials:
        lower += part_lower
        upper += part_upper
    return lower, upper


# ---------------------------------------------------------------------------
# Frame-membership kernels (windowed aggregation, Sections 6-7)
# ---------------------------------------------------------------------------


def duplicate_offsets(mult_ub: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Expand a multiplicity-upper-bound vector into per-duplicate indexes.

    Returns ``(row, offset)`` arrays of length ``sum(mult_ub)``: duplicate
    ``t`` belongs to input row ``row[t]`` and is that row's ``offset[t]``-th
    copy.  The ``i``-th duplicate's sort position is the row's base position
    shifted by ``i`` (the split of Fig. 4 / Algorithm 2).
    """
    total = int(mult_ub.sum()) if len(mult_ub) else 0
    row = np.repeat(np.arange(len(mult_ub), dtype=np.int64), mult_ub)
    starts = np.cumsum(mult_ub) - mult_ub
    offset = np.arange(total, dtype=np.int64) - np.repeat(starts, mult_ub)
    return row, offset


def certain_frame_members(
    defining_lb: np.ndarray,
    defining_ub: np.ndarray,
    pos_lb: np.ndarray,
    pos_ub: np.ndarray,
    certain: np.ndarray,
    preceding: int,
) -> np.ndarray:
    """Mask ``M[d, e]``: duplicate ``e`` is certainly in ``d``'s frame.

    A certain duplicate is certainly inside an ``N PRECEDING AND CURRENT
    ROW`` window when its position interval is contained in the positions the
    window certainly covers — it starts no earlier than the latest possible
    window start and ends no later than the earliest possible window end
    (the containment condition of Fig. 6).  ``defining_*`` index the block of
    defining duplicates (rows of the mask); the self pair is *not* masked out
    here (callers exclude the diagonal).

    Quadratic reference implementation: the production sweep resolves
    membership through :class:`FrameMemberIndex` instead; the differential
    tests cross-check the two.
    """
    low = (defining_ub - preceding)[:, None]
    return (
        certain[None, :]
        & (pos_lb[None, :] >= low)
        & (pos_ub[None, :] <= defining_lb[:, None])
    )


def possible_frame_members(
    defining_lb: np.ndarray,
    defining_ub: np.ndarray,
    pos_lb: np.ndarray,
    pos_ub: np.ndarray,
    preceding: int,
) -> np.ndarray:
    """Mask ``M[d, e]``: duplicate ``e`` possibly falls into ``d``'s frame.

    The overlap condition of Fig. 6: the candidate's position interval
    intersects the positions the window possibly covers.  Certain members
    also satisfy it; callers subtract :func:`certain_frame_members` and the
    diagonal.

    Quadratic reference implementation: the production sweep resolves
    membership through :class:`FrameMemberIndex` instead; the differential
    tests cross-check the two.
    """
    return (pos_lb[None, :] <= defining_ub[:, None]) & (
        pos_ub[None, :] >= (defining_lb[:, None] - preceding)
    )


def expand_ranges(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(start, stop)`` for every aligned (start, stop) pair.

    The vectorized replacement for ``[i for s, t in zip(starts, stops) for i
    in range(s, t)]`` — turns per-query searchsorted bounds into the flat
    member-index list of the pair sweep.
    """
    counts = stops - starts
    total = int(counts.sum()) if len(counts) else 0
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.cumsum(counts) - counts
    return np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)


class FrameMemberIndex:
    """Width-bucketed, position-sorted index over expanded duplicates.

    Answers the frame-membership queries of the columnar window sweep with
    ``np.searchsorted`` range queries instead of ``O(queries x n)`` boolean
    masks.  For an ``N PRECEDING AND CURRENT ROW`` frame, candidate ``e``
    *possibly* falls into the frame of defining duplicate ``d`` iff its
    position interval overlaps ``[pos_lb[d] - N, pos_ub[d]]`` (the overlap
    condition of Fig. 6):

        ``pos_lb[e] <= pos_ub[d]  and  pos_ub[e] >= pos_lb[d] - N``.

    Bucketing candidates by interval width ``w = pos_ub - pos_lb`` rewrites
    the two-sided condition as a single contiguous range over the bucket's
    sorted ``pos_lb`` — ``pos_lb[e] in [pos_lb[d] - N - w, pos_ub[d]]`` — so
    each (query, bucket) pair costs two binary searches, and materialising
    the members costs ``O(pairs)``.  Total work is ``O((n + q·W) log n +
    pairs)`` with ``W`` distinct widths: linear-ish in the *actual* number of
    possible members instead of quadratic in the relation size.

    All (query, bucket) searches run as *one* ``np.searchsorted`` call: the
    buckets are concatenated in ascending-width order with their normalised
    ``pos_lb`` values shifted by ``bucket_index * stride`` (``stride`` wider
    than the position range, so buckets cannot collide), query values are
    clamped into the bucket's slot and shifted the same way, and the
    resulting bounds are *global* indices into the concatenated member
    array — no per-bucket Python loop.
    """

    __slots__ = ("preceding", "_members", "_widths", "_shifted_lb", "_base", "_stride")

    def __init__(self, pos_lb: np.ndarray, pos_ub: np.ndarray, preceding: int):
        self.preceding = preceding
        width = pos_ub - pos_lb
        if len(width) == 0:
            self._members = np.empty(0, dtype=np.int64)
            self._widths = np.empty(0, dtype=np.int64)
            self._shifted_lb = np.empty(0, dtype=np.int64)
            self._base = np.int64(0)
            self._stride = np.int64(1)
            return
        # Members sorted by (width, pos_lb): each width bucket is a
        # contiguous, pos_lb-sorted run of the concatenated array.
        order = lexsort_stable((pos_lb, width))
        self._members = order
        sorted_width = width[order]
        bucket_of_member = np.cumsum(
            np.concatenate([[0], (sorted_width[1:] != sorted_width[:-1]).astype(np.int64)])
        )
        starts = np.flatnonzero(
            np.concatenate([[True], sorted_width[1:] != sorted_width[:-1]])
        )
        self._widths = sorted_width[starts]
        self._base = np.int64(pos_lb.min())
        self._stride = np.int64(pos_lb.max()) - self._base + 2
        self._shifted_lb = (pos_lb[order] - self._base) + bucket_of_member * self._stride

    #: Cell budget for the (buckets x queries) bound matrices: query slices
    #: are sized so one batched searchsorted never materialises more cells.
    _CELL_BUDGET = 4_000_000

    def _bucket_bounds(
        self, q_lb: np.ndarray, q_ub: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Global ``[low, high)`` member-array bounds per (bucket, query).

        Returns flattened bucket-major ``(buckets * queries,)`` arrays.  The
        query endpoints are clamped into the bucket's slot
        (``[0, stride - 1]`` for the left bound, ``[-1, stride - 1]`` for the
        right so an endpoint below every position yields an empty run) before
        shifting, so an out-of-range endpoint saturates at its own bucket's
        edge instead of bleeding into a neighbour.
        """
        buckets = len(self._widths)
        lo_values = np.clip(
            q_lb[None, :] - self.preceding - self._widths[:, None] - self._base,
            0,
            self._stride - 1,
        )
        hi_values = np.clip(q_ub - self._base, -1, self._stride - 1)
        shift = (np.arange(buckets, dtype=np.int64) * self._stride)[:, None]
        low = np.searchsorted(self._shifted_lb, (lo_values + shift).ravel(), side="left")
        high = np.searchsorted(
            self._shifted_lb, (hi_values[None, :] + shift).ravel(), side="right"
        )
        return low, np.maximum(low, high)

    def _query_slices(self, queries: int):
        step = max(1, self._CELL_BUDGET // max(1, len(self._widths)))
        for start in range(0, queries, step):
            yield start, min(queries, start + step)

    def pair_counts(self, q_lb: np.ndarray, q_ub: np.ndarray) -> np.ndarray:
        """Per query: how many duplicates possibly fall into its frame.

        Used to budget the sweep's memory (queries are chunked so the
        materialised pair list stays bounded).
        """
        buckets = len(self._widths)
        totals = np.zeros(len(q_lb), dtype=np.int64)
        if buckets == 0:
            return totals
        for start, stop in self._query_slices(len(q_lb)):
            low, high = self._bucket_bounds(q_lb[start:stop], q_ub[start:stop])
            totals[start:stop] = (high - low).reshape(buckets, stop - start).sum(axis=0)
        return totals

    def member_pairs(
        self, q_lb: np.ndarray, q_ub: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(query, member)`` index pairs for all possible frame members.

        ``query`` indexes the ``q_lb`` / ``q_ub`` arrays (a chunk of defining
        duplicates), ``member`` the duplicates this index was built over.
        Certain members are a subset (containment implies overlap); callers
        classify them per pair and drop the self pair.  Pair order is
        deterministic but unspecified across query slices; every consumer
        reduces per (query, member) group, so the order never reaches results.
        """
        if len(self._widths) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        query_parts: list[np.ndarray] = []
        member_parts: list[np.ndarray] = []
        for start, stop in self._query_slices(len(q_lb)):
            low, high = self._bucket_bounds(q_lb[start:stop], q_ub[start:stop])
            counts = high - low
            query_parts.append(
                start
                + np.repeat(
                    np.tile(np.arange(stop - start, dtype=np.int64), len(self._widths)),
                    counts,
                )
            )
            member_parts.append(self._members[expand_ranges(low, high)])
        if len(query_parts) == 1:
            return query_parts[0], member_parts[0]
        return np.concatenate(query_parts), np.concatenate(member_parts)


def interval_point_match_pairs(
    lb: np.ndarray, ub: np.ndarray, points: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(interval, point)`` index pairs with ``points[j]`` inside ``[lb[i], ub[i]]``.

    The memory-safe replacement for the pair-grid equi-join when one side's
    key column is certain: sorting the point values once turns every
    interval's possible-overlap match set into a contiguous run bounded by
    two binary searches (``searchsorted`` on the interval endpoints), so the
    work is ``O((n + q) log n + matches)`` instead of ``O(n · q)`` pairs.

    Pairs are emitted grouped by interval; callers needing a specific pair
    order (the join's left-outer / right-inner order) sort the result.
    Inputs must be NaN-free numeric arrays whose cross-dtype promotion is
    exact — the callers gate on :class:`~repro.columnar.relation.ComponentProfile`.
    """
    order = np.argsort(points, kind="stable")
    sorted_points = points[order]
    lo = np.searchsorted(sorted_points, lb, side="left")
    hi = np.maximum(lo, np.searchsorted(sorted_points, ub, side="right"))
    counts = hi - lo
    interval_idx = np.repeat(np.arange(len(lb), dtype=np.int64), counts)
    point_idx = order[expand_ranges(lo, hi)]
    return interval_idx, point_idx


def interval_overlap_pairs(
    l_lb: np.ndarray, l_ub: np.ndarray, r_lb: np.ndarray, r_ub: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(left, right)`` index pairs whose ``[lb, ub]`` intervals overlap.

    The range×range sweep kernel: when *both* join sides carry uncertain
    keys, the possibly-equal pairs are exactly the pairs whose key intervals
    intersect — ``l_lb[i] <= r_ub[j]  and  r_lb[j] <= l_ub[i]``.  The four
    endpoint arrays are rank-encoded into one shared ``int64`` code space
    (overlap only compares endpoints with ``<=``, which dense codes
    preserve), then a :class:`FrameMemberIndex` over the right intervals with
    ``preceding=0`` answers every left interval's overlap set as contiguous
    searchsorted runs per width bucket — ``O((n + q·W) log n + pairs)`` with
    ``W`` distinct right-interval widths, instead of the grid's ``O(n · q)``.

    Pair order is deterministic but unspecified; callers needing the join's
    left-outer / right-inner order sort the result.  Inputs must be NaN-free
    numeric arrays whose cross-dtype promotion is exact — the callers gate on
    :class:`~repro.columnar.relation.ComponentProfile`.
    """
    if len(l_lb) == 0 or len(r_lb) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    q_lb, q_ub, m_lb, m_ub = _numeric_rank_codes([l_lb, l_ub, r_lb, r_ub])
    index = FrameMemberIndex(m_lb, m_ub, 0)
    return index.member_pairs(q_lb, q_ub)


def sliding_window_sums(values: np.ndarray, window: int) -> np.ndarray:
    """Rolling sums of the trailing ``window`` values (prefix-sum shaped).

    ``out[i] = sum(values[max(0, i - window + 1) : i + 1])`` — the
    selected-guess aggregate of an ``N PRECEDING AND CURRENT ROW`` frame over
    a dense, deterministic order.
    """
    n = len(values)
    prefix = np.concatenate([[0], np.cumsum(values)])
    starts = np.maximum(0, np.arange(n) + 1 - window)
    return prefix[1:] - prefix[starts]


def sliding_window_extrema(values: np.ndarray, window: int, *, maximum: bool) -> np.ndarray:
    """Rolling min/max of the trailing ``window`` values (sliding-extrema shaped).

    Pads the front with the identity element so that truncated leading
    windows reduce over exactly the available values.  ``int64`` inputs stay
    ``int64`` (identity from ``np.iinfo``), preserving exactness for
    integers beyond float64's 2**53 range; other inputs reduce in float64.
    """
    if len(values) == 0:
        return np.empty(0, dtype=values.dtype)
    # A trailing window never holds more rows than exist; clamping keeps the
    # padding (and the O(n * window) reduction) bounded for huge frames.
    window = min(window, len(values))
    if values.dtype == np.int64:
        identity = np.iinfo(np.int64).min if maximum else np.iinfo(np.int64).max
        padded = np.concatenate([np.full(window - 1, identity, dtype=np.int64), values])
    else:
        identity = -np.inf if maximum else np.inf
        padded = np.concatenate([np.full(window - 1, identity), values.astype(np.float64)])
    view = np.lib.stride_tricks.sliding_window_view(padded, window)
    return view.max(axis=1) if maximum else view.min(axis=1)


# ---------------------------------------------------------------------------
# Pairwise comparison matrices (cross-checks for small inputs)
# ---------------------------------------------------------------------------


def certainly_precedes_matrix(
    earliest_rank: np.ndarray, latest_rank: np.ndarray
) -> np.ndarray:
    """Boolean matrix ``M[i, j]``: tuple ``i`` certainly precedes tuple ``j``."""
    return latest_rank[:, None] < earliest_rank[None, :]


def possibly_precedes_matrix(
    earliest_rank: np.ndarray, latest_rank: np.ndarray
) -> np.ndarray:
    """Boolean matrix ``M[i, j]``: tuple ``i`` possibly precedes tuple ``j``."""
    return earliest_rank[:, None] <= latest_rank[None, :]
