"""Columnar AU-relation backend (NumPy-backed vectorized kernels).

The tuple-at-a-time Python operators in :mod:`repro.ranking` pay interpreter
overhead per tuple; this package trades the row-major ``AURelation`` layout
for a columnar one — per-attribute ``lb`` / ``sg`` / ``ub`` arrays plus a
``(lb, sg, ub)`` multiplicity matrix — and evaluates the hot paths of the
native operators with vectorized kernels:

* interval-lexicographic "certainly / possibly precedes" comparisons,
* sort-position bounds (Equations 1-3 of the paper),
* selected-guess positions under the total order ``<ᵗᵒᵗᵃˡ_O``,
* the batched emission schedule that replaces per-tuple heap feeding in
  the one-pass sort / top-k sweep,
* the window sweep: frame membership as a position-sorted searchsorted
  pair sweep (:class:`~repro.columnar.kernels.FrameMemberIndex`, the Fig. 6
  containment / overlap conditions as range queries per interval-width
  bucket), grouped min-k / max-k aggregate bounds, and rolling
  selected-guess aggregates (prefix sums / sliding extrema), with the same
  mirrored-order reduction for ``CURRENT ROW AND N FOLLOWING`` frames as
  the native sweep, and
* the ``RA⁺`` operators of Fig. 2 (:mod:`repro.columnar.operators`):
  bound-preserving select / project / extend / rename / union / distinct /
  cross / join / groupby_aggregate, with predicates and scalar expressions
  evaluated as vectorized interval arithmetic over the aligned
  bound-component arrays (:mod:`repro.columnar.expressions`; object-dtype
  columns fall back to the scalar ``eval_range`` row by row).  Grouped
  aggregation runs on lexsort group codes + segmented reductions; equi-joins
  with a certain key side take a memory-safe sort/searchsorted path
  (endpoint binary searches materialise only actual match candidates)
  instead of the ``O(|L|·|R|)`` pair grid.

The public entry points (:func:`repro.ranking.topk.sort`,
:func:`repro.ranking.native.sort_native`,
:func:`repro.relational.sort.sort_operator`,
:func:`repro.window.native.window_native`,
:func:`repro.relational.window.window_aggregate`, and every operator in
:mod:`repro.core.operators`) expose the backend behind a
``backend="python" | "columnar"`` switch; results are bit-identical to the
Python backend (enforced by the differential property suite under
``tests/property/``).

**Plan composition.**  The per-call ``backend="columnar"`` switch converts
back to the row-major layout after every operator.  To keep a whole plan
columnar, chain the stages through :class:`~repro.columnar.plan.ColumnarPlan`
instead — each stage (``sort`` / ``topk`` / ``window`` included: their
kernels emit columnar output) hands the columnar intermediate straight to
the next, and only the single explicit ``.to_rows()`` boundary materialises
rows::

    from repro.columnar import ColumnarPlan

    result = (
        ColumnarPlan(orders)                        # AURelation or columnar
        .select(attr("v").ge(const(10)))            # stays columnar
        .join(ColumnarPlan(parts), on=["g"])        # stays columnar
        .window(first_spec)                         # stays columnar
        .select(attr("w").ge(const(100)))           # stays columnar
        .window(second_spec)                        # stays columnar
        .to_rows()                                  # boundary: row-major result
    )

**Factorised join/cross results.**  Inside a plan, ``cross`` and qualifying
equi-``join`` stages do not enumerate the ``O(|L|·|R|)`` (or match-count)
pair grid at all: they return a
:class:`~repro.columnar.factorised.FactorisedAURelation` — fragments plus a
pairing structure — and downstream stages push down into it, expanding only
at the ``.to_rows()`` boundary.  See the "Factorised representation"
section of ``docs/ARCHITECTURE.md``.

See ``docs/PLAN_GUIDE.md`` for a stage-by-stage authoring guide.  NumPy is
required only when the columnar backend is actually selected; the rest of
the library stays importable without it.
"""

from repro.columnar.factorised import FactorisedAURelation
from repro.columnar.plan import ColumnarPlan
from repro.columnar.relation import ColumnarAURelation
from repro.columnar.sort import sort_columnar, sort_stage
from repro.columnar.window import window_columnar, window_stage

__all__ = [
    "ColumnarAURelation",
    "ColumnarPlan",
    "FactorisedAURelation",
    "sort_columnar",
    "sort_stage",
    "window_columnar",
    "window_stage",
]
