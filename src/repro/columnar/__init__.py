"""Columnar AU-relation backend (NumPy-backed vectorized kernels).

The tuple-at-a-time Python operators in :mod:`repro.ranking` pay interpreter
overhead per tuple; this package trades the row-major ``AURelation`` layout
for a columnar one — per-attribute ``lb`` / ``sg`` / ``ub`` arrays plus a
``(lb, sg, ub)`` multiplicity matrix — and evaluates the hot paths of the
native operators with vectorized kernels:

* interval-lexicographic "certainly / possibly precedes" comparisons,
* sort-position bounds (Equations 1-3 of the paper),
* selected-guess positions under the total order ``<ᵗᵒᵗᵃˡ_O``,
* the batched emission schedule that replaces per-tuple heap feeding in
  the one-pass sort / top-k sweep, and
* the window sweep: frame-membership interval masks (certain / possible
  window members from position bounds, Fig. 6), vectorized min-k / max-k
  aggregate bounds, and rolling selected-guess aggregates (prefix sums /
  sliding extrema), with the same mirrored-order reduction for
  ``CURRENT ROW AND N FOLLOWING`` frames as the native sweep.

The public entry points (:func:`repro.ranking.topk.sort`,
:func:`repro.ranking.native.sort_native`,
:func:`repro.relational.sort.sort_operator`,
:func:`repro.window.native.window_native`,
:func:`repro.relational.window.window_aggregate`) expose the backend behind a
``backend="python" | "columnar"`` switch; results are bound-identical to the
Python backend (enforced by the differential property suite under
``tests/property/``).

NumPy is required only when the columnar backend is actually selected; the
rest of the library stays importable without it.
"""

from repro.columnar.relation import ColumnarAURelation
from repro.columnar.sort import sort_columnar
from repro.columnar.window import window_columnar

__all__ = ["ColumnarAURelation", "sort_columnar", "window_columnar"]
