"""Columnar storage for AU-relations.

A :class:`ColumnarAURelation` stores an :class:`~repro.core.relation.AURelation`
in structure-of-arrays form: for every attribute three aligned arrays holding
the ``lb`` / ``sg`` / ``ub`` components of the range-annotated values, plus a
``(lb, sg, ub)`` multiplicity matrix.  Row ``i`` of every array corresponds to
the ``i``-th distinct range tuple of the source relation (in iteration
order), so conversions are lossless round trips:

>>> from repro.core.ranges import RangeValue
>>> from repro.core.relation import AURelation
>>> audb = AURelation.from_rows(
...     ["a", "b"], [((1, RangeValue(0, 1, 2)), 1), ((2, 5), (0, 1, 2))]
... )
>>> columnar = ColumnarAURelation.from_relation(audb)
>>> columnar.column("a").lb
array([1, 2])
>>> columnar.to_relation()._rows == audb._rows
True

Numeric columns are stored as ``int64`` / ``float64`` arrays (enabling the
vectorized kernels of :mod:`repro.columnar.kernels`); columns mixing types or
containing strings / ``None`` fall back to ``object`` arrays, which keeps the
representation lossless for every scalar the row-major layout accepts.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.multiplicity import Multiplicity
from repro.core.ranges import RangeValue, Scalar
from repro.core.relation import AURelation
from repro.core.schema import Schema
from repro.core.tuples import AUTuple

__all__ = [
    "ColumnarAURelation",
    "AttributeColumn",
    "ComponentProfile",
    "FLOAT64_EXACT_MAX",
    "column_array",
    "concat_components",
    "concat_relations",
    "as_columnar",
    "profile_components",
]


#: Largest magnitude float64 represents exactly; integer components at or
#: above it would round whenever a kernel promotes them to float64.
FLOAT64_EXACT_MAX = 2**53


class ComponentProfile:
    """Dtype/value facts the vectorized kernels gate their exactness on.

    ``has_nan`` covers ``float64`` arrays only (``object`` arrays force the
    scalar path regardless); ``int_magnitude`` is the largest absolute value
    across the integer arrays (0 when there are none).
    """

    __slots__ = ("has_object", "has_float", "has_nan", "int_magnitude")

    def __init__(self, has_object: bool, has_float: bool, has_nan: bool, int_magnitude: int):
        self.has_object = has_object
        self.has_float = has_float
        self.has_nan = has_nan
        self.int_magnitude = int_magnitude


def profile_components(arrays: Sequence[np.ndarray]) -> ComponentProfile:
    """One shared scan deciding whether vectorized float64 math is exact.

    Every kernel that promotes components to ``float64`` (expression
    evaluation, pairwise join equality, the window aggregate bounds) gates on
    the same facts; keeping the scan here prevents the exactness rules from
    drifting apart between call sites.
    """
    has_object = has_float = has_nan = False
    magnitude = 0
    for arr in arrays:
        if arr.dtype == object:
            has_object = True
        elif arr.dtype == np.float64:
            has_float = True
            if len(arr) and bool(np.isnan(arr).any()):
                has_nan = True
        elif len(arr):
            magnitude = max(magnitude, abs(int(arr.min())), abs(int(arr.max())))
    return ComponentProfile(has_object, has_float, has_nan, magnitude)


def column_array(values: Sequence[Scalar]) -> np.ndarray:
    """Pack one bound-component column into the tightest lossless array.

    ``int``-only columns become ``int64`` (falling back to ``object`` on
    overflow), ``float``-only columns become ``float64``, and everything else
    (strings, ``None``, booleans, mixed types) is stored as ``object`` so the
    original Python scalars survive the round trip unchanged.
    """
    kinds = {type(v) for v in values}
    if kinds == {int}:
        try:
            return np.array(values, dtype=np.int64)
        except OverflowError:
            pass
    elif kinds == {float}:
        return np.array(values, dtype=np.float64)
    out = np.empty(len(values), dtype=object)
    for i, value in enumerate(values):
        out[i] = value
    return out


class AttributeColumn:
    """The three bound-component arrays of one attribute."""

    __slots__ = ("name", "lb", "sg", "ub")

    def __init__(self, name: str, lb: np.ndarray, sg: np.ndarray, ub: np.ndarray):
        self.name = name
        self.lb = lb
        self.sg = sg
        self.ub = ub

    @property
    def is_numeric(self) -> bool:
        """Whether every component array has a (vectorizable) numeric dtype."""
        return all(arr.dtype != object for arr in (self.lb, self.sg, self.ub))

    def value(self, row: int) -> RangeValue:
        """Reconstruct the range value of one row."""
        return RangeValue(_item(self.lb[row]), _item(self.sg[row]), _item(self.ub[row]))


def _item(value: object) -> Scalar:
    """Unwrap a NumPy scalar back to the corresponding Python scalar."""
    return value.item() if isinstance(value, np.generic) else value  # type: ignore[return-value]


class ColumnarAURelation:
    """An AU-relation in structure-of-arrays (columnar) layout."""

    __slots__ = ("schema", "columns", "mult_lb", "mult_sg", "mult_ub", "_values")

    def __init__(
        self,
        schema: Schema,
        columns: Sequence[AttributeColumn],
        mult_lb: np.ndarray,
        mult_sg: np.ndarray,
        mult_ub: np.ndarray,
        _values: list[tuple[RangeValue, ...]] | None = None,
    ):
        self.schema = schema
        self.columns = tuple(columns)
        self.mult_lb = mult_lb
        self.mult_sg = mult_sg
        self.mult_ub = mult_ub
        # Cached row-major value tuples (populated when converting from an
        # AURelation) so that materialising results does not have to rebuild
        # every RangeValue from the arrays.
        self._values = _values

    # -- conversions ---------------------------------------------------------

    @staticmethod
    def from_relation(relation: AURelation) -> "ColumnarAURelation":
        """Losslessly convert a row-major AU-relation (iteration order kept)."""
        schema = relation.schema
        values: list[tuple[RangeValue, ...]] = []
        mults: list[Multiplicity] = []
        for tup, mult in relation:
            values.append(tup.values)
            mults.append(mult)
        columns = []
        for j, name in enumerate(schema):
            columns.append(
                AttributeColumn(
                    name,
                    column_array([row[j].lb for row in values]),
                    column_array([row[j].sg for row in values]),
                    column_array([row[j].ub for row in values]),
                )
            )
        return ColumnarAURelation(
            schema,
            columns,
            np.array([m.lb for m in mults], dtype=np.int64),
            np.array([m.sg for m in mults], dtype=np.int64),
            np.array([m.ub for m in mults], dtype=np.int64),
            _values=values,
        )

    def to_relation(self, *, workers: int = 1) -> AURelation:
        """Convert back to the row-major layout (tuples with equal hypercubes merge).

        With ``workers > 1`` the conversion shards by output-row blocks:
        rows with the semiring-zero annotation are dropped and equal
        hypercubes are merged columnar-side first (both exactly as
        :meth:`AURelation.add` would), so the surviving rows are distinct
        by construction and the forked workers can build their blocks'
        range-value tuples independently; the parent fills the row
        dictionary in block order.  Bit-identical to the serial loop —
        pinned by the sharded-vs-unsharded differential property.
        """
        if workers > 1 and len(self) > 1:
            return self._to_relation_sharded(workers)
        out = AURelation(self.schema)
        for i in range(len(self)):
            out.add(
                AUTuple(self.schema, self.row_values(i)),
                Multiplicity(int(self.mult_lb[i]), int(self.mult_sg[i]), int(self.mult_ub[i])),
            )
        return out

    def _to_relation_sharded(self, workers: int) -> AURelation:
        from repro.columnar.operators import merge_equal_rows
        from repro.columnar.parallel import morsel_count, parallel_map, shard_ranges

        relation = self
        zero = (relation.mult_lb == 0) & (relation.mult_sg == 0) & (relation.mult_ub == 0)
        if bool(zero.any()):
            # AURelation.add skips exactly-zero annotations; replicate before
            # merging so a zero row can neither survive nor absorb a merge.
            relation = relation.mask(~zero)
        merged = merge_equal_rows(relation)
        mult_lb, mult_sg, mult_ub = merged.mult_lb, merged.mult_sg, merged.mult_ub

        def build_block(block: tuple[int, int]) -> list:
            start, stop = block
            return [
                (
                    merged.row_values(i),
                    Multiplicity(int(mult_lb[i]), int(mult_sg[i]), int(mult_ub[i])),
                )
                for i in range(start, stop)
            ]

        blocks = shard_ranges(len(merged), morsel_count(workers))
        out = AURelation(merged.schema)
        rows = out._rows
        for part in parallel_map(build_block, blocks, workers=workers):
            for values, mult in part:
                rows[values] = mult
        return out

    def take(self, indices: Sequence[int] | np.ndarray) -> "ColumnarAURelation":
        """A columnar relation holding the selected rows (kernel-friendly slicing).

        Used by the per-partition window sweep: partitions become row subsets
        without a round trip through the row-major layout.
        """
        idx = np.asarray(indices, dtype=np.int64)
        columns = [
            AttributeColumn(column.name, column.lb[idx], column.sg[idx], column.ub[idx])
            for column in self.columns
        ]
        values = None
        if self._values is not None:
            values = [self._values[i] for i in idx.tolist()]
        return ColumnarAURelation(
            self.schema,
            columns,
            self.mult_lb[idx],
            self.mult_sg[idx],
            self.mult_ub[idx],
            _values=values,
        )

    # -- structural kernels (used by repro.columnar.operators) -----------------

    def mask(self, keep: np.ndarray) -> "ColumnarAURelation":
        """Rows where ``keep`` is true, in order (vectorized selection)."""
        return self.take(np.flatnonzero(keep))

    def repeat(self, repeats: int | np.ndarray) -> "ColumnarAURelation":
        """Each row repeated ``repeats`` times (row-aligned or scalar count)."""
        columns = [
            AttributeColumn(
                column.name,
                np.repeat(column.lb, repeats),
                np.repeat(column.sg, repeats),
                np.repeat(column.ub, repeats),
            )
            for column in self.columns
        ]
        return ColumnarAURelation(
            self.schema,
            columns,
            np.repeat(self.mult_lb, repeats),
            np.repeat(self.mult_sg, repeats),
            np.repeat(self.mult_ub, repeats),
        )

    def tile(self, reps: int) -> "ColumnarAURelation":
        """The whole relation repeated ``reps`` times back to back."""
        columns = [
            AttributeColumn(
                column.name,
                np.tile(column.lb, reps),
                np.tile(column.sg, reps),
                np.tile(column.ub, reps),
            )
            for column in self.columns
        ]
        return ColumnarAURelation(
            self.schema,
            columns,
            np.tile(self.mult_lb, reps),
            np.tile(self.mult_sg, reps),
            np.tile(self.mult_ub, reps),
        )

    def concat(self, other: "ColumnarAURelation") -> "ColumnarAURelation":
        """Rows of ``self`` followed by rows of ``other`` (schemas must match)."""
        from repro.errors import SchemaError

        if self.schema != other.schema:
            raise SchemaError("concat requires identical schemas")
        columns = [
            AttributeColumn(
                left.name,
                _concat_components(left.lb, right.lb),
                _concat_components(left.sg, right.sg),
                _concat_components(left.ub, right.ub),
            )
            for left, right in zip(self.columns, other.columns)
        ]
        return ColumnarAURelation(
            self.schema,
            columns,
            np.concatenate([self.mult_lb, other.mult_lb]),
            np.concatenate([self.mult_sg, other.mult_sg]),
            np.concatenate([self.mult_ub, other.mult_ub]),
        )

    def rename(self, mapping: dict[str, str]) -> "ColumnarAURelation":
        """Attributes renamed according to ``mapping`` (arrays shared, not copied)."""
        schema = self.schema.rename(dict(mapping))
        columns = [
            AttributeColumn(name, column.lb, column.sg, column.ub)
            for name, column in zip(schema, self.columns)
        ]
        return ColumnarAURelation(
            schema, columns, self.mult_lb, self.mult_sg, self.mult_ub, _values=self._values
        )

    def restrict(self, attributes: Sequence[str]) -> "ColumnarAURelation":
        """Columns restricted (and reordered) to ``attributes``, rows untouched.

        Structural only — equal projected hypercubes are *not* merged; the
        bag-projection operator (:func:`repro.columnar.operators.project`)
        layers the merge on top.
        """
        schema = self.schema.project(attributes)
        columns = [self.column(name) for name in attributes]
        values = None
        if self._values is not None:
            indices = [self.schema.index_of(name) for name in attributes]
            values = [tuple(row[k] for k in indices) for row in self._values]
        return ColumnarAURelation(
            schema, columns, self.mult_lb, self.mult_sg, self.mult_ub, _values=values
        )

    def with_column(self, column: AttributeColumn) -> "ColumnarAURelation":
        """One computed attribute appended (row-aligned component arrays).

        When the receiver carries the row-major value cache, it is extended
        with the new column's range values (only the appended column pays a
        scalar pass), so boundary conversions after a sort / window /
        extend stage stay as cheap as before the stage.
        """
        values = None
        if self._values is not None:
            lb, sg, ub = column.lb.tolist(), column.sg.tolist(), column.ub.tolist()
            values = [
                base + (RangeValue(lb[i], sg[i], ub[i]),)
                for i, base in enumerate(self._values)
            ]
        return ColumnarAURelation(
            self.schema.extend(column.name),
            self.columns + (column,),
            self.mult_lb,
            self.mult_sg,
            self.mult_ub,
            _values=values,
        )

    def with_multiplicities(
        self, mult_lb: np.ndarray, mult_sg: np.ndarray, mult_ub: np.ndarray
    ) -> "ColumnarAURelation":
        """Same rows under replaced multiplicity triples (selection filtering)."""
        return ColumnarAURelation(
            self.schema, self.columns, mult_lb, mult_sg, mult_ub, _values=self._values
        )

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.mult_lb)

    def column(self, name: str) -> AttributeColumn:
        """The bound-component arrays of one attribute."""
        return self.columns[self.schema.index_of(name)]

    def row_values(self, row: int) -> tuple[RangeValue, ...]:
        """The range values of one row (cached when converted from row-major)."""
        if self._values is not None:
            return self._values[row]
        return tuple(column.value(row) for column in self.columns)

    def multiplicity(self, row: int) -> Multiplicity:
        return Multiplicity(
            int(self.mult_lb[row]), int(self.mult_sg[row]), int(self.mult_ub[row])
        )

    def __iter__(self) -> Iterator[tuple[AUTuple, Multiplicity]]:
        for i in range(len(self)):
            yield AUTuple(self.schema, self.row_values(i)), self.multiplicity(i)

    @property
    def total_possible(self) -> int:
        return int(self.mult_ub.sum()) if len(self) else 0

    @property
    def total_certain(self) -> int:
        return int(self.mult_lb.sum()) if len(self) else 0

    @property
    def total_sg(self) -> int:
        return int(self.mult_sg.sum()) if len(self) else 0


def concat_components(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate bound-component arrays without lossy dtype promotion.

    Equal non-object dtypes concatenate directly; any other mix (e.g.
    ``int64`` with ``float64``, whose promotion would round integers beyond
    ``2**53``, or anything involving ``object``) re-packs the Python scalars
    through :func:`column_array` so every value survives unchanged.  The
    single definition of the rule — :meth:`ColumnarAURelation.concat` and
    the window sweep's partition stitching both concatenate through here.
    """
    first_dtype = arrays[0].dtype
    if first_dtype != object and all(arr.dtype == first_dtype for arr in arrays):
        return np.concatenate(list(arrays))
    return column_array([value for arr in arrays for value in arr.tolist()])


def _concat_components(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    return concat_components((left, right))


def concat_relations(partials: Sequence["ColumnarAURelation"]) -> "ColumnarAURelation":
    """Concatenate shard results with one array copy per component.

    The stitch-up of every sharded stage (per-partition window sweeps,
    equi-join pair blocks, group-sharded aggregation): each bound component
    concatenates once across all partials — a pairwise ``concat`` loop
    would re-copy the accumulated arrays per shard (quadratic in the shard
    count) — and the row-value caches merge when every partial carries one.
    Requires at least one partial; all must share a schema.
    """
    first = partials[0]
    if len(partials) == 1:
        return first
    columns = [
        AttributeColumn(
            column.name,
            concat_components([p.columns[j].lb for p in partials]),
            concat_components([p.columns[j].sg for p in partials]),
            concat_components([p.columns[j].ub for p in partials]),
        )
        for j, column in enumerate(first.columns)
    ]
    values = None
    if all(p._values is not None for p in partials):
        values = [row for p in partials for row in p._values]
    return ColumnarAURelation(
        first.schema,
        columns,
        np.concatenate([p.mult_lb for p in partials]),
        np.concatenate([p.mult_sg for p in partials]),
        np.concatenate([p.mult_ub for p in partials]),
        _values=values,
    )


def as_columnar(relation: AURelation | ColumnarAURelation) -> ColumnarAURelation:
    """Coerce any relation layout to columnar (no copy when already columnar).

    Factorised relations (:mod:`repro.columnar.factorised`) expand here —
    this is one of their sanctioned materialisation points, used when an
    eager kernel genuinely needs the full pair enumeration.
    """
    if isinstance(relation, ColumnarAURelation):
        return relation
    from repro.columnar.factorised import FactorisedAURelation  # avoids a module cycle

    if isinstance(relation, FactorisedAURelation):
        return relation.expand()
    return ColumnarAURelation.from_relation(relation)
