"""Columnar storage for AU-relations.

A :class:`ColumnarAURelation` stores an :class:`~repro.core.relation.AURelation`
in structure-of-arrays form: for every attribute three aligned arrays holding
the ``lb`` / ``sg`` / ``ub`` components of the range-annotated values, plus a
``(lb, sg, ub)`` multiplicity matrix.  Row ``i`` of every array corresponds to
the ``i``-th distinct range tuple of the source relation (in iteration
order), so conversions are lossless round trips:

>>> columnar = ColumnarAURelation.from_relation(audb)
>>> columnar.to_relation()._rows == audb._rows
True

Numeric columns are stored as ``int64`` / ``float64`` arrays (enabling the
vectorized kernels of :mod:`repro.columnar.kernels`); columns mixing types or
containing strings / ``None`` fall back to ``object`` arrays, which keeps the
representation lossless for every scalar the row-major layout accepts.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.multiplicity import Multiplicity
from repro.core.ranges import RangeValue, Scalar
from repro.core.relation import AURelation
from repro.core.schema import Schema
from repro.core.tuples import AUTuple

__all__ = ["ColumnarAURelation", "AttributeColumn", "column_array", "as_columnar"]


def column_array(values: Sequence[Scalar]) -> np.ndarray:
    """Pack one bound-component column into the tightest lossless array.

    ``int``-only columns become ``int64`` (falling back to ``object`` on
    overflow), ``float``-only columns become ``float64``, and everything else
    (strings, ``None``, booleans, mixed types) is stored as ``object`` so the
    original Python scalars survive the round trip unchanged.
    """
    kinds = {type(v) for v in values}
    if kinds == {int}:
        try:
            return np.array(values, dtype=np.int64)
        except OverflowError:
            pass
    elif kinds == {float}:
        return np.array(values, dtype=np.float64)
    out = np.empty(len(values), dtype=object)
    for i, value in enumerate(values):
        out[i] = value
    return out


class AttributeColumn:
    """The three bound-component arrays of one attribute."""

    __slots__ = ("name", "lb", "sg", "ub")

    def __init__(self, name: str, lb: np.ndarray, sg: np.ndarray, ub: np.ndarray):
        self.name = name
        self.lb = lb
        self.sg = sg
        self.ub = ub

    @property
    def is_numeric(self) -> bool:
        """Whether every component array has a (vectorizable) numeric dtype."""
        return all(arr.dtype != object for arr in (self.lb, self.sg, self.ub))

    def value(self, row: int) -> RangeValue:
        """Reconstruct the range value of one row."""
        return RangeValue(_item(self.lb[row]), _item(self.sg[row]), _item(self.ub[row]))


def _item(value: object) -> Scalar:
    """Unwrap a NumPy scalar back to the corresponding Python scalar."""
    return value.item() if isinstance(value, np.generic) else value  # type: ignore[return-value]


class ColumnarAURelation:
    """An AU-relation in structure-of-arrays (columnar) layout."""

    __slots__ = ("schema", "columns", "mult_lb", "mult_sg", "mult_ub", "_values")

    def __init__(
        self,
        schema: Schema,
        columns: Sequence[AttributeColumn],
        mult_lb: np.ndarray,
        mult_sg: np.ndarray,
        mult_ub: np.ndarray,
        _values: list[tuple[RangeValue, ...]] | None = None,
    ):
        self.schema = schema
        self.columns = tuple(columns)
        self.mult_lb = mult_lb
        self.mult_sg = mult_sg
        self.mult_ub = mult_ub
        # Cached row-major value tuples (populated when converting from an
        # AURelation) so that materialising results does not have to rebuild
        # every RangeValue from the arrays.
        self._values = _values

    # -- conversions ---------------------------------------------------------

    @staticmethod
    def from_relation(relation: AURelation) -> "ColumnarAURelation":
        """Losslessly convert a row-major AU-relation (iteration order kept)."""
        schema = relation.schema
        values: list[tuple[RangeValue, ...]] = []
        mults: list[Multiplicity] = []
        for tup, mult in relation:
            values.append(tup.values)
            mults.append(mult)
        columns = []
        for j, name in enumerate(schema):
            columns.append(
                AttributeColumn(
                    name,
                    column_array([row[j].lb for row in values]),
                    column_array([row[j].sg for row in values]),
                    column_array([row[j].ub for row in values]),
                )
            )
        return ColumnarAURelation(
            schema,
            columns,
            np.array([m.lb for m in mults], dtype=np.int64),
            np.array([m.sg for m in mults], dtype=np.int64),
            np.array([m.ub for m in mults], dtype=np.int64),
            _values=values,
        )

    def to_relation(self) -> AURelation:
        """Convert back to the row-major layout (tuples with equal hypercubes merge)."""
        out = AURelation(self.schema)
        for i in range(len(self)):
            out.add(
                AUTuple(self.schema, self.row_values(i)),
                Multiplicity(int(self.mult_lb[i]), int(self.mult_sg[i]), int(self.mult_ub[i])),
            )
        return out

    def take(self, indices: Sequence[int] | np.ndarray) -> "ColumnarAURelation":
        """A columnar relation holding the selected rows (kernel-friendly slicing).

        Used by the per-partition window sweep: partitions become row subsets
        without a round trip through the row-major layout.
        """
        idx = np.asarray(indices, dtype=np.int64)
        columns = [
            AttributeColumn(column.name, column.lb[idx], column.sg[idx], column.ub[idx])
            for column in self.columns
        ]
        values = None
        if self._values is not None:
            values = [self._values[i] for i in idx.tolist()]
        return ColumnarAURelation(
            self.schema,
            columns,
            self.mult_lb[idx],
            self.mult_sg[idx],
            self.mult_ub[idx],
            _values=values,
        )

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.mult_lb)

    def column(self, name: str) -> AttributeColumn:
        """The bound-component arrays of one attribute."""
        return self.columns[self.schema.index_of(name)]

    def row_values(self, row: int) -> tuple[RangeValue, ...]:
        """The range values of one row (cached when converted from row-major)."""
        if self._values is not None:
            return self._values[row]
        return tuple(column.value(row) for column in self.columns)

    def multiplicity(self, row: int) -> Multiplicity:
        return Multiplicity(
            int(self.mult_lb[row]), int(self.mult_sg[row]), int(self.mult_ub[row])
        )

    def __iter__(self) -> Iterator[tuple[AUTuple, Multiplicity]]:
        for i in range(len(self)):
            yield AUTuple(self.schema, self.row_values(i)), self.multiplicity(i)

    @property
    def total_possible(self) -> int:
        return int(self.mult_ub.sum()) if len(self) else 0

    @property
    def total_certain(self) -> int:
        return int(self.mult_lb.sum()) if len(self) else 0

    @property
    def total_sg(self) -> int:
        return int(self.mult_sg.sum()) if len(self) else 0


def as_columnar(relation: AURelation | ColumnarAURelation) -> ColumnarAURelation:
    """Coerce either relation layout to columnar (no copy when already columnar)."""
    if isinstance(relation, ColumnarAURelation):
        return relation
    return ColumnarAURelation.from_relation(relation)
