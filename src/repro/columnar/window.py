"""Vectorized uncertain windowed aggregation over the columnar backend.

:func:`window_columnar` computes the same range-annotated aggregate attribute
as :func:`repro.window.native.window_native` and
:func:`repro.window.semantics.window_rewrite` — the three implementations are
bound-identical (enforced by the differential property suite) — but replaces
the native sweep's heaps with columnar kernels:

* sort-position bound triples come from the prefix-sum kernels of
  :mod:`repro.columnar.kernels` (Equations 1-3),
* duplicates are expanded in bulk (:func:`~repro.columnar.kernels.duplicate_offsets`)
  and frame membership is resolved with a position-sorted searchsorted sweep
  (:class:`~repro.columnar.kernels.FrameMemberIndex`): candidates bucketed by
  position-interval width turn the Fig. 6 containment / overlap conditions
  into contiguous range queries, so only the *actual* (query, member) pairs
  are ever materialised (chunked to bound peak memory) instead of the
  quadratic query x candidate mask grid,
* aggregate bounds are grouped reductions over those pairs — ``bincount``
  sums for the certain members, one shared lexsort + grouped prefix sums for
  the min-k / max-k possible contributions of ``sum`` (at most
  ``frame_size - 1`` candidates ever matter), and
* the selected-guess aggregate is a deterministic rolling computation over
  the selected-guess order (prefix sums for ``sum`` / ``count`` / ``avg``,
  sliding extrema for ``min`` / ``max``).

``CURRENT ROW AND N FOLLOWING`` frames use the same mirrored-order reduction
as the native sweep; certain partition-by attributes sweep per partition via
:meth:`~repro.columnar.relation.ColumnarAURelation.take`; everything outside
the sweepable class (two-sided frames, frames excluding the current row,
uncertain partition-by attributes) falls back to the definitional rewrite,
exactly like the Python backend.  Results are bit-identical to the Python
backend: aggregation columns the float64 kernels cannot reproduce exactly —
integers too large for exact float64 comparisons or window sums
(``magnitude * frame_size >= 2**53``, which also covers min/max), float
columns under ``sum`` / ``avg`` (whose result depends on accumulation
order), and NaN-carrying relations — delegate to the definitional rewrite;
``count`` ignores values and is always vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.columnar.kernels import (
    FrameMemberIndex,
    duplicate_offsets,
    sliding_window_extrema,
    sliding_window_sums,
    sort_position_bounds,
)
from repro.columnar.relation import ColumnarAURelation, as_columnar
from repro.core.multiplicity import duplicate_annotation
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.errors import OperatorError, WindowSpecError
from repro.window.spec import WindowSpec

__all__ = ["window_columnar"]

#: Target number of materialised (query, member) pairs per sweep chunk
#: (bounds peak memory of the pair lists).
_PAIR_BUDGET = 4_000_000


def window_columnar(
    relation: AURelation | ColumnarAURelation, spec: WindowSpec
) -> AURelation:
    """Uncertain windowed aggregation over the columnar backend.

    Accepts either relation layout (row-major inputs are converted).  The
    result is bit-identical to ``window_native`` / ``window_rewrite``.
    """
    columnar = as_columnar(relation)
    # Fallback paths delegate to the rewrite on a row-major relation; when
    # the caller already handed one over, reuse it instead of round-tripping
    # through the columnar layout.
    source = relation if isinstance(relation, AURelation) else None
    columnar.schema.require(list(spec.order_by))
    columnar.schema.require(list(spec.partition_by))
    if spec.attribute is not None and spec.attribute != "*":
        columnar.schema.require([spec.attribute])
    if spec.output in columnar.schema:
        raise WindowSpecError(f"output attribute {spec.output!r} already exists in the schema")

    if spec.following_only and spec.frame[1] > 0:
        # CURRENT ROW AND N FOLLOWING == N PRECEDING AND CURRENT ROW over
        # the mirrored sort order (the native sweep's reduction).
        spec = spec.mirrored()
    if not spec.preceding_only:
        return _fallback_rewrite(columnar, spec, source)

    if _contains_nan(columnar):
        # NaN breaks the total order both backends sort by: the rank-encoded
        # kernels and Python's comparison-based sorts (and min/max) resolve
        # the incoherent comparisons differently, so NaN-carrying relations
        # stay on the definitional path wholesale.
        return _fallback_rewrite(columnar, spec, source)

    if spec.function not in ("sum", "count", "min", "max", "avg"):
        # Unreachable today (WindowSpec validates against the same set);
        # guards future aggregate additions from silently taking the avg
        # branch of the kernel sweep.
        raise OperatorError(f"unsupported window aggregate {spec.function!r}")

    if spec.function != "count" and spec.attribute not in (None, "*"):
        column = columnar.column(spec.attribute)
        if not column.is_numeric:
            # Non-numeric aggregation columns (strings, None) stay on the
            # exact definitional path.  (The Python sweep's connected heap
            # negates value upper bounds, so the rewrite is the only backend
            # covering them.)
            return _fallback_rewrite(columnar, spec, source)
        if spec.function in ("sum", "avg") and any(
            arr.dtype == np.float64 for arr in (column.lb, column.sg, column.ub)
        ):
            # Sum bounds select min-k / max-k member subsets per window; the
            # vectorized selection and the tuple-at-a-time implementations
            # assemble them differently, so float columns (where rounding
            # could expose that) delegate to the definitional rewrite.
            return _fallback_rewrite(columnar, spec, source)
        if not _float64_exact(column, spec.frame_size):
            # The masked bound kernels compare and accumulate in float64;
            # integers large enough that a value (or a window sum) exceeds
            # 2**53 would be silently rounded (cf. the same guard in
            # kernels.component_rank_codes).
            return _fallback_rewrite(columnar, spec, source)

    if spec.partition_by:
        groups = _certain_partition_groups(columnar, spec.partition_by)
        if groups is None:
            return _fallback_rewrite(columnar, spec, source)
        out = AURelation(columnar.schema.extend(spec.output))
        for indices in groups:
            partial = _sweep(columnar.take(indices), spec)
            for tup, mult in partial:
                out.add(tup, mult)
        return out

    return _sweep(columnar, spec)


def _fallback_rewrite(
    columnar: ColumnarAURelation, spec: WindowSpec, source: AURelation | None = None
) -> AURelation:
    from repro.window.semantics import window_rewrite  # local import: avoid cycle

    return window_rewrite(source if source is not None else columnar.to_relation(), spec)


def _contains_nan(columnar: ColumnarAURelation) -> bool:
    """Whether any bound component anywhere in the relation is NaN.

    Every column can enter the sort keys (order-by columns directly, the rest
    as ``<ᵗᵒᵗᵃˡ_O`` tiebreakers) or the aggregate, so the check is global.
    """
    for column in columnar.columns:
        for arr in (column.lb, column.sg, column.ub):
            if arr.dtype == np.float64 and bool(np.isnan(arr).any()):
                return True
            if arr.dtype == object and any(
                type(v) is float and v != v for v in arr.tolist()
            ):
                return True
    return False


def _float64_exact(column, frame_size: int) -> bool:
    """Whether every window aggregate over the column is exact in float64.

    A window sum combines at most ``frame_size`` member values, so integer
    bound components stay exact when ``frame_size * max|value|`` fits the
    float64 integer range (the shared exactness scan of
    :func:`repro.columnar.relation.profile_components`).
    """
    from repro.columnar.relation import FLOAT64_EXACT_MAX, profile_components

    profile = profile_components((column.lb, column.sg, column.ub))
    return profile.int_magnitude * max(1, frame_size) < FLOAT64_EXACT_MAX


def _certain_partition_groups(
    columnar: ColumnarAURelation, partition_by: tuple[str, ...]
) -> list[list[int]] | None:
    """Row-index groups per partition key, or ``None`` if any key is uncertain."""
    columns = [columnar.column(name) for name in partition_by]
    for column in columns:
        if len(columnar) and not bool(np.all(column.lb == column.ub)):
            return None
    groups: dict[tuple, list[int]] = {}
    for i, key in enumerate(zip(*[column.sg.tolist() for column in columns])):
        groups.setdefault(key, []).append(i)
    return list(groups.values())


def _sweep(columnar: ColumnarAURelation, spec: WindowSpec) -> AURelation:
    """The vectorized window sweep over one partition (preceding-only frames)."""
    out = AURelation(columnar.schema.extend(spec.output))
    n = len(columnar)
    if n == 0:
        return out
    preceding = -spec.frame[0]
    frame_size = spec.frame_size

    lower, sg, upper = sort_position_bounds(
        columnar, spec.order_by, descending=spec.descending
    )

    if spec.function == "count" or spec.attribute in (None, "*"):
        val_lb = val_sg = val_ub = np.ones(n, dtype=np.int64)
    else:
        column = columnar.column(spec.attribute)
        val_lb, val_sg, val_ub = column.lb, column.sg, column.ub

    # Expand duplicates: the i-th copy of a row shifts its positions by i and
    # is certain / selected-guess-only / merely possible by where i falls in
    # the multiplicity triple.
    row, offset = duplicate_offsets(columnar.mult_ub)
    m = len(row)
    if m == 0:
        return out
    pos_lb = lower[row] + offset
    pos_sg = sg[row] + offset
    pos_ub = upper[row] + offset
    dup_cert = offset < columnar.mult_lb[row]
    dup_sg = offset < columnar.mult_sg[row]
    d_val_lb = val_lb[row]
    d_val_ub = val_ub[row]

    sg_agg = _selected_guess_aggregates(
        spec.function, val_sg[row], pos_sg, dup_sg, frame_size
    )

    # Frame membership as a position-sorted searchsorted sweep: the index
    # answers "which duplicates possibly fall into d's frame" with range
    # queries per interval-width bucket, so cost scales with the number of
    # *actual* member pairs instead of the full query x candidate grid.
    fval_lb = d_val_lb.astype(np.float64)
    fval_ub = d_val_ub.astype(np.float64)
    index = FrameMemberIndex(pos_lb, pos_ub, preceding)
    pair_counts = index.pair_counts(pos_lb, pos_ub)
    w_lb = np.empty(m, dtype=np.float64)
    w_ub = np.empty(m, dtype=np.float64)
    for start, stop in _query_chunks(pair_counts, _PAIR_BUDGET):
        block = slice(start, stop)
        nq = stop - start
        query, member = index.member_pairs(pos_lb[block], pos_ub[block])
        # Exclude the defining duplicate itself, then split members into the
        # certain set (position interval contained in the positions the
        # window certainly covers, Fig. 6) and the merely possible rest.
        keep = member != query + start
        query, member = query[keep], member[keep]
        cert = (
            dup_cert[member]
            & (pos_lb[member] >= pos_ub[block][query] - preceding)
            & (pos_ub[member] <= pos_lb[block][query])
        )
        q_cert, e_cert = query[cert], member[cert]
        q_poss, e_poss = query[~cert], member[~cert]

        if spec.function == "sum":
            b_lb, b_ub = _sum_bounds_chunk(
                q_cert, e_cert, q_poss, e_poss, fval_lb, fval_ub,
                self_lb=fval_lb[block], self_ub=fval_ub[block],
                frame_size=frame_size,
                certain_window_size=1 + np.minimum(preceding, pos_lb[block]),
                nq=nq,
            )
        elif spec.function == "count":
            b_lb, b_ub = _count_bounds_chunk(
                q_cert, q_poss,
                frame_size=frame_size,
                certain_window_size=1 + np.minimum(preceding, pos_lb[block]),
                nq=nq,
            )
        elif spec.function in ("min", "max"):
            b_lb, b_ub = _extrema_bounds_chunk(
                q_cert, e_cert, query, member, fval_lb, fval_ub,
                self_lb=fval_lb[block], self_ub=fval_ub[block],
                maximum=spec.function == "max",
            )
        else:  # avg: envelope of the member values (Algorithm 4's delegation)
            b_lb = fval_lb[block].copy()
            np.minimum.at(b_lb, query, fval_lb[member])
            b_ub = fval_ub[block].copy()
            np.maximum.at(b_ub, query, fval_ub[member])
        w_lb[block] = b_lb
        w_ub[block] = b_ub

    # Integer aggregation columns produce integer bounds on the Python
    # backend (sum/min/max/count of ints, and avg's member-value extrema);
    # the masked kernels compute in float64, so cast the exactly-integral
    # results back for round-trip fidelity.  avg's selected guess (sum/len)
    # stays float like its Python counterpart.
    if all(arr.dtype == np.int64 for arr in (val_lb, val_sg, val_ub)):
        w_lb = w_lb.astype(np.int64)
        w_ub = w_ub.astype(np.int64)
        if spec.function != "avg":
            sg_agg = sg_agg.astype(np.int64)

    # Materialise into the output rows, merging duplicates that computed equal
    # hypercubes (exactly what AURelation.add would do).  The selected guess
    # clamps per element with Python's max/min so the winning scalar keeps
    # its original type, exactly like bounds._clamped_sg.
    rows_out = out._rows
    lb_list, ub_list = w_lb.tolist(), w_ub.tolist()
    sg_agg_list, sg_present_list = sg_agg.tolist(), dup_sg.tolist()
    row_list, offset_list = row.tolist(), offset.tolist()
    mult_lb, mult_sg = columnar.mult_lb.tolist(), columnar.mult_sg.tolist()
    for t in range(m):
        i = row_list[t]
        lb = lb_list[t]
        ub = ub_list[t]
        sg = max(lb, min(sg_agg_list[t], ub)) if sg_present_list[t] else lb
        key = columnar.row_values(i) + (RangeValue(lb, sg, ub),)
        mult = duplicate_annotation(offset_list[t], mult_lb[i], mult_sg[i])
        existing = rows_out.get(key)
        rows_out[key] = mult if existing is None else existing.add(mult)
    return out


def _selected_guess_aggregates(
    function: str,
    values_sg: np.ndarray,
    pos_sg: np.ndarray,
    dup_sg: np.ndarray,
    frame_size: int,
) -> np.ndarray:
    """Deterministic rolling aggregate in the selected-guess world, per duplicate.

    Selected-guess-present duplicates occupy dense, distinct positions in the
    selected-guess order, so ordering by ``pos_sg`` recovers that world's sort
    order and the frame is a plain trailing window over it.  Entries of
    sg-absent duplicates are meaningless (callers fall back to the lower
    bound there).
    """
    m = len(pos_sg)
    agg = np.zeros(m, dtype=np.float64)
    present = np.flatnonzero(dup_sg)
    if len(present) == 0:
        return agg
    ordered = present[np.argsort(pos_sg[present], kind="stable")]
    vals = values_sg[ordered]
    if function == "sum":
        window_agg = sliding_window_sums(vals, frame_size)
    elif function == "count":
        window_agg = np.minimum(np.arange(len(vals)) + 1, frame_size)
    elif function == "avg":
        counts = np.minimum(np.arange(len(vals)) + 1, frame_size)
        window_agg = sliding_window_sums(vals, frame_size) / counts
    elif function == "min":
        window_agg = sliding_window_extrema(vals, frame_size, maximum=False)
    else:  # max
        window_agg = sliding_window_extrema(vals, frame_size, maximum=True)
    agg[ordered] = window_agg
    return agg


def _query_chunks(pair_counts: np.ndarray, budget: int):
    """Split the query axis so each chunk materialises at most ``budget`` pairs.

    A single query may exceed the budget on its own (its pairs must be
    materialised together); chunks therefore always advance by at least one
    query.
    """
    m = len(pair_counts)
    cumulative = np.cumsum(pair_counts)
    start = 0
    while start < m:
        base = int(cumulative[start - 1]) if start else 0
        stop = int(np.searchsorted(cumulative, base + budget, side="right"))
        stop = min(m, max(stop, start + 1))
        yield start, stop
        start = stop


def _sum_bounds_chunk(
    q_cert: np.ndarray,
    e_cert: np.ndarray,
    q_poss: np.ndarray,
    e_poss: np.ndarray,
    val_lb: np.ndarray,
    val_ub: np.ndarray,
    *,
    self_lb: np.ndarray,
    self_ub: np.ndarray,
    frame_size: int,
    certain_window_size: np.ndarray,
    nq: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Grouped min-k / max-k sum bounds over the member pairs (Algorithm 5).

    The lower bound adds the certain members' lower bounds plus the smallest
    possible contributions: ``required`` members are forced into the window
    because it certainly holds more rows than self + certain account for;
    beyond that only negative contributions can pull the sum down, limited to
    the free frame slots.  The upper bound is symmetric.  The per-query
    selection of the ``taken`` smallest candidates is one shared
    ``lexsort`` + grouped prefix sums over the pair list instead of per-row
    partial sorts of the full candidate grid.
    """
    used = 1 + np.bincount(q_cert, minlength=nq)
    slots = np.maximum(0, frame_size - used)
    required = np.clip(np.minimum(certain_window_size, frame_size) - used, 0, slots)

    lb = self_lb + _grouped_sums(q_cert, val_lb[e_cert], nq)
    ub = self_ub + _grouped_sums(q_cert, val_ub[e_cert], nq)

    if frame_size > 1 and len(q_poss):
        poss_lb = val_lb[e_poss]
        neg_total = np.bincount(q_poss[poss_lb < 0], minlength=nq)
        taken = np.minimum(slots, np.maximum(required, neg_total))
        lb = lb + _grouped_smallest_prefix_sums(q_poss, poss_lb, taken, nq)

        poss_ub = val_ub[e_poss]
        pos_total = np.bincount(q_poss[poss_ub > 0], minlength=nq)
        taken = np.minimum(slots, np.maximum(required, pos_total))
        ub = ub - _grouped_smallest_prefix_sums(q_poss, -poss_ub, taken, nq)
    return lb, ub


def _grouped_sums(groups: np.ndarray, values: np.ndarray, nq: int) -> np.ndarray:
    if len(groups) == 0:
        return np.zeros(nq, dtype=np.float64)
    return np.bincount(groups, weights=values, minlength=nq)


def _grouped_smallest_prefix_sums(
    groups: np.ndarray, values: np.ndarray, taken: np.ndarray, nq: int
) -> np.ndarray:
    """Per group: the sum of its ``taken`` smallest values.

    One ``lexsort`` by (group, value) turns every group into a sorted
    contiguous run; grouped prefix sums plus a searchsorted per group index
    then read the selection off in ``O(pairs log pairs)``.  ``taken`` never
    exceeds the group size in valid sweeps (the window cannot be forced to
    hold more members than possibly exist); the clamp keeps the kernel total
    anyway.
    """
    order = np.lexsort((values, groups))
    sorted_groups = groups[order]
    prefix = np.concatenate([[0.0], np.cumsum(values[order])])
    group_ids = np.arange(nq, dtype=np.int64)
    starts = np.searchsorted(sorted_groups, group_ids, side="left")
    stops = np.searchsorted(sorted_groups, group_ids, side="right")
    take = np.minimum(taken, stops - starts)
    return prefix[starts + take] - prefix[starts]


def _count_bounds_chunk(
    q_cert: np.ndarray,
    q_poss: np.ndarray,
    *,
    frame_size: int,
    certain_window_size: np.ndarray,
    nq: int,
) -> tuple[np.ndarray, np.ndarray]:
    used = 1 + np.bincount(q_cert, minlength=nq)
    lb = np.maximum(used, np.minimum(certain_window_size, frame_size))
    lb = np.minimum(lb, frame_size)
    ub = np.minimum(frame_size, used + np.bincount(q_poss, minlength=nq))
    ub = np.maximum(ub, lb)
    return lb, ub


def _extrema_bounds_chunk(
    q_cert: np.ndarray,
    e_cert: np.ndarray,
    q_all: np.ndarray,
    e_all: np.ndarray,
    val_lb: np.ndarray,
    val_ub: np.ndarray,
    *,
    self_lb: np.ndarray,
    self_ub: np.ndarray,
    maximum: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """min / max bounds: all members bound the loose side, certain members the tight one."""
    if maximum:
        ub = self_ub.copy()
        np.maximum.at(ub, q_all, val_ub[e_all])
        lb = self_lb.copy()
        np.maximum.at(lb, q_cert, val_lb[e_cert])
    else:
        lb = self_lb.copy()
        np.minimum.at(lb, q_all, val_lb[e_all])
        ub = self_ub.copy()
        np.minimum.at(ub, q_cert, val_ub[e_cert])
    return lb, ub
