"""Vectorized uncertain windowed aggregation over the columnar backend.

:func:`window_columnar` computes the same range-annotated aggregate attribute
as :func:`repro.window.native.window_native` and
:func:`repro.window.semantics.window_rewrite` — the three implementations are
bound-identical (enforced by the differential property suite) — but replaces
the native sweep's heaps with columnar kernels:

* sort-position bound triples come from the prefix-sum kernels of
  :mod:`repro.columnar.kernels` (Equations 1-3),
* duplicates are expanded in bulk (:func:`~repro.columnar.kernels.duplicate_offsets`)
  and frame membership is decided with the interval containment / overlap
  masks of Fig. 6 (:func:`~repro.columnar.kernels.certain_frame_members` /
  :func:`~repro.columnar.kernels.possible_frame_members`), evaluated in row
  blocks so memory stays ``O(block * n)``,
* aggregate bounds are computed with vectorized reductions — masked
  matrix-vector products for the certain members, per-row partial sorts for
  the min-k / max-k possible contributions of ``sum`` (at most
  ``frame_size - 1`` candidates ever matter), and
* the selected-guess aggregate is a deterministic rolling computation over
  the selected-guess order (prefix sums for ``sum`` / ``count`` / ``avg``,
  sliding extrema for ``min`` / ``max``).

``CURRENT ROW AND N FOLLOWING`` frames use the same mirrored-order reduction
as the native sweep; certain partition-by attributes sweep per partition via
:meth:`~repro.columnar.relation.ColumnarAURelation.take`; everything outside
the sweepable class (two-sided frames, frames excluding the current row,
uncertain partition-by attributes) falls back to the definitional rewrite,
exactly like the Python backend.  Results are bit-identical to the Python
backend: aggregation columns the float64 kernels cannot reproduce exactly —
integers too large for exact float64 comparisons or window sums
(``magnitude * frame_size >= 2**53``, which also covers min/max), float
columns under ``sum`` / ``avg`` (whose result depends on accumulation
order), and NaN-carrying relations — delegate to the definitional rewrite;
``count`` ignores values and is always vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.columnar.kernels import (
    certain_frame_members,
    duplicate_offsets,
    possible_frame_members,
    sliding_window_extrema,
    sliding_window_sums,
    sort_position_bounds,
)
from repro.columnar.relation import ColumnarAURelation, as_columnar
from repro.core.multiplicity import duplicate_annotation
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.errors import OperatorError, WindowSpecError
from repro.window.spec import WindowSpec

__all__ = ["window_columnar"]

#: Target number of mask cells per membership block (bounds peak memory).
_BLOCK_CELLS = 4_000_000


def window_columnar(
    relation: AURelation | ColumnarAURelation, spec: WindowSpec
) -> AURelation:
    """Uncertain windowed aggregation over the columnar backend.

    Accepts either relation layout (row-major inputs are converted).  The
    result is bit-identical to ``window_native`` / ``window_rewrite``.
    """
    columnar = as_columnar(relation)
    # Fallback paths delegate to the rewrite on a row-major relation; when
    # the caller already handed one over, reuse it instead of round-tripping
    # through the columnar layout.
    source = relation if isinstance(relation, AURelation) else None
    columnar.schema.require(list(spec.order_by))
    columnar.schema.require(list(spec.partition_by))
    if spec.attribute is not None and spec.attribute != "*":
        columnar.schema.require([spec.attribute])
    if spec.output in columnar.schema:
        raise WindowSpecError(f"output attribute {spec.output!r} already exists in the schema")

    if spec.following_only and spec.frame[1] > 0:
        # CURRENT ROW AND N FOLLOWING == N PRECEDING AND CURRENT ROW over
        # the mirrored sort order (the native sweep's reduction).
        spec = spec.mirrored()
    if not spec.preceding_only:
        return _fallback_rewrite(columnar, spec, source)

    if _contains_nan(columnar):
        # NaN breaks the total order both backends sort by: the rank-encoded
        # kernels and Python's comparison-based sorts (and min/max) resolve
        # the incoherent comparisons differently, so NaN-carrying relations
        # stay on the definitional path wholesale.
        return _fallback_rewrite(columnar, spec, source)

    if spec.function not in ("sum", "count", "min", "max", "avg"):
        # Unreachable today (WindowSpec validates against the same set);
        # guards future aggregate additions from silently taking the avg
        # branch of the kernel sweep.
        raise OperatorError(f"unsupported window aggregate {spec.function!r}")

    if spec.function != "count" and spec.attribute not in (None, "*"):
        column = columnar.column(spec.attribute)
        if not column.is_numeric:
            # Non-numeric aggregation columns (strings, None) stay on the
            # exact definitional path.  (The Python sweep's connected heap
            # negates value upper bounds, so the rewrite is the only backend
            # covering them.)
            return _fallback_rewrite(columnar, spec, source)
        if spec.function in ("sum", "avg") and any(
            arr.dtype == np.float64 for arr in (column.lb, column.sg, column.ub)
        ):
            # Sum bounds select min-k / max-k member subsets per window; the
            # vectorized selection and the tuple-at-a-time implementations
            # assemble them differently, so float columns (where rounding
            # could expose that) delegate to the definitional rewrite.
            return _fallback_rewrite(columnar, spec, source)
        if not _float64_exact(column, spec.frame_size):
            # The masked bound kernels compare and accumulate in float64;
            # integers large enough that a value (or a window sum) exceeds
            # 2**53 would be silently rounded (cf. the same guard in
            # kernels.component_rank_codes).
            return _fallback_rewrite(columnar, spec, source)

    if spec.partition_by:
        groups = _certain_partition_groups(columnar, spec.partition_by)
        if groups is None:
            return _fallback_rewrite(columnar, spec, source)
        out = AURelation(columnar.schema.extend(spec.output))
        for indices in groups:
            partial = _sweep(columnar.take(indices), spec)
            for tup, mult in partial:
                out.add(tup, mult)
        return out

    return _sweep(columnar, spec)


def _fallback_rewrite(
    columnar: ColumnarAURelation, spec: WindowSpec, source: AURelation | None = None
) -> AURelation:
    from repro.window.semantics import window_rewrite  # local import: avoid cycle

    return window_rewrite(source if source is not None else columnar.to_relation(), spec)


def _contains_nan(columnar: ColumnarAURelation) -> bool:
    """Whether any bound component anywhere in the relation is NaN.

    Every column can enter the sort keys (order-by columns directly, the rest
    as ``<ᵗᵒᵗᵃˡ_O`` tiebreakers) or the aggregate, so the check is global.
    """
    for column in columnar.columns:
        for arr in (column.lb, column.sg, column.ub):
            if arr.dtype == np.float64 and bool(np.isnan(arr).any()):
                return True
            if arr.dtype == object and any(
                type(v) is float and v != v for v in arr.tolist()
            ):
                return True
    return False


#: Largest magnitude float64 represents exactly (integers up to 2**53).
_FLOAT64_EXACT = 2**53


def _float64_exact(column, frame_size: int) -> bool:
    """Whether every window aggregate over the column is exact in float64.

    A window sum combines at most ``frame_size`` member values, so integer
    bound components stay exact when ``frame_size * max|value|`` fits the
    float64 integer range.  Checked per component: mixed columns may pair
    float lower bounds with huge integer upper bounds.
    """
    if len(column.lb) == 0:
        return True
    for component in (column.lb, column.sg, column.ub):
        if component.dtype != np.int64:
            continue
        magnitude = max(abs(int(component.min())), abs(int(component.max())))
        if magnitude * max(1, frame_size) >= _FLOAT64_EXACT:
            return False
    return True


def _certain_partition_groups(
    columnar: ColumnarAURelation, partition_by: tuple[str, ...]
) -> list[list[int]] | None:
    """Row-index groups per partition key, or ``None`` if any key is uncertain."""
    columns = [columnar.column(name) for name in partition_by]
    for column in columns:
        if len(columnar) and not bool(np.all(column.lb == column.ub)):
            return None
    groups: dict[tuple, list[int]] = {}
    for i, key in enumerate(zip(*[column.sg.tolist() for column in columns])):
        groups.setdefault(key, []).append(i)
    return list(groups.values())


def _sweep(columnar: ColumnarAURelation, spec: WindowSpec) -> AURelation:
    """The vectorized window sweep over one partition (preceding-only frames)."""
    out = AURelation(columnar.schema.extend(spec.output))
    n = len(columnar)
    if n == 0:
        return out
    preceding = -spec.frame[0]
    frame_size = spec.frame_size

    lower, sg, upper = sort_position_bounds(
        columnar, spec.order_by, descending=spec.descending
    )

    if spec.function == "count" or spec.attribute in (None, "*"):
        val_lb = val_sg = val_ub = np.ones(n, dtype=np.int64)
    else:
        column = columnar.column(spec.attribute)
        val_lb, val_sg, val_ub = column.lb, column.sg, column.ub

    # Expand duplicates: the i-th copy of a row shifts its positions by i and
    # is certain / selected-guess-only / merely possible by where i falls in
    # the multiplicity triple.
    row, offset = duplicate_offsets(columnar.mult_ub)
    m = len(row)
    if m == 0:
        return out
    pos_lb = lower[row] + offset
    pos_sg = sg[row] + offset
    pos_ub = upper[row] + offset
    dup_cert = offset < columnar.mult_lb[row]
    dup_sg = offset < columnar.mult_sg[row]
    d_val_lb = val_lb[row]
    d_val_ub = val_ub[row]

    sg_agg = _selected_guess_aggregates(
        spec.function, val_sg[row], pos_sg, dup_sg, frame_size
    )

    w_lb = np.empty(m, dtype=np.float64)
    w_ub = np.empty(m, dtype=np.float64)
    block_size = max(1, _BLOCK_CELLS // m)
    for start in range(0, m, block_size):
        stop = min(m, start + block_size)
        block = slice(start, stop)
        cert_in = certain_frame_members(
            pos_lb[block], pos_ub[block], pos_lb, pos_ub, dup_cert, preceding
        )
        poss_in = possible_frame_members(pos_lb[block], pos_ub[block], pos_lb, pos_ub, preceding)
        # Exclude the defining duplicate itself from both member sets, and
        # certain members from the possible set.
        rows_in_block = np.arange(stop - start)
        cert_in[rows_in_block, np.arange(start, stop)] = False
        poss_in[rows_in_block, np.arange(start, stop)] = False
        poss_in &= ~cert_in

        if spec.function == "sum":
            b_lb, b_ub = _sum_bounds_block(
                cert_in, poss_in, d_val_lb, d_val_ub,
                self_lb=d_val_lb[block], self_ub=d_val_ub[block],
                frame_size=frame_size,
                certain_window_size=1 + np.minimum(preceding, pos_lb[block]),
            )
        elif spec.function == "count":
            b_lb, b_ub = _count_bounds_block(
                cert_in, poss_in,
                frame_size=frame_size,
                certain_window_size=1 + np.minimum(preceding, pos_lb[block]),
            )
        elif spec.function in ("min", "max"):
            b_lb, b_ub = _extrema_bounds_block(
                cert_in, poss_in, d_val_lb, d_val_ub,
                self_lb=d_val_lb[block], self_ub=d_val_ub[block],
                maximum=spec.function == "max",
            )
        else:  # avg: envelope of the member values (Algorithm 4's delegation)
            members = cert_in | poss_in
            b_lb = np.minimum(
                d_val_lb[block], np.where(members, d_val_lb[None, :], np.inf).min(axis=1)
            )
            b_ub = np.maximum(
                d_val_ub[block], np.where(members, d_val_ub[None, :], -np.inf).max(axis=1)
            )
        w_lb[block] = b_lb
        w_ub[block] = b_ub

    # Integer aggregation columns produce integer bounds on the Python
    # backend (sum/min/max/count of ints, and avg's member-value extrema);
    # the masked kernels compute in float64, so cast the exactly-integral
    # results back for round-trip fidelity.  avg's selected guess (sum/len)
    # stays float like its Python counterpart.
    if all(arr.dtype == np.int64 for arr in (val_lb, val_sg, val_ub)):
        w_lb = w_lb.astype(np.int64)
        w_ub = w_ub.astype(np.int64)
        if spec.function != "avg":
            sg_agg = sg_agg.astype(np.int64)

    # Materialise into the output rows, merging duplicates that computed equal
    # hypercubes (exactly what AURelation.add would do).  The selected guess
    # clamps per element with Python's max/min so the winning scalar keeps
    # its original type, exactly like bounds._clamped_sg.
    rows_out = out._rows
    lb_list, ub_list = w_lb.tolist(), w_ub.tolist()
    sg_agg_list, sg_present_list = sg_agg.tolist(), dup_sg.tolist()
    row_list, offset_list = row.tolist(), offset.tolist()
    mult_lb, mult_sg = columnar.mult_lb.tolist(), columnar.mult_sg.tolist()
    for t in range(m):
        i = row_list[t]
        lb = lb_list[t]
        ub = ub_list[t]
        sg = max(lb, min(sg_agg_list[t], ub)) if sg_present_list[t] else lb
        key = columnar.row_values(i) + (RangeValue(lb, sg, ub),)
        mult = duplicate_annotation(offset_list[t], mult_lb[i], mult_sg[i])
        existing = rows_out.get(key)
        rows_out[key] = mult if existing is None else existing.add(mult)
    return out


def _selected_guess_aggregates(
    function: str,
    values_sg: np.ndarray,
    pos_sg: np.ndarray,
    dup_sg: np.ndarray,
    frame_size: int,
) -> np.ndarray:
    """Deterministic rolling aggregate in the selected-guess world, per duplicate.

    Selected-guess-present duplicates occupy dense, distinct positions in the
    selected-guess order, so ordering by ``pos_sg`` recovers that world's sort
    order and the frame is a plain trailing window over it.  Entries of
    sg-absent duplicates are meaningless (callers fall back to the lower
    bound there).
    """
    m = len(pos_sg)
    agg = np.zeros(m, dtype=np.float64)
    present = np.flatnonzero(dup_sg)
    if len(present) == 0:
        return agg
    ordered = present[np.argsort(pos_sg[present], kind="stable")]
    vals = values_sg[ordered]
    if function == "sum":
        window_agg = sliding_window_sums(vals, frame_size)
    elif function == "count":
        window_agg = np.minimum(np.arange(len(vals)) + 1, frame_size)
    elif function == "avg":
        counts = np.minimum(np.arange(len(vals)) + 1, frame_size)
        window_agg = sliding_window_sums(vals, frame_size) / counts
    elif function == "min":
        window_agg = sliding_window_extrema(vals, frame_size, maximum=False)
    else:  # max
        window_agg = sliding_window_extrema(vals, frame_size, maximum=True)
    agg[ordered] = window_agg
    return agg


def _sum_bounds_block(
    cert_in: np.ndarray,
    poss_in: np.ndarray,
    val_lb: np.ndarray,
    val_ub: np.ndarray,
    *,
    self_lb: np.ndarray,
    self_ub: np.ndarray,
    frame_size: int,
    certain_window_size: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized min-k / max-k sum bounds (Algorithm 5's refinement).

    The lower bound adds the certain members' lower bounds plus the smallest
    possible contributions: ``required`` members are forced into the window
    because it certainly holds more rows than self + certain account for;
    beyond that only negative contributions can pull the sum down, limited to
    the free frame slots.  The upper bound is symmetric.  At most
    ``frame_size - 1`` possible members can ever contribute, so per-row
    partial sorts of that width replace the Python backend's heap probing.
    """
    used = 1 + cert_in.sum(axis=1)
    slots = np.maximum(0, frame_size - used)
    required = np.clip(np.minimum(certain_window_size, frame_size) - used, 0, slots)

    lb = self_lb + cert_in @ val_lb
    ub = self_ub + cert_in @ val_ub

    k = frame_size - 1
    if k > 0:
        neg_total = (poss_in & (val_lb < 0)[None, :]).sum(axis=1)
        taken = np.minimum(slots, np.maximum(required, neg_total))
        lb = lb + _smallest_prefix_sums(
            np.where(poss_in, val_lb[None, :], np.inf), k, taken
        )

        pos_total = (poss_in & (val_ub > 0)[None, :]).sum(axis=1)
        taken = np.minimum(slots, np.maximum(required, pos_total))
        ub = ub - _smallest_prefix_sums(
            np.where(poss_in, -val_ub[None, :], np.inf), k, taken
        )
    return lb, ub


def _smallest_prefix_sums(candidates: np.ndarray, k: int, taken: np.ndarray) -> np.ndarray:
    """Per row: the sum of the ``taken`` smallest of the first ``k`` order statistics.

    ``candidates`` uses ``+inf`` for non-members; ``taken`` never exceeds the
    number of finite entries in a row, so the padding is never accumulated.
    """
    if candidates.shape[1] > k:
        head = np.partition(candidates, k - 1, axis=1)[:, :k]
    else:
        head = candidates
    head = np.sort(head, axis=1)
    prefix = np.concatenate(
        [np.zeros((head.shape[0], 1)), np.cumsum(head, axis=1)], axis=1
    )
    return prefix[np.arange(head.shape[0]), taken]


def _count_bounds_block(
    cert_in: np.ndarray,
    poss_in: np.ndarray,
    *,
    frame_size: int,
    certain_window_size: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    used = 1 + cert_in.sum(axis=1)
    lb = np.maximum(used, np.minimum(certain_window_size, frame_size))
    lb = np.minimum(lb, frame_size)
    ub = np.minimum(frame_size, used + poss_in.sum(axis=1))
    ub = np.maximum(ub, lb)
    return lb, ub


def _extrema_bounds_block(
    cert_in: np.ndarray,
    poss_in: np.ndarray,
    val_lb: np.ndarray,
    val_ub: np.ndarray,
    *,
    self_lb: np.ndarray,
    self_ub: np.ndarray,
    maximum: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """min / max bounds: all members bound the loose side, certain members the tight one."""
    members = cert_in | poss_in
    if maximum:
        ub = np.maximum(self_ub, np.where(members, val_ub[None, :], -np.inf).max(axis=1))
        lb = np.maximum(self_lb, np.where(cert_in, val_lb[None, :], -np.inf).max(axis=1))
    else:
        lb = np.minimum(self_lb, np.where(members, val_lb[None, :], np.inf).min(axis=1))
        ub = np.minimum(self_ub, np.where(cert_in, val_ub[None, :], np.inf).min(axis=1))
    return lb, ub
