"""Vectorized uncertain windowed aggregation over the columnar backend.

:func:`window_stage` computes the same range-annotated aggregate attribute
as :func:`repro.window.native.window_native` and
:func:`repro.window.semantics.window_rewrite` — the three implementations are
bound-identical (enforced by the differential property suite) — but replaces
the native sweep's heaps with columnar kernels and emits a
:class:`~repro.columnar.relation.ColumnarAURelation`: the aggregate column is
appended columnar-side and the Fig. 4 per-duplicate split expands the aligned
``lb`` / ``sg`` / ``ub`` arrays in bulk, so a
:class:`~repro.columnar.plan.ColumnarPlan` can keep chaining stages past a
window without materialising rows.  :func:`window_columnar` is the thin
row-major adapter the ``backend="columnar"`` entry points dispatch to.

>>> from repro.core.relation import AURelation
>>> from repro.window.spec import WindowSpec
>>> audb = AURelation.from_rows(["o", "v"], [((1, 4), 1), ((2, 6), 1), ((3, 5), (0, 1, 1))])
>>> spec = WindowSpec(function="sum", attribute="v", output="s", order_by=("o",), frame=(-1, 0))
>>> for tup, mult in window_columnar(audb, spec):
...     print(tup.value("o"), tup.value("s"), mult)
1 4 (1,1,1)
2 10 (1,1,1)
3 11 (0,1,1)

The kernel sweep:

* sort-position bound triples come from the prefix-sum kernels of
  :mod:`repro.columnar.kernels` (Equations 1-3),
* duplicates are expanded in bulk (:func:`~repro.columnar.kernels.duplicate_offsets`)
  and frame membership is resolved with a position-sorted searchsorted sweep
  (:class:`~repro.columnar.kernels.FrameMemberIndex`): candidates bucketed by
  position-interval width turn the Fig. 6 containment / overlap conditions
  into contiguous range queries, so only the *actual* (query, member) pairs
  are ever materialised (chunked to bound peak memory) instead of the
  quadratic query x candidate mask grid,
* aggregate bounds are grouped reductions over those pairs — ``bincount``
  sums for the certain members and a segmented k-pass selection
  (``np.minimum.at`` per pass, no sort of the pair list) for the min-k /
  max-k possible contributions of ``sum`` (at most ``frame_size - 1``
  candidates ever matter), and
* the selected-guess aggregate is a deterministic rolling computation over
  the selected-guess order (prefix sums for ``sum`` / ``count`` / ``avg``,
  sliding extrema for ``min`` / ``max``).

``CURRENT ROW AND N FOLLOWING`` frames use the same mirrored-order reduction
as the native sweep; certain partition-by attributes sweep per partition via
:meth:`~repro.columnar.relation.ColumnarAURelation.take`.  Results are
bit-identical to the Python backend *including row order*: sweep output rows
follow the native sweep's emission order — aggregate windows close in
``(position upper bound, position lower bound, ranked sequence)`` order — so
chained plans feed the next stage the same ``<ᵗᵒᵗᵃˡ_O`` sequence-number
tiebreakers as the row-major path.  Inputs the vectorized kernels cannot
reproduce exactly delegate to the Python backend itself
(:func:`~repro.window.native.window_native`, which also owns the dispatch of
frame classes outside the sweepable one): window specs outside the sweepable
class (two-sided frames, frames excluding the current row, uncertain
partition-by attributes), NaN-carrying relations, aggregation columns whose
float64 math is inexact (integers with ``magnitude * frame_size >= 2**53``,
float columns under ``sum`` / ``avg``).  On NaN-carrying relations the
native sweep and the definitional rewrite *genuinely disagree* (NaN breaks
the total order and their comparison strategies resolve it differently);
the columnar backend follows the **native** sweep there — it is the
implementation ``backend="columnar"`` substitutes for, and what a chained
plan's python-per-stage reference runs (pinned by
``tests/unit/test_columnar.py``).  Non-numeric aggregation columns
(strings, ``None``) delegate to the definitional rewrite — the Python
sweep's connected heap negates value upper bounds, so the rewrite is the
only backend covering them; ``count`` ignores values and is always
vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.columnar.kernels import (
    FrameMemberIndex,
    duplicate_offsets,
    lexsort_stable,
    sliding_window_extrema,
    sliding_window_sums,
    sort_position_bounds_ranked,
)
from repro.columnar.parallel import morsel_count, parallel_map, shard_ranges, shared_arrays
from repro.columnar.relation import (
    AttributeColumn,
    ColumnarAURelation,
    as_columnar,
    column_array,
    concat_relations as _concat_partials,
)
from repro.core.relation import AURelation
from repro.errors import OperatorError, WindowSpecError
from repro.window.spec import WindowSpec

__all__ = ["window_stage", "window_columnar"]

#: Target number of materialised (query, member) pairs per sweep chunk
#: (bounds peak memory of the pair lists).
_PAIR_BUDGET = 4_000_000


def window_stage(
    relation: AURelation | ColumnarAURelation, spec: WindowSpec, *, workers: int = 1
) -> ColumnarAURelation:
    """Uncertain windowed aggregation emitting a columnar relation.

    Accepts either relation layout (row-major inputs are converted).  The
    result is the columnar twin of ``window_native``'s output — same
    hypercubes, annotations, and row order — so plans can keep chaining
    (e.g. ``window → select → window``) without a row-major round trip.
    Inputs outside the vectorizable class delegate to the Python backend and
    convert back (the only case a mid-plan stage touches the row-major
    layout).

    With ``workers > 1`` the sweep shards — across certain ``PARTITION BY``
    groups when there are enough of them, by query chunks inside one sweep
    otherwise — and runs the shards on a forked worker pool, bit-identical
    to the serial sweep (see :mod:`repro.columnar.parallel`).  Fallback
    kinds (uncertain partition keys, NaN, non-sweepable frames) always run
    the unsharded Python backend.
    """
    columnar = as_columnar(relation)
    kind, spec, groups = _classify(columnar, spec)
    if kind != "sweep":
        return ColumnarAURelation.from_relation(
            _fallback_rows(columnar.to_relation(), spec, kind)
        )
    return _partitioned_sweep(columnar, spec, groups, workers=workers)


def window_columnar(
    relation: AURelation | ColumnarAURelation, spec: WindowSpec, *, workers: int = 1
) -> AURelation:
    """Row-major adapter over :func:`window_stage` (the plan boundary).

    This is what ``backend="columnar"`` on the window entry points dispatches
    to; results are bit-identical to ``window_native`` / ``window_rewrite``.
    Fallback paths reuse a row-major input directly instead of round-tripping
    it through the columnar layout.
    """
    columnar = as_columnar(relation)
    source = relation if isinstance(relation, AURelation) else None
    kind, spec, groups = _classify(columnar, spec)
    if kind != "sweep":
        rows = source if source is not None else columnar.to_relation()
        return _fallback_rows(rows, spec, kind)
    return _partitioned_sweep(columnar, spec, groups, workers=workers).to_relation(
        workers=workers
    )


def _classify(
    columnar: ColumnarAURelation, spec: WindowSpec
) -> tuple[str, WindowSpec, list[list[int]] | None]:
    """Validate the spec and pick the execution path.

    Returns ``(kind, spec, partition_groups)`` with the mirrored-order
    reduction already applied to ``spec``.  ``kind`` is ``"sweep"`` (the
    vectorized kernels apply), ``"native"`` (delegate to the Python backend:
    it owns both the non-sweepable frame classes and the exact scalar math
    the float64 kernels cannot reproduce), or ``"rewrite"`` (non-numeric
    aggregation columns, which only the definitional rewrite covers).
    """
    columnar.schema.require(list(spec.order_by))
    columnar.schema.require(list(spec.partition_by))
    if spec.attribute is not None and spec.attribute != "*":
        columnar.schema.require([spec.attribute])
    if spec.output in columnar.schema:
        raise WindowSpecError(f"output attribute {spec.output!r} already exists in the schema")

    if spec.following_only and spec.frame[1] > 0:
        # CURRENT ROW AND N FOLLOWING == N PRECEDING AND CURRENT ROW over
        # the mirrored sort order (the native sweep's reduction).
        spec = spec.mirrored()
    if not spec.preceding_only:
        return "native", spec, None

    if _contains_nan(columnar):
        # NaN breaks the total order both backends sort by: the rank-encoded
        # kernels and Python's comparison-based sorts (and min/max) resolve
        # the incoherent comparisons differently, so NaN-carrying relations
        # stay on the Python backend wholesale.
        return "native", spec, None

    if spec.function not in ("sum", "count", "min", "max", "avg"):
        # Unreachable today (WindowSpec validates against the same set);
        # guards future aggregate additions from silently taking the avg
        # branch of the kernel sweep.
        raise OperatorError(f"unsupported window aggregate {spec.function!r}")

    if spec.function != "count" and spec.attribute not in (None, "*"):
        column = columnar.column(spec.attribute)
        if not column.is_numeric:
            # Non-numeric aggregation columns (strings, None) stay on the
            # exact definitional path.  (The Python sweep's connected heap
            # negates value upper bounds, so the rewrite is the only backend
            # covering them.)
            return "rewrite", spec, None
        if spec.function in ("sum", "avg") and any(
            arr.dtype == np.float64 for arr in (column.lb, column.sg, column.ub)
        ):
            # Sum bounds select min-k / max-k member subsets per window; the
            # vectorized selection and the tuple-at-a-time implementations
            # assemble them differently, so float columns (where rounding
            # could expose that) delegate to the Python backend.
            return "native", spec, None
        if not _float64_exact(column, spec.frame_size):
            # The masked bound kernels compare and accumulate in float64;
            # integers large enough that a value (or a window sum) exceeds
            # 2**53 would be silently rounded (cf. the same guard in
            # kernels.component_rank_codes).
            return "native", spec, None

    if spec.partition_by:
        groups = _certain_partition_groups(columnar, spec.partition_by)
        if groups is None:
            return "native", spec, None
        return "sweep", spec, groups
    return "sweep", spec, None


def _fallback_rows(rows: AURelation, spec: WindowSpec, kind: str) -> AURelation:
    """Delegate to the scalar backends (local imports: avoid cycles)."""
    if kind == "rewrite":
        from repro.window.semantics import window_rewrite

        return window_rewrite(rows, spec)
    from repro.window.native import window_native

    return window_native(rows, spec)


def _partitioned_sweep(
    columnar: ColumnarAURelation,
    spec: WindowSpec,
    groups: list[list[int]] | None,
    *,
    workers: int = 1,
    strict_tiebreak: str | None = None,
) -> ColumnarAURelation:
    """The kernel sweep, split per (certain) partition when requested.

    With ``workers > 1`` and enough partitions, the per-partition sweeps run
    as morsels on the forked worker pool (partials concatenate in group
    order, which is the serial emission order); with few partitions each
    sweep instead parallelises internally over its query chunks.  Partition
    groups come only from :func:`_certain_partition_groups`, so an uncertain
    partition key can never be sharded — ``_classify`` already returned the
    unsharded ``"native"`` fallback for it.  ``strict_tiebreak`` passes
    through to the sweep's position-bound sort (see :func:`_sweep_stage`);
    a strict column stays strict on every ``take`` subset, so the per-group
    split preserves the contract.
    """
    if groups is None:
        return _sweep_stage(
            columnar, spec, workers=workers, strict_tiebreak=strict_tiebreak
        )
    if len(groups) > 1 and workers > 1 and len(groups) >= morsel_count(workers):
        partials = parallel_map(
            lambda indices: _sweep_stage(
                columnar.take(indices), spec, strict_tiebreak=strict_tiebreak
            ),
            groups,
            workers=workers,
        )
    else:
        partials = [
            _sweep_stage(
                columnar.take(indices),
                spec,
                workers=workers,
                strict_tiebreak=strict_tiebreak,
            )
            for indices in groups
        ]
    if not partials:
        return _empty_result(columnar, spec)
    return _concat_partials(partials)


def _empty_result(columnar: ColumnarAURelation, spec: WindowSpec) -> ColumnarAURelation:
    empty = np.empty(0, dtype=np.int64)
    return columnar.mask(np.zeros(len(columnar), dtype=bool)).with_column(
        AttributeColumn(spec.output, empty, empty, empty)
    )


def _contains_nan(columnar: ColumnarAURelation) -> bool:
    """Whether any bound component anywhere in the relation is NaN.

    Every column can enter the sort keys (order-by columns directly, the rest
    as ``<ᵗᵒᵗᵃˡ_O`` tiebreakers) or the aggregate, so the check is global.
    """
    for column in columnar.columns:
        for arr in (column.lb, column.sg, column.ub):
            if arr.dtype == np.float64 and bool(np.isnan(arr).any()):
                return True
            if arr.dtype == object and any(
                type(v) is float and v != v for v in arr.tolist()
            ):
                return True
    return False


def _float64_exact(column, frame_size: int) -> bool:
    """Whether every window aggregate over the column is exact in float64.

    A window sum combines at most ``frame_size`` member values, so integer
    bound components stay exact when ``frame_size * max|value|`` fits the
    float64 integer range (the shared exactness scan of
    :func:`repro.columnar.relation.profile_components`).
    """
    from repro.columnar.relation import FLOAT64_EXACT_MAX, profile_components

    profile = profile_components((column.lb, column.sg, column.ub))
    return profile.int_magnitude * max(1, frame_size) < FLOAT64_EXACT_MAX


def _certain_partition_groups(
    columnar: ColumnarAURelation, partition_by: tuple[str, ...]
) -> list[list[int]] | None:
    """Row-index groups per partition key, or ``None`` if any key is uncertain."""
    columns = [columnar.column(name) for name in partition_by]
    for column in columns:
        if len(columnar) and not bool(np.all(column.lb == column.ub)):
            return None
    groups: dict[tuple, list[int]] = {}
    for i, key in enumerate(zip(*[column.sg.tolist() for column in columns])):
        groups.setdefault(key, []).append(i)
    return list(groups.values())


def _sweep_stage(
    columnar: ColumnarAURelation,
    spec: WindowSpec,
    *,
    workers: int = 1,
    strict_tiebreak: str | None = None,
) -> ColumnarAURelation:
    """The vectorized window sweep over one partition (preceding-only frames).

    Emits a columnar relation whose rows follow the native sweep's emission
    order — windows close in ``(pos_ub, pos_lb, ranked sequence)`` order,
    where the ranked sequence is the order the native sort's output dict
    would enumerate the duplicates in — so the result is the columnar twin
    of the Python backend's insertion-ordered output.

    With ``workers > 1`` the query chunks (and the pair-counting pass that
    sizes them) run as morsels on the forked worker pool, each writing its
    ``[start, stop)`` block of the bound arrays into shared memory.  Chunk
    contents depend only on the chunk's own queries and the globally shared
    index, and the bound reductions are order-independent (exact integer
    arithmetic in float64 — the ``_classify`` gates), so chunk boundaries
    cannot change the result.
    """
    n = len(columnar)
    if n == 0:
        return _empty_result(columnar, spec)
    preceding = -spec.frame[0]
    frame_size = spec.frame_size

    lower, sg, upper, latest_rank = sort_position_bounds_ranked(
        columnar,
        spec.order_by,
        descending=spec.descending,
        workers=workers,
        strict_tiebreak=strict_tiebreak,
    )

    if spec.function == "count" or spec.attribute in (None, "*"):
        val_lb = val_sg = val_ub = np.ones(n, dtype=np.int64)
    else:
        column = columnar.column(spec.attribute)
        val_lb, val_sg, val_ub = column.lb, column.sg, column.ub

    # Expand duplicates: the i-th copy of a row shifts its positions by i and
    # is certain / selected-guess-only / merely possible by where i falls in
    # the multiplicity triple.
    row, offset = duplicate_offsets(columnar.mult_ub)
    m = len(row)
    if m == 0:
        return _empty_result(columnar, spec)
    pos_lb = lower[row] + offset
    pos_sg = sg[row] + offset
    pos_ub = upper[row] + offset
    dup_cert = offset < columnar.mult_lb[row]
    dup_sg = offset < columnar.mult_sg[row]
    d_val_lb = val_lb[row]
    d_val_ub = val_ub[row]

    sg_agg = _selected_guess_aggregates(
        spec.function, val_sg[row], pos_sg, dup_sg, frame_size
    )

    # Frame membership as a position-sorted searchsorted sweep: the index
    # answers "which duplicates possibly fall into d's frame" with range
    # queries per interval-width bucket, so cost scales with the number of
    # *actual* member pairs instead of the full query x candidate grid.
    fval_lb = d_val_lb.astype(np.float64)
    fval_ub = d_val_ub.astype(np.float64)
    index = FrameMemberIndex(pos_lb, pos_ub, preceding)
    parallel = workers > 1 and m > 1
    if m * m <= _PAIR_BUDGET:
        # Even the full pair grid fits the budget: no counting pass needed.
        # The parallel path still cuts query-range morsels so small inputs
        # genuinely exercise the sharded sweep (and the property suite can
        # pin it against the single-chunk result).
        chunks = shard_ranges(m, morsel_count(workers)) if parallel else [(0, m)]
    else:
        counts = _pair_count_pass(index, pos_lb, pos_ub, workers if parallel else 1)
        chunks = list(_query_chunks(counts, _PAIR_BUDGET))

    def chunk_bounds(start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        block = slice(start, stop)
        nq = stop - start
        query, member = index.member_pairs(pos_lb[block], pos_ub[block])
        # Exclude the defining duplicate itself, then split members into the
        # certain set (position interval contained in the positions the
        # window certainly covers, Fig. 6) and the merely possible rest.
        keep = member != query + start
        query, member = query[keep], member[keep]
        cert = (
            dup_cert[member]
            & (pos_lb[member] >= pos_ub[block][query] - preceding)
            & (pos_ub[member] <= pos_lb[block][query])
        )
        q_cert, e_cert = query[cert], member[cert]
        q_poss, e_poss = query[~cert], member[~cert]

        if spec.function == "sum":
            return _sum_bounds_chunk(
                q_cert, e_cert, q_poss, e_poss, fval_lb, fval_ub,
                self_lb=fval_lb[block], self_ub=fval_ub[block],
                frame_size=frame_size,
                certain_window_size=1 + np.minimum(preceding, pos_lb[block]),
                nq=nq,
            )
        if spec.function == "count":
            return _count_bounds_chunk(
                q_cert, q_poss,
                frame_size=frame_size,
                certain_window_size=1 + np.minimum(preceding, pos_lb[block]),
                nq=nq,
            )
        if spec.function in ("min", "max"):
            return _extrema_bounds_chunk(
                q_cert, e_cert, query, member, fval_lb, fval_ub,
                self_lb=fval_lb[block], self_ub=fval_ub[block],
                maximum=spec.function == "max",
            )
        # avg: envelope of the member values (Algorithm 4's delegation)
        b_lb = fval_lb[block].copy()
        np.minimum.at(b_lb, query, fval_lb[member])
        b_ub = fval_ub[block].copy()
        np.maximum.at(b_ub, query, fval_ub[member])
        return b_lb, b_ub

    if parallel and len(chunks) > 1:
        # Workers fill their blocks of the shared bound buffers in place;
        # only a per-chunk acknowledgement crosses the result queue.
        w_lb, w_ub = shared_arrays((m, np.float64), (m, np.float64))

        def run_chunk(chunk: tuple[int, int]) -> None:
            start, stop = chunk
            w_lb[start:stop], w_ub[start:stop] = chunk_bounds(start, stop)

        parallel_map(run_chunk, chunks, workers=workers)
    else:
        w_lb = np.empty(m, dtype=np.float64)
        w_ub = np.empty(m, dtype=np.float64)
        for start, stop in chunks:
            w_lb[start:stop], w_ub[start:stop] = chunk_bounds(start, stop)

    # Integer aggregation columns produce integer bounds on the Python
    # backend (sum/min/max/count of ints, and avg's member-value extrema);
    # the masked kernels compute in float64, so cast the exactly-integral
    # results back for round-trip fidelity.  avg's selected guess (sum/len)
    # stays float like its Python counterpart.
    if all(arr.dtype == np.int64 for arr in (val_lb, val_sg, val_ub)):
        w_lb = w_lb.astype(np.int64)
        w_ub = w_ub.astype(np.int64)
        if spec.function != "avg":
            sg_agg = sg_agg.astype(np.int64)

    sg_col = _sg_column(sg_agg, dup_sg, w_lb, w_ub)

    # Emission order of the native sweep: the ranked sequence of a duplicate
    # is its position in the native sort's output (rows ordered by latest key
    # vector then input sequence, duplicates by offset); windows then close
    # in (pos_ub, pos_lb, sequence) order.
    row_order = np.argsort(latest_rank, kind="stable")  # stable: input order breaks ties
    ub_ranked = columnar.mult_ub[row_order]
    row_start = np.empty(n, dtype=np.int64)
    row_start[row_order] = np.cumsum(ub_ranked) - ub_ranked
    seq = row_start[row] + offset
    emit = lexsort_stable((seq, pos_lb, pos_ub))

    result = columnar.take(row[emit]).with_multiplicities(
        dup_cert[emit].astype(np.int64),
        dup_sg[emit].astype(np.int64),
        np.ones(m, dtype=np.int64),
    ).with_column(
        AttributeColumn(spec.output, w_lb[emit], sg_col[emit], w_ub[emit])
    )
    if m == n:
        # One duplicate per row: output hypercubes are distinct by
        # construction (the columnar layout holds one row per distinct range
        # tuple), so the AURelation.add merge cannot fire.
        return result
    # Bag inputs (ub > 1): duplicates of one row can compute equal aggregate
    # hypercubes; merge them exactly like the Python backend's
    # AURelation.add (first-occurrence order kept).
    from repro.columnar.operators import merge_equal_rows

    return merge_equal_rows(result)


def _sg_column(
    sg_agg: np.ndarray, dup_sg: np.ndarray, w_lb: np.ndarray, w_ub: np.ndarray
) -> np.ndarray:
    """Selected-guess component: the rolling aggregate clamped into the bounds.

    Selected-guess-absent duplicates fall back to the lower bound.  Matching
    dtypes clamp vectorized; mixed dtypes (avg over integer columns: float
    selected guess, integer bounds) replicate the Python backend's
    per-element ``max(lb, min(sg, ub))`` so the winning scalar keeps its
    original type, exactly like ``bounds._clamped_sg``.
    """
    if sg_agg.dtype == w_lb.dtype and w_lb.dtype == w_ub.dtype:
        return np.where(dup_sg, np.clip(sg_agg, w_lb, w_ub), w_lb)
    lb_l, ub_l = w_lb.tolist(), w_ub.tolist()
    sg_l, present = sg_agg.tolist(), dup_sg.tolist()
    return column_array(
        [
            max(lb_l[t], min(sg_l[t], ub_l[t])) if present[t] else lb_l[t]
            for t in range(len(lb_l))
        ]
    )


def _selected_guess_aggregates(
    function: str,
    values_sg: np.ndarray,
    pos_sg: np.ndarray,
    dup_sg: np.ndarray,
    frame_size: int,
) -> np.ndarray:
    """Deterministic rolling aggregate in the selected-guess world, per duplicate.

    Selected-guess-present duplicates occupy dense, distinct positions in the
    selected-guess order, so ordering by ``pos_sg`` recovers that world's sort
    order and the frame is a plain trailing window over it.  Entries of
    sg-absent duplicates are meaningless (callers fall back to the lower
    bound there).
    """
    m = len(pos_sg)
    agg = np.zeros(m, dtype=np.float64)
    present = np.flatnonzero(dup_sg)
    if len(present) == 0:
        return agg
    ordered = present[np.argsort(pos_sg[present], kind="stable")]
    vals = values_sg[ordered]
    if function == "sum":
        window_agg = sliding_window_sums(vals, frame_size)
    elif function == "count":
        window_agg = np.minimum(np.arange(len(vals)) + 1, frame_size)
    elif function == "avg":
        counts = np.minimum(np.arange(len(vals)) + 1, frame_size)
        window_agg = sliding_window_sums(vals, frame_size) / counts
    elif function == "min":
        window_agg = sliding_window_extrema(vals, frame_size, maximum=False)
    else:  # max
        window_agg = sliding_window_extrema(vals, frame_size, maximum=True)
    agg[ordered] = window_agg
    return agg


def _pair_count_pass(
    index: FrameMemberIndex, pos_lb: np.ndarray, pos_ub: np.ndarray, workers: int
) -> np.ndarray:
    """The chunk-sizing pair-count pass, sharded over query ranges.

    Each query's count depends only on the query itself and the shared
    index, so range shards writing disjoint blocks of a shared buffer
    reproduce the serial pass exactly.
    """
    if workers <= 1:
        return index.pair_counts(pos_lb, pos_ub)
    m = len(pos_lb)
    (counts,) = shared_arrays((m, np.int64))

    def count_block(block: tuple[int, int]) -> None:
        start, stop = block
        counts[start:stop] = index.pair_counts(pos_lb[start:stop], pos_ub[start:stop])

    parallel_map(count_block, shard_ranges(m, morsel_count(workers)), workers=workers)
    return counts


def _query_chunks(pair_counts: np.ndarray, budget: int):
    """Split the query axis so each chunk materialises at most ``budget`` pairs.

    A single query may exceed the budget on its own (its pairs must be
    materialised together); chunks therefore always advance by at least one
    query.
    """
    m = len(pair_counts)
    cumulative = np.cumsum(pair_counts)
    start = 0
    while start < m:
        base = int(cumulative[start - 1]) if start else 0
        stop = int(np.searchsorted(cumulative, base + budget, side="right"))
        stop = min(m, max(stop, start + 1))
        yield start, stop
        start = stop


def _sum_bounds_chunk(
    q_cert: np.ndarray,
    e_cert: np.ndarray,
    q_poss: np.ndarray,
    e_poss: np.ndarray,
    val_lb: np.ndarray,
    val_ub: np.ndarray,
    *,
    self_lb: np.ndarray,
    self_ub: np.ndarray,
    frame_size: int,
    certain_window_size: np.ndarray,
    nq: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Grouped min-k / max-k sum bounds over the member pairs (Algorithm 5).

    The lower bound adds the certain members' lower bounds plus the smallest
    possible contributions: ``required`` members are forced into the window
    because it certainly holds more rows than self + certain account for;
    beyond that only negative contributions can pull the sum down, limited to
    the free frame slots.  The upper bound is symmetric.  The per-query
    selection of the ``taken`` smallest candidates is one shared
    ``lexsort`` + grouped prefix sums over the pair list instead of per-row
    partial sorts of the full candidate grid.
    """
    used = 1 + np.bincount(q_cert, minlength=nq)
    slots = np.maximum(0, frame_size - used)
    required = np.clip(np.minimum(certain_window_size, frame_size) - used, 0, slots)

    lb = self_lb + _grouped_sums(q_cert, val_lb[e_cert], nq)
    ub = self_ub + _grouped_sums(q_cert, val_ub[e_cert], nq)

    if frame_size > 1 and len(q_poss):
        poss_lb = val_lb[e_poss]
        neg_total = np.bincount(q_poss[poss_lb < 0], minlength=nq)
        taken = np.minimum(slots, np.maximum(required, neg_total))
        lb = lb + _grouped_smallest_prefix_sums(q_poss, poss_lb, taken, nq)

        poss_ub = val_ub[e_poss]
        pos_total = np.bincount(q_poss[poss_ub > 0], minlength=nq)
        taken = np.minimum(slots, np.maximum(required, pos_total))
        ub = ub - _grouped_smallest_prefix_sums(q_poss, -poss_ub, taken, nq)
    return lb, ub


def _grouped_sums(groups: np.ndarray, values: np.ndarray, nq: int) -> np.ndarray:
    if len(groups) == 0:
        return np.zeros(nq, dtype=np.float64)
    return np.bincount(groups, weights=values, minlength=nq)


#: Above this per-query selection size the k-pass sweep degrades to the
#: sorted-prefix evaluation (each pass retires one distinct value per group).
_SELECTION_PASS_LIMIT = 8


def _grouped_smallest_prefix_sums(
    groups: np.ndarray, values: np.ndarray, taken: np.ndarray, nq: int
) -> np.ndarray:
    """Per group: the sum of its ``taken`` smallest values (ascending fold).

    ``taken`` is tiny in valid sweeps (at most ``frame_size - 1`` member
    slots), so the selection runs as a *segmented k-pass*: each pass takes
    every group's current minimum (``np.minimum.at``), counts its copies,
    consumes them, and retires the matched pairs — ``O(passes · pairs)``
    with at most ``max(taken)`` passes and no sort of the pair list.  This
    also keeps every partial sum a true window sum (at most ``frame_size``
    addends, covered by the ``2**53`` exactness gate) instead of a prefix
    over the whole pair list.  Selections larger than
    ``_SELECTION_PASS_LIMIT`` (huge frames) fall back to one sorted-prefix
    evaluation.  Groups with ``taken == 0`` contribute nothing and are
    dropped up front.
    """
    total = np.zeros(nq, dtype=np.float64)
    if len(groups) == 0 or not bool((taken > 0).any()):
        return total
    active = taken[groups] > 0
    if not bool(active.all()):
        groups = groups[active]
        values = values[active]
    need = np.minimum(taken, np.bincount(groups, minlength=nq))
    if int(need.max()) > _SELECTION_PASS_LIMIT:
        return _grouped_sorted_prefix_sums(groups, values, need, nq)
    while len(groups):
        floor = np.full(nq, np.inf)
        np.minimum.at(floor, groups, values)
        at_min = values == floor[groups]
        take_now = np.minimum(need, np.bincount(groups[at_min], minlength=nq))
        total += np.where(take_now > 0, floor, 0.0) * take_now
        need -= take_now
        keep = ~at_min & (need[groups] > 0)
        groups = groups[keep]
        values = values[keep]
    return total


def _grouped_sorted_prefix_sums(
    groups: np.ndarray, values: np.ndarray, take: np.ndarray, nq: int
) -> np.ndarray:
    """Sorted-prefix selection for large ``take`` (one lexsort, grouped prefix sums)."""
    order = lexsort_stable((values, groups))
    sorted_groups = groups[order]
    prefix = np.concatenate([[0.0], np.cumsum(values[order])])
    group_ids = np.arange(nq, dtype=np.int64)
    starts = np.searchsorted(sorted_groups, group_ids, side="left")
    return prefix[starts + take] - prefix[starts]


def _count_bounds_chunk(
    q_cert: np.ndarray,
    q_poss: np.ndarray,
    *,
    frame_size: int,
    certain_window_size: np.ndarray,
    nq: int,
) -> tuple[np.ndarray, np.ndarray]:
    used = 1 + np.bincount(q_cert, minlength=nq)
    lb = np.maximum(used, np.minimum(certain_window_size, frame_size))
    lb = np.minimum(lb, frame_size)
    ub = np.minimum(frame_size, used + np.bincount(q_poss, minlength=nq))
    ub = np.maximum(ub, lb)
    return lb, ub


def _extrema_bounds_chunk(
    q_cert: np.ndarray,
    e_cert: np.ndarray,
    q_all: np.ndarray,
    e_all: np.ndarray,
    val_lb: np.ndarray,
    val_ub: np.ndarray,
    *,
    self_lb: np.ndarray,
    self_ub: np.ndarray,
    maximum: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """min / max bounds: all members bound the loose side, certain members the tight one."""
    if maximum:
        ub = self_ub.copy()
        np.maximum.at(ub, q_all, val_ub[e_all])
        lb = self_lb.copy()
        np.maximum.at(lb, q_cert, val_lb[e_cert])
    else:
        lb = self_lb.copy()
        np.minimum.at(lb, q_all, val_lb[e_all])
        ub = self_ub.copy()
        np.minimum.at(ub, q_cert, val_ub[e_cert])
    return lb, ub
