"""Plan composition over the columnar backend.

:class:`ColumnarPlan` chains the vectorized ``RA⁺``, ranking, and window
kernels of :mod:`repro.columnar` so a whole query stays in the columnar
layout from ingest to result — no intermediate row-major
:class:`~repro.core.relation.AURelation` is materialised between stages.
Every stage is non-terminal — including :meth:`~ColumnarPlan.sort`,
:meth:`~ColumnarPlan.topk`, and :meth:`~ColumnarPlan.window`, whose kernels
emit columnar output — so plans can continue past a window (e.g.
``window → select → window``); only the single explicit
:meth:`~ColumnarPlan.to_rows` boundary converts.

>>> from repro.core.expressions import attr, const
>>> from repro.core.relation import AURelation
>>> orders = AURelation.from_rows(
...     ["o", "g", "v"], [((1, 0, 20), 1), ((2, 0, 5), 1), ((3, 1, 30), 1)]
... )
>>> parts = AURelation.from_rows(["g", "w"], [((0, 7), 1), ((1, 9), 1)])
>>> result = (
...     ColumnarPlan(orders)
...     .select(attr("v").gt(const(10)))
...     .join(ColumnarPlan(parts), on=["g"])
...     .groupby_aggregate(["g"], [("sum", "v", "total")])
...     .to_rows()             # boundary: row-major AURelation
... )
>>> for tup, _m in result:
...     print(tup.value("g"), tup.value("total"))
0 20
1 30

Every stage is bit-identical to running the corresponding Python-backend
operator chain on row-major relations — including the row *order* fed to
the next stage, so downstream ``<ᵗᵒᵗᵃˡ_O`` sequence-number tiebreakers
cannot drift between the backends.  Chaining a stage onto an
already-materialised result raises a clear
:class:`~repro.errors.PlanError` instead of an ``AttributeError``:

>>> rows = ColumnarPlan(orders).select(attr("v").gt(const(10))).to_rows()
>>> rows.window(None)
Traceback (most recent call last):
    ...
repro.errors.PlanError: cannot add stage 'window' after .to_rows(): the plan \
was already materialised to a row-major AURelation; wrap the result in \
ColumnarPlan(...) to keep querying it
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.columnar import factorised as fx
from repro.columnar import operators as ops
from repro.columnar.factorised import FactorisedAURelation, as_factorised
from repro.columnar.relation import ColumnarAURelation, as_columnar
from repro.core.booleans import RangeBool
from repro.core.expressions import Expression
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.core.tuples import AUTuple
from repro.errors import PlanError
from repro.window.spec import WindowSpec

__all__ = ["ColumnarPlan", "PlanSpec"]


class ColumnarPlan:
    """A fluent, immutable chain of columnar operators.

    Each method returns a new plan wrapping the resulting
    :class:`ColumnarAURelation`; the wrapped relation is exposed through
    :meth:`columnar` (no conversion) and :meth:`to_rows` (the row-major
    plan boundary).

    ``workers`` selects the partitioned parallel executor
    (:mod:`repro.columnar.parallel`): the sharded stages — sort / top-k,
    window, join, group-by, and the :meth:`to_rows` boundary — split their
    work across that many forked worker processes.  ``None`` (the default)
    reads the ``REPRO_WORKERS`` environment variable; ``workers=1`` takes
    the exact single-shard code path of every kernel, and any sharded run
    is bit-identical to it (pinned by the differential property suite).
    The worker count is inherited by every chained stage.
    """

    __slots__ = ("_relation", "_workers")

    def __init__(
        self,
        relation: "AURelation | ColumnarAURelation | FactorisedAURelation | ColumnarPlan",
        *,
        workers: int | None = None,
    ):
        from repro.columnar.parallel import resolve_workers

        if isinstance(relation, ColumnarPlan):
            self._relation = relation._relation
            self._workers = (
                relation._workers if workers is None else resolve_workers(workers)
            )
        elif isinstance(relation, FactorisedAURelation):
            self._relation = relation
            self._workers = resolve_workers(workers)
        else:
            self._relation = as_columnar(relation)
            self._workers = resolve_workers(workers)

    @property
    def workers(self) -> int:
        """The resolved worker count every sharded stage of this plan uses."""
        return self._workers

    def _chain(
        self, relation: "ColumnarAURelation | FactorisedAURelation"
    ) -> "ColumnarPlan":
        """A new plan over ``relation`` carrying this plan's worker count."""
        plan = ColumnarPlan.__new__(ColumnarPlan)
        plan._relation = relation
        plan._workers = self._workers
        return plan

    def _expanded(self) -> ColumnarAURelation:
        """The current intermediate as an expanded columnar relation."""
        if isinstance(self._relation, FactorisedAURelation):
            return self._relation.expand()
        return self._relation

    # -- boundary accessors -------------------------------------------------

    def columnar(self) -> ColumnarAURelation:
        """The current intermediate result as an expanded columnar relation.

        Plain intermediates return with no conversion; a factorised
        intermediate (downstream of a :meth:`join` / :meth:`cross`) expands
        here — :meth:`factorised` exposes it without materialisation.
        """
        return self._expanded()

    def factorised(self) -> FactorisedAURelation:
        """The current intermediate as a factorised relation (no expansion)."""
        return as_factorised(self._relation)

    def to_rows(self) -> AURelation:
        """Materialise the plan result as a row-major relation (plan boundary).

        The single point a plan converts: a factorised intermediate expands
        here (the only materialisation point of the factorised
        representation), then converts to row-major.  The result is an
        ordinary :class:`~repro.core.relation.AURelation`; chaining further
        plan stages onto it raises :class:`~repro.errors.PlanError` — wrap
        it in a fresh ``ColumnarPlan`` to keep querying it.
        """
        relation = self._relation
        if isinstance(relation, FactorisedAURelation):
            relation = relation.expand(
                workers=self._workers if self._workers > 1 else 1
            )
        # Serial plans call to_relation() exactly as before the parallel
        # executor existed (the no-argument form is part of the boundary's
        # observable contract — conversion spies in the test suite rely on it).
        if self._workers > 1:
            result = relation.to_relation(workers=self._workers)
        else:
            result = relation.to_relation()
        boundary = _MaterialisedPlanResult(result.schema)
        boundary._rows = result._rows
        return boundary

    def relation(self) -> AURelation:
        """Alias of :meth:`to_rows` (kept for callers of the old boundary name)."""
        return self.to_rows()

    def __len__(self) -> int:
        return len(self._relation)

    # -- RA⁺ stages (columnar in, columnar out) -----------------------------

    def select(
        self, predicate: Expression | Callable[[AUTuple], RangeBool]
    ) -> "ColumnarPlan":
        if isinstance(self._relation, FactorisedAURelation):
            return self._chain(fx.fact_select(self._relation, predicate))
        return self._chain(ops.select(self._relation, predicate))

    def project(self, attributes: Sequence[str]) -> "ColumnarPlan":
        if isinstance(self._relation, FactorisedAURelation):
            return self._chain(fx.fact_project(self._relation, attributes))
        return self._chain(ops.project(self._relation, attributes))

    def narrow(self, attributes: Sequence[str]) -> "ColumnarPlan":
        """Drop columns *without* merging rows (the SQL pruner's projection).

        Unlike :meth:`project` — the bag projection, which merges equal
        projected hypercubes — ``narrow`` keeps the exact row sequence, so
        every downstream stage (including the tie-break-sensitive ranked
        stages fed indirectly through joins and aggregates) sees the same
        rows in the same order, just with slimmer column caches.  On a
        factorised intermediate it is a no-op: fragments only gather the
        columns later stages actually touch, so there is nothing to drop.
        """
        if isinstance(self._relation, FactorisedAURelation):
            return self
        return self._chain(self._relation.restrict(list(attributes)))

    def extend(
        self, name: str, expression: Expression | Callable[[AUTuple], RangeValue]
    ) -> "ColumnarPlan":
        if isinstance(self._relation, FactorisedAURelation):
            return self._chain(fx.fact_extend(self._relation, name, expression))
        return self._chain(ops.extend(self._relation, name, expression))

    def rename(self, mapping: Mapping[str, str]) -> "ColumnarPlan":
        if isinstance(self._relation, FactorisedAURelation):
            return self._chain(fx.fact_rename(self._relation, mapping))
        return self._chain(ops.rename(self._relation, mapping))

    def distinct(self) -> "ColumnarPlan":
        return self._chain(ops.distinct(self._expanded()))

    def union(self, other: "ColumnarPlan | AURelation | ColumnarAURelation") -> "ColumnarPlan":
        return self._chain(ops.union(self._expanded(), _unwrap(other)))

    def cross(self, other: "ColumnarPlan | AURelation | ColumnarAURelation") -> "ColumnarPlan":
        """Cross product as a factorised relation — no pair materialisation.

        The result stays a :class:`FactorisedAURelation` product of the two
        inputs' components; it expands only at :meth:`to_rows` (or when a
        later stage genuinely spans both sides).
        """
        return self._chain(
            fx.fact_cross(as_factorised(self._relation), _unwrap_factorised(other))
        )

    def join(
        self,
        other: "ColumnarPlan | AURelation | ColumnarAURelation",
        predicate: Expression | Callable[[AUTuple], RangeBool] | None = None,
        *,
        on: Sequence[str] | None = None,
        method: str = "auto",
    ) -> "ColumnarPlan":
        """Theta / equi-join against another plan or relation (stays columnar).

        ``method`` picks the pair-enumeration kernel — ``"searchsorted"``
        (any ``on`` key certain on one side), ``"sweep"`` (both sides'
        keys uncertain ``[lb, ub]`` intervals), ``"band"`` (key-less
        predicate comparing a left attribute against a constant-shifted
        right attribute), or the exact ``"grid"``.  ``"auto"`` selects the
        cheapest applicable kernel in that order; see
        :func:`repro.columnar.operators.join` and
        :func:`repro.columnar.operators.planned_join_kernel`.

        A join with a qualifying non-grid kernel stays factorised: the
        matched pairs are kept as index vectors into the two inputs'
        fragments and only expand at :meth:`to_rows`.  Non-qualifying joins
        (object-dtype keys, ``"grid"``) fall back to the eager expanded
        kernel automatically.
        """
        return self._chain(
            fx.fact_join(
                as_factorised(self._relation),
                _unwrap_factorised(other),
                predicate,
                on=on,
                method=method,
                workers=self._workers,
            )
        )

    def groupby_aggregate(
        self,
        group_by: Sequence[str],
        aggregates: Sequence[tuple[str, str | None, str]],
    ) -> "ColumnarPlan":
        """Grouped aggregation with range-bounded results (stays columnar).

        Semantics and ``aggregates`` format as in
        :func:`repro.core.operators.groupby_aggregate`.
        """
        if isinstance(self._relation, FactorisedAURelation):
            return self._chain(
                fx.fact_groupby_aggregate(
                    self._relation, group_by, aggregates, workers=self._workers
                )
            )
        return self._chain(
            ops.groupby_aggregate(
                self._relation, group_by, aggregates, workers=self._workers
            )
        )

    # -- ranking / window stages (columnar in, columnar out) ----------------

    def sort(
        self,
        order_by: Sequence[str],
        *,
        position_attribute: str = "pos",
        descending: bool = False,
    ) -> "ColumnarPlan":
        """Uncertain sort over the columnar kernels (stays columnar).

        Appends the range-annotated position attribute; the plan can keep
        chaining (e.g. select on the position, window over it) without a
        row-major round trip.
        """
        from repro.columnar.sort import sort_stage

        if isinstance(self._relation, FactorisedAURelation):
            return self._chain(
                fx.fact_sort(
                    self._relation,
                    order_by,
                    position_attribute=position_attribute,
                    descending=descending,
                    workers=self._workers,
                )
            )
        return self._chain(
            sort_stage(
                self._relation,
                order_by,
                position_attribute=position_attribute,
                descending=descending,
                workers=self._workers,
            )
        )

    def topk(
        self,
        order_by: Sequence[str],
        k: int,
        *,
        position_attribute: str = "pos",
        descending: bool = False,
    ) -> "ColumnarPlan":
        """Uncertain top-k over the columnar kernels (stays columnar)."""
        from repro.columnar.sort import sort_stage
        from repro.core.expressions import attr
        from repro.errors import OperatorError

        if k < 0:
            raise OperatorError("k must be non-negative")
        if isinstance(self._relation, FactorisedAURelation):
            ranked_fact = fx.fact_sort(
                self._relation,
                order_by,
                k=k,
                position_attribute=position_attribute,
                descending=descending,
                workers=self._workers,
            )
            return self._chain(
                fx.fact_select(ranked_fact, attr(position_attribute).lt(k))
            )
        ranked = sort_stage(
            self._relation,
            order_by,
            k=k,
            position_attribute=position_attribute,
            descending=descending,
            workers=self._workers,
        )
        return self._chain(ops.select(ranked, attr(position_attribute).lt(k)))

    def window(self, spec: WindowSpec) -> "ColumnarPlan":
        """Uncertain windowed aggregation over the columnar kernels (stays columnar).

        Appends the range-annotated aggregate attribute; plans can continue
        past the window (e.g. ``window → select → window``, the composed
        RA⁺ setting) without re-converting between the layouts.
        """
        from repro.columnar.window import window_stage

        if isinstance(self._relation, FactorisedAURelation):
            return self._chain(
                fx.fact_window(self._relation, spec, workers=self._workers)
            )
        return self._chain(window_stage(self._relation, spec, workers=self._workers))


#: Stage names guarded on materialised plan results (kept in sync with the
#: ColumnarPlan methods above).
_STAGE_NAMES = (
    "select", "project", "narrow", "extend", "rename", "distinct", "union",
    "cross", "join", "groupby_aggregate", "sort", "topk", "window", "to_rows",
    "columnar", "factorised",
)


class _MaterialisedPlanResult(AURelation):
    """The row-major relation a plan materialises at its ``.to_rows()`` boundary.

    Behaves exactly like an :class:`~repro.core.relation.AURelation`; the
    plan-stage method names are stubbed to raise a clear
    :class:`~repro.errors.PlanError` (instead of ``AttributeError``) when a
    stage is chained past the boundary.
    """

    __slots__ = ()


def _stage_guard(name: str):
    def guard(self, *_args, **_kwargs):
        raise PlanError(
            f"cannot add stage {name!r} after .to_rows(): the plan was already "
            "materialised to a row-major AURelation; wrap the result in "
            "ColumnarPlan(...) to keep querying it"
        )

    guard.__name__ = name
    guard.__doc__ = f"Raises :class:`PlanError`: {name!r} is a plan stage, not a relation method."
    return guard


for _name in _STAGE_NAMES:
    setattr(_MaterialisedPlanResult, _name, _stage_guard(_name))
del _name


class PlanSpec:
    """A declarative, immutable description of a :class:`ColumnarPlan` chain.

    Where :class:`ColumnarPlan` is *eager* (every stage method runs its
    kernel immediately), a ``PlanSpec`` merely records the stage sequence, so
    the same plan can be re-run against changing inputs — the contract the
    incremental views (:mod:`repro.columnar.incremental`) and the serving
    layer (:mod:`repro.serving`) are built on.  The builder methods mirror
    the plan stages one for one and each returns a new spec:

    >>> from repro.core.expressions import attr, const
    >>> from repro.core.relation import AURelation
    >>> spec = PlanSpec().select(attr("v").gt(const(10))).topk(["v"], 2)
    >>> audb = AURelation.from_rows(["v"], [((5,), 1), ((20,), 1), ((30,), 1)])
    >>> for t, _m in spec.apply(ColumnarPlan(audb)).to_rows():
    ...     print(t.value("v"))
    20
    30

    :meth:`shape_key` splits the spec into a hashable *shape* (the stage
    structure with every expression :class:`~repro.core.expressions.Constant`
    replaced by a parameter slot) and the tuple of constants, so plans that
    differ only in literal values share one cache shape;
    :meth:`bind` produces the spec back from a shape's template and a new
    parameter tuple without re-deriving the structure:

    >>> shape_a, params_a = spec.shape_key()
    >>> spec_b = PlanSpec().select(attr("v").gt(const(25))).topk(["v"], 2)
    >>> shape_b, params_b = spec_b.shape_key()
    >>> shape_a == shape_b, params_a, params_b
    (True, (10,), (25,))
    >>> spec.bind(params_b) == spec_b
    True
    """

    __slots__ = ("stages",)

    def __init__(self, stages: Sequence[tuple] = ()):
        #: ``(name, args, sorted_kwargs_items)`` triples, one per plan stage.
        self.stages: tuple[tuple, ...] = tuple(stages)

    # -- builder methods (one per ColumnarPlan stage) -----------------------

    def _with(self, name: str, args: tuple, kwargs: dict | None = None) -> "PlanSpec":
        items = tuple(sorted(kwargs.items())) if kwargs else ()
        return PlanSpec(self.stages + ((name, args, items),))

    def select(self, predicate) -> "PlanSpec":
        return self._with("select", (predicate,))

    def project(self, attributes: Sequence[str]) -> "PlanSpec":
        return self._with("project", (tuple(attributes),))

    def extend(self, name: str, expression) -> "PlanSpec":
        return self._with("extend", (name, expression))

    def rename(self, mapping: Mapping[str, str]) -> "PlanSpec":
        return self._with("rename", (tuple(sorted(mapping.items())),))

    def distinct(self) -> "PlanSpec":
        return self._with("distinct", ())

    def union(self, other) -> "PlanSpec":
        return self._with("union", (other,))

    def cross(self, other) -> "PlanSpec":
        return self._with("cross", (other,))

    def join(self, other, predicate=None, *, on=None, method="auto") -> "PlanSpec":
        return self._with(
            "join",
            (other, predicate),
            {"on": None if on is None else tuple(on), "method": method},
        )

    def groupby_aggregate(self, group_by, aggregates) -> "PlanSpec":
        return self._with(
            "groupby_aggregate",
            (tuple(group_by), tuple(tuple(a) for a in aggregates)),
        )

    def sort(self, order_by, *, position_attribute="pos", descending=False) -> "PlanSpec":
        return self._with(
            "sort",
            (tuple(order_by),),
            {"position_attribute": position_attribute, "descending": descending},
        )

    def topk(
        self, order_by, k: int, *, position_attribute="pos", descending=False
    ) -> "PlanSpec":
        return self._with(
            "topk",
            (tuple(order_by), int(k)),
            {"position_attribute": position_attribute, "descending": descending},
        )

    def window(self, spec: WindowSpec) -> "PlanSpec":
        return self._with("window", (spec,))

    # -- execution ----------------------------------------------------------

    def apply(self, plan: ColumnarPlan) -> ColumnarPlan:
        """Run the recorded stages against an eager plan, in order."""
        for name, args, kwargs in self.stages:
            if name == "rename":
                plan = plan.rename(dict(args[0]))
            else:
                plan = getattr(plan, name)(*args, **dict(kwargs))
        return plan

    # -- shape keys / parameter binding -------------------------------------

    def shape_key(self) -> tuple[tuple, tuple]:
        """``(shape, params)``: the cacheable structure and its constants.

        ``shape`` is a hashable tuple mirroring the stage list with every
        expression ``Constant`` replaced by a slot marker; ``params`` holds
        the constant values in walk order (stage order, args before kwargs,
        expression trees left to right).  Two specs that differ only in
        expression literals produce the *same* shape with different params —
        the plan cache's key discipline.  Non-expression stage inputs
        (relations, callables) key by object identity when they are not
        hashable themselves.
        """
        params: list = []
        shape = tuple(
            (
                name,
                tuple(_freeze(a, params) for a in args),
                tuple((key, _freeze(v, params)) for key, v in kwargs),
            )
            for name, args, kwargs in self.stages
        )
        return shape, tuple(params)

    def bind(self, params: Sequence) -> "PlanSpec":
        """This spec with its expression constants replaced by ``params``.

        The walk order matches :meth:`shape_key`, so
        ``spec.bind(spec.shape_key()[1]) == spec``; binding a different
        parameter tuple re-targets every literal without re-deriving the
        stage structure.  Raises :class:`~repro.errors.PlanError` when the
        parameter count does not match the spec's slots.
        """
        supply = iter(params)
        stages = []
        for name, args, kwargs in self.stages:
            stages.append(
                (
                    name,
                    tuple(_rebind(a, supply) for a in args),
                    tuple((key, _rebind(v, supply)) for key, v in kwargs),
                )
            )
        leftover = sum(1 for _ in supply)
        if leftover:
            raise PlanError(
                f"bind() got {leftover} more parameter(s) than the spec has slots"
            )
        return PlanSpec(stages)

    # -- value protocol ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlanSpec):
            return NotImplemented
        return self.stages == other.stages

    def __hash__(self) -> int:
        return hash(("PlanSpec",) + tuple(str(stage) for stage in self.stages))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlanSpec({[name for name, _a, _k in self.stages]})"


def _freeze(value, params: list):
    """One shape-key element for a stage input, collecting constants."""
    from repro.core.expressions import (
        Arithmetic, Attribute, BooleanOp, Comparison, Constant, IfThenElse, Not,
    )

    if isinstance(value, Constant):
        params.append(value.value)
        return ("?",)
    if isinstance(value, Attribute):
        return ("attr", value.name)
    if isinstance(value, (Arithmetic, Comparison, BooleanOp)):
        return (
            type(value).__name__,
            value.op,
            _freeze(value.left, params),
            _freeze(value.right, params),
        )
    if isinstance(value, Not):
        return ("Not", _freeze(value.operand, params))
    if isinstance(value, IfThenElse):
        return (
            "IfThenElse",
            _freeze(value.condition, params),
            _freeze(value.then_branch, params),
            _freeze(value.else_branch, params),
        )
    if isinstance(value, tuple):
        return tuple(_freeze(v, params) for v in value)
    if value is None or isinstance(value, (str, int, float, bool, WindowSpec)):
        return ("lit", value)
    try:
        hash(value)
    except TypeError:
        return ("objid", id(value))
    return ("obj", value)


def _rebind(value, supply):
    """The :meth:`PlanSpec.bind` walk: replace Constants, keep everything else."""
    from repro.core.expressions import (
        Arithmetic, Attribute, BooleanOp, Comparison, Constant, IfThenElse, Not,
    )

    if isinstance(value, Constant):
        try:
            return Constant(next(supply))
        except StopIteration:
            raise PlanError("bind() got fewer parameters than the spec has slots") from None
    if isinstance(value, (Arithmetic, Comparison, BooleanOp)):
        return type(value)(value.op, _rebind(value.left, supply), _rebind(value.right, supply))
    if isinstance(value, Not):
        return Not(_rebind(value.operand, supply))
    if isinstance(value, IfThenElse):
        return IfThenElse(
            _rebind(value.condition, supply),
            _rebind(value.then_branch, supply),
            _rebind(value.else_branch, supply),
        )
    if isinstance(value, Attribute):
        return value
    if isinstance(value, tuple):
        return tuple(_rebind(v, supply) for v in value)
    return value


def _unwrap(
    other: "ColumnarPlan | AURelation | ColumnarAURelation",
) -> ColumnarAURelation:
    """``other`` as an expanded columnar relation (for eager binary stages)."""
    if isinstance(other, ColumnarPlan):
        return other._expanded()
    if isinstance(other, FactorisedAURelation):
        return other.expand()
    return as_columnar(other)


def _unwrap_factorised(
    other: "ColumnarPlan | AURelation | ColumnarAURelation | FactorisedAURelation",
) -> FactorisedAURelation:
    """``other`` as a factorised relation, keeping its layout (no expansion)."""
    if isinstance(other, ColumnarPlan):
        return as_factorised(other._relation)
    return as_factorised(other)
