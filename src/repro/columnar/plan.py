"""Plan composition over the columnar backend.

:class:`ColumnarPlan` chains the vectorized ``RA⁺`` kernels of
:mod:`repro.columnar.operators` so a whole query stays in the columnar layout
from ingest to result — no intermediate row-major
:class:`~repro.core.relation.AURelation` is materialised between stages.
Only the *plan boundary* converts: the terminal :meth:`~ColumnarPlan.sort` /
:meth:`~ColumnarPlan.topk` / :meth:`~ColumnarPlan.window` operators (whose
kernels emit row-major results) and the explicit :meth:`~ColumnarPlan.relation`
accessor.  Every other stage — including
:meth:`~ColumnarPlan.groupby_aggregate` — is columnar in, columnar out.

>>> from repro.core.expressions import attr, const
>>> from repro.core.relation import AURelation
>>> orders = AURelation.from_rows(
...     ["o", "g", "v"], [((1, 0, 20), 1), ((2, 0, 5), 1), ((3, 1, 30), 1)]
... )
>>> parts = AURelation.from_rows(["g", "w"], [((0, 7), 1), ((1, 9), 1)])
>>> result = (
...     ColumnarPlan(orders)
...     .select(attr("v").gt(const(10)))
...     .join(ColumnarPlan(parts), on=["g"])
...     .groupby_aggregate(["g"], [("sum", "v", "total")])
...     .relation()            # boundary: row-major AURelation
... )
>>> for tup, _m in result:
...     print(tup.value("g"), tup.value("total"))
0 20
1 30

Every stage is bit-identical to running the corresponding Python-backend
operator chain on row-major relations.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.columnar import operators as ops
from repro.columnar.relation import ColumnarAURelation, as_columnar
from repro.core.booleans import RangeBool
from repro.core.expressions import Expression
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.core.tuples import AUTuple
from repro.window.spec import WindowSpec

__all__ = ["ColumnarPlan"]


class ColumnarPlan:
    """A fluent, immutable chain of columnar operators.

    Each method returns a new plan wrapping the resulting
    :class:`ColumnarAURelation`; the wrapped relation is exposed through
    :meth:`columnar` (no conversion) and :meth:`relation` (row-major
    boundary conversion).
    """

    __slots__ = ("_relation",)

    def __init__(self, relation: AURelation | ColumnarAURelation | "ColumnarPlan"):
        if isinstance(relation, ColumnarPlan):
            self._relation = relation._relation
        else:
            self._relation = as_columnar(relation)

    # -- boundary accessors -------------------------------------------------

    def columnar(self) -> ColumnarAURelation:
        """The current intermediate result, still columnar (no conversion)."""
        return self._relation

    def relation(self) -> AURelation:
        """Materialise the plan result as a row-major relation (plan boundary)."""
        return self._relation.to_relation()

    def __len__(self) -> int:
        return len(self._relation)

    # -- RA⁺ stages (columnar in, columnar out) -----------------------------

    def select(
        self, predicate: Expression | Callable[[AUTuple], RangeBool]
    ) -> "ColumnarPlan":
        return ColumnarPlan(ops.select(self._relation, predicate))

    def project(self, attributes: Sequence[str]) -> "ColumnarPlan":
        return ColumnarPlan(ops.project(self._relation, attributes))

    def extend(
        self, name: str, expression: Expression | Callable[[AUTuple], RangeValue]
    ) -> "ColumnarPlan":
        return ColumnarPlan(ops.extend(self._relation, name, expression))

    def rename(self, mapping: Mapping[str, str]) -> "ColumnarPlan":
        return ColumnarPlan(ops.rename(self._relation, mapping))

    def distinct(self) -> "ColumnarPlan":
        return ColumnarPlan(ops.distinct(self._relation))

    def union(self, other: "ColumnarPlan | AURelation | ColumnarAURelation") -> "ColumnarPlan":
        return ColumnarPlan(ops.union(self._relation, _unwrap(other)))

    def cross(self, other: "ColumnarPlan | AURelation | ColumnarAURelation") -> "ColumnarPlan":
        return ColumnarPlan(ops.cross(self._relation, _unwrap(other)))

    def join(
        self,
        other: "ColumnarPlan | AURelation | ColumnarAURelation",
        predicate: Expression | Callable[[AUTuple], RangeBool] | None = None,
        *,
        on: Sequence[str] | None = None,
        method: str = "auto",
    ) -> "ColumnarPlan":
        """Theta / equi-join against another plan or relation (stays columnar).

        ``method`` picks the pair-enumeration kernel (``"auto"`` selects the
        memory-safe sort/searchsorted path when the equi-join keys qualify,
        the exact pair grid otherwise); see
        :func:`repro.columnar.operators.join`.
        """
        return ColumnarPlan(
            ops.join(self._relation, _unwrap(other), predicate, on=on, method=method)
        )

    def groupby_aggregate(
        self,
        group_by: Sequence[str],
        aggregates: Sequence[tuple[str, str | None, str]],
    ) -> "ColumnarPlan":
        """Grouped aggregation with range-bounded results (stays columnar).

        Unlike the terminal sort / window stages this is a regular ``RA⁺``
        stage: the aggregated relation remains columnar, so plans can keep
        chaining (e.g. ``select → join → groupby_aggregate → window``)
        without an intermediate row-major conversion.  Semantics and
        ``aggregates`` format as in
        :func:`repro.core.operators.groupby_aggregate`.
        """
        return ColumnarPlan(ops.groupby_aggregate(self._relation, group_by, aggregates))

    # -- terminal ranking / window stages (row-major out: plan boundary) ----

    def sort(
        self,
        order_by: Sequence[str],
        *,
        position_attribute: str = "pos",
        descending: bool = False,
    ) -> AURelation:
        """Uncertain sort over the columnar kernels (terminal stage)."""
        from repro.columnar.sort import sort_columnar

        return sort_columnar(
            self._relation,
            order_by,
            position_attribute=position_attribute,
            descending=descending,
        )

    def topk(
        self,
        order_by: Sequence[str],
        k: int,
        *,
        position_attribute: str = "pos",
        descending: bool = False,
    ) -> AURelation:
        """Uncertain top-k over the columnar kernels (terminal stage)."""
        from repro.columnar.sort import sort_columnar
        from repro.core.expressions import attr
        from repro.core.operators.select import select as row_select
        from repro.errors import OperatorError

        if k < 0:
            raise OperatorError("k must be non-negative")
        ranked = sort_columnar(
            self._relation,
            order_by,
            k=k,
            position_attribute=position_attribute,
            descending=descending,
        )
        return row_select(ranked, attr(position_attribute).lt(k))

    def window(self, spec: WindowSpec) -> AURelation:
        """Uncertain windowed aggregation over the columnar kernels (terminal stage)."""
        from repro.columnar.window import window_columnar

        return window_columnar(self._relation, spec)


def _unwrap(
    other: "ColumnarPlan | AURelation | ColumnarAURelation",
) -> ColumnarAURelation:
    if isinstance(other, ColumnarPlan):
        return other._relation
    return as_columnar(other)
