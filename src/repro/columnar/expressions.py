"""Vectorized bound-preserving expression evaluation over columnar AU-relations.

The scalar expression semantics of :mod:`repro.core.expressions` evaluates one
:class:`~repro.core.tuples.AUTuple` at a time, building a
:class:`~repro.core.ranges.RangeValue` / :class:`~repro.core.booleans.RangeBool`
per node and per row.  This module evaluates the same AST over the aligned
``lb`` / ``sg`` / ``ub`` arrays of a
:class:`~repro.columnar.relation.ColumnarAURelation` instead: interval
arithmetic and comparison triples become elementwise NumPy operations, one per
node for the whole column.

Results are bit-identical to the scalar semantics.  Inputs the vectorized
path cannot reproduce exactly fall back to the scalar evaluator row by row
(:func:`Expression.eval_range` over reconstructed tuples):

* ``object``-dtype component arrays (strings, ``None``, booleans, mixed
  scalar types),
* ``float64`` components carrying NaN (NumPy's ``minimum`` / comparison NaN
  propagation differs from the scalar ``_lt`` order),
* ``int64`` components large enough that either integer arithmetic could
  overflow 64 bits or an int/float comparison would round (``>= 2**53``),
* AST nodes outside the proven expression language (custom subclasses), and
* plain callables (which only exist tuple-at-a-time).

The public entry points return plain component arrays so the operator kernels
of :mod:`repro.columnar.operators` can consume them directly:

* :func:`range_columns` — ``(lb, sg, ub)`` value arrays of a scalar
  expression, and
* :func:`predicate_masks` — ``(certain, sg, possible)`` boolean arrays of a
  predicate (the vectorized :class:`RangeBool` triple).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.columnar.relation import (
    FLOAT64_EXACT_MAX,
    AttributeColumn,
    ColumnarAURelation,
    column_array,
    profile_components,
)
from repro.core.booleans import RangeBool
from repro.core.expressions import (
    Arithmetic,
    Attribute,
    BooleanOp,
    Comparison,
    Constant,
    Expression,
    IfThenElse,
    Not,
)
from repro.core.ranges import RangeValue
from repro.core.tuples import AUTuple
from repro.errors import ExpressionError

__all__ = ["range_columns", "predicate_masks", "referenced_attributes"]


#: Magnitude ceiling for vectorized int64 arithmetic results; beyond it the
#: fixed-width kernels could overflow where Python's integers would not.
_INT64_SAFE = 2**62


class _Fallback(Exception):
    """Internal signal: this expression needs the scalar row-by-row path."""


class _Ranges:
    """A vectorized :class:`RangeValue` column: aligned lb / sg / ub arrays.

    ``max_abs`` carries a magnitude bound for integer columns (``None`` for
    floats) so arithmetic can reject results that might overflow ``int64``
    before computing them.
    """

    __slots__ = ("lb", "sg", "ub", "max_abs")

    def __init__(self, lb: np.ndarray, sg: np.ndarray, ub: np.ndarray, max_abs: int | None):
        self.lb = lb
        self.sg = sg
        self.ub = ub
        self.max_abs = max_abs

    @property
    def is_integer(self) -> bool:
        return self.max_abs is not None


class _Bools:
    """A vectorized :class:`RangeBool` column: certain / sg / possible masks."""

    __slots__ = ("certain", "sg", "possible")

    def __init__(self, certain: np.ndarray, sg: np.ndarray, possible: np.ndarray):
        self.certain = certain
        self.sg = sg
        self.possible = possible


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def range_columns(
    relation: ColumnarAURelation,
    expression: Expression | Callable[[AUTuple], RangeValue],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(lb, sg, ub)`` value arrays of a scalar expression over every row."""
    if isinstance(expression, Expression):
        try:
            result = _eval(expression, relation)
        except _Fallback:
            pass
        else:
            if isinstance(result, _Bools):
                raise ExpressionError("expected a scalar expression, got a predicate")
            return result.lb, result.sg, result.ub
    return _scalar_range_columns(relation, expression)


def predicate_masks(
    relation: ColumnarAURelation,
    predicate: Expression | Callable[[AUTuple], RangeBool],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(certain, sg, possible)`` boolean arrays of a predicate over every row."""
    if isinstance(predicate, Expression):
        try:
            result = _eval(predicate, relation)
        except _Fallback:
            pass
        else:
            if isinstance(result, _Ranges):
                # Scalar expressions used as predicates filter on component
                # truthiness in the scalar semantics (Multiplicity.filter
                # reads ``.lb`` / ``.sg`` / ``.ub`` directly); delegate so the
                # behaviour stays identical.
                return _scalar_predicate_masks(relation, predicate)
            return result.certain, result.sg, result.possible
    return _scalar_predicate_masks(relation, predicate)


def referenced_attributes(
    expression: Expression | Callable,
) -> frozenset[str] | None:
    """The attribute names an expression reads, or ``None`` when undecidable.

    Column-ownership analysis for the factorised pushdown rules
    (:mod:`repro.columnar.factorised`): a predicate or scalar expression can
    be evaluated inside the factorised component that owns its referenced
    columns exactly when that set is known.  Plain callables and AST nodes
    outside the proven expression language may read any attribute
    tuple-at-a-time, so they return ``None`` (callers must expand).

    >>> from repro.core.expressions import attr, const
    >>> sorted(referenced_attributes(attr("a").lt(attr("b") + const(1))))
    ['a', 'b']
    >>> referenced_attributes(const(2).lt(const(3)))
    frozenset()
    >>> referenced_attributes(lambda tup: tup.value("a")) is None
    True
    """
    if not isinstance(expression, Expression):
        return None
    names: set[str] = set()
    stack: list[Expression] = [expression]
    while stack:
        node = stack.pop()
        node_type = type(node)
        if node_type is Attribute:
            names.add(node.name)
        elif node_type is Constant:
            pass
        elif node_type in (Arithmetic, Comparison, BooleanOp):
            stack.append(node.left)
            stack.append(node.right)
        elif node_type is Not:
            stack.append(node.operand)
        elif node_type is IfThenElse:
            stack.append(node.condition)
            stack.append(node.then_branch)
            stack.append(node.else_branch)
        else:  # custom Expression subclass: only the scalar path knows it
            return None
    return frozenset(names)


# ---------------------------------------------------------------------------
# Scalar (row-by-row) fallback
# ---------------------------------------------------------------------------


def _scalar_range_columns(relation, expression):
    values = []
    for i in range(len(relation)):
        tup = AUTuple(relation.schema, relation.row_values(i))
        result = (
            expression.eval_range(tup) if isinstance(expression, Expression) else expression(tup)
        )
        if isinstance(result, RangeBool):
            raise ExpressionError("expected a scalar expression, got a predicate")
        values.append(result)
    return (
        column_array([value.lb for value in values]),
        column_array([value.sg for value in values]),
        column_array([value.ub for value in values]),
    )


def _scalar_predicate_masks(relation, predicate):
    n = len(relation)
    certain = np.zeros(n, dtype=bool)
    sg = np.zeros(n, dtype=bool)
    possible = np.zeros(n, dtype=bool)
    for i in range(n):
        tup = AUTuple(relation.schema, relation.row_values(i))
        result = (
            predicate.eval_range(tup) if isinstance(predicate, Expression) else predicate(tup)
        )
        # RangeBool and (degenerate) RangeValue predicates both filter through
        # component truthiness, exactly like Multiplicity.filter.
        certain[i] = bool(result.lb)
        sg[i] = bool(result.sg)
        possible[i] = bool(result.ub)
    return certain, sg, possible


# ---------------------------------------------------------------------------
# Vectorized AST walk
# ---------------------------------------------------------------------------


def _eval(node: Expression, relation: ColumnarAURelation) -> _Ranges | _Bools:
    if type(node) is Attribute:
        return _attribute(node, relation)
    if type(node) is Constant:
        return _constant(node, len(relation))
    if type(node) is Arithmetic:
        return _arithmetic(node, relation)
    if type(node) is Comparison:
        return _comparison(node, relation)
    if type(node) is BooleanOp:
        left = _expect_bools(_eval(node.left, relation))
        right = _expect_bools(_eval(node.right, relation))
        if node.op == "and":
            return _Bools(left.certain & right.certain, left.sg & right.sg, left.possible & right.possible)
        return _Bools(left.certain | right.certain, left.sg | right.sg, left.possible | right.possible)
    if type(node) is Not:
        operand = _expect_bools(_eval(node.operand, relation))
        return _Bools(~operand.possible, ~operand.sg, ~operand.certain)
    if type(node) is IfThenElse:
        return _if_then_else(node, relation)
    raise _Fallback  # custom Expression subclass: only the scalar path knows it


def _attribute(node: Attribute, relation: ColumnarAURelation) -> _Ranges:
    column = relation.column(node.name)
    return _column_ranges(column)


def _column_ranges(column: AttributeColumn) -> _Ranges:
    profile = profile_components((column.lb, column.sg, column.ub))
    if profile.has_object or profile.has_nan:
        # Object scalars and NaN ordering only exist on the scalar path.
        raise _Fallback
    max_abs = None if profile.has_float else profile.int_magnitude
    return _Ranges(column.lb, column.sg, column.ub, max_abs)


def _constant(node: Constant, n: int) -> _Ranges:
    value = node.value
    if type(value) is int:
        arr = np.full(n, value, dtype=np.int64) if abs(value) < _INT64_SAFE else None
        if arr is None:
            raise _Fallback
        return _Ranges(arr, arr, arr, abs(value))
    if type(value) is float:
        if value != value:  # NaN constant
            raise _Fallback
        arr = np.full(n, value, dtype=np.float64)
        return _Ranges(arr, arr, arr, None)
    raise _Fallback  # strings / None / booleans: scalar semantics only


def _mixed_exact(left: _Ranges, right: _Ranges) -> None:
    """Reject int/float mixes whose integers would round in float64."""
    for ranges in (left, right):
        if ranges.is_integer and ranges.max_abs >= FLOAT64_EXACT_MAX and not (
            left.is_integer and right.is_integer
        ):
            raise _Fallback


def _arithmetic(node: Arithmetic, relation: ColumnarAURelation) -> _Ranges:
    left = _expect_ranges(_eval(node.left, relation))
    right = _expect_ranges(_eval(node.right, relation))
    _mixed_exact(left, right)
    both_int = left.is_integer and right.is_integer
    if node.op in ("+", "-"):
        if both_int:
            bound = left.max_abs + right.max_abs
            if bound >= _INT64_SAFE:
                raise _Fallback
        else:
            bound = None
        if node.op == "+":
            return _Ranges(left.lb + right.lb, left.sg + right.sg, left.ub + right.ub, bound)
        return _Ranges(left.lb - right.ub, left.sg - right.sg, left.ub - right.lb, bound)
    if node.op == "*":
        if both_int:
            bound = left.max_abs * right.max_abs
            if bound >= _INT64_SAFE:
                raise _Fallback
        else:
            bound = None
        products = (
            left.lb * right.lb,
            left.lb * right.ub,
            left.ub * right.lb,
            left.ub * right.ub,
        )
        lb = np.minimum(np.minimum(products[0], products[1]), np.minimum(products[2], products[3]))
        ub = np.maximum(np.maximum(products[0], products[1]), np.maximum(products[2], products[3]))
        return _Ranges(lb, left.sg * right.sg, ub, bound)
    raise ExpressionError(f"unsupported arithmetic operator {node.op!r}")


def _comparison(node: Comparison, relation: ColumnarAURelation) -> _Bools:
    left = _expect_ranges(_eval(node.left, relation))
    right = _expect_ranges(_eval(node.right, relation))
    _mixed_exact(left, right)
    # NaN is excluded upstream, so the scalar domain order (_lt / _le with
    # ``None`` first) collapses to plain numeric comparison here.
    if node.op == "<":
        return _Bools(left.ub < right.lb, left.sg < right.sg, left.lb < right.ub)
    if node.op == "<=":
        return _Bools(left.ub <= right.lb, left.sg <= right.sg, left.lb <= right.ub)
    if node.op == ">":
        return _Bools(right.ub < left.lb, right.sg < left.sg, right.lb < left.ub)
    if node.op == ">=":
        return _Bools(right.ub <= left.lb, right.sg <= left.sg, right.lb <= left.ub)
    certain_left = (left.lb == left.sg) & (left.sg == left.ub)
    certain_right = (right.lb == right.sg) & (right.sg == right.ub)
    certainly = certain_left & certain_right & (left.lb == right.lb)
    overlaps = (left.lb <= right.ub) & (right.lb <= left.ub)
    sg = left.sg == right.sg
    if node.op == "==":
        return _Bools(certainly, sg, overlaps)
    return _Bools(~overlaps, ~sg, ~certainly)


def _if_then_else(node: IfThenElse, relation: ColumnarAURelation) -> _Ranges:
    condition = _expect_bools(_eval(node.condition, relation))
    then_val = _expect_ranges(_eval(node.then_branch, relation))
    else_val = _expect_ranges(_eval(node.else_branch, relation))
    _mixed_exact(then_val, else_val)
    bound = (
        max(then_val.max_abs, else_val.max_abs)
        if then_val.is_integer and else_val.is_integer
        else None
    )
    sg = np.where(condition.sg, then_val.sg, else_val.sg)
    # Certainly true -> then branch; certainly false -> else branch; anything
    # uncertain takes the union hull of both branches (the sound scalar
    # over-approximation of IfThenElse.eval_range).
    hull_lb = np.minimum(then_val.lb, else_val.lb)
    hull_ub = np.maximum(then_val.ub, else_val.ub)
    lb = np.where(condition.certain, then_val.lb, np.where(~condition.possible, else_val.lb, hull_lb))
    ub = np.where(condition.certain, then_val.ub, np.where(~condition.possible, else_val.ub, hull_ub))
    return _Ranges(lb, sg, ub, bound)


def _expect_ranges(value: _Ranges | _Bools) -> _Ranges:
    if isinstance(value, _Bools):
        raise ExpressionError("expected a scalar expression, got a predicate")
    return value


def _expect_bools(value: _Ranges | _Bools) -> _Bools:
    if isinstance(value, _Ranges):
        raise ExpressionError("expected a predicate, got a scalar expression")
    return value
