"""Vectorized bound-preserving ``RA⁺`` operators over columnar AU-relations.

These kernels mirror :mod:`repro.core.operators` (the AU-DB selection /
projection / join semantics of Fig. 2 lifted through the ``N³`` semiring) but
take and return :class:`~repro.columnar.relation.ColumnarAURelation`, so a
whole operator pipeline composes without materialising a row-major
:class:`~repro.core.relation.AURelation` between stages:

* :func:`select` — predicate bounding triples evaluated as boolean masks
  (:mod:`repro.columnar.expressions`), multiplicities filtered per component,
* :func:`project` / :func:`distinct` / :func:`union` — bag semantics with
  hash-grouped duplicate merging (lexicographic dense codes + ``np.unique``),
* :func:`extend` / :func:`rename` — computed / relabelled columns,
* :func:`cross` / :func:`join` — bulk ``np.repeat`` × ``np.tile`` product
  expansion with vectorized equality / predicate masks filtering the
  pointwise multiplicity products.

Every kernel is bit-identical to the Python backend: converting the result
with :meth:`~repro.columnar.relation.ColumnarAURelation.to_relation` yields
exactly the relation the tuple-at-a-time operator produces — same hypercubes,
annotations, and first-occurrence merge order (the differential property
suite under ``tests/property/`` pins this on randomized inputs).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.columnar.expressions import predicate_masks, range_columns
from repro.columnar.relation import (
    FLOAT64_EXACT_MAX,
    AttributeColumn,
    ColumnarAURelation,
    profile_components,
)
from repro.core.booleans import RangeBool
from repro.core.expressions import Expression
from repro.core.ranges import RangeValue
from repro.core.tuples import AUTuple
from repro.errors import OperatorError, SchemaError

__all__ = [
    "select",
    "project",
    "extend",
    "rename",
    "union",
    "distinct",
    "cross",
    "join",
]


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------


def select(
    relation: ColumnarAURelation,
    predicate: Expression | Callable[[AUTuple], RangeBool],
) -> ColumnarAURelation:
    """Keep rows according to the bounding triple of ``predicate``.

    The certain multiplicity survives only where the predicate is certainly
    true, the possible multiplicity where it is possibly true, and the
    selected-guess multiplicity where it holds in the selected-guess world —
    the same per-component filtering as :meth:`Multiplicity.filter`.
    """
    certain, sg, possible = predicate_masks(relation, predicate)
    mult_lb = np.where(certain, relation.mult_lb, 0)
    mult_sg = np.where(sg, relation.mult_sg, 0)
    mult_ub = np.where(possible, relation.mult_ub, 0)
    return relation.with_multiplicities(mult_lb, mult_sg, mult_ub).mask(mult_ub > 0)


# ---------------------------------------------------------------------------
# Projection / extension / renaming
# ---------------------------------------------------------------------------


def project(relation: ColumnarAURelation, attributes: Sequence[str]) -> ColumnarAURelation:
    """Bag projection: rows with equal projected hypercubes merge (annotations add)."""
    return _merge_equal_rows(relation.restrict(attributes))


def extend(
    relation: ColumnarAURelation,
    name: str,
    expression: Expression | Callable[[AUTuple], RangeValue],
) -> ColumnarAURelation:
    """Append a computed range-annotated attribute to every row."""
    relation.schema.extend(name)  # validates the name early (clear SchemaError)
    lb, sg, ub = range_columns(relation, expression)
    return relation.with_column(AttributeColumn(name, lb, sg, ub))


def rename(relation: ColumnarAURelation, mapping: Mapping[str, str]) -> ColumnarAURelation:
    """Rename attributes (values and annotations unchanged)."""
    return relation.rename(dict(mapping))


# ---------------------------------------------------------------------------
# Union / distinct
# ---------------------------------------------------------------------------


def union(left: ColumnarAURelation, right: ColumnarAURelation) -> ColumnarAURelation:
    """Bag union: rows with identical hypercubes merge, annotations add."""
    if left.schema != right.schema:
        raise SchemaError("union requires identical schemas")
    return _merge_equal_rows(left.concat(right))


def distinct(relation: ColumnarAURelation) -> ColumnarAURelation:
    """Cap every multiplicity triple at one copy (bound-preserving set projection)."""
    return relation.with_multiplicities(
        np.minimum(relation.mult_lb, 1),
        np.minimum(relation.mult_sg, 1),
        np.minimum(relation.mult_ub, 1),
    )


# ---------------------------------------------------------------------------
# Cross product / join
# ---------------------------------------------------------------------------


def cross(left: ColumnarAURelation, right: ColumnarAURelation) -> ColumnarAURelation:
    """Cross product; clashing attribute names on the right get ``_r`` suffixes.

    Pairs expand in bulk — left rows ``np.repeat``-ed, right rows
    ``np.tile``-d — in the same left-outer / right-inner order as the Python
    backend, with multiplicities multiplying pointwise.
    """
    schema = left.schema.concat(right.schema, disambiguate=True)
    n_left, n_right = len(left), len(right)
    expanded_left = left.repeat(n_right)
    expanded_right = right.tile(n_left)
    columns = list(expanded_left.columns)
    for name, column in zip(schema.attributes[len(columns) :], expanded_right.columns):
        columns.append(AttributeColumn(name, column.lb, column.sg, column.ub))
    return ColumnarAURelation(
        schema,
        columns,
        expanded_left.mult_lb * expanded_right.mult_lb,
        expanded_left.mult_sg * expanded_right.mult_sg,
        expanded_left.mult_ub * expanded_right.mult_ub,
    )


def join(
    left: ColumnarAURelation,
    right: ColumnarAURelation,
    predicate: Expression | Callable[[AUTuple], RangeBool] | None = None,
    *,
    on: Sequence[str] | None = None,
) -> ColumnarAURelation:
    """Theta or equi-join over columnar AU-relations.

    With ``on``, pairs join when their ranges on the named attributes
    *possibly* intersect (the vectorized equality triple filters the
    certain / selected-guess / possible multiplicities); a ``predicate`` is
    evaluated over the disambiguated product relation.  Same semantics as
    :func:`repro.core.operators.join`.
    """
    if on is None and predicate is None:
        raise OperatorError("join requires either a predicate or an `on` attribute list")
    left.schema.require(list(on or ()))
    right.schema.require(list(on or ()))

    product = cross(left, right)
    n = len(product)
    certain = np.ones(n, dtype=bool)
    sg = np.ones(n, dtype=bool)
    possible = np.ones(n, dtype=bool)
    if on is not None:
        for name in on:
            # The product already holds the repeated / tiled key columns —
            # read the pair grid off it instead of expanding it again.
            left_expanded = product.columns[left.schema.index_of(name)]
            right_expanded = product.columns[len(left.schema) + right.schema.index_of(name)]
            eq_cert, eq_sg, eq_poss = _pairwise_equality(
                left_expanded, right_expanded, left.column(name), right.column(name)
            )
            certain &= eq_cert
            sg &= eq_sg
            possible &= eq_poss
    if predicate is not None:
        p_cert, p_sg, p_poss = predicate_masks(product, predicate)
        certain &= p_cert
        sg &= p_sg
        possible &= p_poss

    mult_lb = np.where(certain, product.mult_lb, 0)
    mult_sg = np.where(sg, product.mult_sg, 0)
    mult_ub = np.where(possible, product.mult_ub, 0)
    return product.with_multiplicities(mult_lb, mult_sg, mult_ub).mask(mult_ub > 0)


def _pairwise_equality(
    left_expanded: AttributeColumn,
    right_expanded: AttributeColumn,
    left: AttributeColumn,
    right: AttributeColumn,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized ``RangeValue.eq`` triple over the expanded pair grid.

    ``*_expanded`` are the already repeated / tiled product columns (one
    entry per pair); ``left`` / ``right`` are the original key columns, used
    for the cheap exactness scan and the scalar fallback.
    """
    if _equality_vectorizable(left, right):
        l_lb, l_sg, l_ub = left_expanded.lb, left_expanded.sg, left_expanded.ub
        r_lb, r_sg, r_ub = right_expanded.lb, right_expanded.sg, right_expanded.ub
        certain_left = (l_lb == l_sg) & (l_sg == l_ub)
        certain_right = (r_lb == r_sg) & (r_sg == r_ub)
        certainly = certain_left & certain_right & (l_lb == r_lb)
        overlaps = (l_lb <= r_ub) & (r_lb <= l_ub)
        return certainly, l_sg == r_sg, overlaps
    # Object-dtype columns (strings, None, mixed types), NaN carriers, and
    # int/float mixes beyond float64's exact integer range: the scalar
    # comparisons own those semantics — delegate per pair.
    n_left, n_right = len(left.lb), len(right.lb)
    certain = np.empty(n_left * n_right, dtype=bool)
    sg = np.empty(n_left * n_right, dtype=bool)
    possible = np.empty(n_left * n_right, dtype=bool)
    left_values = [left.value(i) for i in range(n_left)]
    right_values = [right.value(j) for j in range(n_right)]
    pair = 0
    for lvalue in left_values:
        for rvalue in right_values:
            condition = lvalue.eq(rvalue)
            certain[pair] = condition.lb
            sg[pair] = condition.sg
            possible[pair] = condition.ub
            pair += 1
    return certain, sg, possible


def _equality_vectorizable(left: AttributeColumn, right: AttributeColumn) -> bool:
    """Whether the vectorized equality triple is exact for these columns.

    Rejects ``object`` components, NaN-carrying floats (NumPy comparison NaN
    propagation differs from the scalar ``_le`` order), and int/float mixes
    whose integers would round when promoted to ``float64``.
    """
    profile = profile_components(
        [getattr(column, name) for column in (left, right) for name in ("lb", "sg", "ub")]
    )
    return not (
        profile.has_object
        or profile.has_nan
        or (profile.has_float and profile.int_magnitude >= FLOAT64_EXACT_MAX)
    )


# ---------------------------------------------------------------------------
# Duplicate merging (the K-relation view: equal hypercubes add annotations)
# ---------------------------------------------------------------------------


def _merge_equal_rows(relation: ColumnarAURelation) -> ColumnarAURelation:
    """Merge rows with equal hypercubes, annotations adding pointwise.

    Equality follows the scalar semantics (``RangeValue.__eq__`` per
    attribute: ``1 == 1.0 == True``, NaN equal to nothing including itself);
    merged rows keep the first occurrence's values and position, matching the
    insertion-order merge of :meth:`AURelation.add`.
    """
    n = len(relation)
    if n == 0:
        return relation
    if not relation.columns:
        # Zero-attribute schema: every row is the empty tuple.
        return ColumnarAURelation(
            relation.schema,
            (),
            np.array([int(relation.mult_lb.sum())], dtype=np.int64),
            np.array([int(relation.mult_sg.sum())], dtype=np.int64),
            np.array([int(relation.mult_ub.sum())], dtype=np.int64),
        )
    codes = [
        _equality_codes(component)
        for column in relation.columns
        for component in (column.lb, column.sg, column.ub)
    ]
    matrix = np.column_stack(codes)
    _, first, inverse = np.unique(matrix, axis=0, return_index=True, return_inverse=True)
    inverse = inverse.reshape(-1)
    groups = len(first)
    if groups == n:
        return relation
    mult_lb = np.zeros(groups, dtype=np.int64)
    mult_sg = np.zeros(groups, dtype=np.int64)
    mult_ub = np.zeros(groups, dtype=np.int64)
    np.add.at(mult_lb, inverse, relation.mult_lb)
    np.add.at(mult_sg, inverse, relation.mult_sg)
    np.add.at(mult_ub, inverse, relation.mult_ub)
    # Emit groups in first-occurrence order so downstream sequence-number
    # tiebreakers (the <total_O sort order) see the same row order as the
    # Python backend's insertion-ordered dict.
    order = np.argsort(first, kind="stable")
    return relation.take(first[order]).with_multiplicities(
        mult_lb[order], mult_sg[order], mult_ub[order]
    )


def _equality_codes(component: np.ndarray) -> np.ndarray:
    """Dense equality codes of one bound-component array.

    Numeric arrays without NaN use ``np.unique``; everything else is coded
    through Python equality (dict keys), which reproduces the scalar
    semantics exactly — ``1 == 1.0 == True`` share a code, while each NaN
    occurrence gets a fresh one (NaN never merges, not even with itself).
    """
    if component.dtype != object:
        if component.dtype != np.float64 or not bool(np.isnan(component).any()):
            _, inverse = np.unique(component, return_inverse=True)
            return inverse.reshape(-1).astype(np.int64, copy=False)
    codes: dict = {}
    out = np.empty(len(component), dtype=np.int64)
    next_code = 0
    for i, value in enumerate(component.tolist()):
        if value != value:  # NaN-like: unique code per occurrence
            out[i] = next_code
            next_code += 1
            continue
        code = codes.get(value)
        if code is None:
            codes[value] = code = next_code
            next_code += 1
        out[i] = code
    return out
