"""Vectorized bound-preserving ``RA⁺`` operators over columnar AU-relations.

These kernels mirror :mod:`repro.core.operators` (the AU-DB selection /
projection / join semantics of Fig. 2 lifted through the ``N³`` semiring) but
take and return :class:`~repro.columnar.relation.ColumnarAURelation`, so a
whole operator pipeline composes without materialising a row-major
:class:`~repro.core.relation.AURelation` between stages:

* :func:`select` — predicate bounding triples evaluated as boolean masks
  (:mod:`repro.columnar.expressions`), multiplicities filtered per component,
* :func:`project` / :func:`union` — bag semantics with hash-grouped duplicate
  merging (lexicographic dense codes + ``np.unique``),
* :func:`distinct` — bound-preserving duplicate elimination (blocked pairwise
  overlap masks decide which tuples may keep a certain copy),
* :func:`extend` / :func:`rename` — computed / relabelled columns,
* :func:`cross` / :func:`join` — pair enumeration via the bulk ``np.repeat``
  × ``np.tile`` grid, or — for equi-joins whose keys are certain on one side
  — a memory-safe sort/searchsorted path that materialises only the
  possible-overlap match candidates, with vectorized equality / predicate
  masks filtering the pointwise multiplicity products,
* :func:`groupby_aggregate` — grouped aggregation over lexsort group codes
  with segmented prefix-sum / min-max reductions and bound-preserving
  ``N³`` handling of uncertain group membership.

Every kernel is bit-identical to the Python backend: converting the result
with :meth:`~repro.columnar.relation.ColumnarAURelation.to_relation` yields
exactly the relation the tuple-at-a-time operator produces — same hypercubes,
annotations, and first-occurrence merge order (the differential property
suite under ``tests/property/`` pins this on randomized inputs).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.columnar.expressions import predicate_masks, range_columns
from repro.columnar.kernels import lexsort_stable
from repro.columnar.parallel import morsel_count, parallel_map, shard_ranges
from repro.columnar.relation import (
    FLOAT64_EXACT_MAX,
    AttributeColumn,
    ColumnarAURelation,
    column_array,
    concat_relations,
    profile_components,
)
from repro.core.booleans import RangeBool
from repro.core.expressions import (
    Arithmetic,
    Attribute,
    BooleanOp,
    Comparison,
    Constant,
    Expression,
)
from repro.core.ranges import RangeValue
from repro.core.schema import Schema
from repro.core.tuples import AUTuple
from repro.errors import OperatorError, SchemaError

__all__ = [
    "select",
    "project",
    "extend",
    "rename",
    "union",
    "distinct",
    "cross",
    "join",
    "groupby_aggregate",
    "merge_equal_rows",
    "candidate_key_pairs",
    "searchsorted_candidate_pairs",
    "band_join_plan",
    "band_candidate_pairs",
    "planned_join_kernel",
]


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------


def select(
    relation: ColumnarAURelation,
    predicate: Expression | Callable[[AUTuple], RangeBool],
) -> ColumnarAURelation:
    """Keep rows according to the bounding triple of ``predicate``.

    The certain multiplicity survives only where the predicate is certainly
    true, the possible multiplicity where it is possibly true, and the
    selected-guess multiplicity where it holds in the selected-guess world —
    the same per-component filtering as :meth:`Multiplicity.filter`.
    """
    certain, sg, possible = predicate_masks(relation, predicate)
    mult_lb = np.where(certain, relation.mult_lb, 0)
    mult_sg = np.where(sg, relation.mult_sg, 0)
    mult_ub = np.where(possible, relation.mult_ub, 0)
    return relation.with_multiplicities(mult_lb, mult_sg, mult_ub).mask(mult_ub > 0)


# ---------------------------------------------------------------------------
# Projection / extension / renaming
# ---------------------------------------------------------------------------


def project(relation: ColumnarAURelation, attributes: Sequence[str]) -> ColumnarAURelation:
    """Bag projection: rows with equal projected hypercubes merge (annotations add)."""
    return merge_equal_rows(relation.restrict(attributes))


def extend(
    relation: ColumnarAURelation,
    name: str,
    expression: Expression | Callable[[AUTuple], RangeValue],
) -> ColumnarAURelation:
    """Append a computed range-annotated attribute to every row."""
    relation.schema.extend(name)  # validates the name early (clear SchemaError)
    lb, sg, ub = range_columns(relation, expression)
    return relation.with_column(AttributeColumn(name, lb, sg, ub))


def rename(relation: ColumnarAURelation, mapping: Mapping[str, str]) -> ColumnarAURelation:
    """Rename attributes (values and annotations unchanged)."""
    return relation.rename(dict(mapping))


# ---------------------------------------------------------------------------
# Union / distinct
# ---------------------------------------------------------------------------


def union(left: ColumnarAURelation, right: ColumnarAURelation) -> ColumnarAURelation:
    """Bag union: rows with identical hypercubes merge, annotations add."""
    if left.schema != right.schema:
        raise SchemaError("union requires identical schemas")
    return merge_equal_rows(left.concat(right))


#: Row-block size bounding the pairwise overlap mask of :func:`distinct`.
_DISTINCT_BLOCK = 512


def distinct(relation: ColumnarAURelation) -> ColumnarAURelation:
    """Bound-preserving duplicate elimination (vectorized).

    Bit-identical to :func:`repro.core.operators.distinct`: certain copies
    survive only on tuples whose hypercube is disjoint from every other
    tuple (pairwise interval-overlap masks over the per-column rank codes,
    evaluated in row blocks so memory stays ``O(block · n)``), the
    selected-guess copy goes to the first producer of each selected-guess
    row, and only point-valued tuples cap their possible multiplicity at one.
    """
    if len(relation) and not bool(np.all(relation.mult_ub > 0)):
        # Rows that possibly never exist carry the semiring zero; the
        # row-major layout cannot hold them (AURelation.add skips it), so
        # they must neither survive nor block a neighbour's certainty.
        relation = relation.mask(relation.mult_ub > 0)
    n = len(relation)
    if n == 0:
        return relation
    if any(_components_carry_nan(column) for column in relation.columns):
        from repro.core.operators.distinct import distinct as python_distinct

        return ColumnarAURelation.from_relation(python_distinct(relation.to_relation()))

    from repro.columnar.kernels import component_rank_codes

    codes = [component_rank_codes(column) for column in relation.columns]

    overlaps_other = np.zeros(n, dtype=bool)
    for start in range(0, n, _DISTINCT_BLOCK):
        stop = min(n, start + _DISTINCT_BLOCK)
        block = np.ones((stop - start, n), dtype=bool)
        for lb_codes, _sg_codes, ub_codes in codes:
            block &= (lb_codes[start:stop, None] <= ub_codes[None, :]) & (
                lb_codes[None, :] <= ub_codes[start:stop, None]
            )
        block[np.arange(stop - start), np.arange(start, stop)] = False
        overlaps_other[start:stop] = block.any(axis=1)

    point_row = _point_rows(codes, n)

    # First producer of each selected-guess row among tuples with sg >= 1.
    owner = np.zeros(n, dtype=bool)
    candidates = np.flatnonzero(relation.mult_sg >= 1)
    if len(candidates):
        classes, _representatives = _sg_class_groups(codes, n)
        _, first_candidate = np.unique(classes[candidates], return_index=True)
        owner[candidates[first_candidate]] = True

    lb = ((relation.mult_lb >= 1) & ~overlaps_other).astype(np.int64)
    ub = np.where(point_row, np.minimum(relation.mult_ub, 1), relation.mult_ub)
    sg = np.maximum(lb, np.minimum(owner.astype(np.int64), ub))
    return relation.with_multiplicities(lb, sg, ub)


def _point_rows(codes: list[tuple[np.ndarray, np.ndarray, np.ndarray]], n: int) -> np.ndarray:
    """Rows whose hypercube is a single point on every coded column."""
    point_row = np.ones(n, dtype=bool)
    for lb_codes, sg_codes, ub_codes in codes:
        point_row &= (lb_codes == sg_codes) & (sg_codes == ub_codes)
    return point_row


def _sg_class_groups(
    codes: list[tuple[np.ndarray, np.ndarray, np.ndarray]], n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Group rows by their selected-guess key vector, first-occurrence ordered.

    Returns ``(group_of_row, group_rows)``: the group id of every row (ids
    numbered in order of each group's first appearance) and the first
    (representative) row index per group.  Shared by :func:`distinct` (SG
    world deduplication) and :func:`groupby_aggregate` (group identification)
    so the sg-equality semantics cannot drift between them.
    """
    if not codes:
        return np.zeros(n, dtype=np.int64), np.zeros(min(n, 1), dtype=np.int64)
    sg_matrix = np.column_stack([sg_codes for _lb, sg_codes, _ub in codes])
    _, first, inverse = np.unique(sg_matrix, axis=0, return_index=True, return_inverse=True)
    inverse = inverse.reshape(-1)
    order = np.argsort(first, kind="stable")
    remap = np.empty(len(order), dtype=np.int64)
    remap[order] = np.arange(len(order), dtype=np.int64)
    return remap[inverse], first[order]


# ---------------------------------------------------------------------------
# Cross product / join
# ---------------------------------------------------------------------------


def cross(left: ColumnarAURelation, right: ColumnarAURelation) -> ColumnarAURelation:
    """Cross product; clashing attribute names on the right get ``_r`` suffixes.

    Pairs expand in bulk — left rows ``np.repeat``-ed, right rows
    ``np.tile``-d — in the same left-outer / right-inner order as the Python
    backend, with multiplicities multiplying pointwise.
    """
    schema = left.schema.concat(right.schema, disambiguate=True)
    n_left, n_right = len(left), len(right)
    if n_left == 0 or n_right == 0:
        # n=0 short-circuit: the product is empty — gather zero rows (dtypes
        # preserved) instead of paying the repeat/tile pass over the
        # non-empty side's arrays.
        empty = np.empty(0, dtype=np.int64)
        expanded_left = left.take(empty)
        expanded_right = right.take(empty)
    else:
        expanded_left = left.repeat(n_right)
        expanded_right = right.tile(n_left)
    columns = list(expanded_left.columns)
    for name, column in zip(schema.attributes[len(columns) :], expanded_right.columns):
        columns.append(AttributeColumn(name, column.lb, column.sg, column.ub))
    return ColumnarAURelation(
        schema,
        columns,
        expanded_left.mult_lb * expanded_right.mult_lb,
        expanded_left.mult_sg * expanded_right.mult_sg,
        expanded_left.mult_ub * expanded_right.mult_ub,
    )


def _pair_values(
    left: ColumnarAURelation,
    right: ColumnarAURelation,
    left_rows: np.ndarray,
    right_rows: np.ndarray,
) -> list[tuple[RangeValue, ...]] | None:
    """Row-major value cache of selected pair rows (when both sides carry one).

    Concatenating the cached value tuples keeps the cache flowing through
    join stages, so the eventual boundary conversion only rebuilds range
    values for columns computed *after* the join.  Callers pass only the
    *surviving* pairs — building the cache for a full pair grid would cost
    ``O(|L|·|R|)`` Python work before the equality masks prune it.
    """
    if left._values is None or right._values is None:
        return None
    left_values, right_values = left._values, right._values
    return [
        left_values[i] + right_values[j]
        for i, j in zip(left_rows.tolist(), right_rows.tolist())
    ]


def join(
    left: ColumnarAURelation,
    right: ColumnarAURelation,
    predicate: Expression | Callable[[AUTuple], RangeBool] | None = None,
    *,
    on: Sequence[str] | None = None,
    method: str = "auto",
    workers: int = 1,
) -> ColumnarAURelation:
    """Theta or equi-join over columnar AU-relations.

    With ``on``, pairs join when their ranges on the named attributes
    *possibly* intersect (the vectorized equality triple filters the
    certain / selected-guess / possible multiplicities); a ``predicate`` is
    evaluated over the disambiguated product relation.  Same semantics as
    :func:`repro.core.operators.join`.

    ``method`` selects the pair-enumeration kernel:

    * ``"grid"`` — expand the full ``|L| × |R|`` pair grid (``np.repeat`` ×
      ``np.tile``) and filter it with vectorized masks.  Exact for every
      input, but ``O(|L| · |R|)`` memory.
    * ``"searchsorted"`` — sort/searchsorted equi-join: when *any* ``on``
      key is *certain* (``lb == sg == ub``) on one side, the
      possible-overlap matches of every row on the other side form a
      contiguous run in the sorted key order, found by two endpoint binary
      searches (:func:`repro.columnar.kernels.interval_point_match_pairs`);
      the remaining keys refine the candidate set pairwise.  Raises
      :class:`~repro.errors.OperatorError` when the keys do not qualify.
    * ``"sweep"`` — range×range interval-overlap sweep: when *both* sides
      carry uncertain keys, the possibly-equal pairs are exactly the pairs
      whose first-key ``[lb, ub]`` intervals intersect, enumerated by the
      width-bucketed endpoint index
      (:func:`repro.columnar.kernels.interval_overlap_pairs`).
    * ``"band"`` — shifted-endpoint sweep over a band / theta *predicate*
      (no ``on`` keys): an AND-tree containing ``l.x OP r.y ± c``
      comparisons implies an interval-overlap window between ``l.x`` and the
      constant-shifted ``r.y``, so candidates enumerate through the same
      sweep index over the shifted endpoints (see :func:`band_join_plan`).
    * ``"auto"`` (default) — the cheapest applicable kernel in the order
      ``searchsorted`` → ``sweep`` → ``band``, falling back to ``grid``
      (object-dtype / NaN / lossy-promotion keys, or predicates without an
      extractable band).

    Every kernel is bit-identical to the grid — same pairs, same row order,
    same annotations: candidate enumeration may only *over*-approximate the
    possibly-joining pairs, and the pair assembler re-checks every candidate
    with the exact equality / predicate masks (zero-multiplicity pairs are
    dropped, exactly as the grid masks them out).  The differential suite
    cross-checks all kernels against the grid and the Python backend.
    """
    if on is None and predicate is None:
        raise OperatorError("join requires either a predicate or an `on` attribute list")
    if method not in ("auto", "grid", "searchsorted", "sweep", "band"):
        raise OperatorError(
            f"unknown join method {method!r}; expected 'auto', 'grid', "
            "'searchsorted', 'sweep' or 'band'"
        )
    if method in ("searchsorted", "sweep") and not on:
        raise OperatorError(f"the {method} equi-join requires an `on` attribute list")
    if method == "band" and predicate is None:
        raise OperatorError("the band join requires a predicate")
    if method == "band" and on:
        raise OperatorError(
            "the band join enumerates candidates from the predicate; drop the "
            "`on` keys or use method='auto'"
        )
    left.schema.require(list(on or ()))
    right.schema.require(list(on or ()))

    if len(left) == 0 or len(right) == 0:
        # n=0 short-circuit: no pairs can exist — run the pair assembler on
        # an empty candidate list (same schema, masks, and predicate errors
        # as the grid, without its repeat/tile scratch over the non-empty
        # side).
        empty = np.empty(0, dtype=np.int64)
        return _join_pairs(left, right, predicate, list(on or ()), empty, empty)

    if method != "grid" and on:
        kernels = ("searchsorted", "sweep") if method == "auto" else (method,)
        candidates = candidate_key_pairs(
            [left.column(name) for name in on],
            [right.column(name) for name in on],
            kernels=kernels,
        )
        if candidates is not None:
            left_rows, right_rows, _kernel = candidates
            return _join_pairs(
                left, right, predicate, list(on), left_rows, right_rows, workers=workers
            )
        if method == "searchsorted":
            raise OperatorError(
                "searchsorted equi-join requires a certain (lb == sg == ub) "
                "key column on one side and NaN-free, exactly promotable numeric "
                "key columns; use method='grid' (or 'auto') for these inputs"
            )
        if method == "sweep":
            raise OperatorError(
                "the sweep equi-join requires NaN-free, exactly promotable "
                "numeric key columns; use method='grid' (or 'auto') for these inputs"
            )
    if method in ("auto", "band") and not on and predicate is not None:
        band = _band_join_pairs(left, right, predicate)
        if band is not None:
            return _join_pairs(left, right, predicate, [], *band, workers=workers)
        if method == "band":
            raise OperatorError(
                "the band join requires an AND-tree predicate comparing a left "
                "attribute against a (constant-shifted) right attribute over "
                "NaN-free, exactly promotable numeric columns; use "
                "method='grid' (or 'auto') for these inputs"
            )

    if workers > 1 and len(left) > 1 and len(right):
        # Grid path, sharded: split the left (outer) rows into contiguous
        # blocks and run the serial grid kernel per block.  The pair grid
        # enumerates left-outer / right-inner, so concatenating block results
        # in block order reproduces the unsharded row order exactly.
        shards = shard_ranges(len(left), morsel_count(workers))
        if len(shards) > 1:

            def grid_shard(block: tuple[int, int]) -> ColumnarAURelation:
                start, stop = block
                return join(
                    left.take(np.arange(start, stop, dtype=np.int64)),
                    right,
                    predicate,
                    on=on,
                    method="grid",
                )

            return concat_relations(parallel_map(grid_shard, shards, workers=workers))

    product = cross(left, right)
    n = len(product)
    certain = np.ones(n, dtype=bool)
    sg = np.ones(n, dtype=bool)
    possible = np.ones(n, dtype=bool)
    if on is not None:
        for name in on:
            # The product already holds the repeated / tiled key columns —
            # read the pair grid off it instead of expanding it again.
            left_expanded = product.columns[left.schema.index_of(name)]
            right_expanded = product.columns[len(left.schema) + right.schema.index_of(name)]
            eq_cert, eq_sg, eq_poss = _pairwise_equality(
                left_expanded, right_expanded, left.column(name), right.column(name)
            )
            certain &= eq_cert
            sg &= eq_sg
            possible &= eq_poss
    if predicate is not None:
        p_cert, p_sg, p_poss = predicate_masks(product, predicate)
        certain &= p_cert
        sg &= p_sg
        possible &= p_poss

    mult_lb = np.where(certain, product.mult_lb, 0)
    mult_sg = np.where(sg, product.mult_sg, 0)
    mult_ub = np.where(possible, product.mult_ub, 0)
    keep = np.flatnonzero(mult_ub > 0)
    result = product.with_multiplicities(mult_lb, mult_sg, mult_ub).take(keep)
    if len(right):
        # Attach the row-value cache for the *surviving* pairs only (the
        # product enumerates left-outer / right-inner, so pair t is
        # (t // |R|, t % |R|)).
        result._values = _pair_values(left, right, keep // len(right), keep % len(right))
    return result


def _column_certain(column: AttributeColumn) -> bool:
    """Whether every row of a (numeric) key column is a point value."""
    if len(column.lb) == 0:
        return True
    return bool(np.all((column.lb == column.sg) & (column.sg == column.ub)))


def candidate_key_pairs(
    left_columns: Sequence[AttributeColumn],
    right_columns: Sequence[AttributeColumn],
    *,
    kernels: Sequence[str] = ("searchsorted", "sweep"),
) -> tuple[np.ndarray, np.ndarray, str] | None:
    """Match-candidate ``(left_rows, right_rows, kernel)`` for an equi-join.

    Enumerates the pairs whose key ranges possibly intersect on every ``on``
    column, through the cheapest kernel in ``kernels`` that applies:

    * ``"searchsorted"`` — *any* key pair with a certain (``lb == sg == ub``)
      side anchors the enumeration: its point values are the sorted search
      space, the other side's ``[lb, ub]`` endpoints the queries
      (:func:`~repro.columnar.kernels.interval_point_match_pairs`).
    * ``"sweep"`` — both sides uncertain: the *first* key's interval-overlap
      pairs via the width-bucketed endpoint index
      (:func:`~repro.columnar.kernels.interval_overlap_pairs`).

    The remaining key columns refine the candidate set pairwise (interval
    overlap per pair — pure pruning, since non-overlapping pairs carry a zero
    possible multiplicity through the exact masks anyway).  Returns ``None``
    when no requested kernel applies: every key column pair must be exactly
    vectorizable (no object dtypes, NaN, or lossy int/float promotion), and
    ``"searchsorted"`` additionally needs a certain side on some key.

    Takes bare key columns (not relations) so the factorised layer
    (:mod:`repro.columnar.factorised`) can enumerate candidates over gathered
    pair columns through the identical kernels.  Pairs return in the pair
    grid's left-outer / right-inner enumeration order, so the assembled rows
    line up with the grid kernel (and the Python backend).
    """
    from repro.columnar.kernels import interval_overlap_pairs, interval_point_match_pairs

    if len(left_columns[0].lb) == 0 or len(right_columns[0].lb) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, kernels[0]
    for left_column, right_column in zip(left_columns, right_columns):
        if not _equality_vectorizable(left_column, right_column):
            return None
    anchor = None
    kernel = None
    if "searchsorted" in kernels:
        for index, (left_key, right_key) in enumerate(zip(left_columns, right_columns)):
            if _column_certain(right_key):
                left_rows, right_rows = interval_point_match_pairs(
                    left_key.lb, left_key.ub, right_key.sg
                )
            elif _column_certain(left_key):
                right_rows, left_rows = interval_point_match_pairs(
                    right_key.lb, right_key.ub, left_key.sg
                )
            else:
                continue
            anchor, kernel = index, "searchsorted"
            break
    if anchor is None and "sweep" in kernels:
        left_key, right_key = left_columns[0], right_columns[0]
        left_rows, right_rows = interval_overlap_pairs(
            left_key.lb, left_key.ub, right_key.lb, right_key.ub
        )
        anchor, kernel = 0, "sweep"
    if anchor is None:
        return None
    if len(left_rows) and len(left_columns) > 1:
        keep = np.ones(len(left_rows), dtype=bool)
        for index, (left_key, right_key) in enumerate(zip(left_columns, right_columns)):
            if index == anchor:
                continue
            keep &= (left_key.lb[left_rows] <= right_key.ub[right_rows]) & (
                right_key.lb[right_rows] <= left_key.ub[left_rows]
            )
        left_rows, right_rows = left_rows[keep], right_rows[keep]
    # Restore the pair grid's left-outer / right-inner enumeration order so
    # the result rows line up with the grid kernel (and the Python backend).
    order = lexsort_stable((right_rows, left_rows))
    return left_rows[order], right_rows[order], kernel


def searchsorted_candidate_pairs(
    left_columns: Sequence[AttributeColumn],
    right_columns: Sequence[AttributeColumn],
) -> tuple[np.ndarray, np.ndarray] | None:
    """Certain-side candidate pairs only (:func:`candidate_key_pairs` subset)."""
    result = candidate_key_pairs(left_columns, right_columns, kernels=("searchsorted",))
    if result is None:
        return None
    return result[0], result[1]


# ---------------------------------------------------------------------------
# Band / theta predicate candidates (shifted-endpoint sweep)
# ---------------------------------------------------------------------------


def band_join_plan(
    predicate: object, left_schema: Schema, right_schema: Schema
) -> tuple[str, str, int | float | None, int | float | None] | None:
    """Extract a band window ``(left_attr, right_attr, low, high)`` from a predicate.

    Walks the top-level AND-tree of an :class:`Expression` for comparisons of
    the shape ``l.x ± c₁  OP  r.y ± c₂`` (``OP`` ∈ ``<``, ``<=``, ``>``,
    ``>=``, ``==``; either side may be the bare attribute) referencing one
    attribute of each join side, and normalises them into per-attribute-pair
    shift windows: the conjunction *possibly* holds on a pair only if
    ``[l.lb, l.ub]`` overlaps ``[r.lb + low, r.ub + high]``.  Strict
    comparisons relax to non-strict — candidate enumeration may only
    over-approximate; the exact predicate masks re-check every pair.

    Per pair, ``<``/``<=`` conjuncts tighten ``high`` (minimum shift wins),
    ``>``/``>=`` tighten ``low`` (maximum), ``==`` tightens both.  A missing
    bound stays ``None`` (one-sided bands still prune: ``l < r`` candidates
    are exactly the possibly-true pairs).  Attribute names resolve against
    the disambiguated product schema — the namespace join predicates are
    written in.  Returns the first two-sided window, else the first
    one-sided one, else ``None`` (no extractable band — conjuncts that are
    not band-shaped are simply ignored, which is sound for a conjunction).
    """
    if not isinstance(predicate, Expression):
        return None
    attributes = left_schema.concat(right_schema, disambiguate=True).attributes
    n_left = len(left_schema.attributes)
    side_of = {}
    for position, name in enumerate(attributes):
        if position < n_left:
            side_of[name] = ("left", left_schema.attributes[position])
        else:
            side_of[name] = ("right", right_schema.attributes[position - n_left])
    conjuncts = []
    stack = [predicate]
    while stack:
        node = stack.pop()
        if type(node) is BooleanOp and node.op == "and":
            stack.append(node.left)
            stack.append(node.right)
        else:
            conjuncts.append(node)
    windows: dict[tuple[str, str], list] = {}
    for node in conjuncts:
        if type(node) is not Comparison or node.op not in ("<", "<=", ">", ">=", "=="):
            continue
        lhs = _shifted_attribute(node.left, side_of)
        rhs = _shifted_attribute(node.right, side_of)
        if lhs is None or rhs is None or lhs[0] == rhs[0]:
            continue
        op = node.op
        if lhs[0] == "right":
            lhs, rhs = rhs, lhs
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}[op]
        # l.x + c₁ OP r.y + c₂  ==>  l.x OP r.y + (c₂ - c₁)
        _, left_name, left_shift = lhs
        _, right_name, right_shift = rhs
        shift = right_shift - left_shift
        window = windows.setdefault((left_name, right_name), [None, None])
        if op in (">", ">=", "=="):
            window[0] = shift if window[0] is None else max(window[0], shift)
        if op in ("<", "<=", "=="):
            window[1] = shift if window[1] is None else min(window[1], shift)
    chosen = None
    for names, (low, high) in windows.items():
        if low is not None and high is not None:
            chosen = (names, low, high)
            break
    if chosen is None:
        for names, (low, high) in windows.items():
            chosen = (names, low, high)
            break
    if chosen is None:
        return None
    (left_name, right_name), low, high = chosen
    return left_name, right_name, low, high


def _shifted_attribute(node: Expression, side_of: dict) -> tuple[str, str, int | float] | None:
    """Resolve ``attr``, ``attr ± const``, or ``const + attr`` to ``(side, name, shift)``."""
    shift: int | float = 0
    if type(node) is Arithmetic and node.op in ("+", "-"):
        left, right = node.left, node.right
        if type(right) is Constant and type(left) is Attribute:
            value = right.value
            if type(value) not in (int, float):  # bools are not shifts
                return None
            shift = value if node.op == "+" else -value
            node = left
        elif node.op == "+" and type(left) is Constant and type(right) is Attribute:
            value = left.value
            if type(value) not in (int, float):
                return None
            shift = value
            node = right
        else:
            return None
    if type(node) is not Attribute:
        return None
    resolved = side_of.get(node.name)
    if resolved is None:
        return None
    side, name = resolved
    return side, name, shift


def band_candidate_pairs(
    left_column: AttributeColumn,
    right_column: AttributeColumn,
    low: int | float | None,
    high: int | float | None,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Candidate pairs of a band window: ``[l.lb, l.ub]`` meets ``[r.lb+low, r.ub+high]``.

    The shifted-endpoint mirror of the range×range sweep — the right
    endpoints shift by the band constants before the interval-overlap
    enumeration (float shifts widen one ULP outward, so rounding can only
    *add* candidates; integer shifts are exact under the overflow gate).  A
    ``None`` bound substitutes the matching extreme of the left endpoints,
    making that side of the condition vacuous.  Returns ``None`` when the
    columns or shifts are not exactly vectorizable; pairs return in
    left-outer / right-inner order.
    """
    from repro.columnar.kernels import interval_overlap_pairs

    if len(left_column.lb) == 0 or len(right_column.lb) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if not _band_vectorizable(left_column, right_column, low, high):
        return None
    if low is None:
        r_lo = np.full(len(right_column.lb), left_column.ub.min())
    else:
        r_lo = _shifted_endpoint(right_column.lb, low, -1)
    if high is None:
        r_hi = np.full(len(right_column.lb), left_column.lb.max())
    else:
        r_hi = _shifted_endpoint(right_column.ub, high, 1)
    left_rows, right_rows = interval_overlap_pairs(
        left_column.lb, left_column.ub, r_lo, r_hi
    )
    order = lexsort_stable((right_rows, left_rows))
    return left_rows[order], right_rows[order]


def _band_join_pairs(
    left: ColumnarAURelation,
    right: ColumnarAURelation,
    predicate: Expression | Callable[[AUTuple], RangeBool],
) -> tuple[np.ndarray, np.ndarray] | None:
    """Band candidates of a predicate join, or ``None`` when no band applies."""
    plan = band_join_plan(predicate, left.schema, right.schema)
    if plan is None:
        return None
    left_name, right_name, low, high = plan
    return band_candidate_pairs(
        left.column(left_name), right.column(right_name), low, high
    )


def _shifted_endpoint(values: np.ndarray, shift: int | float, direction: int) -> np.ndarray:
    """``values + shift``, over-approximated one ULP in ``direction`` for floats.

    Integer arrays with integer shifts stay exact ``int64`` (the
    vectorizability gate excludes overflow); any float involvement computes
    in ``float64`` and widens the result outward so rounding can only add
    candidates, never drop a possibly-matching pair.
    """
    if type(shift) is int and values.dtype == np.int64:
        return values + np.int64(shift)
    out = values.astype(np.float64) + float(shift)
    return np.nextafter(out, -np.inf if direction < 0 else np.inf)


def _band_vectorizable(
    left: AttributeColumn,
    right: AttributeColumn,
    low: int | float | None,
    high: int | float | None,
) -> bool:
    """Whether the shifted-endpoint sweep is a sound over-approximation here.

    Mirrors :func:`_equality_vectorizable` on the columns, then guards the
    shift arithmetic: pure-integer bands must not overflow ``int64``; any
    float involvement must keep every integer magnitude (values and shifts)
    inside float64's exact range.
    """
    profile = profile_components(
        [getattr(column, name) for column in (left, right) for name in ("lb", "sg", "ub")]
    )
    if profile.has_object or profile.has_nan:
        return False
    shifts = [s for s in (low, high) if s is not None]
    if any(type(s) not in (int, float) for s in shifts):
        return False
    if any(s != s for s in shifts):  # NaN shift: the scalar path owns it
        return False
    int_shift_magnitude = max((abs(s) for s in shifts if type(s) is int), default=0)
    if profile.has_float or any(type(s) is float for s in shifts):
        return (
            profile.int_magnitude < FLOAT64_EXACT_MAX
            and int_shift_magnitude < FLOAT64_EXACT_MAX
        )
    return profile.int_magnitude + int_shift_magnitude < 2**62


def planned_join_kernel(
    left: ColumnarAURelation,
    right: ColumnarAURelation,
    predicate: Expression | Callable[[AUTuple], RangeBool] | None = None,
    *,
    on: Sequence[str] | None = None,
) -> str:
    """The pair-enumeration kernel ``method="auto"`` would select (no pairs built).

    Returns ``"searchsorted"``, ``"sweep"``, ``"band"``, or ``"grid"`` —
    the benchmark runners record it per contender, and the property suite
    asserts non-grid selection on qualifying inputs.  Costs one dtype
    profile + certainty scan per key column; empty inputs report the kernel
    the non-empty shape would pick (the join itself short-circuits them).
    """
    keys = list(on or ())
    left.schema.require(keys)
    right.schema.require(keys)
    empty = len(left) == 0 or len(right) == 0
    if keys:
        if empty:  # the candidate builders early-return before the dtype gates
            return "searchsorted"
        left_columns = [left.column(name) for name in keys]
        right_columns = [right.column(name) for name in keys]
        if all(
            _equality_vectorizable(lc, rc)
            for lc, rc in zip(left_columns, right_columns)
        ):
            for lc, rc in zip(left_columns, right_columns):
                if _column_certain(lc) or _column_certain(rc):
                    return "searchsorted"
            return "sweep"
        return "grid"
    if predicate is not None:
        plan = band_join_plan(predicate, left.schema, right.schema)
        if plan is not None:
            left_name, right_name, low, high = plan
            if empty or _band_vectorizable(
                left.column(left_name), right.column(right_name), low, high
            ):
                return "band"
    return "grid"


def _join_pairs(
    left: ColumnarAURelation,
    right: ColumnarAURelation,
    predicate: Expression | Callable[[AUTuple], RangeBool] | None,
    on: list[str],
    left_rows: np.ndarray,
    right_rows: np.ndarray,
    *,
    workers: int = 1,
) -> ColumnarAURelation:
    """Assemble the join result from explicit match-candidate pairs.

    Bit-identical to the grid kernel restricted to these pairs: candidate
    enumeration only skips pairs whose first-key ranges cannot overlap, and
    those carry a zero possible multiplicity on the grid path too (they are
    masked out of its result).

    With ``workers > 1`` the candidate-pair list is cut into contiguous
    blocks (the pairs arrive in left-outer / right-inner order, so blocks
    are key ranges of the outer side) that assemble concurrently; the block
    results concatenate back in order, bit-identical to the serial pass.
    """
    if workers > 1 and len(left_rows) > 1:
        blocks = shard_ranges(len(left_rows), morsel_count(workers))
        if len(blocks) > 1:

            def pair_block(block: tuple[int, int]) -> ColumnarAURelation:
                start, stop = block
                return _join_pairs(
                    left,
                    right,
                    predicate,
                    on,
                    left_rows[start:stop],
                    right_rows[start:stop],
                )

            return concat_relations(parallel_map(pair_block, blocks, workers=workers))

    schema = left.schema.concat(right.schema, disambiguate=True)
    columns = [
        AttributeColumn(name, column.lb[left_rows], column.sg[left_rows], column.ub[left_rows])
        for name, column in zip(schema.attributes, left.columns)
    ]
    for name, column in zip(schema.attributes[len(columns) :], right.columns):
        columns.append(
            AttributeColumn(name, column.lb[right_rows], column.sg[right_rows], column.ub[right_rows])
        )
    product = ColumnarAURelation(
        schema,
        columns,
        left.mult_lb[left_rows] * right.mult_lb[right_rows],
        left.mult_sg[left_rows] * right.mult_sg[right_rows],
        left.mult_ub[left_rows] * right.mult_ub[right_rows],
    )

    n = len(product)
    certain = np.ones(n, dtype=bool)
    sg = np.ones(n, dtype=bool)
    possible = np.ones(n, dtype=bool)
    for name in on:
        left_col = left.column(name)
        right_col = right.column(name)
        eq_cert, eq_sg, eq_poss = _equality_triple_arrays(
            left_col.lb[left_rows],
            left_col.sg[left_rows],
            left_col.ub[left_rows],
            right_col.lb[right_rows],
            right_col.sg[right_rows],
            right_col.ub[right_rows],
        )
        certain &= eq_cert
        sg &= eq_sg
        possible &= eq_poss
    if predicate is not None:
        p_cert, p_sg, p_poss = predicate_masks(product, predicate)
        certain &= p_cert
        sg &= p_sg
        possible &= p_poss

    mult_lb = np.where(certain, product.mult_lb, 0)
    mult_sg = np.where(sg, product.mult_sg, 0)
    mult_ub = np.where(possible, product.mult_ub, 0)
    keep = np.flatnonzero(mult_ub > 0)
    result = product.with_multiplicities(mult_lb, mult_sg, mult_ub).take(keep)
    # Attach the row-value cache for the *surviving* pairs only (matching
    # the grid path: candidates the masks pruned never pay the scalar pass).
    result._values = _pair_values(left, right, left_rows[keep], right_rows[keep])
    return result


def _pairwise_equality(
    left_expanded: AttributeColumn,
    right_expanded: AttributeColumn,
    left: AttributeColumn,
    right: AttributeColumn,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized ``RangeValue.eq`` triple over the expanded pair grid.

    ``*_expanded`` are the already repeated / tiled product columns (one
    entry per pair); ``left`` / ``right`` are the original key columns, used
    for the cheap exactness scan and the scalar fallback.
    """
    if _equality_vectorizable(left, right):
        return _equality_triple_arrays(
            left_expanded.lb,
            left_expanded.sg,
            left_expanded.ub,
            right_expanded.lb,
            right_expanded.sg,
            right_expanded.ub,
        )
    # Object-dtype columns (strings, None, mixed types), NaN carriers, and
    # int/float mixes beyond float64's exact integer range: the scalar
    # comparisons own those semantics — delegate per pair.
    n_left, n_right = len(left.lb), len(right.lb)
    certain = np.empty(n_left * n_right, dtype=bool)
    sg = np.empty(n_left * n_right, dtype=bool)
    possible = np.empty(n_left * n_right, dtype=bool)
    left_values = [left.value(i) for i in range(n_left)]
    right_values = [right.value(j) for j in range(n_right)]
    pair = 0
    for lvalue in left_values:
        for rvalue in right_values:
            condition = lvalue.eq(rvalue)
            certain[pair] = condition.lb
            sg[pair] = condition.sg
            possible[pair] = condition.ub
            pair += 1
    return certain, sg, possible


def _equality_triple_arrays(
    l_lb: np.ndarray,
    l_sg: np.ndarray,
    l_ub: np.ndarray,
    r_lb: np.ndarray,
    r_sg: np.ndarray,
    r_ub: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``RangeValue.eq`` bounding triple over aligned component arrays.

    The single definition both join kernels (pair grid and searchsorted)
    filter through — keeping them bit-identical by construction.  Callers
    gate on :func:`_equality_vectorizable` first.
    """
    certain_left = (l_lb == l_sg) & (l_sg == l_ub)
    certain_right = (r_lb == r_sg) & (r_sg == r_ub)
    certainly = certain_left & certain_right & (l_lb == r_lb)
    overlaps = (l_lb <= r_ub) & (r_lb <= l_ub)
    return certainly, l_sg == r_sg, overlaps


def _equality_vectorizable(left: AttributeColumn, right: AttributeColumn) -> bool:
    """Whether the vectorized equality triple is exact for these columns.

    Rejects ``object`` components, NaN-carrying floats (NumPy comparison NaN
    propagation differs from the scalar ``_le`` order), and int/float mixes
    whose integers would round when promoted to ``float64``.
    """
    profile = profile_components(
        [getattr(column, name) for column in (left, right) for name in ("lb", "sg", "ub")]
    )
    return not (
        profile.has_object
        or profile.has_nan
        or (profile.has_float and profile.int_magnitude >= FLOAT64_EXACT_MAX)
    )


# ---------------------------------------------------------------------------
# Grouped aggregation (Fig. 2's aggregate operator, [24] semantics)
# ---------------------------------------------------------------------------


def groupby_aggregate(
    relation: ColumnarAURelation,
    group_by: Sequence[str],
    aggregates: Sequence[tuple[str, str | None, str]],
    *,
    workers: int = 1,
) -> ColumnarAURelation:
    """Vectorized group-by aggregation with range-bounded results.

    Bit-identical to :func:`repro.core.operators.groupby_aggregate`:

    * output groups are the distinct *selected-guess* key vectors, coded via
      per-column dense rank codes + ``np.unique`` (first-occurrence order);
    * membership splits into certain / possible contributors — point-valued
      key rows belong exactly to their own group, while rows with uncertain
      keys are tested against every group key by vectorized interval
      containment (the bound-preserving ``N³`` handling of groups whose
      membership is uncertain);
    * aggregate bounds are folded with segmented reductions (``np.add.at`` /
      ``np.minimum.at`` / ``np.maximum.at`` over the per-group contributor
      pairs, in first-occurrence order so float accumulation matches the
      scalar semantics); value columns the vectorized reductions cannot
      reproduce exactly (object dtypes, NaN floats, magnitudes that would
      overflow ``int64`` or round in ``float64``) fold through the *same*
      scalar helper as the Python backend
      (:func:`repro.core.operators.aggregate.value_aggregate_bounds`).
    """
    from repro.core.operators.aggregate import validate_aggregate_spec

    validate_aggregate_spec(relation.schema, group_by, aggregates)
    if len(relation) and not bool(np.all(relation.mult_ub > 0)):
        # Rows that possibly never exist carry the semiring zero; the
        # row-major layout cannot hold them either (AURelation.add skips it).
        relation = relation.mask(relation.mult_ub > 0)

    if workers > 1 and group_by and len(relation) > 1:
        sharded = _sharded_groupby(relation, list(group_by), list(aggregates), workers)
        if sharded is not None:
            return sharded

    group_columns = [relation.column(name) for name in group_by]
    if any(_components_carry_nan(column) for column in group_columns):
        # NaN group keys: the scalar backend's dict/identity semantics are
        # not expressible through order codes — delegate wholesale.
        return _scalar_groupby(relation, group_by, aggregates)

    from repro.columnar.kernels import component_rank_codes

    n = len(relation)
    out_schema = Schema(tuple(group_by) + tuple(name for _f, _a, name in aggregates))
    codes = [component_rank_codes(column) for column in group_columns]

    # -- group identification (selected-guess key vectors) -------------------
    if group_by:
        group_of_row, group_rows = _sg_class_groups(codes, n)
        groups = len(group_rows)
    else:
        groups = 1  # global aggregation: one group, even over empty input
        group_of_row = np.zeros(n, dtype=np.int64)
        group_rows = np.zeros(0, dtype=np.int64)

    # -- membership pairs (group, row), certain-contributor flags ------------
    point_row = _point_rows(codes, n)
    certain_rows = np.flatnonzero(point_row)
    uncertain_rows = np.flatnonzero(~point_row)
    pair_group_parts = [group_of_row[certain_rows]]
    pair_row_parts = [certain_rows]
    if len(uncertain_rows) and groups:
        contained = np.ones((len(uncertain_rows), groups), dtype=bool)
        for lb_codes, sg_codes, ub_codes in codes:
            key_codes = sg_codes[group_rows]
            contained &= (lb_codes[uncertain_rows, None] <= key_codes[None, :]) & (
                key_codes[None, :] <= ub_codes[uncertain_rows, None]
            )
        row_idx, group_idx = np.nonzero(contained)
        pair_group_parts.append(group_idx)
        pair_row_parts.append(uncertain_rows[row_idx])
    pair_group = np.concatenate(pair_group_parts)
    pair_row = np.concatenate(pair_row_parts)
    pair_order = lexsort_stable((pair_row, pair_group))
    pair_group = pair_group[pair_order]
    pair_row = pair_row[pair_order]
    pair_certain = point_row[pair_row] & (relation.mult_lb[pair_row] > 0)
    has_possible = np.bincount(pair_group, minlength=groups) > 0

    # -- output group-key columns (hull of possible contributors) ------------
    out_columns: list[AttributeColumn] = []
    for column, (lb_codes, _sg_codes, ub_codes) in zip(group_columns, codes):
        out_columns.append(
            _group_hull_column(
                column, lb_codes, ub_codes, group_rows, pair_group, pair_row, has_possible, groups, n
            )
        )

    # -- aggregate columns ----------------------------------------------------
    for func, attribute, name in aggregates:
        if func == "count":
            out_columns.append(
                _count_column(name, relation, pair_group, pair_row, pair_certain, group_of_row, groups)
            )
            continue
        assert attribute is not None
        column = relation.column(attribute)
        if _aggregate_vectorizable(func, column, relation):
            if func == "sum":
                out_columns.append(
                    _sum_column(
                        name, relation, column, pair_group, pair_row, pair_certain, group_of_row, groups
                    )
                )
            else:
                out_columns.append(
                    _extremum_column(
                        name,
                        func,
                        relation,
                        column,
                        pair_group,
                        pair_row,
                        pair_certain,
                        group_of_row,
                        has_possible,
                        groups,
                    )
                )
        else:
            out_columns.append(
                _scalar_aggregate_column(
                    name, func, relation, column, pair_group, pair_row, pair_certain, group_of_row, groups
                )
            )

    # -- group multiplicities (lb = any certain member, ub = 1) ---------------
    mult_lb = (np.bincount(pair_group[pair_certain], minlength=groups) > 0).astype(np.int64)
    sg_any = np.bincount(group_of_row[relation.mult_sg > 0], minlength=groups) > 0
    mult_sg = np.maximum(mult_lb, sg_any.astype(np.int64))
    mult_ub = np.ones(groups, dtype=np.int64)
    return ColumnarAURelation(out_schema, out_columns, mult_lb, mult_sg, mult_ub)


def _sharded_groupby(
    relation: ColumnarAURelation,
    group_by: list[str],
    aggregates: list[tuple[str, str | None, str]],
    workers: int,
) -> ColumnarAURelation | None:
    """Group-sharded aggregation, or ``None`` when sharding cannot apply.

    When every group-by key is *certain* (``lb == ub`` on all rows), each row
    belongs to exactly one group — group membership, hulls, aggregates, and
    multiplicities all depend only on that group's own rows, so contiguous
    blocks of the first-occurrence group order aggregate independently and
    concatenate back bit-identically.  Uncertain keys (including NaN, which
    fails the certainty check) return ``None``: interval containment couples
    every row to every group, so the unsharded kernel handles them.
    """
    from repro.columnar.window import _certain_partition_groups

    groups = _certain_partition_groups(relation, tuple(group_by))
    if groups is None or len(groups) <= 1:
        return None
    shards = shard_ranges(len(groups), morsel_count(workers))
    if len(shards) <= 1:
        return None

    def group_shard(block: tuple[int, int]) -> ColumnarAURelation:
        start, stop = block
        rows = np.sort(
            np.concatenate(
                [np.asarray(groups[g], dtype=np.int64) for g in range(start, stop)]
            )
        )
        return groupby_aggregate(relation.take(rows), group_by, aggregates)

    return concat_relations(parallel_map(group_shard, shards, workers=workers))


def _components_carry_nan(column: AttributeColumn) -> bool:
    """NaN anywhere in a column's components (object arrays scanned too)."""
    for arr in (column.lb, column.sg, column.ub):
        if arr.dtype == np.float64:
            if len(arr) and bool(np.isnan(arr).any()):
                return True
        elif arr.dtype == object:
            if any(value != value for value in arr.tolist()):
                return True
    return False


def _scalar_groupby(
    relation: ColumnarAURelation,
    group_by: Sequence[str],
    aggregates: Sequence[tuple[str, str | None, str]],
) -> ColumnarAURelation:
    """Wholesale scalar fallback: run the Python backend, convert back."""
    from repro.core.operators.aggregate import groupby_aggregate as python_groupby

    return ColumnarAURelation.from_relation(
        python_groupby(relation.to_relation(), group_by, aggregates)
    )


def _aggregate_vectorizable(func: str, column: AttributeColumn, relation: ColumnarAURelation) -> bool:
    """Whether the segmented reductions are exact for this value column.

    Mirrors the expression-evaluator gates: object dtypes and NaN floats only
    exist on the scalar path; ``sum`` / ``avg`` additionally need the partial
    sums and multiplicity products to stay exact (no ``int64`` overflow, no
    ``float64`` rounding of large integers).
    """
    profile = profile_components((column.lb, column.sg, column.ub))
    if profile.has_object or profile.has_nan:
        return False
    if profile.has_float and profile.int_magnitude >= FLOAT64_EXACT_MAX:
        return False
    if func in ("sum", "avg"):
        total = int(relation.mult_ub.sum()) if len(relation) else 0
        if profile.int_magnitude * max(1, total) >= 2**62:
            return False
    return True


def _group_hull_column(
    column: AttributeColumn,
    lb_codes: np.ndarray,
    ub_codes: np.ndarray,
    group_rows: np.ndarray,
    pair_group: np.ndarray,
    pair_row: np.ndarray,
    has_possible: np.ndarray,
    groups: int,
    n: int,
) -> AttributeColumn:
    """One output group-key column: ``[hull lb / key sg / hull ub]`` per group.

    The hull folds ``union_hull`` over the possible contributors; ties under
    the domain order keep the *first* minimal lb and the *last* maximal ub,
    reproduced here by taking segmented min / max over ``code * (n+1) + row``
    composites (code ties resolved by row position).
    """
    base = np.int64(n + 1)
    min_composite = np.full(groups, np.iinfo(np.int64).max, dtype=np.int64)
    max_composite = np.full(groups, np.iinfo(np.int64).min, dtype=np.int64)
    if len(pair_group):
        np.minimum.at(min_composite, pair_group, lb_codes[pair_row] * base + pair_row)
        np.maximum.at(max_composite, pair_group, ub_codes[pair_row] * base + pair_row)
    lb_rows = np.where(has_possible, min_composite % base, group_rows)
    ub_rows = np.where(has_possible, max_composite % base, group_rows)
    sg_values = column.sg[group_rows].tolist()
    lb_picked = column.lb[lb_rows].tolist()
    ub_picked = column.ub[ub_rows].tolist()
    lb_values = [
        lb_picked[g] if has_possible[g] else sg_values[g] for g in range(groups)
    ]
    ub_values = [
        ub_picked[g] if has_possible[g] else sg_values[g] for g in range(groups)
    ]
    return AttributeColumn(
        column.name, column_array(lb_values), column_array(sg_values), column_array(ub_values)
    )


def _count_column(
    name: str,
    relation: ColumnarAURelation,
    pair_group: np.ndarray,
    pair_row: np.ndarray,
    pair_certain: np.ndarray,
    group_of_row: np.ndarray,
    groups: int,
) -> AttributeColumn:
    """``count(*)`` bounds per group: segmented multiplicity sums."""
    lb = np.zeros(groups, dtype=np.int64)
    np.add.at(lb, pair_group[pair_certain], relation.mult_lb[pair_row[pair_certain]])
    ub = np.zeros(groups, dtype=np.int64)
    np.add.at(ub, pair_group, relation.mult_ub[pair_row])
    sg = np.zeros(groups, dtype=np.int64)
    np.add.at(sg, group_of_row, relation.mult_sg)
    sg = np.clip(sg, lb, ub)
    return AttributeColumn(name, lb, sg, ub)


def _sum_column(
    name: str,
    relation: ColumnarAURelation,
    column: AttributeColumn,
    pair_group: np.ndarray,
    pair_row: np.ndarray,
    pair_certain: np.ndarray,
    group_of_row: np.ndarray,
    groups: int,
) -> AttributeColumn:
    """``sum`` bounds per group, accumulation order matching the scalar fold.

    Certain contributors add ``value * mult`` picking the multiplicity bound
    that minimises / maximises the product; possible-only contributors can
    also be absent, so only sign-decreasing (lb) / sign-increasing (ub)
    contributions count.  ``lb`` / ``ub`` accumulate in ``float64`` exactly
    like the Python backend's ``0.0 +=`` fold.
    """
    value_lb = column.lb[pair_row]
    value_ub = column.ub[pair_row]
    mult_lb = relation.mult_lb[pair_row]
    mult_ub = relation.mult_ub[pair_row]
    lb_contrib = np.where(
        pair_certain,
        value_lb * np.where(value_lb >= 0, mult_lb, mult_ub),
        np.where(value_lb < 0, value_lb * mult_ub, 0),
    )
    ub_contrib = np.where(
        pair_certain,
        value_ub * np.where(value_ub >= 0, mult_ub, mult_lb),
        np.where(value_ub >= 0, value_ub * mult_ub, 0),
    )
    lb = np.zeros(groups, dtype=np.float64)
    ub = np.zeros(groups, dtype=np.float64)
    np.add.at(lb, pair_group, lb_contrib)
    np.add.at(ub, pair_group, ub_contrib)
    sg_dtype = np.float64 if column.sg.dtype == np.float64 else np.int64
    sg = np.zeros(groups, dtype=sg_dtype)
    np.add.at(sg, group_of_row, column.sg * relation.mult_sg)
    return AttributeColumn(name, lb, _clamp_sg_components(sg, lb, ub), ub)


def _select_components(mask: np.ndarray, when_true: np.ndarray, when_false: np.ndarray) -> np.ndarray:
    """Elementwise select that never promotes mixed dtypes.

    ``np.where`` over an ``int64`` / ``float64`` pair would upcast every
    element to ``float64``; the Python backend keeps each scalar's own type
    (an unclamped integer selected guess stays ``int``).  Equal dtypes take
    the vectorized path, mixed dtypes re-pack per element.
    """
    if when_true.dtype == when_false.dtype:
        return np.where(mask, when_true, when_false)
    true_values = when_true.tolist()
    false_values = when_false.tolist()
    return column_array(
        [true_values[i] if keep else false_values[i] for i, keep in enumerate(mask.tolist())]
    )


def _clamp_sg_components(sg: np.ndarray, lb: np.ndarray, ub: np.ndarray) -> np.ndarray:
    """The ``_make_range`` clamp (sg into ``[lb, ub]``), scalar types preserved."""
    low = sg < lb
    if bool(low.any()):
        sg = _select_components(low, lb, sg)
    high = sg > ub
    if bool(high.any()):
        sg = _select_components(high, ub, sg)
    return sg


def _segmented_reduce(
    idx: np.ndarray, values: np.ndarray, groups: int, *, maximum: bool
) -> np.ndarray:
    """Segmented min / max with sentinel initialisation (empty groups keep it)."""
    if values.dtype == np.float64:
        sentinel = -np.inf if maximum else np.inf
    else:
        info = np.iinfo(np.int64)
        sentinel = info.min if maximum else info.max
    out = np.full(groups, sentinel, dtype=values.dtype)
    if len(idx):
        (np.maximum if maximum else np.minimum).at(out, idx, values)
    return out


def _extremum_column(
    name: str,
    func: str,
    relation: ColumnarAURelation,
    column: AttributeColumn,
    pair_group: np.ndarray,
    pair_row: np.ndarray,
    pair_certain: np.ndarray,
    group_of_row: np.ndarray,
    has_possible: np.ndarray,
    groups: int,
) -> AttributeColumn:
    """``min`` / ``max`` / ``avg`` bounds per group via segmented reductions."""
    value_lb = column.lb[pair_row]
    value_ub = column.ub[pair_row]
    cert_group = pair_group[pair_certain]
    poss_min_lb = _segmented_reduce(pair_group, value_lb, groups, maximum=False)
    poss_max_ub = _segmented_reduce(pair_group, value_ub, groups, maximum=True)
    has_certain = np.bincount(cert_group, minlength=groups) > 0

    sg_mask = relation.mult_sg > 0
    sg_groups = group_of_row[sg_mask]
    sg_values = column.sg[sg_mask]
    has_sg = np.bincount(sg_groups, minlength=groups) > 0

    if func == "min":
        lb = poss_min_lb
        cert_min_ub = _segmented_reduce(cert_group, value_ub[pair_certain], groups, maximum=False)
        ub = np.where(has_certain, cert_min_ub, poss_max_ub)
        sg = _segmented_reduce(sg_groups, sg_values, groups, maximum=False)
    elif func == "max":
        ub = poss_max_ub
        cert_max_lb = _segmented_reduce(cert_group, value_lb[pair_certain], groups, maximum=True)
        poss_min_lb_all = _segmented_reduce(pair_group, value_lb, groups, maximum=False)
        lb = np.where(has_certain, cert_max_lb, poss_min_lb_all)
        sg = _segmented_reduce(sg_groups, sg_values, groups, maximum=True)
    else:  # avg
        lb = poss_min_lb
        ub = poss_max_ub
        totals = np.zeros(
            groups, dtype=np.float64 if sg_values.dtype == np.float64 else np.int64
        )
        if len(sg_groups):
            np.add.at(totals, sg_groups, sg_values)
        counts = np.bincount(sg_groups, minlength=groups)
        sg = np.divide(
            totals,
            counts,
            out=np.zeros(groups, dtype=np.float64),
            where=counts > 0,
        )
    sg = _select_components(has_sg, sg, lb)
    sg = _clamp_sg_components(sg, lb, ub)
    if bool(np.all(has_possible)):
        return AttributeColumn(name, lb, sg, ub)
    # Groups without possible contributors aggregate to the certain NULL.
    lb_values = [value if has_possible[g] else None for g, value in enumerate(lb.tolist())]
    sg_values_out = [value if has_possible[g] else None for g, value in enumerate(sg.tolist())]
    ub_values = [value if has_possible[g] else None for g, value in enumerate(ub.tolist())]
    return AttributeColumn(
        name, column_array(lb_values), column_array(sg_values_out), column_array(ub_values)
    )


def _scalar_aggregate_column(
    name: str,
    func: str,
    relation: ColumnarAURelation,
    column: AttributeColumn,
    pair_group: np.ndarray,
    pair_row: np.ndarray,
    pair_certain: np.ndarray,
    group_of_row: np.ndarray,
    groups: int,
) -> AttributeColumn:
    """Scalar fallback: fold each group through the Python backend's helper.

    Used for value columns the segmented reductions cannot reproduce exactly
    (object dtypes, NaN floats, overflow-prone magnitudes); calls
    :func:`repro.core.operators.aggregate.value_aggregate_bounds` per group,
    so both backends share one implementation of the edge-case semantics.
    """
    from repro.core.operators.aggregate import value_aggregate_bounds

    values = [column.value(i) for i in range(len(relation))]
    mults = [relation.multiplicity(i) for i in range(len(relation))]
    # pair_group is sorted: per-group contributor slices via searchsorted.
    starts = np.searchsorted(pair_group, np.arange(groups), side="left")
    stops = np.searchsorted(pair_group, np.arange(groups), side="right")
    sg_order = np.argsort(group_of_row, kind="stable")
    sg_starts = np.searchsorted(group_of_row[sg_order], np.arange(groups), side="left")
    sg_stops = np.searchsorted(group_of_row[sg_order], np.arange(groups), side="right")
    results = []
    for g in range(groups):
        possible = [
            (values[r], mults[r], bool(c))
            for r, c in zip(
                pair_row[starts[g] : stops[g]].tolist(),
                pair_certain[starts[g] : stops[g]].tolist(),
            )
        ]
        sg_members = [
            (values[r], mults[r]) for r in sg_order[sg_starts[g] : sg_stops[g]].tolist()
        ]
        results.append(value_aggregate_bounds(func, possible, sg_members))
    return AttributeColumn(
        name,
        column_array([result.lb for result in results]),
        column_array([result.sg for result in results]),
        column_array([result.ub for result in results]),
    )


# ---------------------------------------------------------------------------
# Duplicate merging (the K-relation view: equal hypercubes add annotations)
# ---------------------------------------------------------------------------


def merge_equal_rows(relation: ColumnarAURelation) -> ColumnarAURelation:
    """Merge rows with equal hypercubes, annotations adding pointwise.

    Equality follows the scalar semantics (``RangeValue.__eq__`` per
    attribute: ``1 == 1.0 == True``, NaN equal to nothing including itself);
    merged rows keep the first occurrence's values and position, matching the
    insertion-order merge of :meth:`AURelation.add`.
    """
    n = len(relation)
    if n == 0:
        return relation
    if not relation.columns:
        # Zero-attribute schema: every row is the empty tuple.
        return ColumnarAURelation(
            relation.schema,
            (),
            np.array([int(relation.mult_lb.sum())], dtype=np.int64),
            np.array([int(relation.mult_sg.sum())], dtype=np.int64),
            np.array([int(relation.mult_ub.sum())], dtype=np.int64),
        )
    codes = [
        _equality_codes(component)
        for column in relation.columns
        for component in (column.lb, column.sg, column.ub)
    ]
    matrix = np.column_stack(codes)
    _, first, inverse = np.unique(matrix, axis=0, return_index=True, return_inverse=True)
    inverse = inverse.reshape(-1)
    groups = len(first)
    if groups == n:
        return relation
    mult_lb = np.zeros(groups, dtype=np.int64)
    mult_sg = np.zeros(groups, dtype=np.int64)
    mult_ub = np.zeros(groups, dtype=np.int64)
    np.add.at(mult_lb, inverse, relation.mult_lb)
    np.add.at(mult_sg, inverse, relation.mult_sg)
    np.add.at(mult_ub, inverse, relation.mult_ub)
    # Emit groups in first-occurrence order so downstream sequence-number
    # tiebreakers (the <total_O sort order) see the same row order as the
    # Python backend's insertion-ordered dict.
    order = np.argsort(first, kind="stable")
    return relation.take(first[order]).with_multiplicities(
        mult_lb[order], mult_sg[order], mult_ub[order]
    )


def _equality_codes(component: np.ndarray) -> np.ndarray:
    """Dense equality codes of one bound-component array.

    Numeric arrays without NaN use ``np.unique``; everything else is coded
    through Python equality (dict keys), which reproduces the scalar
    semantics exactly — ``1 == 1.0 == True`` share a code, while each NaN
    occurrence gets a fresh one (NaN never merges, not even with itself).
    """
    if component.dtype != object:
        if component.dtype != np.float64 or not bool(np.isnan(component).any()):
            _, inverse = np.unique(component, return_inverse=True)
            return inverse.reshape(-1).astype(np.int64, copy=False)
    codes: dict = {}
    out = np.empty(len(component), dtype=np.int64)
    next_code = 0
    for i, value in enumerate(component.tolist()):
        if value != value:  # NaN-like: unique code per occurrence
            out[i] = next_code
            next_code += 1
            continue
        code = codes.get(value)
        if code is None:
            codes[value] = code = next_code
            next_code += 1
        out[i] = code
    return out
