"""Incremental maintenance of materialised plan results under delta streams.

An :class:`IncrementalView` wraps a :class:`~repro.columnar.plan.PlanSpec`
over a base :class:`~repro.core.relation.AURelation` and keeps the
materialised result current under ``apply_delta(inserts, retracts)`` calls —
the serving-style access pattern (millions of small reads against
slowly-changing data) where re-running the plan per delta would spend almost
all of its time re-deriving state a small delta barely moved.

The position-bound machinery of the paper (Equations 1-3) is
searchsorted-shaped: every bound is a prefix sum evaluated at a binary-search
boundary over key-sorted arrays.  An insertion or retraction therefore
shifts bounds by *rank-interval offsets* that can be patched against
maintained sorted permutations instead of recomputed:

* the **prefix** of the plan (``select`` / ``extend`` / ``rename`` — the
  row-local stages) runs on the delta rows only; the maintained columnar
  stage input is masked / concatenated, never rebuilt;
* a trailing **sort / top-k** stage keeps three permutations of the stage
  input — latest-key order (also the emission order), earliest-key order,
  and the ``<ᵗᵒᵗᵃˡ_O`` selected-guess order.  Deltas splice rows in and out
  with ``np.searchsorted`` + ``np.insert``
  (:func:`~repro.columnar.kernels.permutation_insert` /
  :func:`~repro.columnar.kernels.permutation_delete`) and re-evaluate the
  bounds with :func:`~repro.columnar.kernels.rank_offset_bounds` — two
  binary-search passes over the maintained orders, no argsort;
* a trailing **window** stage (certain ``PARTITION BY`` keys) keeps a
  per-partition result cache keyed by stable row ids: only partitions the
  delta touched re-sweep, untouched partials are reused verbatim.

Whenever a stage class has no sound patch rule — uncertain partition keys,
NaN-carrying columns, object-dtype keys, bag-merging stages (``project`` /
``distinct`` / ``union`` / ``join`` / ``cross`` / ``groupby_aggregate``),
a retraction that removes only part of a tuple's multiplicity, or an insert
colliding with an existing hypercube — the view falls back to a full
recompute from the accumulated base, so every delta sequence yields exactly
the from-scratch result (`last_apply` records which path ran; the
differential property suite pins patched == recomputed bit for bit).

>>> from repro.columnar.plan import PlanSpec
>>> from repro.core.expressions import attr, const
>>> from repro.core.relation import AURelation
>>> base = AURelation.from_rows(["k", "v"], [((1, 10), 1), ((2, 30), 1)])
>>> view = IncrementalView(base, PlanSpec().topk(["v"], 1, descending=True))
>>> for t, _m in view.to_rows():
...     print(t.value("k"))
2
>>> view.apply_delta(inserts=AURelation.from_rows(["k", "v"], [((3, 99), 1)]))
>>> view.last_apply
'patched'
>>> for t, _m in view.to_rows():
...     print(t.value("k"))
3
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.columnar import operators as ops
from repro.columnar.kernels import (
    permutation_delete,
    permutation_insert,
    rank_offset_bounds,
)
from repro.columnar.plan import ColumnarPlan, PlanSpec
from repro.columnar.relation import ColumnarAURelation, concat_relations
from repro.columnar.sort import ranked_emission
from repro.core.expressions import attr
from repro.core.multiplicity import Multiplicity
from repro.core.relation import AURelation
from repro.errors import OperatorError

__all__ = ["IncrementalView", "merge_delta"]

#: Row-local plan stages the view maintains by running them on delta rows only.
_PREFIX_STAGES = frozenset({"select", "extend", "rename"})

#: Trailing ranking stages with a dedicated patch rule.
_RANKED_STAGES = frozenset({"sort", "topk", "window"})


# ---------------------------------------------------------------------------
# Delta algebra over the accumulated base
# ---------------------------------------------------------------------------


def merge_delta(
    base: AURelation,
    inserts: AURelation | None,
    retracts: AURelation | None,
) -> tuple[AURelation, bool]:
    """Apply an append/retract delta to a base relation, without mutating it.

    Returns ``(new_base, patchable)``.  Retractions apply first, then
    insertions; a retraction must name an existing hypercube and remove at
    most its stored multiplicity (componentwise, and the remainder must stay
    a valid ``lb <= sg <= ub`` triple) — anything else raises
    :class:`~repro.errors.OperatorError` and leaves every input untouched.

    ``patchable`` reports whether the delta only removed *whole* rows and
    inserted *fresh* hypercubes — the delta class the per-stage patch rules
    are sound for.  Partial retractions and merging inserts still produce the
    correct accumulated base here; the caller recomputes from it instead of
    patching.
    """
    rows = dict(base._rows)
    patchable = True
    retracted: set = set()
    if retracts is not None:
        for tup, mult in retracts:
            values = tup.values
            stored = rows.get(values)
            if stored is None:
                raise OperatorError(
                    f"cannot retract {values!r}: no such tuple in the base relation"
                )
            remaining = _subtract(stored, mult, values)
            retracted.add(values)
            if remaining is None:
                del rows[values]
            else:
                rows[values] = remaining
                patchable = False
    if inserts is not None:
        for tup, mult in inserts:
            values = tup.values
            stored = rows.get(values)
            if stored is not None or values in retracted:
                # Merging insert (or retract-then-reinsert): correct under
                # AURelation.add semantics, but not a whole-row delta.
                rows[values] = mult if stored is None else stored.add(mult)
                patchable = False
            else:
                rows[values] = mult
    out = AURelation(base.schema)
    out._rows = rows
    return out, patchable


def _subtract(stored: Multiplicity, mult: Multiplicity, values) -> Multiplicity | None:
    lb, sg, ub = stored.lb - mult.lb, stored.sg - mult.sg, stored.ub - mult.ub
    if min(lb, sg, ub) < 0 or not (lb <= sg <= ub):
        raise OperatorError(
            f"cannot retract {mult} of {values!r}: stored multiplicity is {stored}"
        )
    if ub == 0 and sg == 0 and lb == 0:
        return None
    return Multiplicity(lb, sg, ub)


def _as_delta(delta, schema, label: str) -> AURelation | None:
    if delta is None:
        return None
    if isinstance(delta, ColumnarAURelation):
        delta = delta.to_relation()
    if not isinstance(delta, AURelation):
        raise OperatorError(f"{label} must be an AURelation, got {type(delta).__name__}")
    if delta.schema != schema:
        raise OperatorError(
            f"{label} schema {delta.schema} does not match the view's base schema {schema}"
        )
    return delta if len(delta) else None


# ---------------------------------------------------------------------------
# Plan-shape analysis
# ---------------------------------------------------------------------------


def _split_spec(spec: PlanSpec):
    """``(prefix_stages, ranked_stage_or_None)`` when patch rules exist, else ``None``.

    The patchable shape is ``[select|extend|rename]*`` optionally followed by
    exactly one trailing ``sort`` / ``topk`` / ``window`` stage.  Every other
    stage class merges or multiplies rows across hypercubes (``project``,
    ``distinct``, ``union``, ``join``, ``cross``, ``groupby_aggregate``) and
    has no whole-row patch rule, so those plans always recompute.
    """
    prefix = []
    stages = spec.stages
    for i, stage in enumerate(stages):
        name = stage[0]
        if name in _PREFIX_STAGES:
            prefix.append(stage)
        elif name in _RANKED_STAGES and i == len(stages) - 1:
            return prefix, stage
        else:
            return None
    return prefix, None


def _apply_prefix_stage(cols: ColumnarAURelation, stage) -> ColumnarAURelation:
    name, args, kwargs = stage
    if name == "select":
        return ops.select(cols, args[0])
    if name == "extend":
        return ops.extend(cols, args[0], args[1])
    return ops.rename(cols, dict(args[0]))


def _run_prefix(prefix, relation: AURelation) -> ColumnarAURelation:
    cols = ColumnarAURelation.from_relation(relation)
    for stage in prefix:
        cols = _apply_prefix_stage(cols, stage)
    return cols


# ---------------------------------------------------------------------------
# Per-stage patch state
# ---------------------------------------------------------------------------


def _oriented_sort_arrays(cols: ColumnarAURelation, order_by: str, descending: bool):
    """Oriented raw key arrays ``(earliest, sg, latest, rest_sg)`` or ``None``.

    The patch compares raw values where the from-scratch kernels compare
    dense rank codes; the two are order-isomorphic exactly when every
    compared array is uniform-numeric and NaN-free, so anything else
    (object dtype, mixed components, NaN, an ``int64`` minimum that a
    descending negation would overflow) returns ``None`` and the view
    recomputes instead.
    """
    column = cols.column(order_by)
    comps = (column.lb, column.sg, column.ub)
    dtype = comps[0].dtype
    if dtype == object or any(arr.dtype != dtype for arr in comps):
        return None
    if dtype == np.float64 and any(bool(np.isnan(arr).any()) for arr in comps):
        return None
    rest = []
    for name in cols.schema:
        if name == order_by:
            continue
        sg_arr = cols.column(name).sg
        if sg_arr.dtype == object:
            return None
        if sg_arr.dtype == np.float64 and bool(np.isnan(sg_arr).any()):
            return None
        rest.append(sg_arr)
    if descending:
        if (
            dtype == np.int64
            and len(column.lb)
            and min(int(arr.min()) for arr in comps) == np.iinfo(np.int64).min
        ):
            return None
        return -column.ub, -column.sg, -column.lb, rest
    return column.lb, column.sg, column.ub, rest


class _SortState:
    """Maintained permutations for a trailing ``sort`` / ``topk`` stage.

    ``latest_perm`` orders stage-input rows by (oriented latest key, row
    index) — which is also the stage's emission order; ``earliest_perm`` by
    (oriented earliest key, row index); ``total_perm`` by the ``<ᵗᵒᵗᵃˡ_O``
    selected-guess order (order-by selected guess, the remaining columns'
    selected guesses in schema order, row index).  Position bounds re-derive
    from these with :func:`~repro.columnar.kernels.rank_offset_bounds`.
    """

    __slots__ = ("order_by", "descending", "k", "pos_attr", "latest_perm",
                 "earliest_perm", "total_perm")

    def __init__(self, order_by, descending, k, pos_attr, latest_perm,
                 earliest_perm, total_perm):
        self.order_by = order_by
        self.descending = descending
        self.k = k
        self.pos_attr = pos_attr
        self.latest_perm = latest_perm
        self.earliest_perm = earliest_perm
        self.total_perm = total_perm

    @staticmethod
    def build(cols: ColumnarAURelation, stage) -> "_SortState | None":
        name, args, kwargs = stage
        order_by = args[0]
        if len(order_by) != 1:
            # Multi-key sorts compare lexicographic rank *vectors*; raw
            # per-column values cannot replay that with one searchsorted.
            return None
        options = dict(kwargs)
        descending = bool(options.get("descending", False))
        k = int(args[1]) if name == "topk" else None
        pos_attr = options.get("position_attribute", "pos")
        arrays = _oriented_sort_arrays(cols, order_by[0], descending)
        if arrays is None:
            return None
        earliest, sg, latest, rest = arrays
        n = len(cols)
        keys = [np.arange(n, dtype=np.int64)]
        keys.extend(reversed(rest))
        keys.append(sg)
        from repro.columnar.kernels import lexsort_stable

        return _SortState(
            order_by[0],
            descending,
            k,
            pos_attr,
            np.argsort(latest, kind="stable"),
            np.argsort(earliest, kind="stable"),
            lexsort_stable(keys),
        )

    def patched(self, new_input: ColumnarAURelation, keep, n_kept: int, n_new: int):
        arrays = _oriented_sort_arrays(new_input, self.order_by, self.descending)
        if arrays is None:
            return None
        earliest, sg, latest, rest = arrays

        latest_perm, earliest_perm, total_perm = (
            self.latest_perm, self.earliest_perm, self.total_perm,
        )
        if keep is not None:
            latest_perm = permutation_delete(latest_perm, keep)
            earliest_perm = permutation_delete(earliest_perm, keep)
            total_perm = permutation_delete(total_perm, keep)
        if n_new:
            new_idx = np.arange(n_kept, n_kept + n_new, dtype=np.int64)
            # side="right": a new row lands after every equal key — its row
            # index exceeds any existing one, matching the stable tie order.
            # Batches insert in key order so equal splice points stay sorted.
            order = np.argsort(latest[n_kept:], kind="stable")
            latest_perm = permutation_insert(
                latest_perm,
                np.searchsorted(latest[:n_kept][latest_perm], latest[n_kept:][order], side="right"),
                new_idx[order],
            )
            order = np.argsort(earliest[n_kept:], kind="stable")
            earliest_perm = permutation_insert(
                earliest_perm,
                np.searchsorted(earliest[:n_kept][earliest_perm], earliest[n_kept:][order], side="right"),
                new_idx[order],
            )

            def total_key(i):
                i = int(i)
                return (sg[i], *(r[i] for r in rest), i)

            order = sorted(range(n_kept, n_kept + n_new), key=total_key)
            positions = np.array(
                [bisect.bisect_left(total_perm, total_key(i), key=total_key) for i in order],
                dtype=np.int64,
            )
            total_perm = permutation_insert(
                total_perm, positions, np.array(order, dtype=np.int64)
            )

        lower, upper = rank_offset_bounds(
            earliest, latest, new_input.mult_lb, new_input.mult_ub,
            earliest_perm, latest_perm,
        )
        weights = new_input.mult_sg[total_perm]
        running = np.cumsum(weights) - weights
        sg_pos = np.empty(len(new_input), dtype=np.int64)
        sg_pos[total_perm] = running
        sg_pos = np.clip(sg_pos, lower, upper)

        ranked = ranked_emission(
            new_input, lower, sg_pos, upper, latest_perm,
            k=self.k, position_attribute=self.pos_attr,
        )
        if self.k is not None:
            ranked = ops.select(ranked, attr(self.pos_attr).lt(self.k))
        state = _SortState(
            self.order_by, self.descending, self.k, self.pos_attr,
            latest_perm, earliest_perm, total_perm,
        )
        return state, ranked.to_relation()


class _WindowState:
    """Per-partition result cache for a trailing ``window`` stage.

    Rows carry stable monotone ids; a partition whose id sequence is
    unchanged by a delta reuses its cached sweep partial verbatim (sound
    because the patch path only ever inserts or deletes whole rows, so an
    identical id sequence means an identical row subset in identical order).
    Only touched partitions re-sweep.
    """

    __slots__ = ("spec", "ids", "next_id", "cache")

    def __init__(self, spec, ids, next_id, cache):
        self.spec = spec
        self.ids = ids
        self.next_id = next_id
        self.cache = cache

    @staticmethod
    def build(cols: ColumnarAURelation, spec) -> "_WindowState | None":
        if not spec.partition_by:
            # No partitions to localise a delta to: one global sweep has no
            # cheaper patch than recomputing the stage.
            return None
        state = _WindowState(spec, np.arange(len(cols), dtype=np.int64), len(cols), {})
        computed = state._compute(cols)
        if computed is None:
            return None
        state.cache = computed[0]
        return state

    def _compute(self, cols: ColumnarAURelation):
        """``(cache, result_rows)`` or ``None`` when the stage is unpatchable.

        Cache entries hold the *row-major* sweep partial per partition;
        untouched partitions contribute their cached rows without re-sweeping
        or re-materialising.  The final result is the partition partials'
        row dictionaries merged in partition order — the exact insertion
        order the from-scratch path's concat-then-convert produces (rows in
        different partitions differ on a partition attribute, so the merge
        can never collide across partials), and ``dict.update`` reuses the
        stored key hashes, so unchanged partitions cost no Python hashing.
        """
        from repro.columnar.window import _classify, _empty_result, _sweep_stage

        kind, sweep_spec, groups = _classify(cols, self.spec)
        if kind != "sweep" or groups is None:
            return None
        cache: dict = {}
        partials = []
        for key, indices in _partition_keys(cols, self.spec.partition_by):
            idx = np.asarray(indices, dtype=np.int64)
            signature = self.ids[idx].tobytes()
            cached = self.cache.get(key)
            if cached is not None and cached[0] == signature:
                partial = cached[1]
            else:
                partial = _sweep_stage(cols.take(idx), sweep_spec).to_relation()
            cache[key] = (signature, partial)
            partials.append(partial)
        if not partials:
            return cache, _empty_result(cols, sweep_spec).to_relation()
        result = AURelation(partials[0].schema)
        for partial in partials:
            result._rows.update(partial._rows)
        return cache, result

    def patched(self, new_input: ColumnarAURelation, keep, n_kept: int, n_new: int):
        ids = self.ids if keep is None else self.ids[keep]
        if n_new:
            ids = np.concatenate(
                [ids, np.arange(self.next_id, self.next_id + n_new, dtype=np.int64)]
            )
        state = _WindowState(self.spec, ids, self.next_id + n_new, self.cache)
        computed = state._compute(new_input)
        if computed is None:
            return None
        state.cache, result = computed
        return state, result


def _locate_row(cols: ColumnarAURelation, gone: ColumnarAURelation, j: int):
    """Position of ``gone``'s ``j``-th row inside ``cols``, or ``None``.

    Vectorized whole-tuple equality, column component by column component —
    no per-row Python hashing of range-value tuples (the dictionary lookup
    this replaces dominated small-delta patch time).  Maintained inputs hold
    one row per distinct hypercube, so exactly one match is expected;
    anything else reports failure and the caller recomputes.
    """
    mask = np.ones(len(cols), dtype=bool)
    for name in cols.schema:
        column = cols.column(name)
        target = gone.column(name)
        for component in ("lb", "sg", "ub"):
            hit = getattr(column, component) == getattr(target, component)[j]
            if not isinstance(hit, np.ndarray):  # dtype mismatch broadcast
                return None
            mask &= hit
            if not mask.any():
                return None
    positions = np.flatnonzero(mask)
    if len(positions) != 1:  # pragma: no cover - defensive
        return None
    return positions[0]


def _partition_keys(cols: ColumnarAURelation, partition_by):
    """``(key, row_indices)`` pairs in first-occurrence order.

    Mirrors :func:`repro.columnar.window._certain_partition_groups` (which the
    classifier has already validated as certain), additionally exposing the
    key tuples the partial cache is addressed by.
    """
    columns = [cols.column(name) for name in partition_by]
    groups: dict = {}
    for i, key in enumerate(zip(*[column.sg.tolist() for column in columns])):
        groups.setdefault(key, []).append(i)
    return list(groups.items())


class _ViewState:
    """Everything the patch path maintains between deltas."""

    __slots__ = ("prefix", "input", "stage")

    def __init__(self, prefix, input_cols, stage):
        self.prefix = prefix
        self.input = input_cols
        self.stage = stage

    def patched(self, inserts: AURelation | None, retracts: AURelation | None):
        """``(new_state, result)`` for a whole-row delta, or ``None`` to recompute."""
        keep = None
        current = self.input
        if retracts is not None:
            gone = _run_prefix(self.prefix, retracts)
            if len(gone):
                keep = np.ones(len(self.input), dtype=bool)
                for j in range(len(gone)):
                    position = _locate_row(self.input, gone, j)
                    if position is None:  # pragma: no cover - defensive
                        return None
                    keep[position] = False
                current = self.input.mask(keep)
        n_kept = len(current)
        fresh = _run_prefix(self.prefix, inserts) if inserts is not None else None
        n_new = len(fresh) if fresh is not None else 0
        new_input = concat_relations([current, fresh]) if n_new else current

        if self.stage is None:
            result = new_input.to_relation()
            return _ViewState(self.prefix, new_input, None), result
        patched = self.stage.patched(new_input, keep, n_kept, n_new)
        if patched is None:
            return None
        new_stage, result = patched
        return _ViewState(self.prefix, new_input, new_stage), result


# ---------------------------------------------------------------------------
# The view
# ---------------------------------------------------------------------------


class IncrementalView:
    """A materialised plan result maintained under append/retract deltas.

    ``incremental=False`` forces the full-recompute path on every delta —
    the oracle the differential property suite pins the patch rules against.
    ``workers`` selects the parallel executor for recompute passes (the
    patch path itself is serial numpy; both are bit-identical to serial).

    ``apply_delta`` is atomic: it either commits the delta everywhere (base,
    maintained state, result) or raises and leaves the view exactly as it
    was — a worker crash mid-recompute cannot leave a half-applied view.
    ``last_apply`` records what the most recent call did: ``"rebuilt"``
    (initial build), ``"patched"``, ``"recomputed"`` (fallback), or
    ``"noop"`` (empty delta).
    """

    __slots__ = ("_spec", "_workers", "_incremental", "_split", "_base",
                 "_result", "_state", "last_apply")

    def __init__(
        self,
        base: AURelation,
        spec: PlanSpec,
        *,
        workers: int | None = None,
        incremental: bool = True,
    ):
        from repro.columnar.parallel import resolve_workers

        self._spec = spec
        self._workers = resolve_workers(workers)
        self._incremental = bool(incremental)
        self._split = _split_spec(spec) if self._incremental else None
        self._base = base.copy()
        self._result, self._state = self._recompute(self._base)
        self.last_apply = "rebuilt"

    # -- read side -----------------------------------------------------------

    @property
    def spec(self) -> PlanSpec:
        return self._spec

    @property
    def workers(self) -> int:
        return self._workers

    def __len__(self) -> int:
        return len(self._result)

    def to_rows(self) -> AURelation:
        """The current plan result as a fresh row-major relation.

        Every call returns an independent copy: callers can mutate the
        returned relation freely without corrupting the maintained result
        (the no-aliasing contract the serving cache relies on).
        """
        out = AURelation(self._result.schema)
        out._rows = dict(self._result._rows)
        return out

    def base_rows(self) -> AURelation:
        """The accumulated base relation (an independent copy)."""
        return self._base.copy()

    # -- write side ----------------------------------------------------------

    def apply_delta(
        self,
        inserts: AURelation | None = None,
        retracts: AURelation | None = None,
    ) -> None:
        """Fold an append/retract delta into the view (atomically).

        ``retracts`` apply before ``inserts``; both must match the base
        schema.  Invalid deltas (retracting a missing tuple or more than its
        stored multiplicity) raise :class:`~repro.errors.OperatorError`
        without changing anything.
        """
        schema = self._base.schema
        inserts = _as_delta(inserts, schema, "inserts")
        retracts = _as_delta(retracts, schema, "retracts")
        if inserts is None and retracts is None:
            self.last_apply = "noop"
            return
        new_base, patchable = merge_delta(self._base, inserts, retracts)
        if patchable and self._state is not None:
            patched = self._state.patched(inserts, retracts)
            if patched is not None:
                self._base = new_base
                self._state, self._result = patched
                self.last_apply = "patched"
                return
        result, state = self._recompute(new_base)
        self._base = new_base
        self._result = result
        self._state = state
        self.last_apply = "recomputed"

    # -- internals -----------------------------------------------------------

    def _recompute(self, base: AURelation):
        result = self._spec.apply(ColumnarPlan(base, workers=self._workers)).to_rows()
        state = None
        if self._split is not None:
            state = self._build_state(base)
        return result, state

    def _build_state(self, base: AURelation):
        prefix, ranked = self._split
        cols = _run_prefix(prefix, base)
        if ranked is None:
            stage = None
        elif ranked[0] == "window":
            stage = _WindowState.build(cols, ranked[1][0])
            if stage is None:
                return None
        else:
            stage = _SortState.build(cols, ranked)
            if stage is None:
                return None
        return _ViewState(prefix, cols, stage)
