"""Connected heaps (Section 8.2 of the paper).

A *connected heap* is a set of ``H`` binary min-heaps over a shared set of
records, each heap with its own sort key.  Every record keeps one backwards
pointer per component heap (its current slot in that heap's array), so that
popping the root of one heap can remove the record from **all** heaps in
``O(H · log n)`` — without the linear search a collection of independent
heaps would need.

The windowed-aggregation sweep (Algorithm 3) keeps the tuples possibly inside
a window in a three-way connected heap sorted on the position upper bound
(for eviction), on the aggregation attribute's lower bound (to pick the
contributors that minimise a sum), and on the negated upper bound (to pick
the contributors that maximise it).

:class:`NaiveMultiHeap` implements the same interface with independent heaps
and linear-search deletion; it exists as the baseline for the preliminary
experiment reproduced in ``benchmarks/bench_connected_heap.py``.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Iterable, Sequence, TypeVar

from repro.errors import OperatorError

__all__ = ["ConnectedHeap", "NaiveMultiHeap"]

T = TypeVar("T")


class _Record(Generic[T]):
    """A payload plus its keys and current slot in every component heap."""

    __slots__ = ("payload", "keys", "slots", "alive")

    def __init__(self, payload: T, keys: tuple[Any, ...], heap_count: int):
        self.payload = payload
        self.keys = keys
        self.slots = [-1] * heap_count
        self.alive = True


class _ComponentHeap(Generic[T]):
    """One array-based binary min-heap storing records, maintaining backpointers."""

    __slots__ = ("index", "nodes")

    def __init__(self, index: int):
        self.index = index
        self.nodes: list[_Record[T]] = []

    # -- heap primitives -------------------------------------------------------

    def _key(self, record: _Record[T]) -> Any:
        return record.keys[self.index]

    def _set(self, slot: int, record: _Record[T]) -> None:
        self.nodes[slot] = record
        record.slots[self.index] = slot

    def _sift_up(self, slot: int) -> None:
        record = self.nodes[slot]
        key = self._key(record)
        while slot > 0:
            parent = (slot - 1) // 2
            if self._key(self.nodes[parent]) <= key:
                break
            self._set(slot, self.nodes[parent])
            slot = parent
        self._set(slot, record)

    def _sift_down(self, slot: int) -> None:
        size = len(self.nodes)
        record = self.nodes[slot]
        key = self._key(record)
        while True:
            child = 2 * slot + 1
            if child >= size:
                break
            right = child + 1
            if right < size and self._key(self.nodes[right]) < self._key(self.nodes[child]):
                child = right
            if self._key(self.nodes[child]) >= key:
                break
            self._set(slot, self.nodes[child])
            slot = child
        self._set(slot, record)

    # -- operations --------------------------------------------------------------

    def insert(self, record: _Record[T]) -> None:
        self.nodes.append(record)
        record.slots[self.index] = len(self.nodes) - 1
        self._sift_up(len(self.nodes) - 1)

    def peek(self) -> _Record[T]:
        if not self.nodes:
            raise OperatorError("peek on an empty heap")
        return self.nodes[0]

    def remove(self, record: _Record[T]) -> None:
        """Remove a record given its backpointer (O(log n))."""
        slot = record.slots[self.index]
        last = self.nodes.pop()
        record.slots[self.index] = -1
        if slot == len(self.nodes):
            return
        self._set(slot, last)
        # The replacement may violate the heap property upwards or downwards.
        if slot > 0 and self._key(last) < self._key(self.nodes[(slot - 1) // 2]):
            self._sift_up(slot)
        else:
            self._sift_down(slot)

    def __len__(self) -> int:
        return len(self.nodes)


class ConnectedHeap(Generic[T]):
    """``H`` synchronized min-heaps over a shared record set.

    ``key_functions`` supplies one key extractor per component heap.  Records
    are inserted into every heap; popping from one heap removes the record
    from all of them using the backwards pointers.
    """

    def __init__(self, key_functions: Sequence[Callable[[T], Any]]):
        if not key_functions:
            raise OperatorError("a connected heap needs at least one component heap")
        self._key_functions = tuple(key_functions)
        self._heaps = [_ComponentHeap[T](i) for i in range(len(key_functions))]
        self._size = 0

    # -- properties ------------------------------------------------------------------

    @property
    def heap_count(self) -> int:
        return len(self._heaps)

    def __len__(self) -> int:
        return self._size

    def is_empty(self) -> bool:
        return self._size == 0

    # -- operations ---------------------------------------------------------------------

    def insert(self, payload: T) -> None:
        """Insert a payload into every component heap (``O(H log n)``)."""
        keys = tuple(fn(payload) for fn in self._key_functions)
        record = _Record(payload, keys, len(self._heaps))
        for heap in self._heaps:
            heap.insert(record)
        self._size += 1

    def peek(self, heap: int = 0) -> T:
        """The payload with the smallest key of component heap ``heap``."""
        return self._heaps[heap].peek().payload

    def peek_key(self, heap: int = 0) -> Any:
        """The smallest key of component heap ``heap``."""
        record = self._heaps[heap].peek()
        return record.keys[heap]

    def pop(self, heap: int = 0) -> T:
        """Remove and return the smallest payload of component heap ``heap``.

        The record is removed from every other component heap as well, using
        the backwards pointers (``O(H log n)`` total).
        """
        record = self._heaps[heap].peek()
        self._remove_record(record)
        return record.payload

    def _remove_record(self, record: _Record[T]) -> None:
        for component in self._heaps:
            component.remove(record)
        record.alive = False
        self._size -= 1

    def pop_while(self, heap: int, predicate: Callable[[T], bool]) -> list[T]:
        """Pop payloads from ``heap`` while ``predicate`` holds for its root."""
        popped: list[T] = []
        while self._size and predicate(self.peek(heap)):
            popped.append(self.pop(heap))
        return popped

    def items(self) -> list[T]:
        """All live payloads (no particular order)."""
        return [record.payload for record in self._heaps[0].nodes]


class NaiveMultiHeap(Generic[T]):
    """Independent heaps with linear-search deletion — the comparison baseline.

    Functionally equivalent to :class:`ConnectedHeap`; deleting a record that
    is not the root of a component heap requires a linear scan of that heap,
    which is what the paper's preliminary experiment (Section 8.2) measures
    against the backwards-pointer design.
    """

    def __init__(self, key_functions: Sequence[Callable[[T], Any]]):
        if not key_functions:
            raise OperatorError("a naive multi-heap needs at least one component heap")
        self._key_functions = tuple(key_functions)
        # Each component heap is a plain list managed with heapq-style sifting
        # but without backpointers: entries are (key, serial, payload).
        self._heaps: list[list[tuple[Any, int, T]]] = [[] for _ in key_functions]
        self._serial = 0
        self._size = 0

    @property
    def heap_count(self) -> int:
        return len(self._heaps)

    def __len__(self) -> int:
        return self._size

    def is_empty(self) -> bool:
        return self._size == 0

    def insert(self, payload: T) -> None:
        import heapq

        self._serial += 1
        for index, fn in enumerate(self._key_functions):
            heapq.heappush(self._heaps[index], (fn(payload), self._serial, payload))
        self._size += 1

    def peek(self, heap: int = 0) -> T:
        if not self._heaps[heap]:
            raise OperatorError("peek on an empty heap")
        return self._heaps[heap][0][2]

    def peek_key(self, heap: int = 0) -> Any:
        if not self._heaps[heap]:
            raise OperatorError("peek on an empty heap")
        return self._heaps[heap][0][0]

    def pop(self, heap: int = 0) -> T:
        import heapq

        if not self._heaps[heap]:
            raise OperatorError("pop on an empty heap")
        _key, serial, payload = heapq.heappop(self._heaps[heap])
        # Linear search in every other heap to remove the same record.
        for index, component in enumerate(self._heaps):
            if index == heap:
                continue
            for slot, entry in enumerate(component):
                if entry[1] == serial:
                    component[slot] = component[-1]
                    component.pop()
                    if slot < len(component):
                        heapq._siftup(component, slot)  # noqa: SLF001 - stdlib helper
                        heapq._siftdown(component, 0, slot)  # noqa: SLF001
                    break
        self._size -= 1
        return payload

    def pop_while(self, heap: int, predicate: Callable[[T], bool]) -> list[T]:
        popped: list[T] = []
        while self._size and predicate(self.peek(heap)):
            popped.append(self.pop(heap))
        return popped

    def items(self) -> list[T]:
        return [entry[2] for entry in self._heaps[0]]
