"""Shared algorithmic building blocks (connected heaps, sweep helpers)."""

from repro.algorithms.connected_heap import ConnectedHeap, NaiveMultiHeap

__all__ = ["ConnectedHeap", "NaiveMultiHeap"]
