"""Cached-plan serving over incremental AU-views.

The serving layer answers repeated parameterized queries against a
slowly-changing base relation from materialised
:class:`~repro.columnar.incremental.IncrementalView` results instead of
re-running the plan per query:

* :class:`~repro.serving.cache.PlanCache` — an LRU cache of built views,
  keyed by ``(plan shape, parameter tuple)`` so structurally identical
  plans that differ only in expression literals share one compiled shape;
* :class:`~repro.serving.server.QueryServer` — the sync/async front end:
  named :class:`~repro.columnar.plan.PlanSpec` templates, per-query
  parameter binding (:meth:`~repro.columnar.plan.PlanSpec.bind` — no
  re-planning), and atomic ``apply_delta`` fan-out that patches every
  cached view in place.
"""

from repro.serving.cache import PlanCache
from repro.serving.server import QueryServer

__all__ = ["PlanCache", "QueryServer"]
