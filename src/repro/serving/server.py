"""The sync/async query front end over cached incremental views.

A :class:`QueryServer` owns one accumulated base relation and a
:class:`~repro.serving.cache.PlanCache` of
:class:`~repro.columnar.incremental.IncrementalView` results.  Callers
register named :class:`~repro.columnar.plan.PlanSpec` *templates* once;
each query names a template plus a parameter tuple, which binds into the
template's constant slots (:meth:`~repro.columnar.plan.PlanSpec.bind` — a
tree rewrite, no re-planning) and answers from the cached view for that
``(shape, params)`` key, building it only on the first miss.  Deltas fan
out through :meth:`QueryServer.apply_delta`, which patches every cached
view in place, so subsequent queries keep hitting warm views.

>>> from repro.columnar.plan import PlanSpec
>>> from repro.core.expressions import attr, const
>>> from repro.core.relation import AURelation
>>> base = AURelation.from_rows(["v"], [((3,), 1), ((8,), 1), ((20,), 1)])
>>> server = QueryServer(base)
>>> server.register("big", PlanSpec().select(attr("v").gt(const(0))).sort(["v"], descending=True))
>>> for t, _m in server.query("big", (5,)):
...     print(t.value("v"))
20
8
>>> for t, _m in server.query("big", (10,)):   # same shape, new constant
...     print(t.value("v"))
20
>>> server.stats()["views"], server.stats()["misses"]
(2, 2)
>>> server.apply_delta(inserts=AURelation.from_rows(["v"], [((30,), 1)]))
>>> [int(t.value("v").sg) for t, _m in server.query("big", (10,))]   # cache hit, patched view
[30, 20]
"""

from __future__ import annotations

import threading
from typing import Mapping, Sequence

from repro.columnar.incremental import IncrementalView, merge_delta
from repro.columnar.plan import PlanSpec
from repro.core.relation import AURelation
from repro.errors import PlanError, ServingError
from repro.serving.cache import PlanCache

__all__ = ["QueryServer"]


class QueryServer:
    """Serve repeated parameterized plan queries from cached incremental views.

    ``capacity`` bounds the cached view count (LRU eviction past it);
    ``incremental=False`` builds views that recompute on every delta — the
    oracle configuration the serving benchmarks compare against.  All public
    methods are thread-safe (one re-entrant lock serialises cache and view
    mutation), and :meth:`query_async` exposes the same read path as a
    coroutine for async front ends.
    """

    def __init__(
        self,
        base: AURelation,
        *,
        workers: int | None = None,
        capacity: int = 32,
        incremental: bool = True,
    ):
        from repro.columnar.parallel import resolve_workers

        self._lock = threading.RLock()
        self._base = base.copy()
        self._workers = resolve_workers(workers)
        self._incremental = bool(incremental)
        self._cache = PlanCache(capacity)
        self._templates: dict[str, tuple[PlanSpec, tuple]] = {}

    # -- template registry ---------------------------------------------------

    def register(self, name: str, spec: "PlanSpec | str") -> None:
        """Register a named plan template (its constants become slots).

        ``spec`` may also be a single-table SQL template string — it is
        compiled to a :class:`PlanSpec` once, here, via
        :func:`repro.sql.sql_to_spec` (the ``FROM`` table stands for this
        server's base relation); subsequent :meth:`query` calls re-bind the
        constants through the spec's shape key without re-parsing the SQL.
        """
        if isinstance(spec, str):
            from repro.sql import sql_to_spec

            spec = sql_to_spec(spec, self._base.schema)
        if not isinstance(spec, PlanSpec):
            raise ServingError(f"template {name!r} must be a PlanSpec, got {type(spec).__name__}")
        shape, _params = spec.shape_key()
        with self._lock:
            self._templates[name] = (spec, shape)

    def templates(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._templates)

    # -- read path -----------------------------------------------------------

    def query(self, name: str, params: Sequence = ()) -> AURelation:
        """Answer one parameterized query from the cached view (sync).

        ``params`` bind into the template's constant slots in shape-key walk
        order.  The returned relation is an independent copy — mutating it
        cannot corrupt the cached view.
        """
        with self._lock:
            return self._view(name, params).to_rows()

    async def query_async(self, name: str, params: Sequence = ()) -> AURelation:
        """:meth:`query` as a coroutine (runs the sync path in a thread)."""
        import asyncio

        return await asyncio.to_thread(self.query, name, params)

    def query_spec(self, spec: PlanSpec) -> AURelation:
        """Answer an ad-hoc (non-registered) spec, still through the cache."""
        shape, params = spec.shape_key()
        with self._lock:
            key = (shape, params)
            view = self._cache.get(key)
            if view is None:
                view = IncrementalView(
                    self._base, spec,
                    workers=self._workers, incremental=self._incremental,
                )
                self._cache.put(key, view)
            return view.to_rows()

    # -- write path ----------------------------------------------------------

    def apply_delta(
        self,
        inserts: AURelation | None = None,
        retracts: AURelation | None = None,
    ) -> None:
        """Fold a delta into the base and every cached view.

        The base merge validates first (an invalid retraction raises
        :class:`~repro.errors.OperatorError` with nothing committed).  Views
        then patch one by one; each view's own apply is atomic, and a view
        whose apply *fails* (e.g. a worker death mid-recompute) is evicted —
        never left stale in the cache — before the failure re-raises.
        """
        with self._lock:
            new_base, _patchable = merge_delta(self._base, inserts, retracts)
            self._base = new_base
            failure: BaseException | None = None
            for key in tuple(self._cache.keys()):
                view = self._cache.peek(key)
                try:
                    view.apply_delta(inserts=inserts, retracts=retracts)
                except BaseException as exc:  # noqa: BLE001 - evict, then surface
                    self._cache.evict(key)
                    if failure is None:
                        failure = exc
            if failure is not None:
                raise failure

    # -- introspection -------------------------------------------------------

    def base_rows(self) -> AURelation:
        """The accumulated base relation (an independent copy)."""
        with self._lock:
            return self._base.copy()

    def stats(self) -> Mapping[str, int]:
        """Cache counters plus the number of views currently held."""
        with self._lock:
            stats = dict(self._cache.stats)
            stats["views"] = stats.pop("size")
            stats["templates"] = len(self._templates)
            return stats

    def cached_view(self, name: str, params: Sequence = ()) -> IncrementalView | None:
        """The cached view for a key, without building or touching recency."""
        with self._lock:
            template, shape = self._require_template(name)
            return self._cache.peek((shape, tuple(params)))

    # -- internals -----------------------------------------------------------

    def _require_template(self, name: str) -> tuple[PlanSpec, tuple]:
        entry = self._templates.get(name)
        if entry is None:
            known = ", ".join(sorted(self._templates)) or "none registered"
            raise ServingError(f"unknown query template {name!r} (known: {known})")
        return entry

    def _view(self, name: str, params: Sequence) -> IncrementalView:
        template, shape = self._require_template(name)
        params = tuple(params)
        key = (shape, params)
        view = self._cache.get(key)
        if view is not None:
            return view
        try:
            spec = template.bind(params)
        except PlanError as exc:
            raise ServingError(f"template {name!r}: {exc}") from exc
        view = IncrementalView(
            self._base, spec, workers=self._workers, incremental=self._incremental
        )
        self._cache.put(key, view)
        return view
