"""LRU cache of built incremental views, keyed by plan shape + parameters.

The cache key is the pair :meth:`~repro.columnar.plan.PlanSpec.shape_key`
produces — the stage structure with expression constants slotted out, plus
the constant tuple — so ``select(v > 10)`` and ``select(v > 25)`` over the
same template occupy two entries under one *shape*, and the server can bind
new parameters into a registered template without re-deriving the plan.

>>> cache = PlanCache(capacity=2)
>>> cache.put("a", 1); cache.put("b", 2)
>>> cache.get("a")
1
>>> cache.put("c", 3)            # evicts "b" (least recently used)
>>> cache.get("b") is None
True
>>> cache.stats["evictions"], sorted(cache.keys())
(1, ['a', 'c'])
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterator

from repro.errors import ServingError

__all__ = ["PlanCache"]


class PlanCache:
    """A bounded LRU mapping from cache keys to built views.

    ``capacity`` bounds the number of *views* held (each maintains a
    materialised result, so the cap is the serving layer's memory knob);
    inserting past it evicts the least recently used entry.  ``get`` /
    ``put`` refresh recency and update the hit/miss/eviction counters;
    :meth:`peek` reads without touching either.
    """

    __slots__ = ("_capacity", "_entries", "hits", "misses", "evictions")

    def __init__(self, capacity: int = 32):
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 1:
            raise ServingError(f"cache capacity must be a positive integer, got {capacity!r}")
        self._capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def stats(self) -> dict:
        """Counter snapshot: hits, misses, evictions, current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
        }

    def get(self, key: Hashable):
        """The cached value (refreshing recency), or ``None`` on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def peek(self, key: Hashable):
        """The cached value without touching recency or the counters."""
        return self._entries.get(key)

    def put(self, key: Hashable, value) -> None:
        """Insert (or refresh) an entry, evicting LRU entries past capacity."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def evict(self, key: Hashable) -> bool:
        """Drop one entry (not counted as an LRU eviction); ``True`` if present."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()

    def keys(self) -> Iterator[Hashable]:
        return iter(tuple(self._entries.keys()))

    def values(self) -> Iterator:
        return iter(tuple(self._entries.values()))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries
