"""Lowering and execution: SQL statements → logical plans → engine stages.

The compiler resolves names (tables, aliases, columns — every failure a
positioned :class:`~repro.errors.SqlError`), lowers a parsed
:class:`~repro.sql.ast.SelectStatement` into the logical plan of
:mod:`repro.sql.ast`, optionally runs the rule-based optimizer
(:mod:`repro.sql.optimizer`), and executes the plan on either backend:

* ``backend="columnar"`` emits :class:`~repro.columnar.plan.ColumnarPlan`
  stages (factorised joins by default, ``workers=`` threaded through);
* ``backend="python"`` executes the row-at-a-time reference operators —
  the oracle the SQL-differential property suite compares against.

The *unoptimized* lowering deliberately pins ``method="grid"`` on every
join and prunes nothing, so the optimized/unoptimized pair brackets what
the rules buy without changing a single output bit.

>>> from repro.core.relation import AURelation
>>> catalog = {"t": AURelation.from_rows(["k", "v"], [((1, 10), 1), ((2, 5), 1)])}
>>> for tup, mult in run_sql("SELECT v FROM t WHERE k = 2", catalog):
...     print(tup.value("v"), mult)
5 (1,1,1)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.core.expressions import (
    Arithmetic, BooleanOp, Comparison, Expression, Not, attr, const,
)
from repro.core.relation import AURelation
from repro.core.schema import Schema
from repro.errors import ReproError, SqlError, WindowSpecError
from repro.sql import ast as L
from repro.sql.ast import (
    BinaryOp, ColumnRef, FuncCall, Literal, NotExpr, SelectStatement, SqlExpr,
    plan_schema,
)
from repro.sql.parser import parse
from repro.window import WindowSpec

__all__ = ["CompiledQuery", "compile_sql", "run_sql", "sql_to_spec", "lower"]

_AGGREGATE_FUNCTIONS = frozenset({"sum", "count", "avg", "min", "max"})
_ARITHMETIC_OPS = frozenset({"+", "-", "*"})
_COMPARISON_MAP = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


# -- name resolution ---------------------------------------------------------


@dataclass
class _Source:
    """One FROM/JOIN table in scope: original column → physical name."""

    names: tuple[str, ...]          # alias (if any) + table name
    columns: dict[str, str]


class _Scope:
    def __init__(self, query: str):
        self.query = query
        self.sources: list[_Source] = []
        self.schema = Schema(())

    def error(self, reason: str, node) -> SqlError:
        return SqlError(
            reason, query=self.query,
            line=getattr(node, "line", None), column=getattr(node, "column", None),
        )

    def source_for(self, name: str) -> Optional[_Source]:
        for source in self.sources:
            if name in source.names:
                return source
        return None

    def resolve(self, ref: ColumnRef) -> str:
        """The physical (post-disambiguation) attribute a column ref names."""
        if ref.table is not None:
            source = self.source_for(ref.table)
            if source is None:
                raise self.error(f"unknown table or alias {ref.table!r}", ref)
            physical = source.columns.get(ref.name)
            if physical is None:
                raise self.error(f"unknown column {ref.table!r}.{ref.name!r}", ref)
            return physical
        candidates = [
            source.columns[ref.name]
            for source in self.sources
            if ref.name in source.columns
        ]
        if not candidates:
            raise self.error(f"unknown column {ref.name!r}", ref)
        if len(candidates) > 1:
            raise self.error(
                f"ambiguous column {ref.name!r}; qualify it with a table name", ref
            )
        return candidates[0]


# -- lowering ----------------------------------------------------------------


class _Lowering:
    def __init__(self, query: str, statement: SelectStatement, schemas: Mapping[str, Schema]):
        self.query = query
        self.statement = statement
        self.schemas = schemas
        self.scope = _Scope(query)
        self._fresh = 0

    def error(self, reason: str, node) -> SqlError:
        return self.scope.error(reason, node)

    def fresh(self, prefix: str) -> str:
        self._fresh += 1
        return f"_sql{prefix}{self._fresh}"

    # -- FROM / JOIN ---------------------------------------------------------

    def _scan(self, table) -> L.Scan:
        schema = self.schemas.get(table.name)
        if schema is None:
            known = ", ".join(sorted(self.schemas)) or "none"
            raise self.error(
                f"unknown table {table.name!r} (catalog has: {known})", table
            )
        return L.Scan(table.name, schema)

    def _add_source(self, table, schema: Schema, physicals: Sequence[str]) -> None:
        names = (table.alias,) if table.alias else (table.name,)
        if any(self.scope.source_for(n) for n in names):
            raise self.error(f"duplicate table name or alias {names[0]!r}", table)
        self.scope.sources.append(
            _Source(names, dict(zip(schema.attributes, physicals)))
        )

    def lower_from(self) -> L.LogicalNode:
        statement = self.statement
        scan = self._scan(statement.source)
        self._add_source(statement.source, scan.schema, scan.schema.attributes)
        self.scope.schema = scan.schema
        plan: L.LogicalNode = scan
        for clause in statement.joins:
            right = self._scan(clause.table)
            combined = self.scope.schema.concat(right.schema, disambiguate=True)
            post_right = combined.attributes[len(self.scope.schema):]
            right_scope_cols = dict(zip(right.schema.attributes, post_right))
            on_keys: list[str] = []
            predicates: list[Expression] = []
            for conjunct in _split_and(clause.condition):
                key = self._equi_key(conjunct, clause.table, right)
                if key is not None:
                    on_keys.append(key)
                    continue
                right_names = (clause.table.alias,) if clause.table.alias else (clause.table.name,)
                predicates.append(
                    self._lower_scalar(
                        conjunct, extra=(right_names, right_scope_cols), boolean=True
                    )
                )
            predicate = _and_all(predicates)
            plan = L.Join(
                plan, right,
                on=tuple(on_keys) or None, predicate=predicate, method="grid",
            )
            self._add_source(clause.table, right.schema, post_right)
            self.scope.schema = combined
        return plan

    def _equi_key(self, conjunct, table, right: L.Scan) -> Optional[str]:
        """The shared ``on`` key name a conjunct encodes, if it does.

        ``left.k = right.k`` (same column name on both sides, one per input)
        becomes an ``on`` key the kernel planner can anchor on; everything
        else stays a join predicate.
        """
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            return None
        sides = conjunct.left, conjunct.right
        if not all(isinstance(side, ColumnRef) for side in sides):
            return None
        right_names = (table.alias,) if table.alias else (table.name,)
        for a, b in (sides, sides[::-1]):
            left_physical = self._try_resolve_left(a)
            right_name = self._try_resolve_right(b, right_names, right)
            if left_physical is not None and right_name == left_physical:
                return left_physical
        return None

    def _try_resolve_left(self, ref: ColumnRef) -> Optional[str]:
        try:
            return self.scope.resolve(ref)
        except SqlError:
            return None

    def _try_resolve_right(
        self, ref: ColumnRef, right_names: tuple[str, ...], right: L.Scan
    ) -> Optional[str]:
        if ref.table is not None and ref.table not in right_names:
            return None
        if ref.name in right.schema.attributes:
            return ref.name
        return None

    # -- expressions ---------------------------------------------------------

    def _lower_scalar(
        self,
        expression: SqlExpr,
        *,
        extra: tuple[tuple[str, ...], Mapping[str, str]] | None = None,
        boolean: bool = False,
    ) -> Expression:
        """Lower a parsed expression to a core expression tree.

        ``extra`` is ``(right_names, mapping)`` for the table currently
        being joined — its visible names plus original column → post-join
        physical — used while lowering ``ON`` conditions, before the right
        table enters the scope.  ``boolean`` permits comparisons and
        AND/OR/NOT (predicates); scalar positions reject them.
        """
        if isinstance(expression, Literal):
            return const(expression.value)
        if isinstance(expression, ColumnRef):
            if extra is not None:
                right_names, mapping = extra
                if expression.table is not None and expression.table in right_names:
                    physical = mapping.get(expression.name)
                    if physical is None:
                        raise self.error(
                            f"unknown column {expression.table!r}.{expression.name!r}",
                            expression,
                        )
                    return attr(physical)
                if expression.table is None and expression.name in mapping:
                    if self._try_resolve_left(expression) is not None:
                        raise self.error(
                            f"ambiguous column {expression.name!r}; qualify it "
                            "with a table name",
                            expression,
                        )
                    return attr(mapping[expression.name])
            return attr(self.scope.resolve(expression))
        if isinstance(expression, BinaryOp):
            if expression.op in _ARITHMETIC_OPS:
                return Arithmetic(
                    expression.op,
                    self._lower_scalar(expression.left, extra=extra),
                    self._lower_scalar(expression.right, extra=extra),
                )
            if expression.op in _COMPARISON_MAP:
                if not boolean:
                    raise self.error(
                        "comparisons are not allowed in a scalar position", expression
                    )
                return Comparison(
                    _COMPARISON_MAP[expression.op],
                    self._lower_scalar(expression.left, extra=extra),
                    self._lower_scalar(expression.right, extra=extra),
                )
            if expression.op in ("AND", "OR"):
                if not boolean:
                    raise self.error(
                        "AND/OR are not allowed in a scalar position", expression
                    )
                return BooleanOp(
                    expression.op.lower(),
                    self._lower_scalar(expression.left, extra=extra, boolean=True),
                    self._lower_scalar(expression.right, extra=extra, boolean=True),
                )
            raise self.error(f"unsupported operator {expression.op!r}", expression)
        if isinstance(expression, NotExpr):
            if not boolean:
                raise self.error("NOT is not allowed in a scalar position", expression)
            return Not(self._lower_scalar(expression.operand, extra=extra, boolean=True))
        if isinstance(expression, FuncCall):
            raise self.error(
                f"aggregate {expression.name!r} is not allowed here", expression
            )
        raise self.error("unsupported expression", expression)

    # -- SELECT list ---------------------------------------------------------

    def lower(self) -> L.LogicalNode:
        statement = self.statement
        plan = self.lower_from()
        if statement.where is not None:
            plan = L.Filter(plan, self._lower_scalar(statement.where, boolean=True))

        output: list[tuple[str, SqlExpr]] = []  # (output name, item expression)
        for item in statement.items:
            if item.alias is not None:
                name = item.alias
            elif isinstance(item.expression, ColumnRef):
                name = item.expression.name
            else:
                node = item.expression
                raise self.error("computed select items need an alias (AS name)", node)
            output.append((name, item.expression))
        names = [name for name, _ in output]
        for name in names:
            if names.count(name) > 1:
                raise self.error(f"duplicate output column {name!r}", statement.items[0].expression)

        aggregated = bool(statement.group_by) or any(
            call.window is None for _n, e in output for call in _calls(e)
        )
        group_keys: list[str] = []
        if aggregated:
            plan, value_of = self._lower_aggregated(plan, output, group_keys)
        else:
            plan, value_of = self._lower_plain(plan, output)

        alias_to_physical = dict(zip(names, value_of))
        plan = self._lower_order_limit(plan, alias_to_physical)

        plan = L.Project(plan, tuple(_dedupe_keep_first(value_of)))
        mapping = tuple(
            sorted((physical, name) for name, physical in alias_to_physical.items() if physical != name)
        )
        if mapping:
            plan = L.Rename(plan, mapping)
        return plan

    def _lower_plain(self, plan, output):
        """SELECT list without grouping: base columns, scalars, windows."""
        value_of: list[str] = []
        for name, expression in output:
            plan, physical = self._lower_item(plan, expression, resolve=self._resolve_base)
            value_of.append(physical)
        return plan, value_of

    def _lower_aggregated(self, plan, output, group_keys: list[str]):
        statement = self.statement
        for ref in statement.group_by:
            physical = self.scope.resolve(ref)
            if physical not in group_keys:
                group_keys.append(physical)

        aggregates: list[tuple[str, Optional[str], str]] = []
        agg_names: dict[tuple, str] = {}

        def aggregate_output(call: FuncCall) -> str:
            if call.name not in _AGGREGATE_FUNCTIONS:
                raise self.error(
                    f"unknown aggregate {call.name!r}; supported: "
                    f"{', '.join(sorted(_AGGREGATE_FUNCTIONS))}", call
                )
            nonlocal plan
            if call.star or call.arg is None:
                if call.name != "count":
                    raise self.error(f"{call.name}(*) is not supported; name a column", call)
                source = None
            elif isinstance(call.arg, ColumnRef):
                source = self.scope.resolve(call.arg)
            else:
                if _calls(call.arg):
                    raise self.error("nested aggregates are not supported", call)
                source = self.fresh("arg")
                plan = L.Extend(plan, source, self._lower_scalar(call.arg))
            key = (call.name, source)
            if key not in agg_names:
                out = self.fresh("agg")
                agg_names[key] = out
                aggregates.append((call.name, source, out))
            return agg_names[key]

        # First pass: collect every plain aggregate call (extends land
        # below the Aggregate node) before the node itself is built.
        rewritten: list[tuple[str, SqlExpr, dict[int, str]]] = []
        for name, expression in output:
            call_outputs: dict[int, str] = {}
            for call in _calls(expression):
                if call.window is None:
                    call_outputs[id(call)] = aggregate_output(call)
            rewritten.append((name, expression, call_outputs))

        plan = L.Aggregate(plan, tuple(group_keys), tuple(aggregates))
        visible = set(plan_schema(plan).attributes)

        def resolve_post(ref: ColumnRef) -> str:
            physical = self.scope.resolve(ref)
            if physical not in visible:
                raise self.error(
                    f"column {ref.name!r} must appear in GROUP BY or inside an aggregate",
                    ref,
                )
            return physical

        value_of: list[str] = []
        for name, expression, call_outputs in rewritten:
            plan, physical = self._lower_item(
                plan, expression, resolve=resolve_post, call_outputs=call_outputs
            )
            visible = set(plan_schema(plan).attributes)
            value_of.append(physical)
        return plan, value_of

    def _lower_item(self, plan, expression, *, resolve, call_outputs=None):
        """Lower one SELECT item onto ``plan``; returns (plan, physical name).

        Window calls become :class:`~repro.sql.ast.Window` nodes; any other
        computed expression becomes an :class:`~repro.sql.ast.Extend` with a
        fresh internal name (the final Rename restores the alias).
        """
        call_outputs = dict(call_outputs or {})
        for call in _calls(expression):
            if id(call) not in call_outputs:
                plan, out = self._lower_window(plan, call, resolve)
                call_outputs[id(call)] = out

        def lower(e: SqlExpr) -> Expression:
            if isinstance(e, FuncCall):
                return attr(call_outputs[id(e)])
            if isinstance(e, Literal):
                return const(e.value)
            if isinstance(e, ColumnRef):
                return attr(resolve(e))
            if isinstance(e, BinaryOp) and e.op in _ARITHMETIC_OPS:
                return Arithmetic(e.op, lower(e.left), lower(e.right))
            raise self.error("select items must be scalar expressions", e)

        if isinstance(expression, ColumnRef):
            return plan, resolve(expression)
        if isinstance(expression, FuncCall):
            return plan, call_outputs[id(expression)]
        name = self.fresh("expr")
        return L.Extend(plan, name, lower(expression)), name

    def _lower_window(self, plan, call: FuncCall, resolve):
        clause = call.window
        if call.name not in _AGGREGATE_FUNCTIONS:
            raise self.error(f"unknown window aggregate {call.name!r}", call)
        if call.star or call.arg is None:
            if call.name != "count":
                raise self.error(f"{call.name}(*) is not supported; name a column", call)
            attribute = None
        elif isinstance(call.arg, ColumnRef):
            attribute = resolve(call.arg)
        else:
            raise self.error("window aggregates take a plain column argument", call)
        partition = tuple(resolve(ref) for ref in clause.partition_by)
        order_by = tuple(resolve(item.expression) for item in clause.order_by)
        directions = {item.descending for item in clause.order_by}
        if len(directions) > 1:
            raise self.error("window ORDER BY cannot mix ASC and DESC", clause)
        output = self.fresh("win")
        try:
            spec = WindowSpec(
                call.name, attribute, output, order_by,
                partition_by=partition,
                frame=clause.frame if clause.frame is not None else (0, 0),
                descending=directions.pop() if directions else False,
            )
        except WindowSpecError as exc:
            raise self.error(f"invalid window: {exc}", clause) from exc
        return L.Window(plan, spec), output

    def _resolve_base(self, ref: ColumnRef) -> str:
        return self.scope.resolve(ref)

    # -- ORDER BY / LIMIT ----------------------------------------------------

    def _lower_order_limit(self, plan, alias_to_physical: Mapping[str, str]):
        statement = self.statement
        if not statement.order_by:
            if statement.limit is not None:
                raise self.error(
                    "LIMIT requires ORDER BY (bag results have no first rows)",
                    statement.items[0].expression,
                )
            return plan
        visible = set(plan_schema(plan).attributes)
        order_physicals: list[str] = []
        directions: list[bool] = []
        for item in statement.order_by:
            ref = item.expression
            if ref.table is None and ref.name in alias_to_physical:
                physical = alias_to_physical[ref.name]
            else:
                physical = self.scope.resolve(ref)
            if physical not in visible:
                raise self.error(
                    f"ORDER BY column {ref.name!r} is not visible in the result", ref
                )
            order_physicals.append(physical)
            directions.append(item.descending)
        if len(set(directions)) > 1:
            raise self.error(
                "ORDER BY cannot mix ASC and DESC directions",
                statement.order_by[0].expression,
            )
        position = "_sqlpos"
        while position in visible:
            position += "_"
        if statement.limit is not None:
            return L.TopK(
                plan, tuple(order_physicals), statement.limit, position,
                descending=directions[0],
            )
        return L.Sort(
            plan, tuple(order_physicals), position, descending=directions[0]
        )


def _split_and(expression: SqlExpr) -> list[SqlExpr]:
    if isinstance(expression, BinaryOp) and expression.op == "AND":
        return _split_and(expression.left) + _split_and(expression.right)
    return [expression]


def _and_all(predicates: Sequence[Expression]) -> Optional[Expression]:
    combined: Optional[Expression] = None
    for predicate in predicates:
        combined = predicate if combined is None else combined.and_(predicate)
    return combined


def _calls(expression: SqlExpr) -> list[FuncCall]:
    """Every FuncCall in the expression, in source order."""
    if isinstance(expression, FuncCall):
        return [expression]
    if isinstance(expression, (BinaryOp,)):
        return _calls(expression.left) + _calls(expression.right)
    if isinstance(expression, NotExpr):
        return _calls(expression.operand)
    return []


def _dedupe_keep_first(names: Sequence[str]) -> list[str]:
    seen: set[str] = set()
    out: list[str] = []
    for name in names:
        if name not in seen:
            seen.add(name)
            out.append(name)
    return out


def lower(
    query: str, statement: SelectStatement, schemas: Mapping[str, Schema]
) -> L.LogicalNode:
    """Resolve names and lower a parsed statement into the logical plan.

    The result is the *unoptimized* plan: filters sit above the join tree,
    every join requests the grid kernel, and no columns are pruned.
    """
    return _Lowering(query, statement, schemas).lower()


# -- execution ---------------------------------------------------------------


def _schema_of(relation) -> Schema:
    schema = relation.schema
    return schema if isinstance(schema, Schema) else Schema(schema)


def _as_python(relation) -> AURelation:
    if isinstance(relation, AURelation):
        return relation
    return relation.to_relation()


def _run_python(node: L.LogicalNode, catalog: Mapping) -> AURelation:
    from repro.core import operators as core_ops
    from repro.ranking.native import sort_native
    from repro.window import window_native

    if isinstance(node, L.Scan):
        return _as_python(catalog[node.table])
    if isinstance(node, L.Narrow):
        # Structural only; the narrowed columns are never referenced again,
        # and the reference backend gains nothing from dropping them early.
        return _run_python(node.child, catalog)
    if isinstance(node, L.Filter):
        return core_ops.select(_run_python(node.child, catalog), node.predicate)
    if isinstance(node, L.Join):
        return core_ops.join(
            _run_python(node.left, catalog), _run_python(node.right, catalog),
            node.predicate, on=list(node.on) if node.on else None,
        )
    if isinstance(node, L.Extend):
        return core_ops.extend(_run_python(node.child, catalog), node.name, node.expression)
    if isinstance(node, L.Aggregate):
        return core_ops.groupby_aggregate(
            _run_python(node.child, catalog), list(node.group_by), list(node.aggregates)
        )
    if isinstance(node, L.Window):
        return window_native(_run_python(node.child, catalog), node.spec)
    if isinstance(node, L.Sort):
        return sort_native(
            _run_python(node.child, catalog), list(node.order_by),
            position_attribute=node.position_attribute, descending=node.descending,
        )
    if isinstance(node, L.TopK):
        ranked = sort_native(
            _run_python(node.child, catalog), list(node.order_by), k=node.k,
            position_attribute=node.position_attribute, descending=node.descending,
        )
        return core_ops.select(ranked, attr(node.position_attribute).lt(node.k))
    if isinstance(node, L.Project):
        return core_ops.project(_run_python(node.child, catalog), list(node.attributes))
    if isinstance(node, L.Rename):
        return core_ops.rename(_run_python(node.child, catalog), dict(node.mapping))
    raise TypeError(f"unknown logical node {type(node).__name__}")


def _emit_columnar(node: L.LogicalNode, catalog: Mapping, workers, kernels: list):
    from repro.columnar.plan import ColumnarPlan

    if isinstance(node, L.Scan):
        return ColumnarPlan(catalog[node.table], workers=workers)
    if isinstance(node, L.Narrow):
        return _emit_columnar(node.child, catalog, workers, kernels).narrow(node.attributes)
    if isinstance(node, L.Filter):
        return _emit_columnar(node.child, catalog, workers, kernels).select(node.predicate)
    if isinstance(node, L.Join):
        left = _emit_columnar(node.left, catalog, workers, kernels)
        right = _emit_columnar(node.right, catalog, workers, kernels)
        if node.method == "auto":
            kernels.append(
                _planned_kernel(left._relation, right._relation, node.predicate, node.on)
            )
        else:
            kernels.append(node.method)
        return left.join(
            right, node.predicate,
            on=list(node.on) if node.on else None, method=node.method,
        )
    if isinstance(node, L.Extend):
        return _emit_columnar(node.child, catalog, workers, kernels).extend(
            node.name, node.expression
        )
    if isinstance(node, L.Aggregate):
        return _emit_columnar(node.child, catalog, workers, kernels).groupby_aggregate(
            list(node.group_by), list(node.aggregates)
        )
    if isinstance(node, L.Window):
        return _emit_columnar(node.child, catalog, workers, kernels).window(node.spec)
    if isinstance(node, L.Sort):
        return _emit_columnar(node.child, catalog, workers, kernels).sort(
            list(node.order_by),
            position_attribute=node.position_attribute, descending=node.descending,
        )
    if isinstance(node, L.TopK):
        return _emit_columnar(node.child, catalog, workers, kernels).topk(
            list(node.order_by), node.k,
            position_attribute=node.position_attribute, descending=node.descending,
        )
    if isinstance(node, L.Project):
        return _emit_columnar(node.child, catalog, workers, kernels).project(
            list(node.attributes)
        )
    if isinstance(node, L.Rename):
        return _emit_columnar(node.child, catalog, workers, kernels).rename(
            dict(node.mapping)
        )
    raise TypeError(f"unknown logical node {type(node).__name__}")


def _planned_kernel(left, right, predicate, on) -> str:
    """The kernel ``method="auto"`` resolves for a join's two inputs.

    Mirrors :func:`repro.columnar.operators.planned_join_kernel` but reads
    key columns through ``gather_column`` when an input is still factorised,
    so reporting never forces an expansion.
    """
    from repro.columnar import operators as ops
    from repro.columnar.factorised import FactorisedAURelation

    def column(relation, name):
        if isinstance(relation, FactorisedAURelation):
            return relation.gather_column(name)
        return relation.column(name)

    keys = list(on or ())
    empty = len(left) == 0 or len(right) == 0
    if keys:
        if empty:
            return "searchsorted"
        pairs = [(column(left, k), column(right, k)) for k in keys]
        if all(ops._equality_vectorizable(lc, rc) for lc, rc in pairs):
            for lc, rc in pairs:
                if ops._column_certain(lc) or ops._column_certain(rc):
                    return "searchsorted"
            return "sweep"
        return "grid"
    if predicate is not None:
        plan = ops.band_join_plan(predicate, left.schema, right.schema)
        if plan is not None:
            left_name, right_name, low, high = plan
            if empty or ops._band_vectorizable(
                column(left, left_name), column(right, right_name), low, high
            ):
                return "band"
    return "grid"


# -- public API --------------------------------------------------------------


@dataclass
class CompiledQuery:
    """A parsed, lowered (and optionally optimized) SQL query, ready to run.

    ``plan`` is the logical plan that :meth:`run` executes; ``unoptimized``
    keeps the pre-rewrite lowering so callers (tests, benchmarks) can run
    both sides of the differential.  ``join_kernels`` records, per join in
    execution order, the pair-enumeration kernel the last :meth:`run` chose
    (``auto`` joins resolve to searchsorted / sweep / band / grid).
    """

    query: str
    statement: SelectStatement
    plan: L.LogicalNode
    unoptimized: L.LogicalNode
    backend: str
    workers: Optional[int]
    catalog: Mapping = field(repr=False)
    join_kernels: tuple[str, ...] = ()

    def run(self) -> AURelation:
        if self.backend == "python":
            return _run_python(self.plan, self.catalog)
        kernels: list[str] = []
        result = _emit_columnar(self.plan, self.catalog, self.workers, kernels).to_rows()
        self.join_kernels = tuple(kernels)
        return result

    def explain(self) -> str:
        """A one-line-per-node rendering of the plan (top node first)."""
        lines: list[str] = []

        def render(node, depth):
            detail = {
                L.Scan: lambda n: n.table,
                L.Narrow: lambda n: ", ".join(n.attributes),
                L.Join: lambda n: f"on={list(n.on) if n.on else None} method={n.method}",
                L.Aggregate: lambda n: f"by {list(n.group_by)}",
                L.Project: lambda n: ", ".join(n.attributes),
            }.get(type(node))
            suffix = f" [{detail(node)}]" if detail else ""
            lines.append("  " * depth + type(node).__name__ + suffix)
            for name in ("child", "left", "right"):
                child = getattr(node, name, None)
                if isinstance(child, L.LogicalNode):
                    render(child, depth + 1)

        render(self.plan, 0)
        return "\n".join(lines)


def compile_sql(
    query: str,
    catalog: Mapping,
    *,
    optimize: bool = True,
    backend: str = "columnar",
    workers: Optional[int] = None,
) -> CompiledQuery:
    """Parse, resolve, lower and (by default) optimize a SQL query.

    ``catalog`` maps table names to relations (:class:`AURelation` or
    columnar).  ``optimize=False`` keeps the literal lowering — grid joins,
    no pushdown, no pruning — which the differential suite and benchmarks
    use as the semantics baseline.
    """
    if backend not in ("columnar", "python"):
        raise SqlError(f"unknown backend {backend!r}; expected 'columnar' or 'python'")
    statement = parse(query)
    schemas = {name: _schema_of(rel) for name, rel in catalog.items()}
    unoptimized = lower(query, statement, schemas)
    plan = unoptimized
    if optimize:
        from repro.sql.optimizer import optimize_plan

        plan = optimize_plan(unoptimized, catalog)
    return CompiledQuery(
        query=query, statement=statement, plan=plan, unoptimized=unoptimized,
        backend=backend, workers=workers, catalog=catalog,
    )


def run_sql(
    query: str,
    catalog: Mapping,
    *,
    optimize: bool = True,
    backend: str = "columnar",
    workers: Optional[int] = None,
) -> AURelation:
    """Compile and execute ``query`` against ``catalog`` in one call."""
    return compile_sql(
        query, catalog, optimize=optimize, backend=backend, workers=workers
    ).run()


# -- PlanSpec production (serving integration) -------------------------------


def sql_to_spec(query: str, schema: Schema, *, table: str | None = None):
    """Compile a single-table SQL template into a reusable ``PlanSpec``.

    The produced spec plugs into :class:`repro.serving.server.QueryServer`:
    its constants become shape-key slots, so differently-bound parameters
    share one cached plan shape.  ``schema`` is the base relation's schema;
    the query's ``FROM`` table (any name, or ``table`` to enforce one) stands
    for that base relation.  Joins are rejected — a served view reads one
    base relation.
    """
    from repro.columnar.plan import PlanSpec

    statement = parse(query)
    if statement.joins:
        raise SqlError(
            "SQL templates for the serving layer must read a single table",
            query=query,
            line=statement.joins[0].table.line, column=statement.joins[0].table.column,
        )
    if table is not None and statement.source.name != table:
        raise SqlError(
            f"template must read table {table!r}", query=query,
            line=statement.source.line, column=statement.source.column,
        )
    logical = lower(query, statement, {statement.source.name: schema})
    spec = PlanSpec()

    def emit(node) -> None:
        nonlocal spec
        if isinstance(node, L.Scan):
            return
        emit(node.child)
        if isinstance(node, L.Narrow):
            return  # structural; served plans re-project at the end anyway
        if isinstance(node, L.Filter):
            spec = spec.select(node.predicate)
        elif isinstance(node, L.Extend):
            spec = spec.extend(node.name, node.expression)
        elif isinstance(node, L.Aggregate):
            spec = spec.groupby_aggregate(list(node.group_by), list(node.aggregates))
        elif isinstance(node, L.Window):
            spec = spec.window(node.spec)
        elif isinstance(node, L.Sort):
            spec = spec.sort(
                list(node.order_by),
                position_attribute=node.position_attribute, descending=node.descending,
            )
        elif isinstance(node, L.TopK):
            spec = spec.topk(
                list(node.order_by), node.k,
                position_attribute=node.position_attribute, descending=node.descending,
            )
        elif isinstance(node, L.Project):
            spec = spec.project(list(node.attributes))
        elif isinstance(node, L.Rename):
            spec = spec.rename(dict(node.mapping))
        else:
            raise SqlError(
                f"stage {type(node).__name__} cannot be served as a template",
                query=query,
            )

    emit(logical)
    return spec
