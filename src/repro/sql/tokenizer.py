"""Hand-rolled tokenizer for the ``repro.sql`` SQL subset.

Produces a flat list of :class:`Token` objects carrying 1-based line/column
positions so every later stage (parser, name resolution, compilation) can
raise :class:`~repro.errors.SqlError` with a caret under the offending
source location.  Keywords are case-insensitive; identifiers keep their
original spelling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SqlError

__all__ = ["Token", "tokenize", "KEYWORDS"]

#: Reserved words, recognised case-insensitively.  A keyword token's ``value``
#: is the upper-cased spelling; everything else lexes as an ``IDENT``.
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "JOIN", "INNER", "ON", "AS", "AND", "OR",
        "NOT", "GROUP", "ORDER", "BY", "LIMIT", "ASC", "DESC", "OVER",
        "PARTITION", "ROWS", "BETWEEN", "PRECEDING", "FOLLOWING", "CURRENT",
        "ROW", "UNBOUNDED",
    }
)

#: Multi-character operators first so ``<=`` never lexes as ``<`` + ``=``.
_OPERATORS = ("<>", "<=", ">=", "!=", "=", "<", ">", "+", "-", "*", "(", ")", ",", ".")


@dataclass(frozen=True)
class Token:
    """One lexeme with its 1-based source position.

    ``type`` is one of ``"KEYWORD"``, ``"IDENT"``, ``"NUMBER"``, ``"STRING"``,
    ``"OP"`` or ``"EOF"``.  Positions compare as equal-irrelevant so parser
    golden tests can compare token lists structurally.
    """

    type: str
    value: object
    line: int = field(compare=False, default=1)
    column: int = field(compare=False, default=1)

    def describe(self) -> str:
        if self.type == "EOF":
            return "end of query"
        return repr(str(self.value))


def tokenize(query: str) -> list[Token]:
    """Lex ``query`` into tokens, ending with an ``EOF`` token.

    >>> [t.value for t in tokenize("SELECT v FROM t")[:-1]]
    ['SELECT', 'v', 'FROM', 't']
    >>> tokenize("WHERE v >= 1.5")[2]
    Token(type='OP', value='>=', line=1, column=9)
    >>> tokenize("SELECT ?")
    Traceback (most recent call last):
        ...
    repro.errors.SqlError: unexpected character '?' at line 1, column 8
      SELECT ?
             ^
    """
    tokens: list[Token] = []
    line, column = 1, 1
    i, n = 0, len(query)
    while i < n:
        ch = query[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "-" and query.startswith("--", i):
            while i < n and query[i] != "\n":
                i += 1
            continue
        start_line, start_column = line, column
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (query[j].isalnum() or query[j] == "_"):
                j += 1
            word = query[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), start_line, start_column))
            else:
                tokens.append(Token("IDENT", word, start_line, start_column))
            column += j - i
            i = j
            continue
        if ch.isdigit():
            j = i
            while j < n and query[j].isdigit():
                j += 1
            is_float = j < n and query[j] == "." and j + 1 < n and query[j + 1].isdigit()
            if is_float:
                j += 1
                while j < n and query[j].isdigit():
                    j += 1
            text = query[i:j]
            value: object = float(text) if is_float else int(text)
            tokens.append(Token("NUMBER", value, start_line, start_column))
            column += j - i
            i = j
            continue
        if ch == "'":
            j = i + 1
            pieces: list[str] = []
            terminated = False
            while j < n and query[j] != "\n":
                if query[j] == "'":
                    if j + 1 < n and query[j + 1] == "'":  # '' escapes a quote
                        pieces.append("'")
                        j += 2
                        continue
                    terminated = True
                    break
                pieces.append(query[j])
                j += 1
            if not terminated:
                raise SqlError(
                    "unterminated string literal",
                    query=query, line=start_line, column=start_column,
                )
            tokens.append(Token("STRING", "".join(pieces), start_line, start_column))
            column += j + 1 - i
            i = j + 1
            continue
        for op in _OPERATORS:
            if query.startswith(op, i):
                tokens.append(Token("OP", op, start_line, start_column))
                column += len(op)
                i += len(op)
                break
        else:
            raise SqlError(
                f"unexpected character {ch!r}",
                query=query, line=start_line, column=start_column,
            )
    tokens.append(Token("EOF", None, line, column))
    return tokens
