"""AST node types for the ``repro.sql`` frontend.

Two node families live here:

* the **statement AST** the parser produces (``SelectStatement`` and the
  expression nodes below it) — pure syntax, no name resolution, every node
  carrying a 1-based source position so later passes can point a caret at
  the offending token; and
* the **logical plan** the compiler lowers a statement into (``Scan``,
  ``Filter``, ``Join``, …) — resolved physical attribute names and core
  :mod:`repro.core.expressions` trees, the representation the rule-based
  optimizer (:mod:`repro.sql.optimizer`) rewrites and the backends execute.

Source positions use ``field(compare=False)`` so golden parser tests can
compare ASTs structurally without spelling out every line/column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.schema import Schema

__all__ = [
    # statement AST
    "SqlExpr", "ColumnRef", "Literal", "BinaryOp", "NotExpr", "FuncCall",
    "WindowClause", "SelectItem", "TableRef", "JoinClause", "OrderItem",
    "SelectStatement",
    # logical plan
    "LogicalNode", "Scan", "Narrow", "Filter", "Join", "Extend", "Aggregate",
    "Window", "Sort", "TopK", "Project", "Rename", "plan_schema", "walk",
]


# -- statement AST (parser output) ------------------------------------------


@dataclass(frozen=True)
class SqlExpr:
    """Base class for parsed (unresolved) SQL expressions."""


@dataclass(frozen=True)
class ColumnRef(SqlExpr):
    """A possibly table-qualified column reference (``t.v`` or ``v``)."""

    table: Optional[str]
    name: str
    line: int = field(compare=False, default=1)
    column: int = field(compare=False, default=1)


@dataclass(frozen=True)
class Literal(SqlExpr):
    """A number or string literal."""

    value: object
    line: int = field(compare=False, default=1)
    column: int = field(compare=False, default=1)


@dataclass(frozen=True)
class BinaryOp(SqlExpr):
    """Arithmetic (``+ - *``), comparison or ``AND``/``OR``."""

    op: str
    left: SqlExpr
    right: SqlExpr
    line: int = field(compare=False, default=1)
    column: int = field(compare=False, default=1)


@dataclass(frozen=True)
class NotExpr(SqlExpr):
    operand: SqlExpr
    line: int = field(compare=False, default=1)
    column: int = field(compare=False, default=1)


@dataclass(frozen=True)
class WindowClause:
    """An ``OVER (...)`` clause attached to an aggregate call.

    ``frame`` is the parsed ``ROWS BETWEEN`` bounds as row offsets relative
    to the current row (negative = preceding), or ``None`` when the clause
    was omitted (defaulting to the engine's current-row frame ``(0, 0)``).
    """

    partition_by: tuple[ColumnRef, ...]
    order_by: tuple["OrderItem", ...]
    frame: Optional[tuple[int, int]]
    line: int = field(compare=False, default=1)
    column: int = field(compare=False, default=1)


@dataclass(frozen=True)
class FuncCall(SqlExpr):
    """An aggregate call ``fn(arg)``, optionally windowed via ``OVER``.

    ``star`` marks ``count(*)`` (then ``arg`` is ``None``).
    """

    name: str
    arg: Optional[SqlExpr]
    star: bool = False
    window: Optional[WindowClause] = None
    line: int = field(compare=False, default=1)
    column: int = field(compare=False, default=1)


@dataclass(frozen=True)
class SelectItem:
    expression: SqlExpr
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None
    line: int = field(compare=False, default=1)
    column: int = field(compare=False, default=1)


@dataclass(frozen=True)
class JoinClause:
    table: TableRef
    condition: SqlExpr


@dataclass(frozen=True)
class OrderItem:
    expression: ColumnRef
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    items: tuple[SelectItem, ...]
    source: TableRef
    joins: tuple[JoinClause, ...] = ()
    where: Optional[SqlExpr] = None
    group_by: tuple[ColumnRef, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None


# -- logical plan (compiler + optimizer representation) ----------------------


@dataclass(frozen=True)
class LogicalNode:
    """Base class for logical plan nodes.

    Each node knows how to derive its output :class:`~repro.core.schema.Schema`
    from its input(s) — see :func:`plan_schema`.
    """


@dataclass(frozen=True)
class Scan(LogicalNode):
    """A base-table scan.  ``schema`` is the catalog relation's schema."""

    table: str
    schema: Schema


@dataclass(frozen=True)
class Narrow(LogicalNode):
    """Drop unreferenced columns *without* merging rows.

    The projection-pruning rewrite inserts these below joins and aggregates;
    unlike the (bag, merging) ``Project`` they keep the exact row sequence,
    so downstream stages stay bit-identical while column caches slim down.
    """

    child: LogicalNode
    attributes: tuple[str, ...]


@dataclass(frozen=True)
class Filter(LogicalNode):
    """A selection; ``predicate`` is a resolved core expression tree."""

    child: LogicalNode
    predicate: object


@dataclass(frozen=True)
class Join(LogicalNode):
    """A join; ``on`` holds shared-name equi-keys, ``predicate`` the rest.

    ``method`` is the kernel request handed to
    :meth:`repro.columnar.plan.ColumnarPlan.join` — the unoptimized compile
    pins ``"grid"``, the optimizer flips it to ``"auto"`` so the planner
    resolves searchsorted / sweep / band kernels.
    """

    left: LogicalNode
    right: LogicalNode
    on: Optional[tuple[str, ...]] = None
    predicate: object = None
    method: str = "grid"


@dataclass(frozen=True)
class Extend(LogicalNode):
    """A computed column ``name := expression`` appended to the child."""

    child: LogicalNode
    name: str
    expression: object


@dataclass(frozen=True)
class Aggregate(LogicalNode):
    """Grouped aggregation: ``aggregates`` are ``(fn, attr|None, output)``."""

    child: LogicalNode
    group_by: tuple[str, ...]
    aggregates: tuple[tuple[str, Optional[str], str], ...]


@dataclass(frozen=True)
class Window(LogicalNode):
    """A windowed aggregate; ``spec`` is a :class:`repro.window.WindowSpec`."""

    child: LogicalNode
    spec: object


@dataclass(frozen=True)
class Sort(LogicalNode):
    child: LogicalNode
    order_by: tuple[str, ...]
    position_attribute: str
    descending: bool = False


@dataclass(frozen=True)
class TopK(LogicalNode):
    child: LogicalNode
    order_by: tuple[str, ...]
    k: int
    position_attribute: str
    descending: bool = False


@dataclass(frozen=True)
class Project(LogicalNode):
    """The final (merging, bag-semantics) projection to the SELECT list."""

    child: LogicalNode
    attributes: tuple[str, ...]


@dataclass(frozen=True)
class Rename(LogicalNode):
    """Output aliasing; ``mapping`` is a sorted tuple of (old, new) pairs."""

    child: LogicalNode
    mapping: tuple[tuple[str, str], ...]


def plan_schema(node: LogicalNode) -> Schema:
    """The output schema a logical node produces.

    >>> from repro.core.schema import Schema
    >>> scan = Scan("t", Schema(["k", "v"]))
    >>> plan_schema(Narrow(scan, ("v",))).attributes
    ('v',)
    >>> plan_schema(Join(scan, Scan("u", Schema(["k", "w"])), on=("k",))).attributes
    ('k', 'v', 'k_r', 'w')
    """
    if isinstance(node, Scan):
        return node.schema
    if isinstance(node, (Narrow, Project)):
        return plan_schema(node.child).project(node.attributes)
    if isinstance(node, Filter):
        return plan_schema(node.child)
    if isinstance(node, Join):
        return plan_schema(node.left).concat(plan_schema(node.right), disambiguate=True)
    if isinstance(node, Extend):
        return plan_schema(node.child).extend(node.name)
    if isinstance(node, Aggregate):
        return Schema(node.group_by + tuple(output for _fn, _attr, output in node.aggregates))
    if isinstance(node, Window):
        return plan_schema(node.child).extend(node.spec.output)
    if isinstance(node, (Sort, TopK)):
        return plan_schema(node.child).extend(node.position_attribute)
    if isinstance(node, Rename):
        return plan_schema(node.child).rename(dict(node.mapping))
    raise TypeError(f"unknown logical node {type(node).__name__}")


def walk(node: LogicalNode):
    """Yield ``node`` and every descendant, top-down (left before right)."""
    yield node
    for child_name in ("child", "left", "right"):
        child = getattr(node, child_name, None)
        if isinstance(child, LogicalNode):
            yield from walk(child)
